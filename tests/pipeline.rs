//! Cross-crate pipeline invariants: sample attribution accuracy, map
//! ablation, overhead accounting, and collector equivalence.

use hpmopt::core::runtime::{HpmRuntime, RunConfig};
use hpmopt::gc::{CollectorKind, HeapConfig};
use hpmopt::hpm::{HpmConfig, SamplingInterval};
use hpmopt::vm::{CompilationPlan, VmConfig};
use hpmopt::workloads::{self, Size, Workload};

fn base_config(w: &Workload) -> RunConfig {
    let mut vm = VmConfig {
        heap: HeapConfig {
            heap_bytes: w.min_heap_bytes * 4,
            nursery_bytes: 256 * 1024,
            los_bytes: 64 * 1024 * 1024,
            collector: CollectorKind::GenMs,
            ..Default::default()
        },
        ..VmConfig::default()
    };
    vm.plan = Some(CompilationPlan::new(
        (0..w.program.methods().len() as u32)
            .map(hpmopt::bytecode::MethodId)
            .collect(),
    ));
    vm.jit.tier1_enabled = false;
    // Walk the live graph after every collection: any pipeline test that
    // triggers GC also proves heap integrity at each collection point.
    vm.verify_heap_every_gc = true;
    RunConfig {
        vm,
        hpm: HpmConfig {
            interval: SamplingInterval::Fixed(1024),
            buffer_capacity: 256,
            cpu_hz: 100_000_000,
            ..HpmConfig::default()
        },
        coalloc: true,
        ..RunConfig::default()
    }
}

#[test]
fn db_samples_attribute_to_the_declared_hot_field() {
    let w = workloads::by_name("db", Size::Tiny).unwrap();
    let report = HpmRuntime::new(base_config(&w)).run(&w.program).unwrap();
    assert!(report.hpm.samples > 50, "need a sample population");
    assert_eq!(
        report.attribution.foreign, 0,
        "every PC comes from registered code"
    );
    assert_eq!(
        report.attribution.unmapped, 0,
        "full maps leave nothing unmapped"
    );
    // The declared hot field must dominate the attributed misses.
    let (top_field, top_count) = &report.field_totals[0];
    assert_eq!(top_field, "String::value", "{:?}", report.field_totals);
    assert!(
        *top_count as f64 >= 0.5 * report.attribution.attributed as f64,
        "hot field should take most attributed misses: {:?}",
        report.field_totals
    );
}

#[test]
fn disabling_full_maps_loses_attribution_but_not_correctness() {
    let w = workloads::by_name("db", Size::Tiny).unwrap();
    let mut cfg = base_config(&w);
    cfg.vm.full_mcmaps = false;
    let report = HpmRuntime::new(cfg).run(&w.program).unwrap();
    assert!(report.attribution.unmapped > 0, "stock maps drop samples");
    assert!(report.cycles > 0, "the program itself is unaffected");
}

#[test]
fn monitoring_overhead_is_accounted_and_bounded() {
    let w = workloads::by_name("jess", Size::Tiny).unwrap();
    let mut off = base_config(&w);
    off.hpm.interval = SamplingInterval::Off;
    off.coalloc = false;
    let baseline = HpmRuntime::new(off).run(&w.program).unwrap();

    let mut on = base_config(&w);
    on.coalloc = false; // isolate monitoring cost
    let monitored = HpmRuntime::new(on).run(&w.program).unwrap();

    assert!(monitored.vm.monitor_cycles > 0);
    let overhead = monitored.cycles as f64 / baseline.cycles as f64 - 1.0;
    assert!(
        overhead < 0.05,
        "monitoring must stay cheap: {:.2}%",
        overhead * 100.0
    );
    // The charged monitoring cycles explain (most of) the difference.
    assert!(
        monitored.cycles - baseline.cycles <= monitored.vm.monitor_cycles + baseline.cycles / 50,
        "unaccounted overhead: base={} mon={} charged={}",
        baseline.cycles,
        monitored.cycles,
        monitored.vm.monitor_cycles
    );
}

#[test]
fn collectors_compute_the_same_program_result() {
    // The collector must be semantically invisible: identical bytecode
    // counts under GenMS, GenMS+coalloc, and GenCopy.
    let w = workloads::by_name("jess", Size::Tiny).unwrap();
    let mut results = Vec::new();
    for (collector, coalloc) in [
        (CollectorKind::GenMs, false),
        (CollectorKind::GenMs, true),
        (CollectorKind::GenCopy, false),
    ] {
        let mut cfg = base_config(&w);
        cfg.vm.heap.collector = collector;
        cfg.coalloc = coalloc;
        let r = HpmRuntime::new(cfg).run(&w.program).unwrap();
        results.push(r.vm.bytecodes_executed);
    }
    assert_eq!(
        results[0], results[1],
        "co-allocation changes placement only"
    );
    assert_eq!(
        results[0], results[2],
        "collector choice changes placement only"
    );
}

#[test]
fn heap_sweep_trades_gc_count_for_space() {
    let w = workloads::by_name("db", Size::Tiny).unwrap();
    let mut collections = Vec::new();
    for mult in [1u64, 4] {
        let mut cfg = base_config(&w);
        cfg.hpm.interval = SamplingInterval::Off;
        cfg.coalloc = false;
        cfg.vm.heap.heap_bytes = w.min_heap_bytes * mult;
        let r = HpmRuntime::new(cfg).run(&w.program).unwrap();
        collections.push(r.vm.gc.total_collections());
    }
    assert!(
        collections[0] >= collections[1],
        "a smaller heap cannot collect less: {collections:?}"
    );
}

#[test]
fn sampling_interval_controls_sample_volume() {
    let w = workloads::by_name("db", Size::Tiny).unwrap();
    let mut counts = Vec::new();
    for interval in [512u64, 4096] {
        let mut cfg = base_config(&w);
        cfg.coalloc = false;
        cfg.hpm.interval = SamplingInterval::Fixed(interval);
        let r = HpmRuntime::new(cfg).run(&w.program).unwrap();
        counts.push(r.hpm.samples);
    }
    assert!(
        counts[0] > counts[1] * 3,
        "8x finer interval must give several times the samples: {counts:?}"
    );
}
