//! End-to-end warm start through the facade crate: a profile saved by
//! one run seeds the next, and a damaged profile degrades to a cold
//! start instead of an error.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use hpmopt::core::runtime::{HpmRuntime, RunConfig, RunReport};
use hpmopt::core::ProfileOptions;
use hpmopt::gc::{CollectorKind, HeapConfig};
use hpmopt::hpm::{HpmConfig, SamplingInterval};
use hpmopt::telemetry::{MetricId, Telemetry, DEFAULT_TRACE_CAPACITY};
use hpmopt::vm::VmConfig;
use hpmopt::workloads::{self, Size, Workload};

/// A collision-free scratch path for one test.
fn temp_profile(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "hpmopt-e2e-{tag}-{}-{}.hpmprof",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn config(w: &Workload, profile: ProfileOptions, telemetry: Telemetry) -> RunConfig {
    let vm = VmConfig {
        heap: HeapConfig {
            heap_bytes: w.min_heap_bytes * 4,
            nursery_bytes: 256 * 1024,
            los_bytes: 64 * 1024 * 1024,
            collector: CollectorKind::GenMs,
            ..Default::default()
        },
        ..VmConfig::default()
    };
    RunConfig {
        vm,
        hpm: HpmConfig {
            interval: SamplingInterval::Fixed(1024),
            buffer_capacity: 256,
            cpu_hz: 100_000_000,
            ..HpmConfig::default()
        },
        coalloc: true,
        profile,
        telemetry,
        ..RunConfig::default()
    }
}

fn run(w: &Workload, profile: ProfileOptions, telemetry: Telemetry) -> RunReport {
    HpmRuntime::new(config(w, profile, telemetry))
        .run(&w.program)
        .expect("run succeeds")
}

#[test]
fn warm_start_reaches_first_decision_strictly_sooner() {
    let w = workloads::by_name("db", Size::Tiny).unwrap();
    let path = temp_profile("warm");

    let cold = run(&w, ProfileOptions::at(&path, "db"), Telemetry::disabled());
    assert!(!cold.warm_start, "no profile exists yet");
    let cold_first = cold
        .cycles_to_first_decision()
        .expect("cold db run enables co-allocation");

    let warm = run(&w, ProfileOptions::at(&path, "db"), Telemetry::disabled());
    assert!(warm.warm_start, "second run loads the saved profile");
    let warm_first = warm
        .cycles_to_first_decision()
        .expect("warm run has seeded decisions");
    assert!(
        warm_first < cold_first,
        "warm start must beat cold to the first decision: warm={warm_first} cold={cold_first}"
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_profile_degrades_to_cold_start_with_telemetry() {
    let w = workloads::by_name("db", Size::Tiny).unwrap();
    let path = temp_profile("corrupt");

    // Seed a valid profile, then destroy its payload.
    let seeded = run(&w, ProfileOptions::at(&path, "db"), Telemetry::disabled());
    assert!(!seeded.warm_start);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();

    let telemetry = Telemetry::enabled(DEFAULT_TRACE_CAPACITY);
    let report = run(&w, ProfileOptions::at(&path, "db"), telemetry.clone());
    assert!(!report.warm_start, "corrupt profile must not warm-start");
    assert_eq!(telemetry.get(MetricId::ProfileColdStarts), 1);
    assert_eq!(telemetry.get(MetricId::ProfileLoadCorrupt), 1);
    assert_eq!(telemetry.get(MetricId::ProfileWarmStarts), 0);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn fingerprint_mismatch_degrades_to_cold_start_with_telemetry() {
    let w = workloads::by_name("db", Size::Tiny).unwrap();
    let path = temp_profile("mismatch");

    // Save under one workload tag, reload under another: the stored
    // fingerprint no longer matches, so the run must start cold.
    let seeded = run(&w, ProfileOptions::at(&path, "db"), Telemetry::disabled());
    assert!(!seeded.warm_start);

    let telemetry = Telemetry::enabled(DEFAULT_TRACE_CAPACITY);
    let report = run(&w, ProfileOptions::at(&path, "other"), telemetry.clone());
    assert!(!report.warm_start, "mismatched profile must not warm-start");
    assert_eq!(telemetry.get(MetricId::ProfileColdStarts), 1);
    assert_eq!(telemetry.get(MetricId::ProfileLoadMismatch), 1);

    let _ = std::fs::remove_file(&path);
}
