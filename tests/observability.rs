//! End-to-end observability invariants across the full pipeline:
//!
//! 1. Decision provenance explains real decisions — including a
//!    feedback-driven revert — with the complete sample → MC-map →
//!    counter → threshold → action chain.
//! 2. Telemetry with every hook enabled (provenance, histograms,
//!    spans) perturbs the simulated clock by exactly 0%.
//! 3. The Prometheus exposition is byte-identical across two runs of
//!    the same configuration.
//! 4. The JSON, text, and Prometheus exports are byte-stable against
//!    committed golden files (regenerate deliberately with
//!    `UPDATE_GOLDEN=1 cargo test --test observability`).

use hpmopt::bytecode::MethodId;
use hpmopt::core::feedback::FeedbackConfig;
use hpmopt::core::runtime::{ForcedBadPlacement, HpmRuntime, RunConfig, RunReport};
use hpmopt::gc::{CollectorKind, HeapConfig};
use hpmopt::hpm::{HpmConfig, SamplingInterval};
use hpmopt::telemetry::{
    prom, HistogramId, MetricId, SampleWitness, Telemetry, TraceKind, DEFAULT_TRACE_CAPACITY,
};
use hpmopt::vm::{CompilationPlan, VmConfig};
use hpmopt::workloads::{self, Size, Workload};

/// The Figure 8 sabotage configuration on `db` (tiny): a deliberately
/// bad placement pinned mid-run, with a feedback loop tight enough to
/// catch and revert it. Every provenance action — enabled, pinned,
/// reverted — occurs in one run.
fn forced_bad_config(w: &Workload, telemetry: Telemetry) -> RunConfig {
    let mut vm = VmConfig {
        heap: HeapConfig {
            heap_bytes: w.min_heap_bytes * 4,
            nursery_bytes: 256 * 1024,
            los_bytes: 64 * 1024 * 1024,
            collector: CollectorKind::GenMs,
            ..Default::default()
        },
        ..VmConfig::default()
    };
    vm.plan = Some(CompilationPlan::new(
        (0..w.program.methods().len() as u32)
            .map(MethodId)
            .collect(),
    ));
    vm.jit.tier1_enabled = false;
    RunConfig {
        vm,
        hpm: HpmConfig {
            interval: SamplingInterval::Fixed(256),
            buffer_capacity: 256,
            cpu_hz: 100_000_000,
            ..HpmConfig::default()
        },
        coalloc: true,
        watch_fields: vec![("String".into(), "value".into())],
        forced_bad: Some(ForcedBadPlacement {
            class: "String".into(),
            field: "value".into(),
            gap_bytes: 128,
            at_cycles: 6_000_000,
        }),
        feedback: FeedbackConfig {
            tolerance: 1.25,
            revert_after_periods: 2,
            min_period_misses: 25,
        },
        telemetry,
        ..RunConfig::default()
    }
}

fn run_forced_bad(telemetry: Telemetry) -> (Workload, RunReport) {
    let w = workloads::by_name("db", Size::Tiny).unwrap();
    let report = HpmRuntime::new(forced_bad_config(&w, telemetry))
        .run(&w.program)
        .unwrap();
    (w, report)
}

#[test]
fn provenance_explains_the_decision_and_the_feedback_revert() {
    let telemetry = Telemetry::enabled(DEFAULT_TRACE_CAPACITY);
    let (w, report) = run_forced_bad(telemetry.clone());
    let snap = telemetry.snapshot(report.cycles);
    assert_eq!(snap.decisions_dropped, 0);

    let class = w.program.class_by_name("String").unwrap();
    let field = w.program.field_by_name(class, "value").unwrap();

    // The enabled decision carries the full causal chain: witnessed
    // samples whose PCs resolved through the MC maps, and a miss
    // counter that crossed the policy threshold.
    let enabled = snap
        .decisions
        .iter()
        .find(|d| d.action == "enabled" && d.class == class.0)
        .expect("an enabled decision for String is retained");
    assert_eq!(enabled.field, field.0);
    assert!(
        enabled.field_misses >= enabled.threshold,
        "decision fired below threshold: {} < {}",
        enabled.field_misses,
        enabled.threshold
    );
    assert!(!enabled.witnesses.is_empty(), "witness samples retained");
    for wit in &enabled.witnesses {
        assert!((wit.method as usize) < w.program.methods().len());
        assert!(wit.cycle <= enabled.cycle, "evidence precedes the action");
        assert!(wit.pc != 0, "sampled PCs are real machine addresses");
    }

    // The sabotage pin, then the feedback-driven revert with evidence.
    let pinned = snap
        .decisions
        .iter()
        .find(|d| d.action == "pinned" && d.class == class.0)
        .expect("the forced-bad pin is retained");
    assert_eq!(pinned.gap_bytes, 128);
    let reverted = snap
        .decisions
        .iter()
        .find(|d| d.action == "reverted" && d.class == class.0)
        .expect("the feedback revert is retained");
    assert!(reverted.cycle > pinned.cycle, "revert follows the pin");
    let chain = reverted.feedback.expect("reverts carry feedback evidence");
    assert!(
        chain.observed_rate > chain.baseline_rate * chain.tolerance,
        "the observed rate must actually breach the tolerance band: \
         {} vs {} x{}",
        chain.observed_rate,
        chain.baseline_rate,
        chain.tolerance
    );
    assert_eq!(chain.regressing_periods, 2, "revert_after_periods = 2");
}

#[test]
fn fully_instrumented_telemetry_perturbs_nothing() {
    let (_, control) = run_forced_bad(Telemetry::disabled());
    let telemetry = Telemetry::enabled(DEFAULT_TRACE_CAPACITY);
    let (_, enabled) = run_forced_bad(telemetry.clone());

    assert_eq!(
        enabled.cycles, control.cycles,
        "telemetry must observe the clock, never advance it"
    );
    assert_eq!(enabled.result_digest, control.result_digest);

    // The instrumentation genuinely ran: histograms, spans, and
    // provenance all carry data in the enabled arm.
    let snap = telemetry.snapshot(enabled.cycles);
    assert!(!snap.decisions.is_empty());
    assert!(snap.hist(HistogramId::HpmPollBatchSamples).count() > 0);
    assert!(snap.hist(HistogramId::CorePollGapCycles).count() > 0);
    assert!(snap.hist(HistogramId::GcMinorPauseCycles).count() > 0);
}

#[test]
fn prom_and_json_exports_are_identical_across_identical_runs() {
    let render = || {
        let telemetry = Telemetry::enabled(DEFAULT_TRACE_CAPACITY);
        let (_, report) = run_forced_bad(telemetry.clone());
        let snap = telemetry.snapshot(report.cycles);
        let mut json = hpmopt::telemetry::json::JsonWriter::new();
        snap.write_json(&mut json);
        (
            prom::render(&snap, &[("workload", "db"), ("size", "tiny")]),
            json.finish(),
        )
    };
    let (prom_a, json_a) = render();
    let (prom_b, json_b) = render();
    assert_eq!(prom_a, prom_b, "prometheus exposition is deterministic");
    assert_eq!(json_a, json_b, "json export is deterministic");
}

/// A synthetic snapshot with every export surface populated: metrics,
/// trace events, histograms, and provenance (with witnesses and
/// feedback). Everything fixed by hand, so the exports are stable
/// bytes unless the format itself changes.
fn golden_snapshot() -> hpmopt::telemetry::TelemetrySnapshot {
    let t = Telemetry::enabled(8);
    t.add(MetricId::HpmEvents, 1_000);
    t.incr(MetricId::CorePolicyEnabled);
    t.incr(MetricId::CorePolicyReverted);
    t.set_gauge(MetricId::HpmSamplingInterval, 512);
    t.record(
        1_000,
        TraceKind::PollCompleted {
            samples: 7,
            attributed: 6,
        },
    );
    t.record(
        2_000,
        TraceKind::CoallocDecision {
            class: 1,
            field: 3,
            action: "enabled",
        },
    );
    for v in [1, 2, 2, 900] {
        t.observe(HistogramId::GcMinorPauseCycles, v);
    }
    t.span_at(HistogramId::CorePollGapCycles, 100).end(612);
    t.witness_sample(
        3,
        SampleWitness {
            pc: 0x4000_0604,
            method: 2,
            bytecode_index: 25,
            cycle: 900,
        },
    );
    t.record_decision(hpmopt::telemetry::DecisionRecord {
        cycle: 2_000,
        class: 1,
        field: 3,
        action: "enabled",
        field_misses: 6,
        threshold: 4,
        gap_bytes: 0,
        witnesses: Vec::new(),
        feedback: None,
    });
    t.record_decision(hpmopt::telemetry::DecisionRecord {
        cycle: 5_000,
        class: 1,
        field: u32::MAX,
        action: "reverted",
        field_misses: 0,
        threshold: 4,
        gap_bytes: 0,
        witnesses: Vec::new(),
        feedback: Some(hpmopt::telemetry::FeedbackChain {
            baseline_rate: 2.0,
            observed_rate: 5.75,
            tolerance: 1.25,
            regressing_periods: 2,
        }),
    });
    t.snapshot(10_000)
}

fn check_golden(name: &str, rendered: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path}: {e}"));
    assert_eq!(
        rendered, committed,
        "{name} drifted from the committed golden bytes; if the format \
         change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn exports_are_byte_stable_against_committed_goldens() {
    let snap = golden_snapshot();
    let mut w = hpmopt::telemetry::json::JsonWriter::new();
    snap.write_json(&mut w);
    check_golden("telemetry_snapshot.json", &w.finish());
    check_golden("telemetry_snapshot.txt", &snap.render_text());
    check_golden(
        "telemetry_snapshot.prom",
        &prom::render(&snap, &[("workload", "golden")]),
    );
}
