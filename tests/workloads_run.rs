//! End-to-end integration: every workload runs to completion under the
//! fully monitored runtime, with sane statistics.

use hpmopt::core::runtime::{HpmRuntime, RunConfig};
use hpmopt::gc::{CollectorKind, HeapConfig};
use hpmopt::hpm::{HpmConfig, SamplingInterval};
use hpmopt::vm::VmConfig;
use hpmopt::workloads::{self, Size, Workload};

fn config_for(w: &Workload, collector: CollectorKind, coalloc: bool) -> RunConfig {
    let mut vm = VmConfig {
        heap: HeapConfig {
            heap_bytes: w.min_heap_bytes * 4,
            nursery_bytes: 256 * 1024,
            los_bytes: 64 * 1024 * 1024,
            collector,
            ..Default::default()
        },
        ..VmConfig::default()
    };
    vm.step_limit = Some(400_000_000);
    RunConfig {
        vm,
        hpm: HpmConfig {
            interval: SamplingInterval::Fixed(2048),
            buffer_capacity: 128,
            ..HpmConfig::default()
        },
        coalloc,
        ..RunConfig::default()
    }
}

#[test]
fn every_workload_completes_under_full_monitoring() {
    for w in workloads::all(Size::Tiny) {
        let report = HpmRuntime::new(config_for(&w, CollectorKind::GenMs, true))
            .run(&w.program)
            .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
        assert!(report.cycles > 0, "{}", w.name);
        assert!(report.vm.bytecodes_executed > 1000, "{}", w.name);
        assert!(report.vm.mem.accesses > 0, "{}", w.name);
        eprintln!(
            "{:>10}: {:>12} cycles, {:>9} bytecodes, {:>8} L1 misses, {} minor / {} major GCs, {} coalloc",
            w.name,
            report.cycles,
            report.vm.bytecodes_executed,
            report.vm.mem.l1_misses,
            report.vm.gc.minor_collections,
            report.vm.gc.major_collections,
            report.vm.gc.objects_coallocated,
        );
    }
}

#[test]
fn every_workload_completes_under_gencopy() {
    for w in workloads::all(Size::Tiny) {
        let report = HpmRuntime::new(config_for(&w, CollectorKind::GenCopy, false))
            .run(&w.program)
            .unwrap_or_else(|e| panic!("{} failed under GenCopy: {e}", w.name));
        assert!(report.cycles > 0, "{}", w.name);
    }
}

#[test]
fn monitored_runs_are_deterministic() {
    let w = workloads::by_name("db", Size::Tiny).unwrap();
    let run = || {
        HpmRuntime::new(config_for(&w, CollectorKind::GenMs, true))
            .run(&w.program)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.vm.mem.l1_misses, b.vm.mem.l1_misses);
    assert_eq!(a.hpm.samples, b.hpm.samples);
    assert_eq!(a.vm.gc.objects_coallocated, b.vm.gc.objects_coallocated);
}
