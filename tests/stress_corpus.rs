//! Replay every committed case file in `tests/corpus/` through the full
//! oracle suite and assert each behaves as its `expect` line records.
//!
//! Pass-cases are regression guards for historically delicate shapes
//! (the parent-then-child allocation window, LOS churn); the fail-case
//! proves the oracles still detect the injected skip-zeroing fault —
//! i.e. that the safety net itself has not rotted.

use std::path::PathBuf;

use hpmopt_stress::{run_scenario, Scenario};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_cases() -> Vec<(String, Scenario)> {
    let mut cases: Vec<(String, Scenario)> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "case"))
        .map(|p| {
            let name = p
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            let text = std::fs::read_to_string(&p).expect("readable case file");
            let scenario = Scenario::from_case_str(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            (name, scenario)
        })
        .collect();
    cases.sort_by(|a, b| a.0.cmp(&b.0));
    cases
}

#[test]
fn corpus_is_present_and_covers_both_expectations() {
    let cases = corpus_cases();
    assert!(cases.len() >= 3, "corpus unexpectedly small: {cases:?}");
    assert!(
        cases
            .iter()
            .any(|(_, s)| s.expect == hpmopt_stress::Expect::Fail),
        "corpus needs at least one fault-injection case proving detection"
    );
    assert!(
        cases
            .iter()
            .any(|(_, s)| s.expect == hpmopt_stress::Expect::Pass),
        "corpus needs at least one regression pass-case"
    );
}

#[test]
fn corpus_cases_replay_as_recorded() {
    for (name, scenario) in corpus_cases() {
        let outcome = run_scenario(&scenario);
        assert!(
            outcome.matches_expectation(),
            "{name}: expected {}, observed {} — failures: {:?}",
            scenario.expect.as_str(),
            if outcome.pass { "pass" } else { "fail" },
            outcome.failures
        );
    }
}
