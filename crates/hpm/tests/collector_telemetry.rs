//! Integration tests for the adaptive poll-period boundaries and the
//! `hpm.*` telemetry flowing out of [`HpmSystem`].

use hpmopt_hpm::{CollectorThread, HpmConfig, HpmSystem, SamplingInterval};
use hpmopt_memsim::AccessOutcome;
use hpmopt_telemetry::{MetricId, Telemetry, TraceKind};

const HZ: u64 = 3_000_000_000;
const MS: u64 = HZ / 1000;

fn miss() -> AccessOutcome {
    AccessOutcome {
        cycles: 20,
        l1_miss: true,
        ..AccessOutcome::default()
    }
}

#[test]
fn period_never_leaves_the_10ms_1000ms_band() {
    let mut t = CollectorThread::new(HZ);
    // Alternate hot and cold polls in every order; the period must stay
    // within [10 ms, 1000 ms] at every step.
    let fills: [u8; 12] = [90, 90, 90, 90, 0, 0, 0, 0, 0, 0, 0, 90];
    let mut cycles = 0;
    for fill in fills {
        t.after_poll(fill, cycles);
        assert!(
            t.period_cycles() >= 10 * MS,
            "below floor: {}",
            t.period_ms()
        );
        assert!(
            t.period_cycles() <= 1000 * MS,
            "above ceiling: {}",
            t.period_ms()
        );
        cycles += t.period_cycles();
    }
}

#[test]
fn repeated_hot_polls_clamp_at_floor_then_back_off() {
    let mut t = CollectorThread::new(HZ);
    for _ in 0..20 {
        t.after_poll(100, 0);
    }
    assert_eq!(t.period_ms(), 10);
    // One cold poll doubles the floor period, 20 clamp at the ceiling.
    t.after_poll(0, 0);
    assert_eq!(t.period_ms(), 20);
    for _ in 0..20 {
        t.after_poll(0, 0);
    }
    assert_eq!(t.period_ms(), 1000);
}

#[test]
fn next_poll_at_is_monotonic_under_an_advancing_clock() {
    let mut t = CollectorThread::new(HZ);
    let mut cycles = 0;
    let mut last_deadline = t.next_poll_at();
    for (i, fill) in [0u8, 90, 30, 0, 90, 90, 0, 30].iter().enumerate() {
        // Poll at (or after) the deadline, as the VM slow path does.
        cycles = t.next_poll_at() + i as u64;
        t.after_poll(*fill, cycles);
        assert!(
            t.next_poll_at() > cycles,
            "deadline must be in the future: {} <= {cycles}",
            t.next_poll_at()
        );
        assert!(
            t.next_poll_at() >= last_deadline,
            "deadline moved backwards: {} < {last_deadline}",
            t.next_poll_at()
        );
        last_deadline = t.next_poll_at();
    }
    assert!(cycles > 0);
}

#[test]
fn due_agrees_with_next_poll_at() {
    let mut t = CollectorThread::new(HZ);
    t.after_poll(30, 5 * MS);
    let deadline = t.next_poll_at();
    assert!(!t.due(deadline - 1));
    assert!(t.due(deadline));
    assert!(t.due(deadline + 1));
}

#[test]
fn poll_telemetry_matches_stats_and_collector_state() {
    let telemetry = Telemetry::enabled(64);
    let mut hpm = HpmSystem::new(HpmConfig {
        interval: SamplingInterval::Fixed(1),
        ..HpmConfig::default()
    });
    hpm.set_telemetry(telemetry.clone());
    for i in 0..10u64 {
        hpm.on_event(0x4000_0000 + i, i * 64, &miss(), i);
    }
    let (samples, _) = hpm.poll(1_000_000);

    let snap = telemetry.snapshot(1_000_000);
    let stats = hpm.stats();
    assert_eq!(snap.get(MetricId::HpmEvents), stats.events);
    assert_eq!(snap.get(MetricId::HpmSamplesGenerated), stats.samples);
    assert_eq!(snap.get(MetricId::HpmSamplesDrained), samples.len() as u64);
    assert_eq!(snap.get(MetricId::HpmPolls), 1);
    assert_eq!(
        snap.get(MetricId::HpmPollPeriodMs),
        hpm.collector().period_ms()
    );
    assert_eq!(
        snap.get(MetricId::HpmSamplingInterval),
        hpm.current_interval()
    );
    assert_eq!(snap.get(MetricId::HpmBufferOverflows), 0);
}

#[test]
fn overflow_surfaces_as_counter_and_trace_event() {
    let telemetry = Telemetry::enabled(64);
    let mut hpm = HpmSystem::new(HpmConfig {
        interval: SamplingInterval::Fixed(1),
        buffer_capacity: 8,
        ..HpmConfig::default()
    });
    hpm.set_telemetry(telemetry.clone());
    for i in 0..100u64 {
        hpm.on_event(0x4000_0000, i * 64, &miss(), i);
    }
    hpm.poll(7_777);

    let snap = telemetry.snapshot(7_777);
    let dropped = hpm.stats().dropped;
    assert!(dropped > 0);
    assert_eq!(snap.get(MetricId::HpmSamplesDropped), dropped);
    assert_eq!(snap.get(MetricId::HpmBufferOverflows), 1);
    let overflow_events: Vec<_> = snap
        .events
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::BufferOverflow { .. }))
        .collect();
    assert_eq!(overflow_events.len(), 1);
    assert_eq!(overflow_events[0].cycle, 7_777);
    assert_eq!(
        overflow_events[0].kind,
        TraceKind::BufferOverflow { dropped }
    );
}
