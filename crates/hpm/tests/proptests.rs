//! Property-based tests for the sampling stack.

//
// These tests need the external `proptest` crate, which the offline
// build cannot fetch; enable with `--features proptest-tests` after
// adding proptest as a dev-dependency.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;

use hpmopt_hpm::{HpmConfig, HpmSystem, PebsUnit, SamplingInterval};
use hpmopt_memsim::{AccessOutcome, EventKind};

fn miss() -> AccessOutcome {
    AccessOutcome {
        cycles: 20,
        l1_miss: true,
        l2_miss: false,
        dtlb_miss: false,
    }
}

proptest! {
    /// The sample count is always within a factor of the expected
    /// events/interval ratio (randomized low bits bound the deviation).
    #[test]
    fn sample_rate_tracks_interval(
        interval in 512u64..16384,
        events in 20_000u64..100_000,
        seed in any::<u64>(),
    ) {
        let mut unit = PebsUnit::new(interval, seed, 1 << 20);
        let mut samples = 0u64;
        for i in 0..events {
            if unit.observe(i, 0, EventKind::L1DMiss, i) {
                samples += 1;
            }
        }
        let expected = events as f64 / interval as f64;
        prop_assert!(
            (samples as f64) < expected * 2.0 + 16.0,
            "too many samples: {samples} vs expected {expected}"
        );
        prop_assert!(
            (samples as f64) > expected / 2.0 - 16.0,
            "too few samples: {samples} vs expected {expected}"
        );
    }

    /// Nothing is ever lost silently: samples + drops = capture events.
    #[test]
    fn drops_are_accounted(capacity in 1usize..64, events in 1u64..5000) {
        let mut unit = PebsUnit::new(1, 7, capacity);
        let mut captured = 0u64;
        for i in 0..events {
            if unit.observe(i, 0, EventKind::L1DMiss, i) {
                captured += 1;
            }
        }
        prop_assert_eq!(captured, events, "interval 1 samples everything");
        prop_assert_eq!(unit.buffered() as u64 + unit.dropped(), events);
    }

    /// The composed system charges monitoring cycles if and only if it is
    /// enabled and samples were taken.
    #[test]
    fn overhead_iff_samples(n in 1u64..2000, fixed in prop_oneof![Just(0u64), Just(64), Just(1024)]) {
        let interval = if fixed == 0 {
            SamplingInterval::Off
        } else {
            SamplingInterval::Fixed(fixed)
        };
        let mut hpm = HpmSystem::new(HpmConfig { interval, ..HpmConfig::default() });
        let mut overhead = 0u64;
        for i in 0..n {
            overhead += hpm.on_event(0x4000_0000 + i, i, &miss(), i);
        }
        let s = hpm.stats();
        prop_assert_eq!(overhead > 0, s.samples > 0);
        if matches!(interval, SamplingInterval::Off) {
            prop_assert_eq!(s.events, 0);
        } else {
            prop_assert_eq!(s.events, n);
        }
    }

    /// Poll always empties the kernel buffer and never fabricates
    /// samples.
    #[test]
    fn poll_conserves_samples(n in 0u64..3000) {
        let mut hpm = HpmSystem::new(HpmConfig {
            interval: SamplingInterval::Fixed(16),
            buffer_capacity: 4096,
            ..HpmConfig::default()
        });
        for i in 0..n {
            hpm.on_event(i, i, &miss(), i);
        }
        let taken = hpm.stats().samples;
        let (batch, _) = hpm.poll(1_000_000);
        prop_assert_eq!(batch.len() as u64 + hpm.stats().dropped, taken);
        let (empty, _) = hpm.poll(2_000_000);
        prop_assert!(empty.is_empty());
    }
}
