//! The collector-thread polling model.
//!
//! The paper uses "a separate Java thread that polls the kernel device
//! driver ... The polling interval is adaptively set between 10 ms and
//! 1000 ms depending on the size of the sample buffer and the sampling
//! rate" (Section 4.1, part 3). In the deterministic simulation the
//! thread is a timer on the global cycle clock: the VM asks
//! [`CollectorThread::due`] on its slow path and performs the poll
//! synchronously, which preserves the thread's observable behaviour
//! (batching, adaptive period, drain cost) without nondeterminism.

/// Adaptive poll timer.
#[derive(Debug, Clone)]
pub struct CollectorThread {
    cpu_hz: u64,
    period_cycles: u64,
    min_period: u64,
    max_period: u64,
    next_poll_at: u64,
}

impl CollectorThread {
    /// Create the thread model for a CPU of `cpu_hz`; the initial period
    /// is the 10 ms floor (a cold buffer quickly backs it off), adapted
    /// within [10 ms, 1000 ms].
    #[must_use]
    pub fn new(cpu_hz: u64) -> Self {
        let ms = cpu_hz / 1000;
        CollectorThread {
            cpu_hz,
            period_cycles: 10 * ms,
            min_period: 10 * ms,
            max_period: 1000 * ms,
            next_poll_at: 10 * ms,
        }
    }

    /// Whether the timer expired at `cycles`.
    #[must_use]
    pub fn due(&self, cycles: u64) -> bool {
        cycles >= self.next_poll_at
    }

    /// Update the adaptive period after a poll that found the kernel
    /// buffer `fill_pct` percent full: a hot buffer halves the period, a
    /// cold one backs off, so no samples are dropped while idle polling
    /// stays cheap.
    pub fn after_poll(&mut self, fill_pct: u8, cycles: u64) {
        if fill_pct >= 50 {
            self.period_cycles = (self.period_cycles / 2).max(self.min_period);
        } else if fill_pct < 10 {
            self.period_cycles = (self.period_cycles * 2).min(self.max_period);
        }
        self.next_poll_at = cycles + self.period_cycles;
    }

    /// Current polling period in cycles.
    #[must_use]
    pub fn period_cycles(&self) -> u64 {
        self.period_cycles
    }

    /// Current polling period in milliseconds.
    #[must_use]
    pub fn period_ms(&self) -> u64 {
        self.period_cycles * 1000 / self.cpu_hz
    }

    /// Cycle at which the timer next expires.
    #[must_use]
    pub fn next_poll_at(&self) -> u64 {
        self.next_poll_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HZ: u64 = 3_000_000_000;

    #[test]
    fn initial_period_is_the_10ms_floor() {
        let t = CollectorThread::new(HZ);
        assert_eq!(t.period_ms(), 10);
        assert!(!t.due(0));
        assert!(t.due(HZ / 100));
    }

    #[test]
    fn hot_buffer_shortens_period_to_floor() {
        let mut t = CollectorThread::new(HZ);
        for _ in 0..10 {
            t.after_poll(90, 0);
        }
        assert_eq!(t.period_ms(), 10, "clamped at the 10 ms floor");
    }

    #[test]
    fn cold_buffer_backs_off_to_ceiling() {
        let mut t = CollectorThread::new(HZ);
        for _ in 0..10 {
            t.after_poll(0, 0);
        }
        assert_eq!(t.period_ms(), 1000, "clamped at the 1000 ms ceiling");
    }

    #[test]
    fn moderate_fill_keeps_period() {
        let mut t = CollectorThread::new(HZ);
        let before = t.period_cycles();
        t.after_poll(30, 0);
        assert_eq!(t.period_cycles(), before);
    }

    #[test]
    fn next_poll_scheduled_after_current_time() {
        let mut t = CollectorThread::new(HZ);
        t.after_poll(30, 1_000_000);
        assert!(!t.due(1_000_000));
        assert!(t.due(1_000_000 + t.period_cycles()));
    }
}
