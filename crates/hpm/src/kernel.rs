//! Perfmon-style kernel module.
//!
//! Owns the PEBS unit and its sample buffer, hides the "hardware" details
//! from the runtime, and raises the overflow interrupt when the buffer
//! reaches its fill mark — the role the HP perfmon kernel module plays in
//! the paper's system (Section 4.1, part 1).

use crate::pebs::PebsUnit;
use crate::userlib::UserBuffer;

/// The kernel side of the monitoring stack.
#[derive(Debug, Clone)]
pub struct PerfmonModule {
    unit: PebsUnit,
    interrupt_mark: usize,
}

impl PerfmonModule {
    /// Initialize the module with the unit's interval, seed, buffer
    /// capacity, and the fill percentage that raises the interrupt.
    #[must_use]
    pub fn new(interval: u64, seed: u64, capacity: usize, interrupt_mark_pct: u8) -> Self {
        PerfmonModule {
            unit: PebsUnit::new(interval, seed, capacity),
            interrupt_mark: capacity * usize::from(interrupt_mark_pct.min(100)) / 100,
        }
    }

    /// The PEBS unit (hardware access, read-only).
    #[must_use]
    pub fn unit(&self) -> &PebsUnit {
        &self.unit
    }

    /// The PEBS unit (hardware access).
    pub fn unit_mut(&mut self) -> &mut PebsUnit {
        &mut self.unit
    }

    /// Whether the buffer reached the fill mark ("an interrupt is
    /// generated only when this buffer is filled to a specified mark").
    #[must_use]
    pub fn interrupt_pending(&self) -> bool {
        self.unit.buffered() >= self.interrupt_mark.max(1)
    }

    /// Current buffer fill as a percentage of capacity.
    #[must_use]
    pub fn fill_pct(&self) -> u8 {
        (self.unit.buffered() * 100 / self.unit.capacity().max(1)) as u8
    }

    /// Copy all buffered samples into the user-space transfer array;
    /// returns the number copied (bounded by the array's capacity — the
    /// library sizes it to the kernel buffer, so nothing is lost).
    pub fn read_samples(&mut self, user: &mut UserBuffer) -> usize {
        let n = user.fill(self.unit.samples());
        self.unit.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmopt_memsim::EventKind;

    #[test]
    fn interrupt_fires_at_mark() {
        let mut k = PerfmonModule::new(1, 1, 10, 80);
        for i in 0..7u64 {
            k.unit_mut().observe(i, 0, EventKind::L1DMiss, i);
        }
        assert!(!k.interrupt_pending(), "7 < mark of 8");
        k.unit_mut().observe(7, 0, EventKind::L1DMiss, 7);
        assert!(k.interrupt_pending());
        assert_eq!(k.fill_pct(), 80);
    }

    #[test]
    fn read_samples_transfers_and_clears() {
        let mut k = PerfmonModule::new(1, 1, 10, 90);
        for i in 0..5u64 {
            k.unit_mut().observe(i, 0, EventKind::L1DMiss, i);
        }
        let mut user = UserBuffer::new(10);
        assert_eq!(k.read_samples(&mut user), 5);
        assert_eq!(k.unit().buffered(), 0);
        assert_eq!(user.len(), 5);
    }
}
