//! The precise event-based sampling unit.

use hpmopt_memsim::EventKind;

/// Size of one sample record in bytes: PC, data address, event id, cycle
/// stamp, and a register snapshot — matching the paper's 40-byte P4
/// records. The code epoch is *not* part of the hardware record (it
/// rides in a register-snapshot slot the simulation repurposes), so the
/// wire size is unchanged.
pub const SAMPLE_BYTES: u64 = 40;

/// One precise sample: the exact instruction and machine state at the
/// moment the n-th event occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Program counter of the instruction that raised the event.
    pub pc: u64,
    /// Data address the instruction accessed.
    pub data_addr: u64,
    /// The sampled event kind.
    pub event: EventKind,
    /// Cycle time of capture.
    pub cycles: u64,
    /// Code epoch at capture time. A bounded code cache bumps the epoch
    /// every time it frees a range; attribution compares this stamp
    /// against the retirement window of the artifact owning `pc`, so a
    /// sample captured before a free can never be attributed to whatever
    /// code occupies the range afterwards.
    pub epoch: u64,
}

/// SplitMix64 — a tiny deterministic generator for interval
/// randomization (no external dependency needed for 8 random bits).
#[derive(Debug, Clone, Copy)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The sampling "hardware": an event down-counter that captures a sample
/// into a kernel-supplied buffer every time it reaches zero.
///
/// The chosen interval's 8 low-order bits are re-randomized after every
/// sample "to prevent measuring biased results by sampling at the same
/// locations over and over" (Section 6.1).
#[derive(Debug, Clone)]
pub struct PebsUnit {
    interval: u64,
    countdown: u64,
    rng: SplitMix64,
    buffer: Vec<Sample>,
    capacity: usize,
    dropped: u64,
    /// Current code epoch, stamped into every captured sample. The VM
    /// advances it (via the monitoring module) whenever the bounded code
    /// cache frees a range; stays 0 with the unbounded cache.
    code_epoch: u64,
}

impl PebsUnit {
    /// Create a unit sampling every `interval`-th event into a buffer of
    /// `capacity` samples. `interval == 0` disables sampling.
    #[must_use]
    pub fn new(interval: u64, seed: u64, capacity: usize) -> Self {
        let mut unit = PebsUnit {
            interval,
            countdown: 0,
            rng: SplitMix64(seed),
            buffer: Vec::with_capacity(capacity),
            capacity,
            dropped: 0,
            code_epoch: 0,
        };
        unit.reset_countdown();
        unit
    }

    fn reset_countdown(&mut self) {
        if self.interval == 0 {
            self.countdown = u64::MAX;
            return;
        }
        // Replace the low 8 bits with random ones — a perturbation for the
        // realistic intervals (25 K+); tiny test intervals are used as-is.
        self.countdown = if self.interval >= 512 {
            let random_low = self.rng.next() & 0xff;
            ((self.interval & !0xff) | random_low).max(1)
        } else {
            self.interval
        };
    }

    /// The configured interval (before low-bit randomization).
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Reprogram the interval (auto-mode adaptation).
    pub fn set_interval(&mut self, interval: u64) {
        self.interval = interval;
        self.reset_countdown();
    }

    /// Count one occurrence of the selected event; returns `true` when
    /// this occurrence was sampled (the caller charges the microcode
    /// cost).
    pub fn observe(&mut self, pc: u64, data_addr: u64, event: EventKind, cycles: u64) -> bool {
        if self.interval == 0 {
            return false;
        }
        self.countdown -= 1;
        if self.countdown > 0 {
            return false;
        }
        self.reset_countdown();
        if self.buffer.len() >= self.capacity {
            self.dropped += 1;
            return true; // microcode still ran; the sample was lost
        }
        self.buffer.push(Sample {
            pc,
            data_addr,
            event,
            cycles,
            epoch: self.code_epoch,
        });
        true
    }

    /// Advance the code epoch stamped into subsequent samples (the code
    /// cache freed a range). Samples already buffered keep their older
    /// stamp — exactly the in-flight records that must go stale.
    pub fn set_code_epoch(&mut self, epoch: u64) {
        self.code_epoch = epoch;
    }

    /// The current code epoch.
    #[must_use]
    pub fn code_epoch(&self) -> u64 {
        self.code_epoch
    }

    /// Samples currently buffered.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Buffer capacity in samples.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples lost to buffer overflow.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The buffered samples, in capture order (the kernel read window).
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        &self.buffer
    }

    /// Clear the buffer after a kernel read. The backing storage is
    /// retained, so steady-state sampling never reallocates.
    pub fn clear(&mut self) {
        self.buffer.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_zero_never_samples() {
        let mut u = PebsUnit::new(0, 1, 16);
        for _ in 0..1000 {
            assert!(!u.observe(0, 0, EventKind::L1DMiss, 0));
        }
        assert_eq!(u.buffered(), 0);
    }

    #[test]
    fn samples_every_nth_event_approximately() {
        let mut u = PebsUnit::new(1024, 42, 10_000);
        let mut sampled = 0;
        for i in 0..102_400u64 {
            if u.observe(i, i, EventKind::L1DMiss, i) {
                sampled += 1;
            }
        }
        // interval 1024 with randomized low byte → mean ≈ 1024-128+127/2;
        // accept 60-160 samples out of ~100 expected.
        assert!((60..=160).contains(&sampled), "sampled {sampled}");
    }

    #[test]
    fn randomization_varies_the_gap() {
        let mut u = PebsUnit::new(1024, 42, 10_000);
        let mut gaps = Vec::new();
        let mut last = 0u64;
        for i in 0..200_000u64 {
            if u.observe(i, 0, EventKind::L1DMiss, i) {
                gaps.push(i - last);
                last = i;
            }
        }
        let distinct: std::collections::HashSet<u64> = gaps.iter().copied().collect();
        assert!(distinct.len() > 10, "gaps must vary: {distinct:?}");
    }

    #[test]
    fn determinism_under_same_seed() {
        let run = |seed| {
            let mut u = PebsUnit::new(512, seed, 1000);
            let mut pcs = Vec::new();
            for i in 0..50_000u64 {
                if u.observe(i, 0, EventKind::L2Miss, i) {
                    pcs.push(i);
                }
            }
            pcs
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds sample differently");
    }

    #[test]
    fn samples_carry_the_capture_time_epoch() {
        let mut u = PebsUnit::new(1, 1, 16);
        assert_eq!(u.code_epoch(), 0);
        u.observe(1, 0, EventKind::L1DMiss, 0);
        u.set_code_epoch(3);
        u.observe(2, 0, EventKind::L1DMiss, 1);
        assert_eq!(u.samples()[0].epoch, 0, "buffered samples keep their stamp");
        assert_eq!(u.samples()[1].epoch, 3);
    }

    #[test]
    fn overflow_counts_drops() {
        let mut u = PebsUnit::new(1, 1, 4);
        for i in 0..100u64 {
            u.observe(i, 0, EventKind::L1DMiss, i);
        }
        assert_eq!(u.buffered(), 4);
        assert!(u.dropped() > 0);
        assert_eq!(u.samples().len(), 4);
        u.clear();
        assert_eq!(u.buffered(), 0);
    }
}
