//! Hardware-performance-monitoring substrate: a precise event-based
//! sampling (PEBS) unit, a perfmon-style kernel module, a user-space
//! sample library, and the adaptive collector-thread model.
//!
//! This crate reproduces the three-part monitoring system of Section 4.1:
//!
//! 1. **[`pebs::PebsUnit`]** — the "hardware": counts occurrences of one
//!    selected event ([`hpmopt_memsim::EventKind`]; the P4 samples one
//!    event at a time), and every *n*-th occurrence captures a 40-byte
//!    sample (PC, data address, register snapshot) into a kernel-supplied
//!    buffer via a microcode routine whose cost is charged to the clock.
//!    The interval's low-order 8 bits are re-randomized after every sample
//!    to avoid biased sampling (Section 6.1).
//! 2. **[`kernel::PerfmonModule`]** — the kernel module: owns the sample
//!    buffer, raises an interrupt flag when the buffer reaches its fill
//!    mark, and copies samples out to user space on request.
//! 3. **[`userlib::UserBuffer`]** + **[`collector::CollectorThread`]** —
//!    the native library's pre-allocated transfer array and the Java
//!    collector thread that polls it, with the polling period adapted
//!    between 10 ms and 1000 ms from the observed buffer fill.
//!
//! [`HpmSystem`] wires the parts together behind two calls the VM hooks
//! invoke: [`HpmSystem::on_event`] per memory access and
//! [`HpmSystem::poll`] on the simulated timer.
//!
//! # Example
//!
//! ```
//! use hpmopt_hpm::{HpmConfig, HpmSystem, SamplingInterval};
//! use hpmopt_memsim::{AccessOutcome, EventKind};
//!
//! let mut hpm = HpmSystem::new(HpmConfig {
//!     interval: SamplingInterval::Fixed(2),
//!     ..HpmConfig::default()
//! });
//! let miss = AccessOutcome { cycles: 20, l1_miss: true, ..Default::default() };
//! for i in 0..10 {
//!     hpm.on_event(0x4000_0000 + 4 * i, 0x1000_0000, &miss, 100 * i);
//! }
//! let (samples, _cost) = hpm.poll(10_000);
//! assert!(!samples.is_empty(), "every ~2nd miss was sampled");
//! assert!(samples.iter().all(|s| s.pc >= 0x4000_0000));
//! ```

pub mod collector;
pub mod kernel;
pub mod pebs;
pub mod userlib;

pub use collector::CollectorThread;
pub use kernel::PerfmonModule;
pub use pebs::{PebsUnit, Sample, SAMPLE_BYTES};
pub use userlib::UserBuffer;

use hpmopt_memsim::{AccessOutcome, EventKind};
use hpmopt_telemetry::{HistogramId, MetricId, Telemetry, TraceKind};

/// How the sampling interval is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingInterval {
    /// Monitoring disabled.
    Off,
    /// Sample every `n`-th event (the paper evaluates 25 K / 50 K / 100 K).
    Fixed(u64),
    /// Adapt the interval at runtime to a target sample rate; the paper's
    /// default is 200 samples/second (footnote 4).
    Auto {
        /// Desired samples per (simulated) second.
        target_per_sec: u64,
    },
}

impl SamplingInterval {
    /// The paper's automatic mode with its default target rate.
    #[must_use]
    pub const fn auto_default() -> Self {
        SamplingInterval::Auto {
            target_per_sec: 200,
        }
    }
}

/// Full monitoring configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HpmConfig {
    /// The event PEBS counts (one at a time, as on the P4).
    pub event: EventKind,
    /// Interval policy.
    pub interval: SamplingInterval,
    /// Cycles the sampling microcode costs per captured sample.
    pub microcode_cycles: u64,
    /// Kernel buffer capacity in samples (80 KB / 40 B in the paper).
    pub buffer_capacity: usize,
    /// Buffer fill fraction (percent) that raises the overflow interrupt.
    pub interrupt_mark_pct: u8,
    /// Simulated CPU frequency in Hz (3 GHz P4) — converts cycle deltas to
    /// seconds for rate adaptation.
    pub cpu_hz: u64,
    /// Seed for interval randomization.
    pub seed: u64,
}

impl Default for HpmConfig {
    fn default() -> Self {
        HpmConfig {
            event: EventKind::L1DMiss,
            interval: SamplingInterval::auto_default(),
            microcode_cycles: 250,
            buffer_capacity: 80 * 1024 / SAMPLE_BYTES as usize,
            interrupt_mark_pct: 90,
            cpu_hz: 3_000_000_000,
            seed: 0x5eed_1234_abcd_0001,
        }
    }
}

impl HpmConfig {
    /// Monitoring switched off entirely: no events counted, no samples
    /// captured, no overhead charged. The control arm of every
    /// zero-perturbation comparison (stress oracles, `hpmopt-report`).
    #[must_use]
    pub fn disabled() -> Self {
        HpmConfig {
            interval: SamplingInterval::Off,
            ..HpmConfig::default()
        }
    }
}

/// Aggregate monitoring statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HpmStats {
    /// Occurrences of the selected event observed.
    pub events: u64,
    /// Samples captured by the microcode.
    pub samples: u64,
    /// Samples lost to a full kernel buffer.
    pub dropped: u64,
    /// Collector-thread polls performed.
    pub polls: u64,
    /// Cycles spent in the sampling microcode.
    pub sampling_cycles: u64,
    /// Cycles spent copying samples to user space.
    pub copy_cycles: u64,
}

/// The composed monitoring system.
#[derive(Debug, Clone)]
pub struct HpmSystem {
    config: HpmConfig,
    kernel: PerfmonModule,
    user: UserBuffer,
    thread: CollectorThread,
    stats: HpmStats,
    /// Events seen since the last rate adaptation.
    events_in_window: u64,
    window_start_cycles: u64,
    telemetry: Telemetry,
    /// `stats.dropped` as of the previous poll, for overflow deltas.
    dropped_at_last_poll: u64,
}

impl HpmSystem {
    /// Build the system from a configuration.
    #[must_use]
    pub fn new(config: HpmConfig) -> Self {
        let initial_interval = match config.interval {
            SamplingInterval::Off => 0,
            SamplingInterval::Fixed(n) => n,
            SamplingInterval::Auto { .. } => 100_000,
        };
        HpmSystem {
            kernel: PerfmonModule::new(
                initial_interval,
                config.seed,
                config.buffer_capacity,
                config.interrupt_mark_pct,
            ),
            user: UserBuffer::new(config.buffer_capacity),
            thread: CollectorThread::new(config.cpu_hz),
            stats: HpmStats::default(),
            events_in_window: 0,
            window_start_cycles: 0,
            telemetry: Telemetry::disabled(),
            dropped_at_last_poll: 0,
            config,
        }
    }

    /// Attach a telemetry handle; `hpm.*` metrics and buffer-overflow
    /// trace events flow into it from now on. The default handle is
    /// disabled, so untelemetered embedders pay nothing.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &HpmConfig {
        &self.config
    }

    /// Whether monitoring is enabled at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        !matches!(self.config.interval, SamplingInterval::Off)
    }

    /// Report one memory access. If the access raised the selected event
    /// the event counter advances and the access may be sampled; returns
    /// the microcode cycles charged (0 when not sampled).
    pub fn on_event(
        &mut self,
        pc: u64,
        data_addr: u64,
        outcome: &AccessOutcome,
        cycles: u64,
    ) -> u64 {
        if !self.enabled() || !outcome.raised(self.config.event) {
            return 0;
        }
        self.stats.events += 1;
        self.events_in_window += 1;
        self.telemetry.incr(MetricId::HpmEvents);
        if self
            .kernel
            .unit_mut()
            .observe(pc, data_addr, self.config.event, cycles)
        {
            self.stats.samples += 1;
            self.stats.dropped = self.kernel.unit().dropped();
            self.stats.sampling_cycles += self.config.microcode_cycles;
            self.telemetry.incr(MetricId::HpmSamplesGenerated);
            self.config.microcode_cycles
        } else {
            0
        }
    }

    /// Whether the collector thread's timer has expired (or the kernel
    /// buffer raised its overflow interrupt).
    #[must_use]
    pub fn poll_due(&self, cycles: u64) -> bool {
        self.enabled() && (self.thread.due(cycles) || self.kernel.interrupt_pending())
    }

    /// Run one collector-thread poll: drain the kernel buffer through the
    /// user-space array, adapt the polling period and (in auto mode) the
    /// sampling interval. Returns the drained samples and the cycles the
    /// copying cost.
    ///
    /// Convenience wrapper over [`HpmSystem::poll_into`]; hot loops
    /// should hold a reusable scratch vector and call that instead.
    pub fn poll(&mut self, cycles: u64) -> (Vec<Sample>, u64) {
        let mut out = Vec::new();
        let cost = self.poll_into(cycles, &mut out);
        (out, cost)
    }

    /// [`HpmSystem::poll`], appending the drained samples to `out`
    /// instead of allocating. Every buffer on the path — the kernel
    /// buffer, the user-space transfer array, and `out` — retains its
    /// storage, so a steady-state poll loop is allocation-free.
    pub fn poll_into(&mut self, cycles: u64, out: &mut Vec<Sample>) -> u64 {
        if !self.enabled() {
            return 0;
        }
        self.stats.polls += 1;
        let fill_pct = self.kernel.fill_pct();
        let copied = self.kernel.read_samples(&mut self.user);
        let cost = self.user.copy_cost_cycles(copied);
        self.stats.copy_cycles += cost;
        self.thread.after_poll(fill_pct, cycles);

        self.telemetry.incr(MetricId::HpmPolls);
        self.telemetry
            .add(MetricId::HpmSamplesDrained, copied as u64);
        self.telemetry
            .observe(HistogramId::HpmPollBatchSamples, copied as u64);
        let dropped_since = self.stats.dropped - self.dropped_at_last_poll;
        if dropped_since > 0 {
            self.telemetry.incr(MetricId::HpmBufferOverflows);
            self.telemetry
                .add(MetricId::HpmSamplesDropped, dropped_since);
            self.telemetry.record(
                cycles,
                TraceKind::BufferOverflow {
                    dropped: dropped_since,
                },
            );
            self.dropped_at_last_poll = self.stats.dropped;
        }
        self.telemetry
            .set_gauge(MetricId::HpmPollPeriodMs, self.thread.period_ms());

        if let SamplingInterval::Auto { target_per_sec } = self.config.interval {
            let dt = cycles.saturating_sub(self.window_start_cycles);
            if dt > 0 && self.events_in_window > 0 {
                let seconds = dt as f64 / self.config.cpu_hz as f64;
                let events_per_sec = self.events_in_window as f64 / seconds;
                let ideal = events_per_sec / target_per_sec as f64;
                let clamped = ideal.clamp(256.0, 5_000_000.0) as u64;
                self.kernel.unit_mut().set_interval(clamped);
            }
            self.window_start_cycles = cycles;
            self.events_in_window = 0;
        }
        self.telemetry
            .set_gauge(MetricId::HpmSamplingInterval, self.current_interval());
        self.user.drain_into(out);
        cost
    }

    /// The collector-thread timer (for period/next-deadline inspection).
    #[must_use]
    pub fn collector(&self) -> &CollectorThread {
        &self.thread
    }

    /// The sampling interval currently in force (post-adaptation).
    #[must_use]
    pub fn current_interval(&self) -> u64 {
        self.kernel.unit().interval()
    }

    /// Advance the code epoch stamped into subsequently captured samples.
    /// The VM's bounded code cache calls this (via the monitoring
    /// module's retire hook) every time it frees a code range; samples
    /// already buffered keep their capture-time stamp, which is what lets
    /// attribution detect them as stale.
    pub fn set_code_epoch(&mut self, epoch: u64) {
        self.kernel.unit_mut().set_code_epoch(epoch);
    }

    /// The code epoch currently stamped into new samples.
    #[must_use]
    pub fn code_epoch(&self) -> u64 {
        self.kernel.unit().code_epoch()
    }

    /// Monitoring statistics.
    #[must_use]
    pub fn stats(&self) -> HpmStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miss() -> AccessOutcome {
        AccessOutcome {
            cycles: 20,
            l1_miss: true,
            l2_miss: false,
            dtlb_miss: false,
        }
    }

    #[test]
    fn off_mode_costs_nothing() {
        let mut hpm = HpmSystem::new(HpmConfig {
            interval: SamplingInterval::Off,
            ..HpmConfig::default()
        });
        assert_eq!(hpm.on_event(0x4000_0000, 0, &miss(), 0), 0);
        assert!(!hpm.poll_due(u64::MAX));
        assert_eq!(hpm.stats().events, 0);
    }

    #[test]
    fn only_selected_event_counts() {
        let mut hpm = HpmSystem::new(HpmConfig {
            event: EventKind::DtlbMiss,
            interval: SamplingInterval::Fixed(1),
            ..HpmConfig::default()
        });
        hpm.on_event(0x4000_0000, 0, &miss(), 0);
        assert_eq!(hpm.stats().events, 0, "L1 miss ignored while DTLB selected");
        let tlb = AccessOutcome {
            dtlb_miss: true,
            ..AccessOutcome::default()
        };
        hpm.on_event(0x4000_0000, 0, &tlb, 0);
        assert_eq!(hpm.stats().events, 1);
    }

    #[test]
    fn sampling_rate_tracks_interval() {
        let mut hpm = HpmSystem::new(HpmConfig {
            interval: SamplingInterval::Fixed(100),
            seed: 7,
            ..HpmConfig::default()
        });
        let mut overhead = 0;
        for i in 0..100_000u64 {
            overhead += hpm.on_event(0x4000_0000, i * 64, &miss(), i);
        }
        let s = hpm.stats();
        // Randomized low bits make the effective interval 100 ± ~128/2,
        // wait — with interval 100 the randomization replaces the low 8
        // bits, so intervals land in [1, 255]; accept a broad band.
        assert!(s.samples > 300, "got {}", s.samples);
        assert!(overhead > 0, "microcode cost charged");
    }

    #[test]
    fn poll_drains_and_clears() {
        let mut hpm = HpmSystem::new(HpmConfig {
            interval: SamplingInterval::Fixed(1),
            ..HpmConfig::default()
        });
        for i in 0..10u64 {
            hpm.on_event(0x4000_0000 + i, i, &miss(), i);
        }
        let (samples, cost) = hpm.poll(1_000_000);
        assert!(!samples.is_empty());
        assert!(cost > 0);
        let (again, _) = hpm.poll(2_000_000);
        assert!(again.is_empty(), "buffer was drained");
    }

    #[test]
    fn buffer_overflow_drops_and_interrupts() {
        let mut hpm = HpmSystem::new(HpmConfig {
            interval: SamplingInterval::Fixed(1),
            buffer_capacity: 8,
            ..HpmConfig::default()
        });
        for i in 0..100u64 {
            hpm.on_event(0x4000_0000, i, &miss(), i);
        }
        assert!(hpm.poll_due(0), "overflow interrupt forces a poll");
        let (samples, _) = hpm.poll(0);
        assert_eq!(samples.len(), 8, "buffer capacity bounds the batch");
        assert!(hpm.stats().dropped > 0);
    }

    #[test]
    fn auto_mode_adapts_interval_towards_target() {
        let mut hpm = HpmSystem::new(HpmConfig {
            interval: SamplingInterval::Auto {
                target_per_sec: 200,
            },
            ..HpmConfig::default()
        });
        let start = hpm.current_interval();
        // Feed a very high event rate: 10M events in 30M cycles (10ms).
        for i in 0..1_000_000u64 {
            hpm.on_event(0x4000_0000, i * 64, &miss(), i * 3);
        }
        hpm.poll(30_000_000);
        assert!(
            hpm.current_interval() > start,
            "high event rate must lengthen the interval: {} -> {}",
            start,
            hpm.current_interval()
        );
    }

    #[test]
    fn samples_carry_pc_and_address() {
        let mut hpm = HpmSystem::new(HpmConfig {
            interval: SamplingInterval::Fixed(1),
            ..HpmConfig::default()
        });
        hpm.on_event(0x4000_1234, 0xdead_beef, &miss(), 42);
        let (samples, _) = hpm.poll(1);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].pc, 0x4000_1234);
        assert_eq!(samples[0].data_addr, 0xdead_beef);
        assert_eq!(samples[0].event, EventKind::L1DMiss);
        assert_eq!(samples[0].epoch, 0, "unbounded cache never moves epochs");
    }

    #[test]
    fn epoch_splits_samples_around_a_code_free() {
        let mut hpm = HpmSystem::new(HpmConfig {
            interval: SamplingInterval::Fixed(1),
            ..HpmConfig::default()
        });
        hpm.on_event(0x4000_0010, 0, &miss(), 1);
        hpm.set_code_epoch(1);
        assert_eq!(hpm.code_epoch(), 1);
        hpm.on_event(0x4000_0010, 0, &miss(), 2);
        let (samples, _) = hpm.poll(10);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].epoch, 0, "captured before the free");
        assert_eq!(samples[1].epoch, 1, "captured after the free");
    }
}
