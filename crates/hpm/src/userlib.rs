//! User-space sample-transfer library.
//!
//! Models the native shared library of Section 4.1 (part 2): a
//! pre-allocated array the kernel copies samples into "directly without
//! any JNI calls", so the per-poll cost is one bulk copy. The GC cannot
//! interfere because the array is pre-allocated and no allocation happens
//! during the copy — in the simulation this is trivially true, but the
//! cost model preserves the per-sample copy charge.

use crate::pebs::{Sample, SAMPLE_BYTES};

/// Cycles per byte for the kernel→user bulk copy.
const COPY_CYCLES_PER_BYTE: u64 = 1;

/// Fixed cycles per poll (syscall + JNI crossing).
const POLL_BASE_CYCLES: u64 = 400;

/// The pre-allocated user-space transfer array.
#[derive(Debug, Clone)]
pub struct UserBuffer {
    samples: Vec<Sample>,
    capacity: usize,
}

impl UserBuffer {
    /// Pre-allocate space for `capacity` samples.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        UserBuffer {
            samples: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Receive a batch from the kernel; returns how many fit.
    pub fn fill(&mut self, mut batch: Vec<Sample>) -> usize {
        let room = self.capacity - self.samples.len();
        batch.truncate(room);
        let n = batch.len();
        self.samples.extend(batch);
        n
    }

    /// Cycles one poll that copied `n` samples costs.
    #[must_use]
    pub fn copy_cost_cycles(&self, n: usize) -> u64 {
        POLL_BASE_CYCLES + n as u64 * SAMPLE_BYTES * COPY_CYCLES_PER_BYTE
    }

    /// Take the buffered samples for processing.
    pub fn take(&mut self) -> Vec<Sample> {
        std::mem::take(&mut self.samples)
    }

    /// Buffered sample count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmopt_memsim::EventKind;

    fn sample(pc: u64) -> Sample {
        Sample {
            pc,
            data_addr: 0,
            event: EventKind::L1DMiss,
            cycles: 0,
        }
    }

    #[test]
    fn fill_respects_capacity() {
        let mut u = UserBuffer::new(3);
        let n = u.fill(vec![sample(1), sample(2), sample(3), sample(4)]);
        assert_eq!(n, 3);
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn take_empties() {
        let mut u = UserBuffer::new(4);
        u.fill(vec![sample(1)]);
        let got = u.take();
        assert_eq!(got.len(), 1);
        assert!(u.is_empty());
    }

    #[test]
    fn copy_cost_scales_with_batch() {
        let u = UserBuffer::new(8);
        assert!(u.copy_cost_cycles(10) > u.copy_cost_cycles(1));
        assert_eq!(u.copy_cost_cycles(0), 400);
    }
}
