//! User-space sample-transfer library.
//!
//! Models the native shared library of Section 4.1 (part 2): a
//! pre-allocated array the kernel copies samples into "directly without
//! any JNI calls", so the per-poll cost is one bulk copy. The GC cannot
//! interfere because the array is pre-allocated and no allocation happens
//! during the copy — in the simulation this is trivially true, but the
//! cost model preserves the per-sample copy charge.

use crate::pebs::{Sample, SAMPLE_BYTES};

/// Cycles per byte for the kernel→user bulk copy.
const COPY_CYCLES_PER_BYTE: u64 = 1;

/// Fixed cycles per poll (syscall + JNI crossing).
const POLL_BASE_CYCLES: u64 = 400;

/// The pre-allocated user-space transfer array.
#[derive(Debug, Clone)]
pub struct UserBuffer {
    samples: Vec<Sample>,
    capacity: usize,
}

impl UserBuffer {
    /// Pre-allocate space for `capacity` samples.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        UserBuffer {
            samples: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Receive a batch from the kernel (one bulk copy); returns how many
    /// fit. Samples beyond the array's capacity are discarded, matching
    /// the real library's fixed-size transfer array.
    pub fn fill(&mut self, batch: &[Sample]) -> usize {
        let room = self.capacity - self.samples.len();
        let n = room.min(batch.len());
        self.samples.extend_from_slice(&batch[..n]);
        n
    }

    /// Cycles one poll that copied `n` samples costs.
    #[must_use]
    pub fn copy_cost_cycles(&self, n: usize) -> u64 {
        POLL_BASE_CYCLES + n as u64 * SAMPLE_BYTES * COPY_CYCLES_PER_BYTE
    }

    /// Move the buffered samples into `out` (appending) and clear the
    /// array for the next poll. Both the transfer array and `out` keep
    /// their backing storage, so a steady-state poll loop performs no
    /// allocation at all.
    pub fn drain_into(&mut self, out: &mut Vec<Sample>) {
        out.extend_from_slice(&self.samples);
        self.samples.clear();
    }

    /// Buffered sample count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmopt_memsim::EventKind;

    fn sample(pc: u64) -> Sample {
        Sample {
            pc,
            data_addr: 0,
            event: EventKind::L1DMiss,
            cycles: 0,
            epoch: 0,
        }
    }

    #[test]
    fn fill_respects_capacity() {
        let mut u = UserBuffer::new(3);
        let n = u.fill(&[sample(1), sample(2), sample(3), sample(4)]);
        assert_eq!(n, 3);
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn drain_empties_without_reallocating() {
        let mut u = UserBuffer::new(4);
        u.fill(&[sample(1)]);
        let mut got = Vec::with_capacity(4);
        u.drain_into(&mut got);
        assert_eq!(got.len(), 1);
        assert!(u.is_empty());
        let ptr = got.as_ptr();
        got.clear();
        u.fill(&[sample(2), sample(3)]);
        u.drain_into(&mut got);
        assert_eq!(got.len(), 2);
        assert_eq!(got.as_ptr(), ptr, "scratch storage is reused");
    }

    #[test]
    fn copy_cost_scales_with_batch() {
        let u = UserBuffer::new(8);
        assert!(u.copy_cost_cycles(10) > u.copy_cost_cycles(1));
        assert_eq!(u.copy_cost_cycles(0), 400);
    }
}
