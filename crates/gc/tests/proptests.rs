//! Property-based tests for the heap and collectors: random object
//! graphs and mutation sequences must survive arbitrary collection
//! schedules with their data intact.

//
// These tests need the external `proptest` crate, which the offline
// build cannot fetch; enable with `--features proptest-tests` after
// adding proptest as a dev-dependency.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::{ElemKind, FieldType, Program};
use hpmopt_gc::freelist::{size_class_for, size_class_table};
use hpmopt_gc::policy::{NoCoalloc, StaticPolicy};
use hpmopt_gc::{Address, CollectorKind, Heap, HeapConfig, LOS_THRESHOLD_BYTES};

fn program() -> Program {
    let mut pb = ProgramBuilder::new();
    pb.add_class(
        "Node",
        &[
            ("a", FieldType::Ref),
            ("b", FieldType::Ref),
            ("v", FieldType::Int),
        ],
    );
    let mut m = MethodBuilder::new("main", 0, 0, false);
    m.ret();
    let id = pb.add_method(m);
    pb.set_entry(id);
    pb.finish().unwrap()
}

/// One mutation step against a growing object population.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate a node and remember it at a root slot (mod population).
    Alloc(u8),
    /// Link `roots[x].a = roots[y]`.
    LinkA(u8, u8),
    /// Link `roots[x].b = roots[y]`.
    LinkB(u8, u8),
    /// Store a value into `roots[x].v`.
    SetV(u8, i32),
    /// Drop root x (object may become garbage).
    Drop(u8),
    /// Minor collection.
    Minor,
    /// Major collection.
    Major,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<u8>().prop_map(Op::Alloc),
        3 => (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::LinkA(a, b)),
        3 => (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::LinkB(a, b)),
        3 => (any::<u8>(), any::<i32>()).prop_map(|(a, v)| Op::SetV(a, v)),
        2 => any::<u8>().prop_map(Op::Drop),
        2 => Just(Op::Minor),
        1 => Just(Op::Major),
    ]
}

fn run_ops(collector: CollectorKind, ops: &[Op], coalloc: bool) -> Result<(), TestCaseError> {
    let p = program();
    let node = p.class_by_name("Node").unwrap();
    let mut heap = Heap::new(&p, HeapConfig::small().with_collector(collector));
    let mut policy = StaticPolicy::new();
    if coalloc {
        policy.set(node, 16); // co-allocate through field `a`
    }
    // Mirror of the heap state: per root, the expected `v` value and the
    // indices its a/b fields point to.
    let mut roots: Vec<Address> = Vec::new();
    let mut expect: Vec<(i64, Option<usize>, Option<usize>)> = Vec::new();

    let mut collect = |heap: &mut Heap, roots: &mut Vec<Address>, major: bool| {
        let res = if major {
            heap.collect_major(roots, &policy)
        } else {
            heap.collect_minor(roots, &policy)
        };
        prop_assert!(res.is_ok(), "collection failed: {res:?}");
        Ok(())
    };

    for op in ops {
        match *op {
            Op::Alloc(_) if roots.len() >= 48 => {}
            Op::Alloc(_) => {
                let obj = match heap.alloc_object(node) {
                    Ok(o) => o,
                    Err(_) => {
                        collect(&mut heap, &mut roots, false)?;
                        match heap.alloc_object(node) {
                            Ok(o) => o,
                            Err(_) => {
                                collect(&mut heap, &mut roots, true)?;
                                heap.alloc_object(node).expect("heap large enough")
                            }
                        }
                    }
                };
                heap.set_field(obj, 32, roots.len() as u64, false);
                expect.push((roots.len() as i64, None, None));
                roots.push(obj);
            }
            Op::LinkA(x, y) if !roots.is_empty() => {
                let xi = x as usize % roots.len();
                let yi = y as usize % roots.len();
                heap.set_field(roots[xi], 16, roots[yi].0, true);
                expect[xi].1 = Some(yi);
            }
            Op::LinkB(x, y) if !roots.is_empty() => {
                let xi = x as usize % roots.len();
                let yi = y as usize % roots.len();
                heap.set_field(roots[xi], 24, roots[yi].0, true);
                expect[xi].2 = Some(yi);
            }
            Op::SetV(x, v) if !roots.is_empty() => {
                let xi = x as usize % roots.len();
                heap.set_field(roots[xi], 32, v as i64 as u64, false);
                expect[xi].0 = i64::from(v);
            }
            Op::Drop(x) if !roots.is_empty() => {
                let xi = x as usize % roots.len();
                roots.remove(xi);
                let (..) = expect.remove(xi);
                // Linked expectations now refer to shifted indices; fix up.
                for e in &mut expect {
                    for slot in [&mut e.1, &mut e.2] {
                        *slot = match *slot {
                            Some(i) if i == xi => None, // dangling mirror edge
                            Some(i) if i > xi => Some(i - 1),
                            other => other,
                        };
                    }
                }
            }
            Op::Minor => collect(&mut heap, &mut roots, false)?,
            Op::Major => collect(&mut heap, &mut roots, true)?,
            _ => {}
        }
    }

    // Everything reachable from roots must verify, and the mirrored data
    // must match (where the mirror still knows the edge target).
    heap.verify(&roots).map_err(|e| TestCaseError::fail(e))?;
    for (i, &(v, a, b)) in expect.iter().enumerate() {
        prop_assert_eq!(heap.get_field(roots[i], 32) as i64, v, "v of root {}", i);
        if let Some(ai) = a {
            prop_assert_eq!(Address(heap.get_field(roots[i], 16)), roots[ai]);
        }
        if let Some(bi) = b {
            prop_assert_eq!(Address(heap.get_field(roots[i], 24)), roots[bi]);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn genms_preserves_random_graphs(ops in proptest::collection::vec(op_strategy(), 1..250)) {
        run_ops(CollectorKind::GenMs, &ops, false)?;
    }

    #[test]
    fn genms_with_coalloc_preserves_random_graphs(ops in proptest::collection::vec(op_strategy(), 1..250)) {
        run_ops(CollectorKind::GenMs, &ops, true)?;
    }

    #[test]
    fn gencopy_preserves_random_graphs(ops in proptest::collection::vec(op_strategy(), 1..250)) {
        run_ops(CollectorKind::GenCopy, &ops, false)?;
    }

    /// Size classes: every size maps to the smallest class that fits.
    #[test]
    fn size_class_is_tight(bytes in 1u64..=4096) {
        let table = size_class_table();
        let class = size_class_for(bytes).expect("≤ 4096 has a class");
        prop_assert!(table[class] >= bytes);
        if class > 0 {
            prop_assert!(table[class - 1] < bytes, "not the smallest fitting class");
        }
    }

    /// Sizes beyond the LOS threshold have no class.
    #[test]
    fn oversize_has_no_class(bytes in LOS_THRESHOLD_BYTES + 1..1 << 20) {
        prop_assert!(size_class_for(bytes).is_none());
    }

    /// Array round trip through the heap for every element kind.
    #[test]
    fn array_elements_round_trip(
        len in 1u64..64,
        values in proptest::collection::vec(any::<u64>(), 64),
    ) {
        let p = program();
        let mut heap = Heap::new(&p, HeapConfig::small());
        for kind in [ElemKind::I8, ElemKind::I16, ElemKind::I32, ElemKind::I64] {
            let arr = heap.alloc_array(kind, len).unwrap();
            let mask = if kind.width() == 8 { u64::MAX } else { (1u64 << (kind.width() * 8)) - 1 };
            for i in 0..len {
                heap.array_set(arr, kind, i, values[i as usize]);
            }
            for i in 0..len {
                prop_assert_eq!(heap.array_get(arr, kind, i), values[i as usize] & mask);
            }
        }
    }
}
