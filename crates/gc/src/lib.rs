//! Generational garbage collection for the hpmopt runtime.
//!
//! Implements the two collectors the paper evaluates (Section 5.1, 6.3):
//!
//! - **GenMS** — an Appel-style variable-size bump-pointer nursery in front
//!   of a mark-and-sweep mature space managed by a segregated free-list
//!   allocator with 40 size classes up to 4 KB (the MMTk defaults the
//!   paper cites), plus a separate large-object space.
//! - **GenCopy** — the same nursery in front of a semispace-copying mature
//!   space (used as the locality-friendly but space-hungry comparison
//!   point in Figure 6).
//!
//! The paper's optimization hooks in here: during a nursery collection the
//! GenMS collector consults a [`CoallocPolicy`] and, for objects whose
//! class has a "hot" (frequently missed) reference field, promotes parent
//! and child into a *single* free-list cell so both usually land in one
//! 128-byte cache line ([`policy::CoallocPolicy::coalloc_child`]).
//!
//! The heap is a real simulated address space: objects live at concrete
//! addresses in a byte buffer, references are stored in object slots, and
//! the collectors move objects and rewrite references exactly like their
//! real counterparts. This is what makes the cache-level effects of
//! co-allocation observable by `hpmopt-memsim`.
//!
//! # Example
//!
//! ```
//! use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
//! use hpmopt_bytecode::FieldType;
//! use hpmopt_gc::{policy::NoCoalloc, Heap, HeapConfig};
//!
//! let mut pb = ProgramBuilder::new();
//! let node = pb.add_class("Node", &[("next", FieldType::Ref)]);
//! let mut m = MethodBuilder::new("main", 0, 0, false);
//! m.ret();
//! let main = pb.add_method(m);
//! pb.set_entry(main);
//! let program = pb.finish()?;
//!
//! let mut heap = Heap::new(&program, HeapConfig::small());
//! let obj = heap.alloc_object(node).unwrap();
//! let next_offset = program.field(program.field_by_name(node, "next").unwrap()).offset;
//! heap.set_field(obj, next_offset, 0, true); // Node.next = null
//! assert_eq!(heap.get_field(obj, next_offset), 0);
//!
//! // Collect: the object survives because it is a root.
//! let mut roots = vec![obj];
//! heap.collect_minor(&mut roots, &NoCoalloc).unwrap();
//! assert!(!heap.in_nursery(roots[0]), "promoted to the mature space");
//! # Ok::<(), hpmopt_bytecode::VerifyError>(())
//! ```

pub mod classtable;
pub mod freelist;
pub mod heap;
pub mod los;
pub mod nursery;
pub mod object;
pub mod policy;
pub mod raw;
pub mod remset;
pub mod semispace;
pub mod stats;

pub use classtable::ClassTable;
pub use heap::{CollectorKind, GcError, GcNeeded, Heap, HeapConfig};
pub use object::{Address, TypeTag, NULL};
pub use policy::CoallocPolicy;
pub use stats::{GcCostModel, GcStats};

/// Objects at least this large are allocated in the large-object space
/// rather than the free-list mature space (the VM-default 4 KB limit the
/// paper quotes for the 40 size classes).
pub const LOS_THRESHOLD_BYTES: u64 = 4096;

/// Number of size classes in the mature free-list allocator.
pub const SIZE_CLASS_COUNT: usize = 40;
