//! Segregated free-list allocator for the mark-and-sweep mature space.
//!
//! The paper's tenured space "is managed using a free-list allocator that
//! allocates objects into 40 different size classes up to 4 KBytes"
//! (Section 5.1). This module reproduces that design: the mature region is
//! carved into 8 KB blocks; each block is bound to one size class and
//! split into equal cells; allocation pops a free cell of the right class.
//!
//! Co-allocation interacts with size classes exactly as the paper
//! describes: a parent+child pair is allocated as *one* request of the
//! combined size, landing in a single (larger) cell — adjacent in memory —
//! whereas separate requests would typically land in different size
//! classes, i.e. different blocks, far apart.

use std::collections::HashMap;

use crate::object::Address;
use crate::{LOS_THRESHOLD_BYTES, SIZE_CLASS_COUNT};

/// Size of one allocation block.
pub const BLOCK_BYTES: u64 = 8192;

/// The 40 cell sizes: 16-byte steps to 256, 64-byte steps to 1024, then
/// 256-byte steps to 4096.
#[must_use]
pub fn size_class_table() -> [u64; SIZE_CLASS_COUNT] {
    let mut t = [0u64; SIZE_CLASS_COUNT];
    let mut i = 0;
    let mut s = 16;
    while s <= 256 {
        t[i] = s;
        i += 1;
        s += 16;
    }
    let mut s = 320;
    while s <= 1024 {
        t[i] = s;
        i += 1;
        s += 64;
    }
    let mut s = 1280;
    while s <= 4096 {
        t[i] = s;
        i += 1;
        s += 256;
    }
    debug_assert_eq!(i, SIZE_CLASS_COUNT);
    t
}

/// The smallest size class whose cells fit `bytes`, or `None` for
/// large-object-space sizes (> [`LOS_THRESHOLD_BYTES`]).
#[must_use]
pub fn size_class_for(bytes: u64) -> Option<usize> {
    if bytes > LOS_THRESHOLD_BYTES {
        return None;
    }
    let table = size_class_table();
    table.iter().position(|&s| s >= bytes)
}

/// Per-block metadata.
#[derive(Debug, Clone)]
struct Block {
    /// Cell size of this block's size class.
    cell_bytes: u64,
    /// Which cells are currently allocated.
    allocated: Vec<bool>,
}

/// The mark-and-sweep mature space.
#[derive(Debug, Clone)]
pub struct MsSpace {
    start: Address,
    end: Address,
    /// Bump cursor for carving fresh blocks.
    next_block: u64,
    /// Fully empty blocks returned by sweeps, reusable by any size class.
    free_blocks: Vec<u64>,
    /// Per-size-class free cell lists.
    free_cells: Vec<Vec<Address>>,
    /// Block index (from region start) → metadata.
    blocks: HashMap<u64, Block>,
    /// Bytes in allocated cells (cell-granular, so internal fragmentation
    /// counts as used — as it does for a real segregated-fit allocator).
    used_bytes: u64,
    size_table: [u64; SIZE_CLASS_COUNT],
}

impl MsSpace {
    /// Create an empty mature space over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics unless the region is block-aligned in length.
    #[must_use]
    pub fn new(start: Address, end: Address) -> Self {
        assert_eq!(
            (end.0 - start.0) % BLOCK_BYTES,
            0,
            "region must be whole blocks"
        );
        MsSpace {
            start,
            end,
            next_block: 0,
            free_blocks: Vec::new(),
            free_cells: vec![Vec::new(); SIZE_CLASS_COUNT],
            blocks: HashMap::new(),
            used_bytes: 0,
            size_table: size_class_table(),
        }
    }

    /// Allocate a cell for `bytes` (≤ 4 KB). Returns `None` when the space
    /// is exhausted (the caller must run a major collection).
    pub fn alloc(&mut self, bytes: u64) -> Option<Address> {
        let class = size_class_for(bytes)?;
        if self.free_cells[class].is_empty() {
            self.carve_block(class)?;
        }
        let cell = self.free_cells[class].pop()?;
        let cell_bytes = self.size_table[class];
        let (bi, ci) = self.locate(cell);
        self.blocks
            .get_mut(&bi)
            .expect("cell in carved block")
            .allocated[ci] = true;
        self.used_bytes += cell_bytes;
        Some(cell)
    }

    /// Free a previously allocated cell (sweep support).
    ///
    /// # Panics
    ///
    /// Panics if the cell is not currently allocated.
    pub fn free(&mut self, cell: Address) {
        let (bi, ci) = self.locate(cell);
        let block = self.blocks.get_mut(&bi).expect("freeing unknown cell");
        assert!(block.allocated[ci], "double free at {cell}");
        block.allocated[ci] = false;
        let class = self
            .size_table
            .iter()
            .position(|&s| s == block.cell_bytes)
            .expect("block has valid class");
        self.used_bytes -= block.cell_bytes;
        self.free_cells[class].push(cell);
    }

    fn carve_block(&mut self, class: usize) -> Option<()> {
        let bi = if let Some(bi) = self.free_blocks.pop() {
            bi
        } else {
            let base = self.start.0 + self.next_block * BLOCK_BYTES;
            if base + BLOCK_BYTES > self.end.0 {
                return None;
            }
            let bi = self.next_block;
            self.next_block += 1;
            bi
        };
        let base = self.start.0 + bi * BLOCK_BYTES;
        let cell_bytes = self.size_table[class];
        let cells = (BLOCK_BYTES / cell_bytes) as usize;
        self.blocks.insert(
            bi,
            Block {
                cell_bytes,
                allocated: vec![false; cells],
            },
        );
        for c in (0..cells).rev() {
            self.free_cells[class].push(Address(base + c as u64 * cell_bytes));
        }
        Some(())
    }

    fn locate(&self, cell: Address) -> (u64, usize) {
        debug_assert!(self.contains(cell));
        let off = cell.0 - self.start.0;
        let bi = off / BLOCK_BYTES;
        let block = &self.blocks[&bi];
        let ci = ((off % BLOCK_BYTES) / block.cell_bytes) as usize;
        (bi, ci)
    }

    /// The allocated cells, as `(address, cell_bytes)` pairs, in address
    /// order. Used by the sweep phase.
    #[must_use]
    pub fn allocated_cells(&self) -> Vec<(Address, u64)> {
        let mut out = Vec::new();
        let mut indices: Vec<&u64> = self.blocks.keys().collect();
        indices.sort();
        for &bi in indices {
            let block = &self.blocks[&bi];
            let base = self.start.0 + bi * BLOCK_BYTES;
            for (ci, &alloc) in block.allocated.iter().enumerate() {
                if alloc {
                    out.push((
                        Address(base + ci as u64 * block.cell_bytes),
                        block.cell_bytes,
                    ));
                }
            }
        }
        out
    }

    /// Whether `addr` lies in this space.
    #[must_use]
    pub fn contains(&self, addr: Address) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Bytes consumed by allocated cells (cell-granular).
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Return every fully empty block to the shared block pool so a
    /// different size class can reuse it. Called after the sweep phase:
    /// without it, a shifting size-class mix (e.g. co-allocation starting
    /// mid-run) strands mostly-empty blocks forever.
    pub fn reclaim_empty_blocks(&mut self) {
        let empty: Vec<u64> = self
            .blocks
            .iter()
            .filter(|(_, b)| b.allocated.iter().all(|&a| !a))
            .map(|(&bi, _)| bi)
            .collect();
        if empty.is_empty() {
            return;
        }
        for &bi in &empty {
            let block = self.blocks.remove(&bi).expect("listed block exists");
            let class = self
                .size_table
                .iter()
                .position(|&s| s == block.cell_bytes)
                .expect("block has valid class");
            let base = self.start.0 + bi * BLOCK_BYTES;
            let end = base + BLOCK_BYTES;
            self.free_cells[class].retain(|c| c.0 < base || c.0 >= end);
            self.free_blocks.push(bi);
        }
        self.free_blocks.sort_unstable_by(|a, b| b.cmp(a));
    }

    /// Bytes not yet committed to any block plus free cells in existing
    /// blocks. An upper bound on what can still be allocated.
    #[must_use]
    pub fn free_bytes(&self) -> u64 {
        let uncarved = self.end.0 - (self.start.0 + self.next_block * BLOCK_BYTES);
        let in_cells: u64 = self
            .free_cells
            .iter()
            .zip(self.size_table.iter())
            .map(|(cells, &s)| cells.len() as u64 * s)
            .sum();
        uncarved + in_cells + self.free_blocks.len() as u64 * BLOCK_BYTES
    }

    /// Total region size in bytes.
    #[must_use]
    pub fn region_bytes(&self) -> u64 {
        self.end.0 - self.start.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> MsSpace {
        MsSpace::new(Address(0x10000), Address(0x10000 + 16 * BLOCK_BYTES))
    }

    #[test]
    fn table_has_40_classes_up_to_4k() {
        let t = size_class_table();
        assert_eq!(t.len(), 40);
        assert_eq!(t[0], 16);
        assert_eq!(t[39], 4096);
        assert!(t.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
    }

    #[test]
    fn size_class_rounds_up() {
        assert_eq!(size_class_for(1), Some(0));
        assert_eq!(size_class_for(16), Some(0));
        assert_eq!(size_class_for(17), Some(1));
        assert_eq!(size_class_for(257), Some(16));
        assert_eq!(size_class_for(4096), Some(39));
        assert_eq!(size_class_for(4097), None);
    }

    #[test]
    fn same_class_cells_come_from_same_block() {
        let mut s = space();
        let a = s.alloc(24).unwrap();
        let b = s.alloc(24).unwrap();
        assert_eq!((a.0 - 0x10000) / BLOCK_BYTES, (b.0 - 0x10000) / BLOCK_BYTES);
        assert_eq!(b.0 - a.0, 32, "32-byte cells are adjacent");
    }

    #[test]
    fn different_classes_land_in_different_blocks() {
        let mut s = space();
        let small = s.alloc(24).unwrap();
        let large = s.alloc(600).unwrap();
        assert_ne!(
            (small.0 - 0x10000) / BLOCK_BYTES,
            (large.0 - 0x10000) / BLOCK_BYTES,
            "the fragmentation/distance effect co-allocation avoids"
        );
    }

    #[test]
    fn free_then_realloc_reuses_cell() {
        let mut s = space();
        let a = s.alloc(100).unwrap();
        s.free(a);
        let b = s.alloc(100).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn used_bytes_is_cell_granular() {
        let mut s = space();
        s.alloc(17).unwrap(); // 32-byte cell
        assert_eq!(s.used_bytes(), 32);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut s = MsSpace::new(Address(0), Address(BLOCK_BYTES));
        // One block of 4096-cells: 2 cells.
        assert!(s.alloc(4096).is_some());
        assert!(s.alloc(4096).is_some());
        assert!(s.alloc(4096).is_none());
        assert!(s.alloc(16).is_none(), "no room for another block");
    }

    #[test]
    fn allocated_cells_enumerates_live_cells() {
        let mut s = space();
        let a = s.alloc(24).unwrap();
        let b = s.alloc(24).unwrap();
        s.free(a);
        let cells = s.allocated_cells();
        assert_eq!(cells, vec![(b, 32)]);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut s = space();
        let a = s.alloc(24).unwrap();
        s.free(a);
        s.free(a);
    }

    #[test]
    fn empty_blocks_are_reusable_by_other_classes() {
        // One block's worth of space: fill with 32-byte cells, free them,
        // reclaim, then allocate a 4096-byte cell from the same storage.
        let mut s = MsSpace::new(Address(0), Address(BLOCK_BYTES));
        let cells: Vec<Address> = (0..256).map(|_| s.alloc(32).unwrap()).collect();
        assert!(s.alloc(4096).is_none(), "region exhausted");
        for c in cells {
            s.free(c);
        }
        assert!(s.alloc(4096).is_none(), "cells free but block still bound");
        s.reclaim_empty_blocks();
        assert!(
            s.alloc(4096).is_some(),
            "reclaimed block serves a new class"
        );
    }

    #[test]
    fn reclaim_keeps_partially_used_blocks() {
        let mut s = space();
        let a = s.alloc(24).unwrap();
        let b = s.alloc(24).unwrap();
        s.free(a);
        s.reclaim_empty_blocks();
        // The block still holds `b`; `a`'s cell must stay reusable.
        let a2 = s.alloc(24).unwrap();
        assert_eq!(a2, a);
        let _ = b;
    }

    #[test]
    fn free_bytes_decreases_with_allocation() {
        let mut s = space();
        let before = s.free_bytes();
        s.alloc(4096).unwrap();
        assert!(s.free_bytes() < before);
    }
}
