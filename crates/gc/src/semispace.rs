//! Semispace-copying mature space (the GenCopy configuration).
//!
//! Half the mature region is in use at any time; a major collection
//! copies the live objects to the other half (Cheney scan, performed by
//! the heap) and the halves swap roles. The halved usable capacity is the
//! space-inefficiency the paper's GenMS+co-allocation configuration is
//! designed to avoid while recovering the copying collector's locality.

use crate::object::Address;

/// Two semispaces with a bump allocator in the active one.
#[derive(Debug, Clone)]
pub struct CopySpace {
    start: Address,
    half: u64,
    /// 0 or 1: which half is active.
    active: u8,
    cursor: u64,
}

impl CopySpace {
    /// Create a copy space over `[start, end)`; each semispace gets half.
    ///
    /// # Panics
    ///
    /// Panics if the region is not 16-byte divisible into halves.
    #[must_use]
    pub fn new(start: Address, end: Address) -> Self {
        let len = end.0 - start.0;
        assert_eq!(len % 16, 0, "region must split into aligned halves");
        CopySpace {
            start,
            half: len / 2,
            active: 0,
            cursor: 0,
        }
    }

    fn active_base(&self) -> u64 {
        self.start.0 + u64::from(self.active) * self.half
    }

    fn inactive_base(&self) -> u64 {
        self.start.0 + u64::from(1 - self.active) * self.half
    }

    /// Bump-allocate in the active semispace.
    pub fn alloc(&mut self, size: u64) -> Option<Address> {
        debug_assert_eq!(size % 8, 0);
        if self.cursor + size > self.half {
            return None;
        }
        let a = Address(self.active_base() + self.cursor);
        self.cursor += size;
        Some(a)
    }

    /// Begin a major collection: returns a bump cursor for the inactive
    /// (to-) space. Finish with [`CopySpace::finish_copy`].
    #[must_use]
    pub fn begin_copy(&self) -> ToSpaceCursor {
        ToSpaceCursor {
            base: self.inactive_base(),
            offset: 0,
            limit: self.half,
        }
    }

    /// Complete a major collection: swap semispaces, adopting the bytes
    /// `copied` into the new active space.
    pub fn finish_copy(&mut self, copied: &ToSpaceCursor) {
        self.active = 1 - self.active;
        self.cursor = copied.offset;
    }

    /// Whether `addr` is in the active semispace.
    #[must_use]
    pub fn in_active(&self, addr: Address) -> bool {
        let b = self.active_base();
        addr.0 >= b && addr.0 < b + self.half
    }

    /// Whether `addr` is anywhere in the region.
    #[must_use]
    pub fn contains(&self, addr: Address) -> bool {
        addr.0 >= self.start.0 && addr.0 < self.start.0 + 2 * self.half
    }

    /// Bytes used in the active semispace.
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        self.cursor
    }

    /// Bytes still free in the active semispace.
    #[must_use]
    pub fn free_bytes(&self) -> u64 {
        self.half - self.cursor
    }

    /// Usable capacity (one semispace).
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.half
    }
}

/// Bump cursor over the to-space during a major copy.
#[derive(Debug, Clone)]
pub struct ToSpaceCursor {
    base: u64,
    offset: u64,
    limit: u64,
}

impl ToSpaceCursor {
    /// Allocate `size` bytes in to-space.
    pub fn alloc(&mut self, size: u64) -> Option<Address> {
        if self.offset + size > self.limit {
            return None;
        }
        let a = Address(self.base + self.offset);
        self.offset += size;
        Some(a)
    }

    /// Bytes copied so far.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_fills_active_half() {
        let mut s = CopySpace::new(Address(0x1000), Address(0x1000 + 128));
        assert_eq!(s.capacity(), 64);
        let a = s.alloc(32).unwrap();
        assert_eq!(a, Address(0x1000));
        assert!(s.alloc(32).is_some());
        assert!(s.alloc(8).is_none(), "semispace full");
    }

    #[test]
    fn copy_swaps_halves() {
        let mut s = CopySpace::new(Address(0x1000), Address(0x1000 + 128));
        s.alloc(64).unwrap();
        let mut to = s.begin_copy();
        let survivor = to.alloc(16).unwrap();
        assert_eq!(survivor, Address(0x1000 + 64), "to-space is the other half");
        s.finish_copy(&to);
        assert_eq!(s.used_bytes(), 16);
        assert!(s.in_active(survivor));
        let next = s.alloc(8).unwrap();
        assert_eq!(next, Address(0x1000 + 64 + 16));
    }

    #[test]
    fn to_space_respects_limit() {
        let s = CopySpace::new(Address(0), Address(64));
        let mut to = s.begin_copy();
        assert!(to.alloc(32).is_some());
        assert!(to.alloc(8).is_none());
    }

    #[test]
    fn contains_covers_both_halves() {
        let s = CopySpace::new(Address(0x1000), Address(0x1000 + 128));
        assert!(s.contains(Address(0x1000)));
        assert!(s.contains(Address(0x1000 + 127)));
        assert!(!s.contains(Address(0x1000 + 128)));
    }
}
