//! Per-class layout information snapshotted for the collector.
//!
//! The collector must trace objects without holding a borrow of the whole
//! [`hpmopt_bytecode::Program`], so layout facts (instance size, which
//! slots are references) are copied into a compact table when the heap is
//! created.

use hpmopt_bytecode::{ClassId, Program, OBJECT_HEADER_BYTES};

/// Layout of one class as the collector sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassLayout {
    /// Total instance size in bytes, header included.
    pub size: u64,
    /// Byte offsets (from object start) of the reference fields.
    pub ref_offsets: Vec<u64>,
    /// Class name (diagnostics only).
    pub name: String,
}

/// Immutable layout table indexed by [`ClassId`].
#[derive(Debug, Clone, Default)]
pub struct ClassTable {
    classes: Vec<ClassLayout>,
}

impl ClassTable {
    /// Snapshot the layouts of every class in `program`.
    #[must_use]
    pub fn new(program: &Program) -> Self {
        let classes = program
            .classes()
            .iter()
            .map(|c| ClassLayout {
                size: c.instance_size(),
                ref_offsets: c
                    .ref_field_indices()
                    .map(|i| OBJECT_HEADER_BYTES + 8 * i as u64)
                    .collect(),
                name: c.name().to_string(),
            })
            .collect();
        ClassTable { classes }
    }

    /// Layout of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is from a different program.
    #[must_use]
    pub fn layout(&self, class: ClassId) -> &ClassLayout {
        &self.classes[class.0 as usize]
    }

    /// Number of classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the program declared no classes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
    use hpmopt_bytecode::FieldType;

    #[test]
    fn snapshots_sizes_and_ref_offsets() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class(
            "Pair",
            &[
                ("a", FieldType::Ref),
                ("n", FieldType::Int),
                ("b", FieldType::Ref),
            ],
        );
        let mut m = MethodBuilder::new("main", 0, 0, false);
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().unwrap();

        let t = ClassTable::new(&p);
        assert_eq!(t.len(), 1);
        let l = t.layout(c);
        assert_eq!(l.size, 16 + 24);
        assert_eq!(l.ref_offsets, vec![16, 32]);
        assert_eq!(l.name, "Pair");
    }
}
