//! Collection statistics and the GC cycle-cost model.

/// Cycle costs charged for collector work.
///
/// The simulation charges GC work to the global cycle clock through this
/// model instead of playing collector traffic through the cache simulator
/// (whose state is simply flushed after a collection — a full-heap walk
/// evicts everything anyway). Only relative magnitudes matter; the
/// defaults make copying collections more expensive per byte than
/// mark-sweep, reproducing GenCopy's higher GC cost at small heaps
/// (Figure 6, [9]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcCostModel {
    /// Fixed cost of any collection (stack scan, bookkeeping).
    pub collection_base: u64,
    /// Per root slot examined.
    pub per_root: u64,
    /// Per object promoted/copied.
    pub per_object: u64,
    /// Per byte copied (minor promotion and GenCopy major).
    pub per_copied_byte: u64,
    /// Per object visited in a mark phase.
    pub per_marked_object: u64,
    /// Per cell examined in a sweep phase.
    pub per_swept_cell: u64,
}

impl Default for GcCostModel {
    fn default() -> Self {
        GcCostModel {
            collection_base: 50_000,
            per_root: 10,
            per_object: 40,
            per_copied_byte: 1,
            per_marked_object: 25,
            per_swept_cell: 8,
        }
    }
}

/// Counters accumulated over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Nursery (minor) collections performed.
    pub minor_collections: u64,
    /// Full-heap (major) collections performed.
    pub major_collections: u64,
    /// Objects promoted to the mature space.
    pub objects_promoted: u64,
    /// Bytes promoted to the mature space.
    pub bytes_promoted: u64,
    /// Objects placed by the co-allocation optimization (children
    /// co-located with their parent).
    pub objects_coallocated: u64,
    /// Bytes moved by co-allocating promotions (parent + child pairs).
    pub bytes_coallocated: u64,
    /// Objects allocated, all spaces.
    pub objects_allocated: u64,
    /// Bytes allocated, all spaces.
    pub bytes_allocated: u64,
    /// Large objects allocated.
    pub large_objects: u64,
    /// Cycles charged for collector work.
    pub gc_cycles: u64,
}

impl GcStats {
    /// Total collections of either kind.
    #[must_use]
    pub fn total_collections(&self) -> u64 {
        self.minor_collections + self.major_collections
    }

    /// Average bytes per promoted object (0 when nothing was promoted).
    #[must_use]
    pub fn avg_promoted_size(&self) -> f64 {
        if self.objects_promoted == 0 {
            0.0
        } else {
            self.bytes_promoted as f64 / self.objects_promoted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_make_copying_costly() {
        let c = GcCostModel::default();
        assert!(c.per_copied_byte >= 1);
        assert!(c.per_object > c.per_swept_cell);
    }

    #[test]
    fn stats_helpers() {
        let s = GcStats {
            minor_collections: 3,
            major_collections: 1,
            objects_promoted: 4,
            bytes_promoted: 128,
            ..GcStats::default()
        };
        assert_eq!(s.total_collections(), 4);
        assert!((s.avg_promoted_size() - 32.0).abs() < f64::EPSILON);
        assert_eq!(GcStats::default().avg_promoted_size(), 0.0);
    }
}
