//! Remembered set for mature→nursery references.
//!
//! The write barrier records the address of every mature-space slot that
//! is assigned a nursery reference; a minor collection treats those slots
//! as additional roots.

use std::collections::HashSet;

use crate::object::Address;

/// A deduplicating remembered set of slot addresses.
#[derive(Debug, Clone, Default)]
pub struct RememberedSet {
    slots: HashSet<u64>,
}

impl RememberedSet {
    /// Create an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a slot (idempotent).
    pub fn record(&mut self, slot: Address) {
        self.slots.insert(slot.0);
    }

    /// Drain the recorded slots in sorted order (determinism matters: the
    /// scan order affects promotion order and therefore addresses).
    pub fn drain_sorted(&mut self) -> Vec<Address> {
        let mut v: Vec<u64> = self.slots.drain().collect();
        v.sort_unstable();
        v.into_iter().map(Address).collect()
    }

    /// Number of recorded slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Forget everything (after a major collection nothing in the mature
    /// space points at the empty nursery).
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_deduplicate() {
        let mut r = RememberedSet::new();
        r.record(Address(16));
        r.record(Address(16));
        r.record(Address(8));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn drain_is_sorted_and_empties() {
        let mut r = RememberedSet::new();
        r.record(Address(24));
        r.record(Address(8));
        r.record(Address(16));
        assert_eq!(r.drain_sorted(), vec![Address(8), Address(16), Address(24)]);
        assert!(r.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut r = RememberedSet::new();
        r.record(Address(8));
        r.clear();
        assert!(r.is_empty());
    }
}
