//! Large-object space.
//!
//! Objects larger than the free-list limit (4 KB) are "handled in a
//! separate portion of the heap" (Section 5.1). This space uses first-fit
//! allocation over a coalescing free-range list; large objects never
//! move.

use std::collections::HashMap;

use crate::object::Address;

/// First-fit, non-moving large-object space.
#[derive(Debug, Clone)]
pub struct LargeObjectSpace {
    start: Address,
    end: Address,
    /// Sorted, coalesced free ranges as `(start, len)`.
    free: Vec<(u64, u64)>,
    /// Allocated objects: address → size.
    allocated: HashMap<u64, u64>,
    used_bytes: u64,
}

impl LargeObjectSpace {
    /// Create an empty space over `[start, end)`.
    #[must_use]
    pub fn new(start: Address, end: Address) -> Self {
        LargeObjectSpace {
            start,
            end,
            free: vec![(start.0, end.0 - start.0)],
            allocated: HashMap::new(),
            used_bytes: 0,
        }
    }

    /// Allocate `size` bytes (8-byte aligned) first-fit; `None` when no
    /// free range is large enough.
    pub fn alloc(&mut self, size: u64) -> Option<Address> {
        debug_assert_eq!(size % 8, 0);
        let pos = self.free.iter().position(|&(_, len)| len >= size)?;
        let (rs, rl) = self.free[pos];
        if rl == size {
            self.free.remove(pos);
        } else {
            self.free[pos] = (rs + size, rl - size);
        }
        self.allocated.insert(rs, size);
        self.used_bytes += size;
        Some(Address(rs))
    }

    /// Free a previously allocated object, coalescing adjacent ranges.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not an allocated large object.
    pub fn free(&mut self, addr: Address) {
        let size = self
            .allocated
            .remove(&addr.0)
            .expect("freeing unknown large object");
        self.used_bytes -= size;
        let idx = self.free.partition_point(|&(s, _)| s < addr.0);
        self.free.insert(idx, (addr.0, size));
        // Coalesce with successor, then predecessor.
        if idx + 1 < self.free.len() && self.free[idx].0 + self.free[idx].1 == self.free[idx + 1].0
        {
            self.free[idx].1 += self.free[idx + 1].1;
            self.free.remove(idx + 1);
        }
        if idx > 0 && self.free[idx - 1].0 + self.free[idx - 1].1 == self.free[idx].0 {
            self.free[idx - 1].1 += self.free[idx].1;
            self.free.remove(idx);
        }
    }

    /// Addresses of all allocated objects (order unspecified).
    #[must_use]
    pub fn allocated_objects(&self) -> Vec<Address> {
        self.allocated.keys().map(|&a| Address(a)).collect()
    }

    /// Whether `addr` is inside the space.
    #[must_use]
    pub fn contains(&self, addr: Address) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Bytes currently allocated.
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Total capacity.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.end.0 - self.start.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn los() -> LargeObjectSpace {
        LargeObjectSpace::new(Address(0x10000), Address(0x10000 + 64 * 1024))
    }

    #[test]
    fn first_fit_allocates_from_start() {
        let mut s = los();
        assert_eq!(s.alloc(8192), Some(Address(0x10000)));
        assert_eq!(s.alloc(8192), Some(Address(0x12000)));
        assert_eq!(s.used_bytes(), 16384);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut s = los();
        assert!(s.alloc(64 * 1024).is_some());
        assert!(s.alloc(8).is_none());
    }

    #[test]
    fn free_coalesces_neighbours() {
        let mut s = los();
        let a = s.alloc(8192).unwrap();
        let b = s.alloc(8192).unwrap();
        let c = s.alloc(8192).unwrap();
        s.free(a);
        s.free(c);
        s.free(b); // middle free must merge all three with the tail
        assert_eq!(s.free.len(), 1);
        assert_eq!(s.free[0], (0x10000, 64 * 1024));
        assert_eq!(s.used_bytes(), 0);
    }

    #[test]
    fn fragmented_space_rejects_large_requests() {
        let mut s = los();
        let chunks: Vec<_> = (0..8).map(|_| s.alloc(8192).unwrap()).collect();
        // Free every other chunk: 32 KB free but max contiguous 8 KB.
        for c in chunks.iter().step_by(2) {
            s.free(*c);
        }
        assert!(s.alloc(16384).is_none());
        assert!(s.alloc(8192).is_some());
    }

    #[test]
    fn allocated_objects_tracks_live_set() {
        let mut s = los();
        let a = s.alloc(8192).unwrap();
        let b = s.alloc(8192).unwrap();
        s.free(a);
        assert_eq!(s.allocated_objects(), vec![b]);
    }
}
