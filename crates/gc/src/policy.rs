//! Co-allocation policy interface.
//!
//! The collector asks the policy, per object it promotes, whether the
//! object's class has a child reference field worth co-allocating. The
//! real implementation lives in `hpmopt-core` (driven by per-field
//! cache-miss counts from the monitoring infrastructure); this crate only
//! defines the interface plus trivial implementations for tests and
//! baselines.

use std::collections::HashMap;

use hpmopt_bytecode::ClassId;

/// A decision to co-allocate the child referenced by one field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoallocDecision {
    /// Byte offset (from the parent object start) of the reference field
    /// whose target should be placed right after the parent.
    pub field_offset: u64,
    /// Padding inserted between parent and child.
    ///
    /// Normally 0; the Figure 8 experiment injects one cache line (128
    /// bytes) of empty space to deliberately undo the locality benefit and
    /// exercise the feedback loop.
    pub gap_bytes: u64,
}

/// Consulted by the GenMS nursery trace for every promoted object.
pub trait CoallocPolicy {
    /// The child field to co-allocate for instances of `class`, or `None`
    /// to promote normally.
    fn coalloc_child(&self, class: ClassId) -> Option<CoallocDecision>;
}

/// Never co-allocates (the paper's baseline configuration).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCoalloc;

impl CoallocPolicy for NoCoalloc {
    fn coalloc_child(&self, _class: ClassId) -> Option<CoallocDecision> {
        None
    }
}

/// A fixed table of decisions, for tests and hand-built experiments.
#[derive(Debug, Clone, Default)]
pub struct StaticPolicy {
    decisions: HashMap<ClassId, CoallocDecision>,
}

impl StaticPolicy {
    /// Create an empty policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Always co-allocate the child at `field_offset` for `class`.
    pub fn set(&mut self, class: ClassId, field_offset: u64) -> &mut Self {
        self.decisions.insert(
            class,
            CoallocDecision {
                field_offset,
                gap_bytes: 0,
            },
        );
        self
    }

    /// Like [`StaticPolicy::set`] with explicit padding (Figure 8).
    pub fn set_with_gap(&mut self, class: ClassId, field_offset: u64, gap_bytes: u64) -> &mut Self {
        self.decisions.insert(
            class,
            CoallocDecision {
                field_offset,
                gap_bytes,
            },
        );
        self
    }

    /// Remove the decision for `class`.
    pub fn unset(&mut self, class: ClassId) -> &mut Self {
        self.decisions.remove(&class);
        self
    }
}

impl CoallocPolicy for StaticPolicy {
    fn coalloc_child(&self, class: ClassId) -> Option<CoallocDecision> {
        self.decisions.get(&class).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_coalloc_always_declines() {
        assert_eq!(NoCoalloc.coalloc_child(ClassId(3)), None);
    }

    #[test]
    fn static_policy_round_trips() {
        let mut p = StaticPolicy::new();
        p.set(ClassId(1), 16);
        p.set_with_gap(ClassId(2), 24, 128);
        assert_eq!(
            p.coalloc_child(ClassId(1)),
            Some(CoallocDecision {
                field_offset: 16,
                gap_bytes: 0
            })
        );
        assert_eq!(p.coalloc_child(ClassId(2)).unwrap().gap_bytes, 128);
        assert_eq!(p.coalloc_child(ClassId(9)), None);
        p.unset(ClassId(1));
        assert_eq!(p.coalloc_child(ClassId(1)), None);
    }
}
