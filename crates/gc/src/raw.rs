//! The raw simulated address space backing the heap.
//!
//! A [`RawHeap`] is a byte buffer mapped at a virtual base address. All
//! object addresses handed out by the collector are virtual addresses into
//! this buffer, which is what lets `hpmopt-memsim` observe realistic cache
//! behaviour: two objects at adjacent virtual addresses really do share a
//! cache line.

use crate::object::Address;

/// Virtual base address of the heap. Non-zero so that the null reference
/// (address 0) is never a valid object address.
pub const HEAP_BASE: u64 = 0x1000_0000;

/// A flat byte buffer addressed by virtual [`Address`]es.
#[derive(Debug, Clone)]
pub struct RawHeap {
    base: u64,
    bytes: Vec<u8>,
}

impl RawHeap {
    /// Allocate a raw heap of `size` bytes at [`HEAP_BASE`].
    #[must_use]
    pub fn new(size: u64) -> Self {
        RawHeap {
            base: HEAP_BASE,
            bytes: vec![0; size as usize],
        }
    }

    /// The lowest valid address.
    #[must_use]
    pub fn base(&self) -> Address {
        Address(self.base)
    }

    /// One past the highest valid address.
    #[must_use]
    pub fn end(&self) -> Address {
        Address(self.base + self.bytes.len() as u64)
    }

    /// Whether `addr` lies within the heap.
    #[must_use]
    pub fn contains(&self, addr: Address) -> bool {
        addr.0 >= self.base && addr.0 < self.base + self.bytes.len() as u64
    }

    #[inline]
    fn index(&self, addr: Address, len: u64) -> usize {
        debug_assert!(
            addr.0 >= self.base && addr.0 + len <= self.base + self.bytes.len() as u64,
            "heap access out of bounds: {addr:?}+{len}"
        );
        (addr.0 - self.base) as usize
    }

    /// Read a 64-bit word.
    #[inline]
    #[must_use]
    pub fn read_u64(&self, addr: Address) -> u64 {
        let i = self.index(addr, 8);
        u64::from_le_bytes(self.bytes[i..i + 8].try_into().unwrap())
    }

    /// Write a 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, addr: Address, v: u64) {
        let i = self.index(addr, 8);
        self.bytes[i..i + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a 32-bit word.
    #[inline]
    #[must_use]
    pub fn read_u32(&self, addr: Address) -> u32 {
        let i = self.index(addr, 4);
        u32::from_le_bytes(self.bytes[i..i + 4].try_into().unwrap())
    }

    /// Write a 32-bit word.
    #[inline]
    pub fn write_u32(&mut self, addr: Address, v: u32) {
        let i = self.index(addr, 4);
        self.bytes[i..i + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Read an unsigned integer of `width` ∈ {1, 2, 4, 8} bytes.
    #[inline]
    #[must_use]
    pub fn read_uint(&self, addr: Address, width: u64) -> u64 {
        let i = self.index(addr, width);
        match width {
            1 => u64::from(self.bytes[i]),
            2 => u64::from(u16::from_le_bytes(self.bytes[i..i + 2].try_into().unwrap())),
            4 => u64::from(u32::from_le_bytes(self.bytes[i..i + 4].try_into().unwrap())),
            8 => self.read_u64(addr),
            _ => panic!("unsupported access width {width}"),
        }
    }

    /// Write an unsigned integer of `width` ∈ {1, 2, 4, 8} bytes
    /// (truncating `v`).
    #[inline]
    pub fn write_uint(&mut self, addr: Address, width: u64, v: u64) {
        let i = self.index(addr, width);
        match width {
            1 => self.bytes[i] = v as u8,
            2 => self.bytes[i..i + 2].copy_from_slice(&(v as u16).to_le_bytes()),
            4 => self.bytes[i..i + 4].copy_from_slice(&(v as u32).to_le_bytes()),
            8 => self.write_u64(addr, v),
            _ => panic!("unsupported access width {width}"),
        }
    }

    /// Copy `len` bytes from `src` to `dst` (regions may not overlap).
    pub fn copy(&mut self, src: Address, dst: Address, len: u64) {
        let si = self.index(src, len);
        let di = self.index(dst, len);
        self.bytes.copy_within(si..si + len as usize, di);
    }

    /// Zero `len` bytes starting at `addr` (reused cells must not leak
    /// stale references into freshly allocated objects).
    pub fn zero(&mut self, addr: Address, len: u64) {
        let i = self.index(addr, len);
        self.bytes[i..i + len as usize].fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_widths() {
        let mut h = RawHeap::new(4096);
        let a = h.base();
        for (w, v) in [
            (1u64, 0xabu64),
            (2, 0xbeef),
            (4, 0xdead_beef),
            (8, 0x0123_4567_89ab_cdef),
        ] {
            h.write_uint(a, w, v);
            assert_eq!(h.read_uint(a, w), v, "width {w}");
        }
    }

    #[test]
    fn truncates_narrow_writes() {
        let mut h = RawHeap::new(64);
        h.write_uint(h.base(), 1, 0x1ff);
        assert_eq!(h.read_uint(h.base(), 1), 0xff);
    }

    #[test]
    fn copy_moves_bytes() {
        let mut h = RawHeap::new(256);
        let a = h.base();
        h.write_u64(a, 42);
        h.copy(a, Address(a.0 + 64), 8);
        assert_eq!(h.read_u64(Address(a.0 + 64)), 42);
    }

    #[test]
    fn zero_clears() {
        let mut h = RawHeap::new(64);
        h.write_u64(h.base(), u64::MAX);
        h.zero(h.base(), 8);
        assert_eq!(h.read_u64(h.base()), 0);
    }

    #[test]
    fn contains_respects_bounds() {
        let h = RawHeap::new(64);
        assert!(h.contains(h.base()));
        assert!(!h.contains(Address(h.base().0 + 64)));
        assert!(!h.contains(Address(0)));
    }
}
