//! Bump-pointer nursery.
//!
//! Young objects are allocated by incrementing a cursor through the
//! nursery region. The nursery's *logical* capacity is variable
//! (Appel-style, [`crate::heap::Heap`] shrinks it as the mature space
//! fills) while its physical region is fixed.

use crate::object::Address;

/// A bump-pointer allocation region.
#[derive(Debug, Clone)]
pub struct Nursery {
    start: Address,
    physical_end: Address,
    /// Current logical limit (≤ `physical_end`).
    limit: Address,
    cursor: Address,
}

impl Nursery {
    /// Create a nursery over `[start, end)`.
    #[must_use]
    pub fn new(start: Address, end: Address) -> Self {
        Nursery {
            start,
            physical_end: end,
            limit: end,
            cursor: start,
        }
    }

    /// Bump-allocate `size` bytes (8-byte aligned); `None` when the
    /// nursery is full, which must trigger a minor collection.
    pub fn alloc(&mut self, size: u64) -> Option<Address> {
        debug_assert_eq!(size % 8, 0, "allocation sizes are word-aligned");
        let next = self.cursor.0.checked_add(size)?;
        if next > self.limit.0 {
            return None;
        }
        let obj = self.cursor;
        self.cursor = Address(next);
        Some(obj)
    }

    /// Reset after a minor collection (everything was promoted).
    pub fn reset(&mut self) {
        self.cursor = self.start;
    }

    /// Shrink or grow the logical capacity (Appel-style sizing). Values
    /// are clamped to the physical region; the cursor is never moved.
    pub fn set_capacity(&mut self, bytes: u64) {
        let end = (self.start.0 + bytes).min(self.physical_end.0);
        self.limit = Address(end.max(self.cursor.0));
    }

    /// Whether `addr` lies in the nursery region.
    #[must_use]
    pub fn contains(&self, addr: Address) -> bool {
        addr >= self.start && addr < self.physical_end
    }

    /// Bytes currently allocated.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.cursor.0 - self.start.0
    }

    /// Current logical capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.limit.0 - self.start.0
    }

    /// Start of the region.
    #[must_use]
    pub fn start(&self) -> Address {
        self.start
    }

    /// Current allocation cursor (objects live in `[start, cursor)`).
    #[must_use]
    pub fn cursor(&self) -> Address {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nursery() -> Nursery {
        Nursery::new(Address(0x1000), Address(0x2000))
    }

    #[test]
    fn bump_allocates_consecutively() {
        let mut n = nursery();
        let a = n.alloc(32).unwrap();
        let b = n.alloc(16).unwrap();
        assert_eq!(a, Address(0x1000));
        assert_eq!(b, Address(0x1020));
        assert_eq!(n.used(), 48);
    }

    #[test]
    fn full_nursery_returns_none() {
        let mut n = nursery();
        assert!(n.alloc(4096).is_some());
        assert!(n.alloc(8).is_none());
    }

    #[test]
    fn reset_reclaims_everything() {
        let mut n = nursery();
        n.alloc(4096).unwrap();
        n.reset();
        assert_eq!(n.used(), 0);
        assert!(n.alloc(4096).is_some());
    }

    #[test]
    fn capacity_shrinks_logically() {
        let mut n = nursery();
        n.set_capacity(64);
        assert!(n.alloc(64).is_some());
        assert!(n.alloc(8).is_none(), "logical limit hit");
        n.set_capacity(4096);
        assert!(n.alloc(8).is_some(), "capacity restored");
    }

    #[test]
    fn capacity_clamps_to_physical_region() {
        let mut n = nursery();
        n.set_capacity(1 << 40);
        assert_eq!(n.capacity(), 0x1000);
    }

    #[test]
    fn contains_covers_physical_region() {
        let n = nursery();
        assert!(n.contains(Address(0x1000)));
        assert!(n.contains(Address(0x1fff)));
        assert!(!n.contains(Address(0x2000)));
        assert!(!n.contains(Address(0xfff)));
    }
}
