//! The heap facade: allocation, field access with write barrier, and the
//! minor/major collection algorithms for both collector configurations.

use std::collections::{HashMap, VecDeque};

use hpmopt_bytecode::{ClassId, ElemKind, Program, OBJECT_HEADER_BYTES};

use crate::classtable::ClassTable;
use crate::freelist::{MsSpace, BLOCK_BYTES};
use crate::los::LargeObjectSpace;
use crate::nursery::Nursery;
use crate::object::{flags, Address, ObjectModel, TypeTag};
use crate::policy::CoallocPolicy;
use crate::raw::RawHeap;
use crate::remset::RememberedSet;
use crate::semispace::CopySpace;
use crate::stats::{GcCostModel, GcStats};
use crate::LOS_THRESHOLD_BYTES;

/// Which mature-space policy the heap uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CollectorKind {
    /// Generational mark-and-sweep: free-list mature space (the paper's
    /// baseline and optimization target).
    #[default]
    GenMs,
    /// Generational copying: semispace mature space (Figure 6 comparison).
    GenCopy,
}

impl std::fmt::Display for CollectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectorKind::GenMs => f.write_str("GenMS"),
            CollectorKind::GenCopy => f.write_str("GenCopy"),
        }
    }
}

/// Heap sizing and collector configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapConfig {
    /// Mature-space region size in bytes (the "heap size" the evaluation
    /// varies between 1× and 4× of each program's minimum).
    pub heap_bytes: u64,
    /// Physical nursery size.
    pub nursery_bytes: u64,
    /// Large-object-space size.
    pub los_bytes: u64,
    /// Mature-space policy.
    pub collector: CollectorKind,
    /// Cycle costs charged for collections.
    pub cost: GcCostModel,
    /// Fault injection: skip zeroing of freshly allocated objects and
    /// arrays. Recreates the historical stale-nursery-reference bug (see
    /// DESIGN.md "Calibration notes") so the stress engine's oracles can
    /// prove they detect it. Never enable outside tests.
    pub fault_skip_zeroing: bool,
}

impl HeapConfig {
    /// A small configuration for unit tests (512 KB mature, 64 KB nursery).
    #[must_use]
    pub fn small() -> Self {
        HeapConfig {
            heap_bytes: 512 * 1024,
            nursery_bytes: 64 * 1024,
            los_bytes: 1024 * 1024,
            collector: CollectorKind::GenMs,
            cost: GcCostModel::default(),
            fault_skip_zeroing: false,
        }
    }

    /// A default-sized configuration (16 MB mature, 4 MB nursery).
    #[must_use]
    pub fn standard() -> Self {
        HeapConfig {
            heap_bytes: 16 * 1024 * 1024,
            nursery_bytes: 4 * 1024 * 1024,
            los_bytes: 64 * 1024 * 1024,
            collector: CollectorKind::GenMs,
            cost: GcCostModel::default(),
            fault_skip_zeroing: false,
        }
    }

    /// Switch the collector.
    #[must_use]
    pub fn with_collector(mut self, collector: CollectorKind) -> Self {
        self.collector = collector;
        self
    }

    /// Scale the mature budget (heap-size sweeps).
    #[must_use]
    pub fn with_heap_bytes(mut self, bytes: u64) -> Self {
        self.heap_bytes = bytes;
        self
    }

    fn rounded_heap_bytes(&self) -> u64 {
        self.heap_bytes.div_ceil(BLOCK_BYTES) * BLOCK_BYTES
    }
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig::standard()
    }
}

/// Returned by allocation when a collection must run first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcNeeded {
    /// The nursery is full: run a minor collection.
    Minor,
    /// The mature or large-object space is full: run a major collection.
    Major,
}

/// Fatal heap errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcError {
    /// Live data exceeds the configured heap size.
    OutOfMemory,
}

impl std::fmt::Display for GcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GcError::OutOfMemory => f.write_str("live data exceeds the configured heap size"),
        }
    }
}

impl std::error::Error for GcError {}

// One variant exists per heap for its whole lifetime, so the size
// skew between the spaces is irrelevant and boxing would only add an
// indirection to every mature-space access.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum Mature {
    Ms(MsSpace),
    Copy(CopySpace),
}

/// The generational heap.
///
/// See the [crate-level documentation](crate) for the design overview.
#[derive(Debug, Clone)]
pub struct Heap {
    raw: RawHeap,
    classes: ClassTable,
    nursery: Nursery,
    mature: Mature,
    los: LargeObjectSpace,
    remset: RememberedSet,
    stats: GcStats,
    cost: GcCostModel,
    fault_skip_zeroing: bool,
    /// GenMS cells holding a co-allocated pair: cell (parent) address →
    /// child address within the same cell. Needed by the sweep to keep a
    /// cell whose parent died but whose child is still live.
    coalloc_children: HashMap<u64, Address>,
    mature_start: Address,
}

impl Heap {
    /// Create a heap for `program` with the given configuration.
    #[must_use]
    pub fn new(program: &Program, config: HeapConfig) -> Self {
        let heap_bytes = config.rounded_heap_bytes();
        let total = config.nursery_bytes + heap_bytes + config.los_bytes;
        let raw = RawHeap::new(total);
        let nursery_start = raw.base();
        let mature_start = nursery_start.offset(config.nursery_bytes);
        let los_start = mature_start.offset(heap_bytes);
        let los_end = los_start.offset(config.los_bytes);

        let mature = match config.collector {
            CollectorKind::GenMs => Mature::Ms(MsSpace::new(mature_start, los_start)),
            CollectorKind::GenCopy => Mature::Copy(CopySpace::new(mature_start, los_start)),
        };
        Heap {
            raw,
            classes: ClassTable::new(program),
            nursery: Nursery::new(nursery_start, mature_start),
            mature,
            los: LargeObjectSpace::new(los_start, los_end),
            remset: RememberedSet::new(),
            stats: GcStats::default(),
            cost: config.cost,
            fault_skip_zeroing: config.fault_skip_zeroing,
            coalloc_children: HashMap::new(),
            mature_start,
        }
    }

    // ----- allocation --------------------------------------------------

    /// Allocate an instance of `class`.
    ///
    /// # Errors
    ///
    /// Returns [`GcNeeded`] when a collection must run before retrying.
    pub fn alloc_object(&mut self, class: ClassId) -> Result<Address, GcNeeded> {
        let size = self.classes.layout(class).size;
        let obj = self.alloc_raw(size)?;
        ObjectModel::init_header(&mut self.raw, obj, TypeTag::Class(class), size, 0);
        // Fields must be zeroed (Java semantics): the nursery recycles its
        // region, and a collection between this allocation and the
        // program's own field initialization would otherwise trace stale
        // reference bytes left by the previous generation.
        if !self.fault_skip_zeroing {
            self.raw
                .zero(obj.offset(OBJECT_HEADER_BYTES), size - OBJECT_HEADER_BYTES);
        }
        self.stats.objects_allocated += 1;
        self.stats.bytes_allocated += size;
        Ok(obj)
    }

    /// Allocate an array of `len` elements of `kind` (zero-initialized).
    ///
    /// # Errors
    ///
    /// Returns [`GcNeeded`] when a collection must run before retrying.
    pub fn alloc_array(&mut self, kind: ElemKind, len: u64) -> Result<Address, GcNeeded> {
        let size = ObjectModel::array_size(kind, len);
        let obj = self.alloc_raw(size)?;
        ObjectModel::init_header(&mut self.raw, obj, TypeTag::Array(kind), size, len);
        if !self.fault_skip_zeroing {
            self.raw
                .zero(obj.offset(OBJECT_HEADER_BYTES), size - OBJECT_HEADER_BYTES);
        }
        self.stats.objects_allocated += 1;
        self.stats.bytes_allocated += size;
        Ok(obj)
    }

    fn alloc_raw(&mut self, size: u64) -> Result<Address, GcNeeded> {
        if size > LOS_THRESHOLD_BYTES {
            self.stats.large_objects += 1;
            return self.los.alloc(size).ok_or(GcNeeded::Major);
        }
        self.nursery.alloc(size).ok_or(GcNeeded::Minor)
    }

    // ----- field and array access --------------------------------------

    /// Read a field slot.
    #[must_use]
    pub fn get_field(&self, obj: Address, offset: u64) -> u64 {
        self.raw.read_u64(obj.offset(offset))
    }

    /// Write a field slot, applying the generational write barrier when
    /// `is_ref` (mature/LOS object pointing into the nursery → slot is
    /// remembered).
    pub fn set_field(&mut self, obj: Address, offset: u64, value: u64, is_ref: bool) {
        let slot = obj.offset(offset);
        self.raw.write_u64(slot, value);
        if is_ref && !self.nursery.contains(obj) && self.nursery.contains(Address(value)) {
            self.remset.record(slot);
        }
    }

    /// Address of a field slot (what the memory simulator sees).
    #[must_use]
    pub fn field_addr(&self, obj: Address, offset: u64) -> Address {
        obj.offset(offset)
    }

    /// Address of array element `idx`.
    #[must_use]
    pub fn elem_addr(&self, obj: Address, kind: ElemKind, idx: u64) -> Address {
        ObjectModel::array_data(obj).offset(idx * kind.width())
    }

    /// Read array element `idx`.
    #[must_use]
    pub fn array_get(&self, obj: Address, kind: ElemKind, idx: u64) -> u64 {
        debug_assert!(idx < self.array_len(obj));
        self.raw
            .read_uint(self.elem_addr(obj, kind, idx), kind.width())
    }

    /// Write array element `idx`, with the write barrier for ref arrays.
    pub fn array_set(&mut self, obj: Address, kind: ElemKind, idx: u64, value: u64) {
        debug_assert!(idx < self.array_len(obj));
        let addr = self.elem_addr(obj, kind, idx);
        self.raw.write_uint(addr, kind.width(), value);
        if kind.is_ref() && !self.nursery.contains(obj) && self.nursery.contains(Address(value)) {
            self.remset.record(addr);
        }
    }

    /// The object's type tag.
    #[must_use]
    pub fn type_of(&self, obj: Address) -> TypeTag {
        ObjectModel::type_tag(&self.raw, obj)
    }

    /// Array length (0 for instances).
    #[must_use]
    pub fn array_len(&self, obj: Address) -> u64 {
        ObjectModel::array_len(&self.raw, obj)
    }

    /// Total size of the object in bytes.
    #[must_use]
    pub fn size_of(&self, obj: Address) -> u64 {
        ObjectModel::size(&self.raw, obj)
    }

    /// Whether the co-allocation bit is set on the object.
    #[must_use]
    pub fn is_coallocated(&self, obj: Address) -> bool {
        ObjectModel::flags(&self.raw, obj) & flags::COALLOC != 0
    }

    /// Whether `addr` is a plausible object address inside any space.
    #[must_use]
    pub fn in_heap(&self, addr: Address) -> bool {
        self.raw.contains(addr)
    }

    /// Whether `addr` lies in the nursery.
    #[must_use]
    pub fn in_nursery(&self, addr: Address) -> bool {
        self.nursery.contains(addr)
    }

    // ----- collection scheduling helpers -------------------------------

    /// Free bytes available for promotion in the mature space.
    #[must_use]
    pub fn mature_free_bytes(&self) -> u64 {
        match &self.mature {
            Mature::Ms(ms) => ms.free_bytes(),
            Mature::Copy(c) => c.free_bytes(),
        }
    }

    /// Bytes used in the mature space.
    #[must_use]
    pub fn mature_used_bytes(&self) -> u64 {
        match &self.mature {
            Mature::Ms(ms) => ms.used_bytes(),
            Mature::Copy(c) => c.used_bytes(),
        }
    }

    /// Whether a minor collection can promote the worst case without
    /// exhausting the mature space. When false the caller should run a
    /// major collection first.
    #[must_use]
    pub fn minor_is_safe(&self) -> bool {
        // Slack covers size-class rounding (< 2×) plus partial blocks.
        let worst = self.nursery.used() * 2 + 8 * BLOCK_BYTES;
        self.mature_free_bytes() >= worst
    }

    /// Bytes currently allocated in the nursery.
    #[must_use]
    pub fn nursery_used(&self) -> u64 {
        self.nursery.used()
    }

    /// Collection statistics so far.
    #[must_use]
    pub fn stats(&self) -> GcStats {
        self.stats
    }

    /// Remembered-set size (diagnostics).
    #[must_use]
    pub fn remset_len(&self) -> usize {
        self.remset.len()
    }

    // ----- minor collection ---------------------------------------------

    /// Nursery collection: promote all reachable nursery objects into the
    /// mature space, consulting `policy` for co-allocation opportunities
    /// (GenMS only). Updates `roots` in place.
    ///
    /// # Errors
    ///
    /// [`GcError::OutOfMemory`] when promotion exhausts the mature space;
    /// callers avoid this by checking [`Heap::minor_is_safe`] and running a
    /// major collection first.
    pub fn collect_minor(
        &mut self,
        roots: &mut [Address],
        policy: &dyn CoallocPolicy,
    ) -> Result<(), GcError> {
        self.stats.minor_collections += 1;
        let mut cycles = self.cost.collection_base + roots.len() as u64 * self.cost.per_root;
        let mut queue: VecDeque<Address> = VecDeque::new();

        for r in roots.iter_mut() {
            *r = self.forward_minor(*r, policy, &mut queue)?;
        }
        for slot in self.remset.drain_sorted() {
            cycles += self.cost.per_root;
            let old = Address(self.raw.read_u64(slot));
            let new = self.forward_minor(old, policy, &mut queue)?;
            self.raw.write_u64(slot, new.0);
        }
        while let Some(obj) = queue.pop_front() {
            self.scan_object_minor(obj, policy, &mut queue)?;
        }

        self.nursery.reset();
        self.resize_nursery();
        self.stats.gc_cycles += cycles;
        Ok(())
    }

    fn forward_minor(
        &mut self,
        obj: Address,
        policy: &dyn CoallocPolicy,
        queue: &mut VecDeque<Address>,
    ) -> Result<Address, GcError> {
        if obj.is_null() || !self.nursery.contains(obj) {
            return Ok(obj);
        }
        if ObjectModel::is_forwarded(&self.raw, obj) {
            return Ok(ObjectModel::forwarding(&self.raw, obj));
        }
        let size = ObjectModel::size(&self.raw, obj);

        // Co-allocation: promote parent and hottest child as one cell.
        if let TypeTag::Class(class) = ObjectModel::type_tag(&self.raw, obj) {
            if let Some(d) = policy.coalloc_child(class) {
                if matches!(self.mature, Mature::Ms(_)) {
                    let child = Address(self.raw.read_u64(obj.offset(d.field_offset)));
                    if !child.is_null()
                        && child != obj // self-reference: nothing to co-locate
                        && self.nursery.contains(child)
                        && !ObjectModel::is_forwarded(&self.raw, child)
                    {
                        let child_size = ObjectModel::size(&self.raw, child);
                        let total = size + d.gap_bytes + child_size;
                        if total <= LOS_THRESHOLD_BYTES {
                            return self.promote_pair(
                                obj,
                                size,
                                child,
                                child_size,
                                d.gap_bytes,
                                queue,
                            );
                        }
                    }
                }
            }
        }

        let to = self.mature_alloc(size).ok_or(GcError::OutOfMemory)?;
        self.raw.copy(obj, to, size);
        ObjectModel::forward_to(&mut self.raw, obj, to);
        self.stats.objects_promoted += 1;
        self.stats.bytes_promoted += size;
        self.stats.gc_cycles += self.cost.per_object + size * self.cost.per_copied_byte;
        queue.push_back(to);
        Ok(to)
    }

    fn promote_pair(
        &mut self,
        parent: Address,
        parent_size: u64,
        child: Address,
        child_size: u64,
        gap: u64,
        queue: &mut VecDeque<Address>,
    ) -> Result<Address, GcError> {
        let total = parent_size + gap + child_size;
        let cell = match &mut self.mature {
            Mature::Ms(ms) => ms.alloc(total).ok_or(GcError::OutOfMemory)?,
            Mature::Copy(_) => unreachable!("co-allocation is GenMS-only"),
        };
        let child_to = cell.offset(parent_size + gap);
        self.raw.copy(parent, cell, parent_size);
        self.raw.copy(child, child_to, child_size);
        if gap > 0 {
            self.raw.zero(cell.offset(parent_size), gap);
        }
        ObjectModel::forward_to(&mut self.raw, parent, cell);
        ObjectModel::forward_to(&mut self.raw, child, child_to);
        ObjectModel::set_flags(&mut self.raw, cell, flags::COALLOC);
        ObjectModel::set_flags(&mut self.raw, child_to, flags::COALLOC);
        self.coalloc_children.insert(cell.0, child_to);
        self.stats.objects_promoted += 2;
        self.stats.bytes_promoted += parent_size + child_size;
        self.stats.objects_coallocated += 1;
        self.stats.bytes_coallocated += parent_size + child_size;
        self.stats.gc_cycles += 2 * self.cost.per_object + total * self.cost.per_copied_byte;
        queue.push_back(cell);
        queue.push_back(child_to);
        Ok(cell)
    }

    fn mature_alloc(&mut self, size: u64) -> Option<Address> {
        match &mut self.mature {
            Mature::Ms(ms) => ms.alloc(size),
            Mature::Copy(c) => c.alloc(size.div_ceil(8) * 8),
        }
    }

    fn scan_object_minor(
        &mut self,
        obj: Address,
        policy: &dyn CoallocPolicy,
        queue: &mut VecDeque<Address>,
    ) -> Result<(), GcError> {
        for slot in self.ref_slots(obj) {
            let old = Address(self.raw.read_u64(slot));
            let new = self.forward_minor(old, policy, queue)?;
            if new != old {
                self.raw.write_u64(slot, new.0);
            }
        }
        Ok(())
    }

    /// Addresses of the reference slots of `obj`.
    fn ref_slots(&self, obj: Address) -> Vec<Address> {
        match ObjectModel::type_tag(&self.raw, obj) {
            TypeTag::Class(c) => self
                .classes
                .layout(c)
                .ref_offsets
                .iter()
                .map(|&off| obj.offset(off))
                .collect(),
            TypeTag::Array(ElemKind::Ref) => {
                let len = ObjectModel::array_len(&self.raw, obj);
                (0..len)
                    .map(|i| ObjectModel::array_data(obj).offset(i * 8))
                    .collect()
            }
            TypeTag::Array(_) => Vec::new(),
        }
    }

    fn resize_nursery(&mut self) {
        let free = self.mature_free_bytes();
        // Appel-style: the nursery may not outgrow what the mature space
        // could absorb (with slack for size-class rounding).
        self.nursery.set_capacity((free / 2).max(16 * 1024));
    }

    // ----- major collection ---------------------------------------------

    /// Full-heap collection. Marks (or copies) the mature space and LOS,
    /// sweeps garbage, then runs a minor collection to empty the nursery.
    /// Updates `roots` in place.
    ///
    /// # Errors
    ///
    /// [`GcError::OutOfMemory`] when live data exceeds the heap.
    pub fn collect_major(
        &mut self,
        roots: &mut [Address],
        policy: &dyn CoallocPolicy,
    ) -> Result<(), GcError> {
        self.stats.major_collections += 1;
        match self.mature {
            Mature::Ms(_) => self.major_mark_sweep(roots)?,
            Mature::Copy(_) => self.major_semispace(roots)?,
        }
        // With the mature space compacted/swept, empty the nursery.
        self.collect_minor(roots, policy)
    }

    fn major_mark_sweep(&mut self, roots: &mut [Address]) -> Result<(), GcError> {
        let mut cycles = self.cost.collection_base + roots.len() as u64 * self.cost.per_root;
        // The remembered set may hold slots of objects this collection is
        // about to sweep; it is rebuilt from scratch while marking.
        self.remset.clear();
        // Mark phase: traverse everything (nursery objects in place).
        let mut stack: Vec<Address> = roots.iter().copied().filter(|a| !a.is_null()).collect();
        let mut marked = 0u64;
        while let Some(obj) = stack.pop() {
            if ObjectModel::is_marked(&self.raw, obj) {
                continue;
            }
            ObjectModel::set_flags(&mut self.raw, obj, flags::MARK);
            marked += 1;
            let obj_in_nursery = self.nursery.contains(obj);
            for slot in self.ref_slots(obj) {
                let child = Address(self.raw.read_u64(slot));
                if child.is_null() {
                    continue;
                }
                if !obj_in_nursery && self.nursery.contains(child) {
                    self.remset.record(slot);
                }
                if !ObjectModel::is_marked(&self.raw, child) {
                    stack.push(child);
                }
            }
        }
        cycles += marked * self.cost.per_marked_object;

        // Sweep the free-list space at cell granularity. A cell holding a
        // co-allocated pair stays live while either occupant is marked.
        let cells = match &self.mature {
            Mature::Ms(ms) => ms.allocated_cells(),
            Mature::Copy(_) => unreachable!(),
        };
        cycles += cells.len() as u64 * self.cost.per_swept_cell;
        for (cell, _bytes) in cells {
            let parent_live = ObjectModel::is_marked(&self.raw, cell);
            let child = self.coalloc_children.get(&cell.0).copied();
            let child_live = child.is_some_and(|c| ObjectModel::is_marked(&self.raw, c));
            if parent_live || child_live {
                ObjectModel::clear_flags(&mut self.raw, cell, flags::MARK);
                if let Some(c) = child {
                    ObjectModel::clear_flags(&mut self.raw, c, flags::MARK);
                }
            } else {
                self.coalloc_children.remove(&cell.0);
                match &mut self.mature {
                    Mature::Ms(ms) => ms.free(cell),
                    Mature::Copy(_) => unreachable!(),
                }
            }
        }

        if let Mature::Ms(ms) = &mut self.mature {
            ms.reclaim_empty_blocks();
        }
        self.sweep_los();
        self.clear_nursery_marks();
        self.stats.gc_cycles += cycles;
        Ok(())
    }

    fn major_semispace(&mut self, roots: &mut [Address]) -> Result<(), GcError> {
        let mut cycles = self.cost.collection_base + roots.len() as u64 * self.cost.per_root;
        let mut to = match &self.mature {
            Mature::Copy(c) => c.begin_copy(),
            Mature::Ms(_) => unreachable!(),
        };
        let mut queue: VecDeque<Address> = VecDeque::new();

        // Forward a reference during the major copy: from-space objects are
        // copied; nursery and LOS objects are marked in place and scanned.
        fn forward_major(
            heap: &mut Heap,
            obj: Address,
            to: &mut crate::semispace::ToSpaceCursor,
            queue: &mut VecDeque<Address>,
        ) -> Result<Address, GcError> {
            if obj.is_null() {
                return Ok(obj);
            }
            let in_active = match &heap.mature {
                Mature::Copy(c) => c.in_active(obj),
                Mature::Ms(_) => unreachable!(),
            };
            if in_active {
                if ObjectModel::is_forwarded(&heap.raw, obj) {
                    return Ok(ObjectModel::forwarding(&heap.raw, obj));
                }
                let size = ObjectModel::size(&heap.raw, obj);
                let size_aligned = size.div_ceil(8) * 8;
                let new = to.alloc(size_aligned).ok_or(GcError::OutOfMemory)?;
                heap.raw.copy(obj, new, size);
                ObjectModel::forward_to(&mut heap.raw, obj, new);
                heap.stats.gc_cycles += heap.cost.per_object + size * heap.cost.per_copied_byte;
                queue.push_back(new);
                Ok(new)
            } else {
                // Nursery or LOS: non-moving during the major phase, but
                // must be scanned once so their slots into from-space are
                // updated.
                if !ObjectModel::is_marked(&heap.raw, obj) {
                    ObjectModel::set_flags(&mut heap.raw, obj, flags::MARK);
                    queue.push_back(obj);
                }
                Ok(obj)
            }
        }

        // Remembered-set slot addresses refer to from-space objects and
        // are about to become stale; rebuild the set while scanning.
        self.remset.clear();
        for r in roots.iter_mut() {
            *r = forward_major(self, *r, &mut to, &mut queue)?;
        }
        while let Some(obj) = queue.pop_front() {
            let obj_in_nursery = self.nursery.contains(obj);
            for slot in self.ref_slots(obj) {
                let old = Address(self.raw.read_u64(slot));
                let new = forward_major(self, old, &mut to, &mut queue)?;
                if new != old {
                    self.raw.write_u64(slot, new.0);
                }
                if !obj_in_nursery && self.nursery.contains(new) {
                    self.remset.record(slot);
                }
            }
        }
        match &mut self.mature {
            Mature::Copy(c) => c.finish_copy(&to),
            Mature::Ms(_) => unreachable!(),
        }
        self.sweep_los();
        self.clear_nursery_marks();
        cycles += to.used() * self.cost.per_copied_byte;
        self.stats.gc_cycles += cycles;
        Ok(())
    }

    fn sweep_los(&mut self) {
        for obj in self.los.allocated_objects() {
            if ObjectModel::is_marked(&self.raw, obj) {
                ObjectModel::clear_flags(&mut self.raw, obj, flags::MARK);
            } else {
                self.los.free(obj);
            }
        }
    }

    /// Walk the nursery linearly (objects are contiguous) clearing marks
    /// left by a major collection's in-place marking.
    fn clear_nursery_marks(&mut self) {
        let mut p = self.nursery.start();
        while p < self.nursery.cursor() {
            let size = ObjectModel::size(&self.raw, p);
            debug_assert!(size >= OBJECT_HEADER_BYTES && size.is_multiple_of(8));
            ObjectModel::clear_flags(&mut self.raw, p, flags::MARK);
            p = p.offset(size);
        }
    }

    // ----- verification --------------------------------------------------

    /// Debug heap walker: verifies every object reachable from `roots` has
    /// a valid header and in-bounds references. Returns the live object
    /// count.
    ///
    /// # Errors
    ///
    /// Returns a description of the first corruption found.
    pub fn verify(&self, roots: &[Address]) -> Result<u64, String> {
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<Address> = roots.iter().copied().filter(|a| !a.is_null()).collect();
        while let Some(obj) = stack.pop() {
            if !seen.insert(obj.0) {
                continue;
            }
            if !self.raw.contains(obj) {
                return Err(format!("reference {obj} outside the heap"));
            }
            let size = ObjectModel::size(&self.raw, obj);
            if size < OBJECT_HEADER_BYTES || !self.raw.contains(obj.offset(size - 1)) {
                return Err(format!("object {obj} has corrupt size {size}"));
            }
            match ObjectModel::type_tag(&self.raw, obj) {
                TypeTag::Class(c) => {
                    if c.0 as usize >= self.classes.len() {
                        return Err(format!("object {obj} has invalid class {c}"));
                    }
                    if size != self.classes.layout(c).size {
                        return Err(format!("object {obj} size mismatch for {c}"));
                    }
                }
                TypeTag::Array(k) => {
                    let len = ObjectModel::array_len(&self.raw, obj);
                    if size != ObjectModel::array_size(k, len) {
                        return Err(format!("array {obj} size/len mismatch"));
                    }
                }
            }
            for slot in self.ref_slots(obj) {
                let child = Address(self.raw.read_u64(slot));
                if !child.is_null() {
                    stack.push(child);
                }
            }
        }
        Ok(seen.len() as u64)
    }

    /// Start address of the mature region (diagnostics).
    #[must_use]
    pub fn mature_start(&self) -> Address {
        self.mature_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{NoCoalloc, StaticPolicy};
    use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
    use hpmopt_bytecode::FieldType;

    /// Program with String { value: ref } and Node { next: ref, v: int }.
    fn program() -> (Program, ClassId, ClassId) {
        let mut pb = ProgramBuilder::new();
        let string = pb.add_class("String", &[("value", FieldType::Ref)]);
        let node = pb.add_class("Node", &[("next", FieldType::Ref), ("v", FieldType::Int)]);
        let mut m = MethodBuilder::new("main", 0, 0, false);
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        (pb.finish().unwrap(), string, node)
    }

    fn heap() -> (Heap, ClassId, ClassId) {
        let (p, s, n) = program();
        (Heap::new(&p, HeapConfig::small()), s, n)
    }

    #[test]
    fn alloc_and_field_round_trip() {
        let (mut h, _s, node) = heap();
        let a = h.alloc_object(node).unwrap();
        let b = h.alloc_object(node).unwrap();
        h.set_field(a, 16, b.0, true);
        h.set_field(a, 24, 42, false);
        assert_eq!(h.get_field(a, 16), b.0);
        assert_eq!(h.get_field(a, 24), 42);
        assert_eq!(h.stats().objects_allocated, 2);
    }

    #[test]
    fn arrays_round_trip_and_zero_init() {
        let (mut h, ..) = heap();
        let arr = h.alloc_array(ElemKind::I16, 10).unwrap();
        assert_eq!(h.array_len(arr), 10);
        for i in 0..10 {
            assert_eq!(h.array_get(arr, ElemKind::I16, i), 0);
        }
        h.array_set(arr, ElemKind::I16, 3, 0xbeef);
        assert_eq!(h.array_get(arr, ElemKind::I16, 3), 0xbeef);
    }

    #[test]
    fn large_objects_go_to_los() {
        let (mut h, ..) = heap();
        let arr = h.alloc_array(ElemKind::I64, 1024).unwrap(); // 8 KB
        assert!(!h.in_nursery(arr));
        assert_eq!(h.stats().large_objects, 1);
    }

    #[test]
    fn nursery_exhaustion_requests_minor_gc() {
        let (mut h, _s, node) = heap();
        let mut need = None;
        for _ in 0..10_000 {
            match h.alloc_object(node) {
                Ok(_) => {}
                Err(n) => {
                    need = Some(n);
                    break;
                }
            }
        }
        assert_eq!(need, Some(GcNeeded::Minor));
    }

    #[test]
    fn minor_gc_promotes_live_chain_and_updates_roots() {
        let (mut h, _s, node) = heap();
        // Build a 3-node chain; keep only the head as root.
        let a = h.alloc_object(node).unwrap();
        let b = h.alloc_object(node).unwrap();
        let c = h.alloc_object(node).unwrap();
        h.set_field(a, 16, b.0, true);
        h.set_field(b, 16, c.0, true);
        h.set_field(c, 24, 7, false);
        // Garbage:
        for _ in 0..100 {
            h.alloc_object(node).unwrap();
        }

        let mut roots = vec![a];
        h.collect_minor(&mut roots, &NoCoalloc).unwrap();
        let a2 = roots[0];
        assert_ne!(a2, a, "head moved to mature space");
        assert!(!h.in_nursery(a2));
        let b2 = Address(h.get_field(a2, 16));
        let c2 = Address(h.get_field(b2, 16));
        assert_eq!(h.get_field(c2, 24), 7, "chain survived with data intact");
        assert_eq!(h.stats().objects_promoted, 3, "garbage was not promoted");
        assert_eq!(h.verify(&roots).unwrap(), 3);
        assert_eq!(h.nursery_used(), 0);
    }

    #[test]
    fn cycles_are_promoted_once() {
        let (mut h, _s, node) = heap();
        let a = h.alloc_object(node).unwrap();
        let b = h.alloc_object(node).unwrap();
        h.set_field(a, 16, b.0, true);
        h.set_field(b, 16, a.0, true);
        let mut roots = vec![a];
        h.collect_minor(&mut roots, &NoCoalloc).unwrap();
        let a2 = roots[0];
        let b2 = Address(h.get_field(a2, 16));
        assert_eq!(Address(h.get_field(b2, 16)), a2, "cycle intact");
        assert_eq!(h.stats().objects_promoted, 2);
    }

    #[test]
    fn write_barrier_keeps_nursery_object_alive() {
        let (mut h, _s, node) = heap();
        // Promote `a` to the mature space.
        let a = h.alloc_object(node).unwrap();
        let mut roots = vec![a];
        h.collect_minor(&mut roots, &NoCoalloc).unwrap();
        let a = roots[0];
        // Store a nursery reference into the mature object. Without the
        // write barrier the next minor GC would collect `young`.
        let young = h.alloc_object(node).unwrap();
        h.set_field(young, 24, 99, false);
        h.set_field(a, 16, young.0, true);
        assert_eq!(h.remset_len(), 1);

        let mut roots = vec![a];
        h.collect_minor(&mut roots, &NoCoalloc).unwrap();
        let young2 = Address(h.get_field(roots[0], 16));
        assert!(!young2.is_null());
        assert_eq!(h.get_field(young2, 24), 99);
    }

    #[test]
    fn coallocation_places_child_adjacent() {
        let (p, string, _node) = program();
        let mut h = Heap::new(&p, HeapConfig::small());
        let s = h.alloc_object(string).unwrap();
        let v = h.alloc_array(ElemKind::I16, 16).unwrap();
        h.set_field(s, 16, v.0, true);

        let mut policy = StaticPolicy::new();
        policy.set(string, 16);
        let mut roots = vec![s];
        h.collect_minor(&mut roots, &policy).unwrap();
        let s2 = roots[0];
        let v2 = Address(h.get_field(s2, 16));
        assert_eq!(v2.0, s2.0 + 24, "child directly after the 24-byte parent");
        assert!(h.is_coallocated(s2));
        assert!(h.is_coallocated(v2));
        assert_eq!(h.stats().objects_coallocated, 1);
        assert_eq!(h.verify(&roots).unwrap(), 2);
    }

    #[test]
    fn coallocation_gap_separates_pair() {
        let (p, string, _node) = program();
        let mut h = Heap::new(&p, HeapConfig::small());
        let s = h.alloc_object(string).unwrap();
        let v = h.alloc_array(ElemKind::I16, 16).unwrap();
        h.set_field(s, 16, v.0, true);
        let mut policy = StaticPolicy::new();
        policy.set_with_gap(string, 16, 128);
        let mut roots = vec![s];
        h.collect_minor(&mut roots, &policy).unwrap();
        let s2 = roots[0];
        let v2 = Address(h.get_field(s2, 16));
        assert_eq!(v2.0, s2.0 + 24 + 128, "one cache line of padding");
    }

    #[test]
    fn without_policy_pair_lands_in_separate_size_classes() {
        let (p, string, _node) = program();
        let mut h = Heap::new(&p, HeapConfig::small());
        let s = h.alloc_object(string).unwrap();
        let v = h.alloc_array(ElemKind::I16, 100).unwrap(); // 216 bytes
        h.set_field(s, 16, v.0, true);
        let mut roots = vec![s];
        h.collect_minor(&mut roots, &NoCoalloc).unwrap();
        let s2 = roots[0];
        let v2 = Address(h.get_field(s2, 16));
        assert!(
            v2.0.abs_diff(s2.0) >= BLOCK_BYTES,
            "different size classes → different blocks ({s2} vs {v2})"
        );
    }

    #[test]
    fn major_gc_reclaims_mature_garbage() {
        let (mut h, _s, node) = heap();
        // Promote 100 objects, keep none.
        for _ in 0..100 {
            h.alloc_object(node).unwrap();
        }
        let mut roots = vec![];
        h.collect_minor(&mut roots, &NoCoalloc).unwrap();
        assert_eq!(h.stats().objects_promoted, 0, "no roots → nothing promoted");

        // Promote live objects, then drop them and run a major GC.
        let a = h.alloc_object(node).unwrap();
        let mut roots = vec![a];
        h.collect_minor(&mut roots, &NoCoalloc).unwrap();
        let used_before = h.mature_used_bytes();
        assert!(used_before > 0);
        let mut no_roots: Vec<Address> = vec![];
        h.collect_major(&mut no_roots, &NoCoalloc).unwrap();
        assert_eq!(h.mature_used_bytes(), 0, "mature garbage swept");
    }

    #[test]
    fn major_gc_keeps_cell_with_live_coalloc_child() {
        let (p, string, _node) = program();
        let mut h = Heap::new(&p, HeapConfig::small());
        let s = h.alloc_object(string).unwrap();
        let v = h.alloc_array(ElemKind::I16, 16).unwrap();
        h.set_field(s, 16, v.0, true);
        let mut policy = StaticPolicy::new();
        policy.set(string, 16);
        let mut roots = vec![s];
        h.collect_minor(&mut roots, &policy).unwrap();
        let child = Address(h.get_field(roots[0], 16));

        // Drop the parent, keep only the child.
        let mut roots = vec![child];
        h.collect_major(&mut roots, &policy).unwrap();
        assert_eq!(roots[0], child, "GenMS major GC does not move objects");
        assert_eq!(h.array_len(child), 16);
        assert!(h.mature_used_bytes() > 0, "shared cell kept alive by child");

        // Now drop the child too.
        let mut roots: Vec<Address> = vec![];
        h.collect_major(&mut roots, &policy).unwrap();
        assert_eq!(h.mature_used_bytes(), 0);
    }

    #[test]
    fn gencopy_major_compacts() {
        let (p, _string, node) = program();
        let mut h = Heap::new(
            &p,
            HeapConfig::small().with_collector(CollectorKind::GenCopy),
        );
        // Promote one keeper plus 50 objects that will die before the
        // major collection.
        let mut roots = vec![h.alloc_object(node).unwrap()];
        for _ in 0..50 {
            roots.push(h.alloc_object(node).unwrap());
        }
        h.collect_minor(&mut roots, &NoCoalloc).unwrap();
        let keep = roots[0];
        let before = h.mature_used_bytes();

        let mut roots = vec![keep];
        h.collect_major(&mut roots, &NoCoalloc).unwrap();
        assert!(h.mature_used_bytes() < before, "copy dropped the garbage");
        assert_ne!(roots[0], keep, "survivor moved to the other semispace");
        assert_eq!(h.verify(&roots).unwrap(), 1);
    }

    #[test]
    fn gencopy_preserves_linked_structures() {
        let (p, _string, node) = program();
        let mut h = Heap::new(
            &p,
            HeapConfig::small().with_collector(CollectorKind::GenCopy),
        );
        let a = h.alloc_object(node).unwrap();
        let b = h.alloc_object(node).unwrap();
        h.set_field(a, 16, b.0, true);
        h.set_field(b, 24, 1234, false);
        let mut roots = vec![a];
        h.collect_minor(&mut roots, &NoCoalloc).unwrap();
        h.collect_major(&mut roots, &NoCoalloc).unwrap();
        let b2 = Address(h.get_field(roots[0], 16));
        assert_eq!(h.get_field(b2, 24), 1234);
    }

    #[test]
    fn los_objects_survive_major_when_referenced() {
        let (mut h, _s, node) = heap();
        let holder = h.alloc_object(node).unwrap();
        let big = h.alloc_array(ElemKind::I64, 1024).unwrap();
        h.set_field(holder, 16, big.0, true);
        let mut roots = vec![holder];
        h.collect_major(&mut roots, &NoCoalloc).unwrap();
        let big2 = Address(h.get_field(roots[0], 16));
        assert_eq!(big2, big, "LOS objects never move");
        assert_eq!(h.array_len(big2), 1024);

        let mut no_roots: Vec<Address> = vec![];
        h.collect_major(&mut no_roots, &NoCoalloc).unwrap();
        let replacement = h.alloc_array(ElemKind::I64, 1024).unwrap();
        assert_eq!(replacement, big, "LOS slot was reclaimed and reused");
    }

    #[test]
    fn minor_is_safe_reflects_mature_pressure() {
        let (h, ..) = heap();
        assert!(h.minor_is_safe() || h.mature_free_bytes() < 64 * BLOCK_BYTES);
    }

    #[test]
    fn gc_stats_track_collections_and_cycles() {
        let (mut h, _s, node) = heap();
        let a = h.alloc_object(node).unwrap();
        let mut roots = vec![a];
        h.collect_minor(&mut roots, &NoCoalloc).unwrap();
        h.collect_major(&mut roots, &NoCoalloc).unwrap();
        let s = h.stats();
        assert_eq!(s.minor_collections, 2, "major runs a trailing minor");
        assert_eq!(s.major_collections, 1);
        assert!(s.gc_cycles > 0);
    }
}
