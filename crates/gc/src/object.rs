//! Object model: addresses, type tags, and header layout.
//!
//! Every heap object starts with a 16-byte header:
//!
//! ```text
//! offset 0: u32 type tag   (class id, or array bit | element kind)
//! offset 4: u32 flags      (mark, forwarded, co-allocated)
//! offset 8: u32 size       (total object size in bytes, header included)
//! offset 12: u32 array len (element count; 0 for non-arrays)
//! ```
//!
//! While an object is being moved by a nursery collection, the header
//! words at offset 8 are reused to hold the forwarding pointer (the
//! original size is recoverable from the old copy's class/length, which
//! the collector reads before forwarding).

use hpmopt_bytecode::{ClassId, ElemKind, OBJECT_HEADER_BYTES};

use crate::raw::RawHeap;

/// A virtual heap address. `Address(0)` is the null reference ([`NULL`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address(pub u64);

/// The null reference.
pub const NULL: Address = Address(0);

impl Address {
    /// Whether this is the null reference.
    #[must_use]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Address `bytes` past this one.
    #[must_use]
    pub fn offset(self, bytes: u64) -> Address {
        Address(self.0 + bytes)
    }
}

impl std::fmt::Display for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// The type of a heap object: an instance of a class or an array.
///
/// Encoded in the header's first word: bit 31 set means array (low bits
/// hold the [`ElemKind`] discriminant), otherwise the word is a
/// [`ClassId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeTag {
    /// An instance of the given class.
    Class(ClassId),
    /// An array with the given element kind.
    Array(ElemKind),
}

const ARRAY_BIT: u32 = 1 << 31;

impl TypeTag {
    /// Encode into a header word.
    #[must_use]
    pub fn encode(self) -> u32 {
        match self {
            TypeTag::Class(c) => {
                debug_assert!(c.0 < ARRAY_BIT);
                c.0
            }
            TypeTag::Array(k) => ARRAY_BIT | k as u32,
        }
    }

    /// Decode from a header word.
    #[must_use]
    pub fn decode(word: u32) -> TypeTag {
        if word & ARRAY_BIT != 0 {
            let kind = match word & 0x7 {
                0 => ElemKind::I8,
                1 => ElemKind::I16,
                2 => ElemKind::I32,
                3 => ElemKind::I64,
                4 => ElemKind::Ref,
                other => panic!("corrupt array tag {other}"),
            };
            TypeTag::Array(kind)
        } else {
            TypeTag::Class(ClassId(word))
        }
    }
}

/// Header flag bits.
pub mod flags {
    /// Object is marked live (major-collection mark phase).
    pub const MARK: u32 = 1;
    /// Header holds a forwarding pointer (minor collection in progress).
    pub const FORWARDED: u32 = 1 << 1;
    /// Object was placed by the co-allocation optimization.
    pub const COALLOC: u32 = 1 << 2;
}

/// Typed accessors over raw object headers.
///
/// All functions take the [`RawHeap`] explicitly; `ObjectModel` itself is
/// stateless. Offsets follow the module-level layout description.
#[derive(Debug, Clone, Copy, Default)]
pub struct ObjectModel;

impl ObjectModel {
    /// Write a fresh header.
    pub fn init_header(heap: &mut RawHeap, obj: Address, tag: TypeTag, size: u64, array_len: u64) {
        heap.write_u32(obj, tag.encode());
        heap.write_u32(obj.offset(4), 0);
        heap.write_u32(obj.offset(8), size as u32);
        heap.write_u32(obj.offset(12), array_len as u32);
    }

    /// The object's type.
    #[must_use]
    pub fn type_tag(heap: &RawHeap, obj: Address) -> TypeTag {
        TypeTag::decode(heap.read_u32(obj))
    }

    /// Total object size in bytes (header included).
    #[must_use]
    pub fn size(heap: &RawHeap, obj: Address) -> u64 {
        u64::from(heap.read_u32(obj.offset(8)))
    }

    /// Array element count (0 for instances).
    #[must_use]
    pub fn array_len(heap: &RawHeap, obj: Address) -> u64 {
        u64::from(heap.read_u32(obj.offset(12)))
    }

    /// Read the flags word.
    #[must_use]
    pub fn flags(heap: &RawHeap, obj: Address) -> u32 {
        heap.read_u32(obj.offset(4))
    }

    /// Set flag bits.
    pub fn set_flags(heap: &mut RawHeap, obj: Address, bits: u32) {
        let f = Self::flags(heap, obj);
        heap.write_u32(obj.offset(4), f | bits);
    }

    /// Clear flag bits.
    pub fn clear_flags(heap: &mut RawHeap, obj: Address, bits: u32) {
        let f = Self::flags(heap, obj);
        heap.write_u32(obj.offset(4), f & !bits);
    }

    /// Whether the mark bit is set.
    #[must_use]
    pub fn is_marked(heap: &RawHeap, obj: Address) -> bool {
        Self::flags(heap, obj) & flags::MARK != 0
    }

    /// Whether the object has been forwarded by an in-progress collection.
    #[must_use]
    pub fn is_forwarded(heap: &RawHeap, obj: Address) -> bool {
        Self::flags(heap, obj) & flags::FORWARDED != 0
    }

    /// Install a forwarding pointer (overwrites the size/len words).
    pub fn forward_to(heap: &mut RawHeap, obj: Address, target: Address) {
        Self::set_flags(heap, obj, flags::FORWARDED);
        heap.write_u64(obj.offset(8), target.0);
    }

    /// Read a previously installed forwarding pointer.
    #[must_use]
    pub fn forwarding(heap: &RawHeap, obj: Address) -> Address {
        debug_assert!(Self::is_forwarded(heap, obj));
        Address(heap.read_u64(obj.offset(8)))
    }

    /// Size in bytes of an array with `len` elements of `kind`, rounded up
    /// to 8-byte alignment.
    #[must_use]
    pub fn array_size(kind: ElemKind, len: u64) -> u64 {
        let payload = kind.width() * len;
        OBJECT_HEADER_BYTES + payload.div_ceil(8) * 8
    }

    /// Address of the first array element.
    #[must_use]
    pub fn array_data(obj: Address) -> Address {
        obj.offset(OBJECT_HEADER_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_tag_round_trip() {
        for tag in [
            TypeTag::Class(ClassId(0)),
            TypeTag::Class(ClassId(1234)),
            TypeTag::Array(ElemKind::I8),
            TypeTag::Array(ElemKind::I16),
            TypeTag::Array(ElemKind::I32),
            TypeTag::Array(ElemKind::I64),
            TypeTag::Array(ElemKind::Ref),
        ] {
            assert_eq!(TypeTag::decode(tag.encode()), tag);
        }
    }

    #[test]
    fn header_round_trip() {
        let mut h = RawHeap::new(4096);
        let obj = h.base();
        ObjectModel::init_header(&mut h, obj, TypeTag::Array(ElemKind::I16), 48, 12);
        assert_eq!(
            ObjectModel::type_tag(&h, obj),
            TypeTag::Array(ElemKind::I16)
        );
        assert_eq!(ObjectModel::size(&h, obj), 48);
        assert_eq!(ObjectModel::array_len(&h, obj), 12);
        assert!(!ObjectModel::is_marked(&h, obj));
    }

    #[test]
    fn flags_set_and_clear() {
        let mut h = RawHeap::new(64);
        let obj = h.base();
        ObjectModel::init_header(&mut h, obj, TypeTag::Class(ClassId(0)), 16, 0);
        ObjectModel::set_flags(&mut h, obj, flags::MARK | flags::COALLOC);
        assert!(ObjectModel::is_marked(&h, obj));
        ObjectModel::clear_flags(&mut h, obj, flags::MARK);
        assert!(!ObjectModel::is_marked(&h, obj));
        assert_eq!(ObjectModel::flags(&h, obj), flags::COALLOC);
    }

    #[test]
    fn forwarding_round_trip() {
        let mut h = RawHeap::new(128);
        let obj = h.base();
        ObjectModel::init_header(&mut h, obj, TypeTag::Class(ClassId(7)), 24, 0);
        let target = Address(h.base().0 + 64);
        ObjectModel::forward_to(&mut h, obj, target);
        assert!(ObjectModel::is_forwarded(&h, obj));
        assert_eq!(ObjectModel::forwarding(&h, obj), target);
        // The tag survives forwarding (only size/len words are overwritten).
        assert_eq!(ObjectModel::type_tag(&h, obj), TypeTag::Class(ClassId(7)));
    }

    #[test]
    fn array_sizes_align_to_words() {
        assert_eq!(ObjectModel::array_size(ElemKind::I8, 1), 24);
        assert_eq!(ObjectModel::array_size(ElemKind::I8, 8), 24);
        assert_eq!(ObjectModel::array_size(ElemKind::I8, 9), 32);
        assert_eq!(ObjectModel::array_size(ElemKind::I64, 4), 48);
        assert_eq!(ObjectModel::array_size(ElemKind::I16, 0), 16);
    }

    #[test]
    fn null_is_null() {
        assert!(NULL.is_null());
        assert!(!Address(1).is_null());
    }
}
