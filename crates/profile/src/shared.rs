//! Shared, concurrently updated in-process profile repository.
//!
//! The on-disk [`crate::store::ProfileStore`] persists one profile per
//! path and serves one run at a time. A long-lived multi-tenant service
//! needs the same repository semantics *in memory*, shared by many
//! concurrent jobs: a job **checks out** a warm profile keyed by its
//! program+config [`Fingerprint`] at admission, runs with the seeds,
//! and **merges** its freshly measured results back on completion with
//! the same exponential decay the file store uses
//! ([`Profile::merge_run`]). One tenant's finished run is the next
//! tenant's warm start, so cycles-to-first-decision drops fleet-wide as
//! traffic flows.
//!
//! Concurrency model: the fingerprint space is split across
//! [`RepoConfig::shards`] independently locked shards (fingerprint hash
//! picks the shard), so two jobs touching different programs never
//! contend on the same mutex. Checkout clones the stored profile (jobs
//! never hold a lock while running), merge mutates under the shard
//! lock, and both are far off any hot path — a job performs exactly one
//! checkout and at most one merge for an execution of millions of
//! simulated cycles. Counters are relaxed atomics so stats reads never
//! contend with the maps.
//!
//! The repository is **bounded**: [`RepoConfig::capacity_bytes`] caps
//! the decay-merged state (approximated by [`Profile::approx_bytes`],
//! split evenly across shards) with least-recently-used eviction, and
//! [`RepoConfig::ttl_ops`] expires fingerprints that have not been
//! touched for that many repository operations (checkouts + merges, a
//! logical clock). An evicted fingerprint simply falls back to a cold
//! start on its next checkout — eviction is a performance event, never
//! an error — and is counted in [`RepoStats::evictions`]. Unbounded
//! behaviour ([`SharedProfileRepo::new`]) is unchanged from before the
//! bound existed.
//!
//! The repository can spill to / preload from a directory of
//! `.hpmprof` files ([`SharedProfileRepo::persist`],
//! [`SharedProfileRepo::preload`]), giving the daemon warm starts
//! across restarts without putting disk I/O on the job path.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::store::ProfileStore;
use crate::{Fingerprint, Profile};

/// Map key: the fingerprint flattened into an orderable tuple so
/// iteration (and therefore persistence and debug listings) is
/// deterministic.
type RepoKey = (u64, u64, String);

fn key_of(fp: &Fingerprint) -> RepoKey {
    (fp.program_hash, fp.config_hash, fp.workload.clone())
}

/// FNV-1a over the key, for shard selection.
fn hash_key(key: &RepoKey) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    };
    for b in key.0.to_le_bytes() {
        mix(b);
    }
    for b in key.1.to_le_bytes() {
        mix(b);
    }
    for b in key.2.bytes() {
        mix(b);
    }
    h
}

/// Bounding and sharding parameters of a [`SharedProfileRepo`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepoConfig {
    /// Independently locked shards the fingerprint space is split
    /// across (clamped to ≥ 1). More shards, less lock contention.
    pub shards: usize,
    /// Total byte budget for held profiles (approximated by
    /// [`Profile::approx_bytes`]), split evenly across shards. When a
    /// merge pushes a shard over its slice, least-recently-used
    /// fingerprints are evicted until it fits again (the just-merged
    /// fingerprint is never the victim, so one oversized profile can
    /// keep its shard marginally over budget rather than thrash).
    /// `None` leaves the repository unbounded.
    pub capacity_bytes: Option<u64>,
    /// Expire fingerprints untouched for this many repository
    /// operations (each checkout or merge advances the logical clock by
    /// one). Expiry is enforced lazily at the next access of the shard.
    /// `None` disables TTL.
    pub ttl_ops: Option<u64>,
}

impl Default for RepoConfig {
    fn default() -> Self {
        RepoConfig {
            shards: 8,
            capacity_bytes: None,
            ttl_ops: None,
        }
    }
}

/// Monotonic activity counters of a [`SharedProfileRepo`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepoStats {
    /// Checkout attempts.
    pub checkouts: u64,
    /// Checkouts that found a prior profile (warm).
    pub warm_checkouts: u64,
    /// Checkouts that found nothing (cold).
    pub cold_checkouts: u64,
    /// Completed-run merges.
    pub merges: u64,
    /// Fingerprints dropped by the capacity or TTL bound (total).
    pub evictions: u64,
    /// The TTL share of [`RepoStats::evictions`].
    pub ttl_evictions: u64,
}

struct Entry {
    profile: Profile,
    bytes: u64,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: BTreeMap<RepoKey, Entry>,
    bytes: u64,
}

/// The shared in-process repository. `Send + Sync`; share it between
/// worker threads behind an `Arc`.
pub struct SharedProfileRepo {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: Option<u64>,
    ttl_ops: Option<u64>,
    clock: AtomicU64,
    checkouts: AtomicU64,
    warm_checkouts: AtomicU64,
    cold_checkouts: AtomicU64,
    merges: AtomicU64,
    evictions: AtomicU64,
    ttl_evictions: AtomicU64,
}

impl std::fmt::Debug for SharedProfileRepo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedProfileRepo")
            .field("shards", &self.shards.len())
            .field("shard_capacity", &self.shard_capacity)
            .field("ttl_ops", &self.ttl_ops)
            .field("len", &self.len())
            .finish()
    }
}

impl Default for SharedProfileRepo {
    fn default() -> Self {
        Self::with_config(RepoConfig::default())
    }
}

impl SharedProfileRepo {
    /// An empty, unbounded repository (default shard count).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty repository with explicit sharding and bounds.
    #[must_use]
    pub fn with_config(config: RepoConfig) -> Self {
        let shards = config.shards.max(1);
        SharedProfileRepo {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            // Round up so the slices never sum below the requested
            // total; a capacity smaller than the shard count still
            // gives every shard at least one byte of budget.
            shard_capacity: config.capacity_bytes.map(|c| c.div_ceil(shards as u64)),
            ttl_ops: config.ttl_ops,
            clock: AtomicU64::new(0),
            checkouts: AtomicU64::new(0),
            warm_checkouts: AtomicU64::new(0),
            cold_checkouts: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            ttl_evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &RepoKey) -> &Mutex<Shard> {
        &self.shards[(hash_key(key) % self.shards.len() as u64) as usize]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Drop every entry of `shard` whose idle time exceeds the TTL,
    /// except `keep` (the key being touched right now).
    fn expire(&self, shard: &mut Shard, now: u64, keep: Option<&RepoKey>) {
        let Some(ttl) = self.ttl_ops else { return };
        let dead: Vec<RepoKey> = shard
            .map
            .iter()
            .filter(|(k, e)| Some(*k) != keep && now.saturating_sub(e.last_used) > ttl)
            .map(|(k, _)| k.clone())
            .collect();
        for k in dead {
            if let Some(e) = shard.map.remove(&k) {
                shard.bytes = shard.bytes.saturating_sub(e.bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.ttl_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Evict least-recently-used entries (never `keep`) until the shard
    /// fits its capacity slice again.
    fn enforce_capacity(&self, shard: &mut Shard, keep: &RepoKey) {
        let Some(cap) = self.shard_capacity else {
            return;
        };
        while shard.bytes > cap {
            let victim = shard
                .map
                .iter()
                .filter(|(k, _)| *k != keep)
                .min_by_key(|(k, e)| (e.last_used, (*k).clone()))
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(e) = shard.map.remove(&victim) {
                shard.bytes = shard.bytes.saturating_sub(e.bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Check out the current profile for `fp`, if any. The returned
    /// clone is the job's private warm-start input; the repository copy
    /// keeps evolving under other tenants' merges in the meantime. A
    /// fingerprint past its TTL is evicted here and reported cold.
    #[must_use]
    pub fn checkout(&self, fp: &Fingerprint) -> Option<Profile> {
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        let now = self.tick();
        let key = key_of(fp);
        let got = {
            let mut shard = self.shard_of(&key).lock().unwrap();
            self.expire(&mut shard, now, None);
            match shard.map.get_mut(&key) {
                Some(entry) => {
                    entry.last_used = now;
                    Some(entry.profile.clone())
                }
                None => None,
            }
        };
        match &got {
            Some(_) => self.warm_checkouts.fetch_add(1, Ordering::Relaxed),
            None => self.cold_checkouts.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Merge one finished run's freshly measured profile (seeds already
    /// subtracted, **not** pre-merged) into the repository with
    /// exponential decay `decay`, keyed by the fresh profile's own
    /// fingerprint. The first merge for a fingerprint installs the
    /// fresh profile as-is. Capacity and TTL bounds are enforced here,
    /// after the merge; the merged fingerprint itself is never evicted.
    pub fn merge(&self, fresh: &Profile, decay: f64) {
        self.merges.fetch_add(1, Ordering::Relaxed);
        let now = self.tick();
        let key = key_of(&fresh.fingerprint);
        let mut shard = self.shard_of(&key).lock().unwrap();
        self.expire(&mut shard, now, Some(&key));
        match shard.map.get_mut(&key) {
            Some(entry) => {
                entry.profile.merge_run(fresh, decay);
                let bytes = entry.profile.approx_bytes();
                let old_bytes = std::mem::replace(&mut entry.bytes, bytes);
                entry.last_used = now;
                shard.bytes = shard.bytes.saturating_sub(old_bytes) + bytes;
            }
            None => {
                let bytes = fresh.approx_bytes();
                shard.map.insert(
                    key.clone(),
                    Entry {
                        profile: fresh.clone(),
                        bytes,
                        last_used: now,
                    },
                );
                shard.bytes += bytes;
            }
        }
        self.enforce_capacity(&mut shard, &key);
    }

    /// Number of distinct fingerprints held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// Whether the repository holds nothing yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a profile for `fp` is currently held (TTL ignored: an
    /// expired-but-unswept entry still counts until its shard is next
    /// touched).
    #[must_use]
    pub fn contains(&self, fp: &Fingerprint) -> bool {
        let key = key_of(fp);
        self.shard_of(&key).lock().unwrap().map.contains_key(&key)
    }

    /// Approximate bytes currently held across all shards.
    #[must_use]
    pub fn held_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().unwrap().bytes).sum()
    }

    /// Runs merged into the profile for `fp` (0 when absent).
    #[must_use]
    pub fn runs_for(&self, fp: &Fingerprint) -> u32 {
        let key = key_of(fp);
        self.shard_of(&key)
            .lock()
            .unwrap()
            .map
            .get(&key)
            .map_or(0, |e| e.profile.runs)
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> RepoStats {
        RepoStats {
            checkouts: self.checkouts.load(Ordering::Relaxed),
            warm_checkouts: self.warm_checkouts.load(Ordering::Relaxed),
            cold_checkouts: self.cold_checkouts.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            ttl_evictions: self.ttl_evictions.load(Ordering::Relaxed),
        }
    }

    /// Write every held profile into `dir` (one `.hpmprof` file per
    /// fingerprint, named by its hashes), creating the directory as
    /// needed. Returns the number of files written. Iteration is in
    /// key order across all shards, so the file set is deterministic
    /// for a given held set.
    ///
    /// # Errors
    ///
    /// The first underlying I/O error.
    pub fn persist(&self, dir: &Path) -> io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        let mut snapshot: BTreeMap<RepoKey, Profile> = BTreeMap::new();
        for s in &self.shards {
            let shard = s.lock().unwrap();
            for (k, e) in &shard.map {
                snapshot.insert(k.clone(), e.profile.clone());
            }
        }
        for p in snapshot.values() {
            ProfileStore::new(dir.join(file_name(&p.fingerprint))).save(p)?;
        }
        Ok(snapshot.len())
    }

    /// Load every decodable `.hpmprof` file in `dir` into the
    /// repository (skipping corrupt or unreadable files — a damaged
    /// spill directory must not stop the daemon). Returns how many
    /// profiles were installed. A missing directory installs zero.
    pub fn preload(&self, dir: &Path) -> usize {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return 0;
        };
        let mut loaded = 0;
        let mut paths: Vec<_> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "hpmprof"))
            .collect();
        paths.sort();
        for path in paths {
            let Ok(p) = ProfileStore::new(&path).load_any() else {
                continue;
            };
            let now = self.tick();
            let key = key_of(&p.fingerprint);
            let bytes = p.approx_bytes();
            let mut shard = self.shard_of(&key).lock().unwrap();
            if let Some(old) = shard.map.insert(
                key.clone(),
                Entry {
                    profile: p,
                    bytes,
                    last_used: now,
                },
            ) {
                shard.bytes = shard.bytes.saturating_sub(old.bytes);
            }
            shard.bytes += bytes;
            self.enforce_capacity(&mut shard, &key);
            loaded += 1;
        }
        loaded
    }
}

/// Deterministic spill file name for a fingerprint. The workload label
/// is sanitized into `[A-Za-z0-9_-]` so it stays a portable path
/// component.
fn file_name(fp: &Fingerprint) -> String {
    let label: String = fp
        .workload
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!(
        "{:016x}-{:016x}-{label}.hpmprof",
        fp.program_hash, fp.config_hash
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::new(n, 2, "db")
    }

    fn fresh_run(fp_: Fingerprint, misses: u64) -> Profile {
        let mut p = Profile::new(fp_);
        p.record_field("String", "value", misses);
        p.seal_run();
        p
    }

    /// Every fingerprint in one shard: capacity and TTL tests become
    /// deterministic regardless of how keys hash.
    fn single_shard(capacity_bytes: Option<u64>, ttl_ops: Option<u64>) -> SharedProfileRepo {
        SharedProfileRepo::with_config(RepoConfig {
            shards: 1,
            capacity_bytes,
            ttl_ops,
        })
    }

    #[test]
    fn checkout_miss_then_merge_then_warm() {
        let repo = SharedProfileRepo::new();
        assert!(repo.checkout(&fp(1)).is_none());
        repo.merge(&fresh_run(fp(1), 100), 0.5);
        let warm = repo.checkout(&fp(1)).expect("warm after merge");
        assert_eq!(warm.field_weight("String", "value"), 100.0);
        assert_eq!(repo.runs_for(&fp(1)), 1);
        assert!(repo.contains(&fp(1)));
        assert!(repo.checkout(&fp(2)).is_none(), "other fingerprints cold");
        let stats = repo.stats();
        assert_eq!(stats.checkouts, 3);
        assert_eq!(stats.warm_checkouts, 1);
        assert_eq!(stats.cold_checkouts, 2);
        assert_eq!(stats.merges, 1);
        assert_eq!(stats.evictions, 0, "unbounded repo never evicts");
    }

    #[test]
    fn merge_applies_decay_like_the_file_store() {
        let repo = SharedProfileRepo::new();
        repo.merge(&fresh_run(fp(1), 100), 0.5);
        repo.merge(&fresh_run(fp(1), 10), 0.5);
        let p = repo.checkout(&fp(1)).unwrap();
        assert_eq!(p.field_weight("String", "value"), 60.0, "100*0.5 + 10");
        assert_eq!(p.runs, 2);
    }

    #[test]
    fn concurrent_checkout_merge_is_consistent() {
        let repo = SharedProfileRepo::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let repo = &repo;
                s.spawn(move || {
                    for i in 0..50 {
                        let _ = repo.checkout(&fp(t % 2));
                        repo.merge(&fresh_run(fp(t % 2), i + 1), 0.5);
                    }
                });
            }
        });
        assert_eq!(repo.len(), 2);
        let stats = repo.stats();
        assert_eq!(stats.checkouts, 200);
        assert_eq!(stats.merges, 200);
        // 100 merges per fingerprint, whatever the interleaving.
        assert_eq!(repo.runs_for(&fp(0)), 100);
        assert_eq!(repo.runs_for(&fp(1)), 100);
    }

    #[test]
    fn capacity_bound_evicts_lru_and_falls_back_to_cold() {
        let one = fresh_run(fp(1), 100).approx_bytes();
        // Room for one profile but not two.
        let repo = single_shard(Some(one + one / 2), None);
        repo.merge(&fresh_run(fp(1), 100), 0.5);
        repo.merge(&fresh_run(fp(2), 50), 0.5); // evicts fp(1): LRU
        assert_eq!(repo.len(), 1);
        assert_eq!(repo.stats().evictions, 1);
        assert!(!repo.contains(&fp(1)), "LRU victim gone");
        assert!(repo.contains(&fp(2)), "just-merged survivor kept");
        assert!(repo.checkout(&fp(1)).is_none(), "evicted falls back cold");
        assert!(repo.checkout(&fp(2)).is_some());

        // Touch order decides the victim: warm fp(2) again, then merge
        // fp(3) twice the budget's worth — fp(2) was used more recently
        // than a re-merged fp(1), so fp(1) goes first.
        repo.merge(&fresh_run(fp(1), 10), 0.5);
        let _ = repo.checkout(&fp(2));
        repo.merge(&fresh_run(fp(3), 10), 0.5);
        assert!(!repo.contains(&fp(1)), "least recently used loses");
        assert!(repo.held_bytes() <= one + one / 2);
    }

    #[test]
    fn oversized_profile_is_kept_not_thrashed() {
        let repo = single_shard(Some(1), None);
        repo.merge(&fresh_run(fp(1), 100), 0.5);
        assert_eq!(repo.len(), 1, "the just-merged entry is never evicted");
        repo.merge(&fresh_run(fp(2), 100), 0.5);
        assert_eq!(repo.len(), 1, "but it is fair game for the next merge");
        assert!(repo.contains(&fp(2)));
    }

    #[test]
    fn ttl_expires_idle_fingerprints() {
        let repo = single_shard(None, Some(3));
        repo.merge(&fresh_run(fp(1), 100), 0.5); // op 1
        repo.merge(&fresh_run(fp(2), 100), 0.5); // op 2
                                                 // Keep fp(2) warm while fp(1) idles past the TTL.
        let _ = repo.checkout(&fp(2)); // op 3
        let _ = repo.checkout(&fp(2)); // op 4
        let _ = repo.checkout(&fp(2)); // op 5: fp(1) idle for 4 > 3 ops
        assert!(!repo.contains(&fp(1)), "idle fingerprint expired");
        assert!(repo.contains(&fp(2)), "active fingerprint survives");
        let stats = repo.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.ttl_evictions, 1);
        assert!(repo.checkout(&fp(1)).is_none(), "expired is cold");
    }

    #[test]
    fn sharding_preserves_totals() {
        let repo = SharedProfileRepo::with_config(RepoConfig {
            shards: 7,
            ..RepoConfig::default()
        });
        for n in 0..20 {
            repo.merge(&fresh_run(fp(n), n + 1), 0.5);
        }
        assert_eq!(repo.len(), 20);
        assert_eq!(repo.stats().merges, 20);
        for n in 0..20 {
            assert_eq!(repo.runs_for(&fp(n)), 1);
        }
    }

    #[test]
    fn persist_and_preload_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "hpmopt-shared-repo-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let repo = SharedProfileRepo::new();
        repo.merge(&fresh_run(fp(1), 100), 0.5);
        repo.merge(&fresh_run(fp(2), 50), 0.5);
        assert_eq!(repo.persist(&dir).unwrap(), 2);

        let back = SharedProfileRepo::new();
        assert_eq!(back.preload(&dir), 2);
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.checkout(&fp(1))
                .unwrap()
                .field_weight("String", "value"),
            100.0
        );
        assert_eq!(back.preload(Path::new("/nonexistent/dir")), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
