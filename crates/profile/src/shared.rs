//! Shared, concurrently updated in-process profile repository.
//!
//! The on-disk [`crate::store::ProfileStore`] persists one profile per
//! path and serves one run at a time. A long-lived multi-tenant service
//! needs the same repository semantics *in memory*, shared by many
//! concurrent jobs: a job **checks out** a warm profile keyed by its
//! program+config [`Fingerprint`] at admission, runs with the seeds,
//! and **merges** its freshly measured results back on completion with
//! the same exponential decay the file store uses
//! ([`Profile::merge_run`]). One tenant's finished run is the next
//! tenant's warm start, so cycles-to-first-decision drops fleet-wide as
//! traffic flows.
//!
//! Concurrency model: a single mutex over a fingerprint-keyed map.
//! Checkout clones the stored profile (jobs never hold the lock while
//! running), merge mutates under the lock, and both are far off any hot
//! path — a job performs exactly one checkout and at most one merge for
//! an execution of millions of simulated cycles. Counters are relaxed
//! atomics so stats reads never contend with the map.
//!
//! The repository can spill to / preload from a directory of
//! `.hpmprof` files ([`SharedProfileRepo::persist`],
//! [`SharedProfileRepo::preload`]), giving the daemon warm starts
//! across restarts without putting disk I/O on the job path.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::store::ProfileStore;
use crate::{Fingerprint, Profile};

/// Map key: the fingerprint flattened into an orderable tuple so
/// iteration (and therefore persistence and debug listings) is
/// deterministic.
type RepoKey = (u64, u64, String);

fn key_of(fp: &Fingerprint) -> RepoKey {
    (fp.program_hash, fp.config_hash, fp.workload.clone())
}

/// Monotonic activity counters of a [`SharedProfileRepo`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepoStats {
    /// Checkout attempts.
    pub checkouts: u64,
    /// Checkouts that found a prior profile (warm).
    pub warm_checkouts: u64,
    /// Checkouts that found nothing (cold).
    pub cold_checkouts: u64,
    /// Completed-run merges.
    pub merges: u64,
}

/// The shared in-process repository. `Send + Sync`; share it between
/// worker threads behind an `Arc`.
#[derive(Debug, Default)]
pub struct SharedProfileRepo {
    profiles: Mutex<BTreeMap<RepoKey, Profile>>,
    checkouts: AtomicU64,
    warm_checkouts: AtomicU64,
    cold_checkouts: AtomicU64,
    merges: AtomicU64,
}

impl SharedProfileRepo {
    /// An empty repository.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Check out the current profile for `fp`, if any. The returned
    /// clone is the job's private warm-start input; the repository copy
    /// keeps evolving under other tenants' merges in the meantime.
    #[must_use]
    pub fn checkout(&self, fp: &Fingerprint) -> Option<Profile> {
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        let got = self.profiles.lock().unwrap().get(&key_of(fp)).cloned();
        match &got {
            Some(_) => self.warm_checkouts.fetch_add(1, Ordering::Relaxed),
            None => self.cold_checkouts.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Merge one finished run's freshly measured profile (seeds already
    /// subtracted, **not** pre-merged) into the repository with
    /// exponential decay `decay`, keyed by the fresh profile's own
    /// fingerprint. The first merge for a fingerprint installs the
    /// fresh profile as-is.
    pub fn merge(&self, fresh: &Profile, decay: f64) {
        self.merges.fetch_add(1, Ordering::Relaxed);
        let mut map = self.profiles.lock().unwrap();
        match map.get_mut(&key_of(&fresh.fingerprint)) {
            Some(prior) => prior.merge_run(fresh, decay),
            None => {
                map.insert(key_of(&fresh.fingerprint), fresh.clone());
            }
        }
    }

    /// Number of distinct fingerprints held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.profiles.lock().unwrap().len()
    }

    /// Whether the repository holds nothing yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs merged into the profile for `fp` (0 when absent).
    #[must_use]
    pub fn runs_for(&self, fp: &Fingerprint) -> u32 {
        self.profiles
            .lock()
            .unwrap()
            .get(&key_of(fp))
            .map_or(0, |p| p.runs)
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> RepoStats {
        RepoStats {
            checkouts: self.checkouts.load(Ordering::Relaxed),
            warm_checkouts: self.warm_checkouts.load(Ordering::Relaxed),
            cold_checkouts: self.cold_checkouts.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
        }
    }

    /// Write every held profile into `dir` (one `.hpmprof` file per
    /// fingerprint, named by its hashes), creating the directory as
    /// needed. Returns the number of files written.
    ///
    /// # Errors
    ///
    /// The first underlying I/O error.
    pub fn persist(&self, dir: &Path) -> io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        let snapshot: Vec<Profile> = self.profiles.lock().unwrap().values().cloned().collect();
        for p in &snapshot {
            ProfileStore::new(dir.join(file_name(&p.fingerprint))).save(p)?;
        }
        Ok(snapshot.len())
    }

    /// Load every decodable `.hpmprof` file in `dir` into the
    /// repository (skipping corrupt or unreadable files — a damaged
    /// spill directory must not stop the daemon). Returns how many
    /// profiles were installed. A missing directory installs zero.
    pub fn preload(&self, dir: &Path) -> usize {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return 0;
        };
        let mut loaded = 0;
        let mut paths: Vec<_> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "hpmprof"))
            .collect();
        paths.sort();
        for path in paths {
            let Ok(p) = ProfileStore::new(&path).load_any() else {
                continue;
            };
            self.profiles
                .lock()
                .unwrap()
                .insert(key_of(&p.fingerprint), p);
            loaded += 1;
        }
        loaded
    }
}

/// Deterministic spill file name for a fingerprint. The workload label
/// is sanitized into `[A-Za-z0-9_-]` so it stays a portable path
/// component.
fn file_name(fp: &Fingerprint) -> String {
    let label: String = fp
        .workload
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!(
        "{:016x}-{:016x}-{label}.hpmprof",
        fp.program_hash, fp.config_hash
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::new(n, 2, "db")
    }

    fn fresh_run(fp_: Fingerprint, misses: u64) -> Profile {
        let mut p = Profile::new(fp_);
        p.record_field("String", "value", misses);
        p.seal_run();
        p
    }

    #[test]
    fn checkout_miss_then_merge_then_warm() {
        let repo = SharedProfileRepo::new();
        assert!(repo.checkout(&fp(1)).is_none());
        repo.merge(&fresh_run(fp(1), 100), 0.5);
        let warm = repo.checkout(&fp(1)).expect("warm after merge");
        assert_eq!(warm.field_weight("String", "value"), 100.0);
        assert_eq!(repo.runs_for(&fp(1)), 1);
        assert!(repo.checkout(&fp(2)).is_none(), "other fingerprints cold");
        let stats = repo.stats();
        assert_eq!(stats.checkouts, 3);
        assert_eq!(stats.warm_checkouts, 1);
        assert_eq!(stats.cold_checkouts, 2);
        assert_eq!(stats.merges, 1);
    }

    #[test]
    fn merge_applies_decay_like_the_file_store() {
        let repo = SharedProfileRepo::new();
        repo.merge(&fresh_run(fp(1), 100), 0.5);
        repo.merge(&fresh_run(fp(1), 10), 0.5);
        let p = repo.checkout(&fp(1)).unwrap();
        assert_eq!(p.field_weight("String", "value"), 60.0, "100*0.5 + 10");
        assert_eq!(p.runs, 2);
    }

    #[test]
    fn concurrent_checkout_merge_is_consistent() {
        let repo = SharedProfileRepo::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let repo = &repo;
                s.spawn(move || {
                    for i in 0..50 {
                        let _ = repo.checkout(&fp(t % 2));
                        repo.merge(&fresh_run(fp(t % 2), i + 1), 0.5);
                    }
                });
            }
        });
        assert_eq!(repo.len(), 2);
        let stats = repo.stats();
        assert_eq!(stats.checkouts, 200);
        assert_eq!(stats.merges, 200);
        // 100 merges per fingerprint, whatever the interleaving.
        assert_eq!(repo.runs_for(&fp(0)), 100);
        assert_eq!(repo.runs_for(&fp(1)), 100);
    }

    #[test]
    fn persist_and_preload_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "hpmopt-shared-repo-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let repo = SharedProfileRepo::new();
        repo.merge(&fresh_run(fp(1), 100), 0.5);
        repo.merge(&fresh_run(fp(2), 50), 0.5);
        assert_eq!(repo.persist(&dir).unwrap(), 2);

        let back = SharedProfileRepo::new();
        assert_eq!(back.preload(&dir), 2);
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.checkout(&fp(1))
                .unwrap()
                .field_weight("String", "value"),
            100.0
        );
        assert_eq!(back.preload(Path::new("/nonexistent/dir")), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
