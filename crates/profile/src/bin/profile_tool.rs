//! `hpmopt-profile` — inspect, diff, and merge persisted profile files.
//!
//! ```text
//! hpmopt-profile inspect FILE
//! hpmopt-profile diff A B
//! hpmopt-profile merge -o OUT [--decay D] PRIOR FRESH
//! ```
//!
//! `merge` applies the same exponential decay the runtime uses at
//! shutdown: `PRIOR` weights are multiplied by `D` (default 0.5), then
//! `FRESH`'s last-run misses are added; the result is written to `OUT`.
//! Merging requires matching fingerprints — profiles of different
//! programs or machine configurations must not be blended.

use std::process::ExitCode;

use hpmopt_profile::{inspect, Profile, ProfileStore};

fn usage() -> ExitCode {
    eprintln!("usage: hpmopt-profile inspect FILE");
    eprintln!("       hpmopt-profile diff A B");
    eprintln!("       hpmopt-profile merge -o OUT [--decay D] PRIOR FRESH");
    ExitCode::FAILURE
}

fn load(path: &str) -> Result<Profile, ExitCode> {
    ProfileStore::new(path).load_any().map_err(|reason| {
        eprintln!("{path}: {reason}");
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("inspect") => {
            let [_, file] = args.as_slice() else {
                return usage();
            };
            match load(file) {
                Ok(p) => {
                    print!("{}", inspect::render(&p));
                    ExitCode::SUCCESS
                }
                Err(code) => code,
            }
        }
        Some("diff") => {
            let [_, a, b] = args.as_slice() else {
                return usage();
            };
            match (load(a), load(b)) {
                (Ok(pa), Ok(pb)) => {
                    print!("{}", inspect::diff(&pa, &pb));
                    ExitCode::SUCCESS
                }
                (Err(code), _) | (_, Err(code)) => code,
            }
        }
        Some("merge") => {
            let mut out: Option<&str> = None;
            let mut decay = 0.5f64;
            let mut files: Vec<&str> = Vec::new();
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "-o" | "--out" => match it.next() {
                        Some(p) => out = Some(p),
                        None => return usage(),
                    },
                    "--decay" => match it.next().and_then(|d| d.parse::<f64>().ok()) {
                        Some(d) if (0.0..=1.0).contains(&d) => decay = d,
                        _ => {
                            eprintln!("--decay expects a number in [0, 1]");
                            return usage();
                        }
                    },
                    f => files.push(f),
                }
            }
            let (Some(out), [prior_path, fresh_path]) = (out, files.as_slice()) else {
                return usage();
            };
            let (prior, fresh) = match (load(prior_path), load(fresh_path)) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(code), _) | (_, Err(code)) => return code,
            };
            if prior.fingerprint != fresh.fingerprint {
                eprintln!("refusing to merge: fingerprints differ");
                eprintln!("{}", inspect::diff(&prior, &fresh));
                return ExitCode::FAILURE;
            }
            let mut merged = prior;
            merged.merge_run(&fresh, decay);
            match ProfileStore::new(out).save(&merged) {
                Ok(bytes) => {
                    println!(
                        "wrote {out} ({bytes} bytes, {} runs, {} fields)",
                        merged.runs,
                        merged.fields.len()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot write {out}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
