//! Human-readable rendering for the `hpmopt-profile` tool: inspect one
//! profile, or diff two.

use crate::{DecisionKind, Profile};

fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str("  ");
            out.push_str(cell);
            for _ in cell.len()..widths[i] {
                out.push(' ');
            }
        }
        out.push('\n');
    };
    render(
        &mut out,
        &headers.iter().map(|h| (*h).to_string()).collect::<Vec<_>>(),
    );
    for row in rows {
        render(&mut out, row);
    }
    out
}

fn weight(v: f64) -> String {
    format!("{v:.1}")
}

/// Render one profile as aligned text: fingerprint, field histogram,
/// decision log.
#[must_use]
pub fn render(p: &Profile) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "profile: workload={} runs={} fields={} decisions={}\n",
        if p.fingerprint.workload.is_empty() {
            "?"
        } else {
            &p.fingerprint.workload
        },
        p.runs,
        p.fields.len(),
        p.decisions.len()
    ));
    out.push_str(&format!(
        "fingerprint: program={:016x} config={:016x}\n\n",
        p.fingerprint.program_hash, p.fingerprint.config_hash
    ));

    let rows: Vec<Vec<String>> = p
        .fields
        .iter()
        .map(|f| {
            vec![
                format!("{}::{}", f.class, f.field),
                weight(f.weight),
                f.last_run_misses.to_string(),
            ]
        })
        .collect();
    out.push_str("field miss histogram (decayed weight, hottest first):\n");
    out.push_str(&table(&["field", "weight", "last run"], &rows));

    out.push_str("\ndecision log (most recent run):\n");
    if p.decisions.is_empty() {
        out.push_str("  (empty)\n");
    } else {
        let rows: Vec<Vec<String>> = p
            .decisions
            .iter()
            .map(|d| {
                vec![
                    d.cycles.to_string(),
                    d.kind.name().to_string(),
                    if d.field.is_empty() {
                        d.class.clone()
                    } else {
                        format!("{}::{}", d.class, d.field)
                    },
                ]
            })
            .collect();
        out.push_str(&table(&["cycles", "action", "target"], &rows));
    }
    let reverted = p.reverted_classes();
    if !reverted.is_empty() {
        out.push_str(&format!(
            "\nclasses blocked from re-seeding (last action = revert): {}\n",
            reverted.join(", ")
        ));
    }
    out
}

/// Render the differences between two profiles: fingerprint deltas and
/// per-field weight changes.
#[must_use]
pub fn diff(a: &Profile, b: &Profile) -> String {
    let mut out = String::new();
    if a.fingerprint != b.fingerprint {
        out.push_str("fingerprints differ:\n");
        out.push_str(&format!(
            "  a: workload={} program={:016x} config={:016x}\n",
            a.fingerprint.workload, a.fingerprint.program_hash, a.fingerprint.config_hash
        ));
        out.push_str(&format!(
            "  b: workload={} program={:016x} config={:016x}\n\n",
            b.fingerprint.workload, b.fingerprint.program_hash, b.fingerprint.config_hash
        ));
    }
    out.push_str(&format!("runs: {} -> {}\n\n", a.runs, b.runs));

    let mut names: Vec<(String, String)> = Vec::new();
    for f in a.fields.iter().chain(&b.fields) {
        let key = (f.class.clone(), f.field.clone());
        if !names.contains(&key) {
            names.push(key);
        }
    }
    let mut rows = Vec::new();
    for (class, field) in &names {
        let wa = a.field_weight(class, field);
        let wb = b.field_weight(class, field);
        if (wa - wb).abs() < f64::EPSILON {
            continue;
        }
        rows.push(vec![
            format!("{class}::{field}"),
            weight(wa),
            weight(wb),
            format!("{:+.1}", wb - wa),
        ]);
    }
    if rows.is_empty() {
        out.push_str("field weights: identical\n");
    } else {
        out.push_str("field weight changes:\n");
        out.push_str(&table(&["field", "a", "b", "delta"], &rows));
    }

    let enables = |p: &Profile| {
        p.decisions
            .iter()
            .filter(|d| matches!(d.kind, DecisionKind::Enabled | DecisionKind::WarmStarted))
            .count()
    };
    out.push_str(&format!(
        "\ndecisions (enabled or warm-started): {} -> {}\n",
        enables(a),
        enables(b)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fingerprint;

    fn sample() -> Profile {
        let mut p = Profile::new(Fingerprint::new(0xabc, 0xdef, "db"));
        p.record_field("String", "value", 80);
        p.record_field("Node", "next", 3);
        p.record_decision("String", "value", DecisionKind::Enabled, 5_000);
        p.seal_run();
        p
    }

    #[test]
    fn render_shows_fields_and_log() {
        let text = render(&sample());
        assert!(text.contains("workload=db"));
        assert!(text.contains("String::value"));
        assert!(text.contains("enabled"));
        assert!(text.contains("runs=1"));
    }

    #[test]
    fn render_flags_reverted_classes() {
        let mut p = sample();
        p.record_decision("String", "", DecisionKind::Reverted, 9_000);
        assert!(render(&p).contains("blocked from re-seeding"));
    }

    #[test]
    fn diff_reports_weight_deltas() {
        let a = sample();
        let mut b = a.clone();
        b.merge_run(&a, 0.5);
        let text = diff(&a, &b);
        assert!(text.contains("runs: 1 -> 2"));
        assert!(text.contains("String::value"));
        assert!(!text.contains("fingerprints differ"));
    }

    #[test]
    fn diff_of_identical_profiles_is_quiet() {
        let a = sample();
        let text = diff(&a, &a);
        assert!(text.contains("field weights: identical"));
    }
}
