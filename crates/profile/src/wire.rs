//! Little-endian byte-level primitives for the on-disk format.
//!
//! The workspace is dependency-free, so serialization is hand-rolled:
//! a growing [`ByteWriter`], a bounds-checked [`ByteReader`] whose
//! every read can fail with [`ProfileError::Truncated`], and the
//! FNV-1a hash used both as the payload checksum and (by
//! `hpmopt-core`) as the fingerprint hash function.

use crate::format::ProfileError;

/// 64-bit FNV-1a over a byte slice.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Incremental FNV-1a hasher for callers that hash structured data
/// without materializing one big buffer.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// Start a fresh hash.
    #[must_use]
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Feed bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Feed one little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feed a length-prefixed string (so `"ab","c"` ≠ `"a","bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The digest so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (bit-exact round
    /// trip, NaN included).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a `u32` length prefix followed by the UTF-8 bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// The encoded bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian decoder over a borrowed buffer.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProfileError> {
        if self.remaining() < n {
            return Err(ProfileError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Truncated`] when the buffer is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, ProfileError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Truncated`] when fewer than 4 bytes remain.
    pub fn get_u32(&mut self) -> Result<u32, ProfileError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Truncated`] when fewer than 8 bytes remain.
    pub fn get_u64(&mut self) -> Result<u64, ProfileError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Truncated`] when fewer than 8 bytes remain.
    pub fn get_f64(&mut self) -> Result<f64, ProfileError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Truncated`] when the prefix overruns the buffer,
    /// [`ProfileError::Malformed`] on invalid UTF-8.
    pub fn get_str(&mut self) -> Result<String, ProfileError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProfileError::Malformed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX);
        w.put_f64(-1.25);
        w.put_str("Class::field");
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_f64().unwrap(), -1.25);
        assert_eq!(r.get_str().unwrap(), "Class::field");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reads_past_end_fail_cleanly() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.get_u64().unwrap_err(), ProfileError::Truncated);
        // The failed read consumed nothing; smaller reads still work.
        assert_eq!(r.get_u8().unwrap(), 1);
    }

    #[test]
    fn string_prefix_cannot_overrun() {
        let mut w = ByteWriter::new();
        w.put_u32(1000); // length prefix far beyond the buffer
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_str().unwrap_err(), ProfileError::Truncated);
    }

    #[test]
    fn invalid_utf8_is_malformed() {
        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_u8(0xff);
        w.put_u8(0xfe);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_str().unwrap_err(), ProfileError::Malformed);
    }

    #[test]
    fn fnv_matches_incremental() {
        let bytes = b"hello profile";
        let mut h = Fnv1a::new();
        h.write(bytes);
        assert_eq!(h.finish(), fnv1a(bytes));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
