//! The on-disk repository: load-with-validation and atomic save.
//!
//! [`ProfileStore::load`] is the warm-start gate: it returns
//! [`LoadOutcome::Warm`] only for a structurally valid, checksummed
//! profile whose fingerprint matches the current run. Everything else —
//! missing file, I/O error, corruption, version skew, fingerprint
//! mismatch — is a [`LoadOutcome::Cold`] with the reason attached, so
//! the runtime can count *why* warm starts fail without ever failing
//! the run itself.

use std::io;
use std::path::{Path, PathBuf};

use crate::format::ProfileError;
use crate::{Fingerprint, Profile};

/// Why a load degraded to a cold start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColdReason {
    /// No profile file exists yet (the first run of a workload).
    Missing,
    /// The file exists but could not be read.
    Io(io::ErrorKind),
    /// The file was read but could not be decoded.
    Format(ProfileError),
    /// The file decoded but was measured on a different program or
    /// machine configuration.
    FingerprintMismatch,
}

impl std::fmt::Display for ColdReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColdReason::Missing => f.write_str("no profile file"),
            ColdReason::Io(kind) => write!(f, "i/o error: {kind}"),
            ColdReason::Format(e) => write!(f, "{e}"),
            ColdReason::FingerprintMismatch => f.write_str("fingerprint mismatch"),
        }
    }
}

/// Result of a warm-start load attempt. Never an error: a profile
/// repository must not be able to break the run it is accelerating.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadOutcome {
    /// A valid prior profile for this exact (program, config).
    Warm(Profile),
    /// Start from scratch; the reason is for telemetry.
    Cold(ColdReason),
}

/// Path-addressed profile repository.
#[derive(Debug, Clone)]
pub struct ProfileStore {
    path: PathBuf,
}

impl ProfileStore {
    /// A store at `path` (conventionally `<name>.hpmprof`).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        ProfileStore { path: path.into() }
    }

    /// The backing file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Load and decode the profile without fingerprint validation (the
    /// inspect/diff/merge tool works on any valid file).
    ///
    /// # Errors
    ///
    /// [`ColdReason`] describing why the file is unusable.
    pub fn load_any(&self) -> Result<Profile, ColdReason> {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(ColdReason::Missing),
            Err(e) => return Err(ColdReason::Io(e.kind())),
        };
        Profile::decode(&bytes).map_err(ColdReason::Format)
    }

    /// Load for warm start: decode plus fingerprint validation.
    pub fn load(&self, expected: &Fingerprint) -> LoadOutcome {
        match self.load_any() {
            Ok(p) if p.fingerprint == *expected => LoadOutcome::Warm(p),
            Ok(_) => LoadOutcome::Cold(ColdReason::FingerprintMismatch),
            Err(reason) => LoadOutcome::Cold(reason),
        }
    }

    /// Persist `profile`, creating parent directories as needed. The
    /// write goes through a sibling temp file and a rename, so a crash
    /// mid-save leaves the previous profile intact (a torn write would
    /// otherwise be caught by the checksum and cost one warm start).
    ///
    /// The temp name is unique per process *and* per save (pid plus a
    /// process-wide sequence number), so concurrent savers — the serve
    /// daemon runs many jobs against one repository — never interleave
    /// writes into the same temp file. Each saver renames its own fully
    /// written file over the destination; the last rename wins and every
    /// intermediate state is a complete, checksummed profile.
    ///
    /// # Errors
    ///
    /// Any underlying I/O error.
    pub fn save(&self, profile: &Profile) -> io::Result<u64> {
        static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let bytes = profile.encode();
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = self
            .path
            .with_extension(format!("hpmprof.{}.{}.tmp", std::process::id(), seq));
        std::fs::write(&tmp, &bytes)?;
        if let Err(e) = std::fs::rename(&tmp, &self.path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        Ok(bytes.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DecisionKind;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "hpmopt-store-test-{}-{tag}-{n}.hpmprof",
            std::process::id()
        ))
    }

    fn sample(fp: Fingerprint) -> Profile {
        let mut p = Profile::new(fp);
        p.record_field("String", "value", 50);
        p.record_decision("String", "value", DecisionKind::Enabled, 1000);
        p.seal_run();
        p
    }

    #[test]
    fn save_then_load_is_warm() {
        let fp = Fingerprint::new(7, 8, "db");
        let store = ProfileStore::new(temp_path("warm"));
        let p = sample(fp.clone());
        store.save(&p).unwrap();
        assert_eq!(store.load(&fp), LoadOutcome::Warm(p));
        std::fs::remove_file(store.path()).unwrap();
    }

    #[test]
    fn missing_file_is_cold() {
        let store = ProfileStore::new(temp_path("missing"));
        assert_eq!(
            store.load(&Fingerprint::new(1, 2, "x")),
            LoadOutcome::Cold(ColdReason::Missing)
        );
    }

    #[test]
    fn fingerprint_mismatch_is_cold() {
        let store = ProfileStore::new(temp_path("mismatch"));
        store.save(&sample(Fingerprint::new(7, 8, "db"))).unwrap();
        for other in [
            Fingerprint::new(9, 8, "db"),   // different program
            Fingerprint::new(7, 9, "db"),   // different config
            Fingerprint::new(7, 8, "jess"), // different workload label
        ] {
            assert_eq!(
                store.load(&other),
                LoadOutcome::Cold(ColdReason::FingerprintMismatch)
            );
        }
        std::fs::remove_file(store.path()).unwrap();
    }

    #[test]
    fn garbage_file_is_cold_format() {
        let store = ProfileStore::new(temp_path("garbage"));
        std::fs::write(store.path(), b"this is not a profile").unwrap();
        assert_eq!(
            store.load(&Fingerprint::new(1, 2, "x")),
            LoadOutcome::Cold(ColdReason::Format(ProfileError::BadMagic))
        );
        std::fs::remove_file(store.path()).unwrap();
    }

    #[test]
    fn interleaved_writers_never_tear_the_file() {
        // Two threads hammer the same path with save/load/merge
        // sequences. Whatever interleaving the scheduler produces, a
        // concurrent load must only ever observe a complete, checksummed
        // profile (or, transiently on some platforms, no file at all) —
        // never a torn or checksum-failing one. This is the multi-writer
        // regime the serve daemon puts the store in.
        let fp = Fingerprint::new(7, 8, "db");
        let store = ProfileStore::new(temp_path("interleave"));
        store.save(&sample(fp.clone())).unwrap();
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let store = store.clone();
                let fp = fp.clone();
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    for i in 0..200u64 {
                        let mut p = match store.load(&fp) {
                            LoadOutcome::Warm(p) => p,
                            LoadOutcome::Cold(ColdReason::Missing) => sample(fp.clone()),
                            LoadOutcome::Cold(reason) => {
                                panic!("writer {t} iteration {i}: torn read: {reason}")
                            }
                        };
                        let mut fresh = Profile::new(fp.clone());
                        fresh.record_field("Node", "next", t * 1000 + i);
                        fresh.seal_run();
                        p.merge_run(&fresh, 0.5);
                        store.save(&p).unwrap();
                    }
                });
            }
        });
        assert!(
            matches!(store.load(&fp), LoadOutcome::Warm(_)),
            "final state decodes"
        );
        std::fs::remove_file(store.path()).unwrap();
    }

    #[test]
    fn save_overwrites_atomically() {
        let fp = Fingerprint::new(7, 8, "db");
        let store = ProfileStore::new(temp_path("overwrite"));
        let mut p = sample(fp.clone());
        store.save(&p).unwrap();
        p.record_field("Node", "next", 5);
        p.seal_run();
        store.save(&p).unwrap();
        assert_eq!(store.load(&fp), LoadOutcome::Warm(p));
        assert!(!store.path().with_extension("hpmprof.tmp").exists());
        std::fs::remove_file(store.path()).unwrap();
    }
}
