//! The versioned, checksummed on-disk profile format.
//!
//! ```text
//! +---------+----------+-------------+----------------+-----------+
//! | "HPMP"  | version  | payload_len |    payload     | checksum  |
//! | 4 bytes | u32 LE   | u64 LE      | payload_len B  | u64 LE    |
//! +---------+----------+-------------+----------------+-----------+
//! ```
//!
//! The checksum is FNV-1a over the payload bytes, so any bit flip in
//! the body is caught before the payload is parsed. The payload itself
//! is length-prefixed throughout, so a parse of corrupt-but-checksummed
//! data can only fail cleanly ([`ProfileError::Truncated`] /
//! [`ProfileError::Malformed`]), never panic or over-allocate: every
//! element count is bounded by the remaining payload size before a
//! vector is reserved.
//!
//! Payload layout (all integers LE):
//!
//! ```text
//! program_hash u64 · config_hash u64 · workload str
//! runs u32
//! field_count u32 · { class str · field str · weight f64 · last_run u64 }*
//! decision_count u32 · { class str · field str · kind u8 · cycles u64 }*
//! hot_method_count u32 · { name str }*          (v2+; absent in v1)
//! ```

use crate::wire::{fnv1a, ByteReader, ByteWriter};
use crate::{DecisionKind, DecisionRecord, FieldProfile, Fingerprint, Profile};

/// File magic: "HPMP" (HPM Profile).
pub const MAGIC: [u8; 4] = *b"HPMP";

/// Current format version. Version 1 files (no hot-method section) are
/// still readable — they load with an empty hot-method list. Anything
/// else is [`ProfileError::UnsupportedVersion`] and degrades to a cold
/// start.
pub const FORMAT_VERSION: u32 = 2;

/// Why a profile file could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileError {
    /// Fewer bytes than a structurally complete file requires.
    Truncated,
    /// The magic number is not `HPMP` — not a profile file.
    BadMagic,
    /// The format version is not [`FORMAT_VERSION`].
    UnsupportedVersion,
    /// The payload checksum does not match (bit rot, partial write).
    ChecksumMismatch,
    /// Checksummed but structurally invalid payload (invalid UTF-8,
    /// unknown decision kind, trailing garbage). In practice this means
    /// the file was written by something else entirely.
    Malformed,
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProfileError::Truncated => "truncated profile file",
            ProfileError::BadMagic => "not a profile file (bad magic)",
            ProfileError::UnsupportedVersion => "unsupported profile format version",
            ProfileError::ChecksumMismatch => "profile checksum mismatch",
            ProfileError::Malformed => "malformed profile payload",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ProfileError {}

/// Smallest possible encoding of a string: the `u32` length prefix.
/// Used to bound element counts before allocating.
const MIN_STR: usize = 4;
/// Minimum encoded size of one field record.
const MIN_FIELD: usize = MIN_STR * 2 + 8 + 8;
/// Minimum encoded size of one decision record.
const MIN_DECISION: usize = MIN_STR * 2 + 1 + 8;

impl Profile {
    /// Serialize to the on-disk format.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut p = ByteWriter::new();
        p.put_u64(self.fingerprint.program_hash);
        p.put_u64(self.fingerprint.config_hash);
        p.put_str(&self.fingerprint.workload);
        p.put_u32(self.runs);
        p.put_u32(self.fields.len() as u32);
        for f in &self.fields {
            p.put_str(&f.class);
            p.put_str(&f.field);
            p.put_f64(f.weight);
            p.put_u64(f.last_run_misses);
        }
        p.put_u32(self.decisions.len() as u32);
        for d in &self.decisions {
            p.put_str(&d.class);
            p.put_str(&d.field);
            p.put_u8(d.kind as u8);
            p.put_u64(d.cycles);
        }
        p.put_u32(self.hot_methods.len() as u32);
        for m in &self.hot_methods {
            p.put_str(m);
        }
        let payload = p.finish();

        let mut w = ByteWriter::new();
        w.put_u8(MAGIC[0]);
        w.put_u8(MAGIC[1]);
        w.put_u8(MAGIC[2]);
        w.put_u8(MAGIC[3]);
        w.put_u32(FORMAT_VERSION);
        w.put_u64(payload.len() as u64);
        let mut out = w.finish();
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out
    }

    /// Parse the on-disk format.
    ///
    /// # Errors
    ///
    /// Any [`ProfileError`]; decoding never panics on hostile input.
    pub fn decode(bytes: &[u8]) -> Result<Profile, ProfileError> {
        let mut r = ByteReader::new(bytes);
        let magic = [r.get_u8()?, r.get_u8()?, r.get_u8()?, r.get_u8()?];
        if magic != MAGIC {
            return Err(ProfileError::BadMagic);
        }
        let version = r.get_u32()?;
        if version != FORMAT_VERSION && version != 1 {
            return Err(ProfileError::UnsupportedVersion);
        }
        let payload_len = r.get_u64()? as usize;
        // checksum (8 bytes) must follow the payload.
        if r.remaining() < payload_len + 8 {
            return Err(ProfileError::Truncated);
        }
        if r.remaining() > payload_len + 8 {
            return Err(ProfileError::Malformed);
        }
        let header = bytes.len() - r.remaining();
        let payload = &bytes[header..header + payload_len];
        let stored = u64::from_le_bytes(bytes[header + payload_len..].try_into().unwrap());
        if fnv1a(payload) != stored {
            return Err(ProfileError::ChecksumMismatch);
        }

        let mut r = ByteReader::new(payload);
        let program_hash = r.get_u64()?;
        let config_hash = r.get_u64()?;
        let workload = r.get_str()?;
        let runs = r.get_u32()?;

        let field_count = r.get_u32()? as usize;
        if field_count > r.remaining() / MIN_FIELD {
            return Err(ProfileError::Malformed);
        }
        let mut fields = Vec::with_capacity(field_count);
        for _ in 0..field_count {
            fields.push(FieldProfile {
                class: r.get_str()?,
                field: r.get_str()?,
                weight: r.get_f64()?,
                last_run_misses: r.get_u64()?,
            });
        }

        let decision_count = r.get_u32()? as usize;
        if decision_count > r.remaining() / MIN_DECISION {
            return Err(ProfileError::Malformed);
        }
        let mut decisions = Vec::with_capacity(decision_count);
        for _ in 0..decision_count {
            decisions.push(DecisionRecord {
                class: r.get_str()?,
                field: r.get_str()?,
                kind: DecisionKind::from_u8(r.get_u8()?).ok_or(ProfileError::Malformed)?,
                cycles: r.get_u64()?,
            });
        }

        // v2 appends the hot-method list; v1 files simply end here.
        let mut hot_methods = Vec::new();
        if version >= 2 {
            let hot_count = r.get_u32()? as usize;
            if hot_count > r.remaining() / MIN_STR {
                return Err(ProfileError::Malformed);
            }
            hot_methods.reserve(hot_count);
            for _ in 0..hot_count {
                hot_methods.push(r.get_str()?);
            }
        }
        if r.remaining() != 0 {
            return Err(ProfileError::Malformed);
        }

        Ok(Profile {
            fingerprint: Fingerprint {
                program_hash,
                config_hash,
                workload,
            },
            runs,
            fields,
            decisions,
            hot_methods,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profile {
        let mut p = Profile::new(Fingerprint::new(0x1111, 0x2222, "db"));
        p.record_field("String", "value", 97);
        p.record_field("Node", "next", 12);
        p.record_decision("String", "value", DecisionKind::Enabled, 41_000);
        p.record_decision("String", "", DecisionKind::Reverted, 90_000);
        p.seal_run();
        p
    }

    #[test]
    fn encode_decode_round_trips() {
        let p = sample();
        assert_eq!(Profile::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn hot_methods_round_trip() {
        let mut p = sample();
        p.record_hot_method("main");
        p.record_hot_method("inner");
        p.record_hot_method("main"); // deduplicated
        let back = Profile::decode(&p.encode()).unwrap();
        assert_eq!(back.hot_methods, vec!["main", "inner"]);
        assert_eq!(back, p);
    }

    #[test]
    fn version_1_files_load_with_empty_hot_methods() {
        // Hand-roll a v1 file: identical payload minus the trailing
        // hot-method section, version byte 1.
        let p = sample();
        let mut w = ByteWriter::new();
        w.put_u64(p.fingerprint.program_hash);
        w.put_u64(p.fingerprint.config_hash);
        w.put_str(&p.fingerprint.workload);
        w.put_u32(p.runs);
        w.put_u32(p.fields.len() as u32);
        for f in &p.fields {
            w.put_str(&f.class);
            w.put_str(&f.field);
            w.put_f64(f.weight);
            w.put_u64(f.last_run_misses);
        }
        w.put_u32(p.decisions.len() as u32);
        for d in &p.decisions {
            w.put_str(&d.class);
            w.put_str(&d.field);
            w.put_u8(d.kind as u8);
            w.put_u64(d.cycles);
        }
        let payload = w.finish();
        let mut file = ByteWriter::new();
        for b in MAGIC {
            file.put_u8(b);
        }
        file.put_u32(1);
        file.put_u64(payload.len() as u64);
        let mut bytes = file.finish();
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());

        let back = Profile::decode(&bytes).unwrap();
        assert_eq!(back, p, "v1 payload decodes identically");
        assert!(back.hot_methods.is_empty());
    }

    #[test]
    fn empty_profile_round_trips() {
        let p = Profile::new(Fingerprint::new(0, 0, ""));
        assert_eq!(Profile::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn every_truncation_point_fails_cleanly() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            let err = Profile::decode(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, ProfileError::Truncated | ProfileError::Malformed),
                "prefix of {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn any_payload_bit_flip_is_caught() {
        let good = sample().encode();
        // Flip one bit in every payload byte (skipping the 16-byte
        // header) and require the checksum to catch it.
        for i in 16..good.len() - 8 {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert_eq!(
                Profile::decode(&bad).unwrap_err(),
                ProfileError::ChecksumMismatch,
                "flip at byte {i}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_detected() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert_eq!(Profile::decode(&bytes).unwrap_err(), ProfileError::BadMagic);

        let mut bytes = sample().encode();
        bytes[4] = 99;
        assert_eq!(
            Profile::decode(&bytes).unwrap_err(),
            ProfileError::UnsupportedVersion
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert_eq!(
            Profile::decode(&bytes).unwrap_err(),
            ProfileError::Malformed
        );
    }

    #[test]
    fn absurd_counts_do_not_allocate() {
        // A payload claiming u32::MAX fields must be rejected by the
        // size bound, not by an OOM in Vec::with_capacity.
        let mut p = ByteWriter::new();
        p.put_u64(1);
        p.put_u64(2);
        p.put_str("w");
        p.put_u32(1);
        p.put_u32(u32::MAX); // field count
        let payload = p.finish();
        let mut w = ByteWriter::new();
        w.put_u8(b'H');
        w.put_u8(b'P');
        w.put_u8(b'M');
        w.put_u8(b'P');
        w.put_u32(FORMAT_VERSION);
        w.put_u64(payload.len() as u64);
        let mut bytes = w.finish();
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        assert_eq!(
            Profile::decode(&bytes).unwrap_err(),
            ProfileError::Malformed
        );
    }
}
