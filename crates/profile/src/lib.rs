//! Persistent profile repository: cross-run warm start for the
//! co-allocation optimizer.
//!
//! The paper's online pipeline learns everything from scratch on every
//! VM invocation: PEBS samples accumulate until per-field miss counts
//! cross the decision threshold, so every run pays the full sampling
//! warm-up before the first optimization fires. This crate persists
//! what a run learned — per-class/per-field miss histograms, the policy
//! decision log, and a workload fingerprint — so the *next* run of the
//! same program can seed its monitor and policy at startup and install
//! co-allocation decisions at the first nursery collection. (The paper
//! has no persistence; see DESIGN.md for the deviation note.)
//!
//! Like `hpmopt-telemetry`, the crate is dependency-free: the on-disk
//! format is hand-rolled little-endian serialization
//! ([`wire`]/[`format`]) with a magic number, a format version, and an
//! FNV-1a checksum over the payload. Loading is total: corruption,
//! truncation, version skew, or a fingerprint mismatch never panic —
//! they degrade to a cold start ([`store::LoadOutcome::Cold`]) that the
//! runtime surfaces through `profile.*` telemetry counters.
//!
//! The crate speaks *names* (class/field strings) and plain integers,
//! not `hpmopt-bytecode` ids: ids are only meaningful for the program
//! instance that issued them, while a profile must survive across
//! processes. `hpmopt-core` resolves names back to ids when seeding.
//!
//! ```
//! use hpmopt_profile::{DecisionKind, Fingerprint, Profile};
//!
//! let mut p = Profile::new(Fingerprint::new(0xfeed, 0xbeef, "db"));
//! p.record_field("String", "value", 120);
//! p.record_decision("String", "value", DecisionKind::Enabled, 40_000);
//! p.seal_run();
//!
//! let bytes = p.encode();
//! let back = Profile::decode(&bytes).expect("round trip");
//! assert_eq!(back, p);
//! assert_eq!(back.field_weight("String", "value"), 120.0);
//! ```

pub mod format;
pub mod inspect;
pub mod shared;
pub mod store;
pub mod wire;

pub use format::{ProfileError, FORMAT_VERSION, MAGIC};
pub use shared::{RepoConfig, RepoStats, SharedProfileRepo};
pub use store::{ColdReason, LoadOutcome, ProfileStore};

/// Identity of the (program, machine) a profile was measured on.
///
/// A profile is only valid warm-start input for a run with the *same*
/// fingerprint: miss histograms are meaningless for different code, and
/// decisions tuned for one cache geometry can hurt another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// Hash of the program structure (classes, fields, method bodies).
    pub program_hash: u64,
    /// Hash of the heap + memory-hierarchy configuration.
    pub config_hash: u64,
    /// Human-readable workload label (informational, but also matched).
    pub workload: String,
}

impl Fingerprint {
    /// Build a fingerprint from its components.
    #[must_use]
    pub fn new(program_hash: u64, config_hash: u64, workload: &str) -> Self {
        Fingerprint {
            program_hash,
            config_hash,
            workload: workload.to_string(),
        }
    }
}

/// What the policy did, as recorded in the decision log of the most
/// recent run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum DecisionKind {
    /// Adaptive decision enabled from live samples.
    Enabled = 0,
    /// Externally pinned decision (the Figure 8 experiment).
    Pinned = 1,
    /// Decision reverted by the feedback assessor.
    Reverted = 2,
    /// Decision installed at startup from this repository.
    WarmStarted = 3,
}

impl DecisionKind {
    /// Decode from the wire byte.
    #[must_use]
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(DecisionKind::Enabled),
            1 => Some(DecisionKind::Pinned),
            2 => Some(DecisionKind::Reverted),
            3 => Some(DecisionKind::WarmStarted),
            _ => None,
        }
    }

    /// Stable lowercase name for rendering.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DecisionKind::Enabled => "enabled",
            DecisionKind::Pinned => "pinned",
            DecisionKind::Reverted => "reverted",
            DecisionKind::WarmStarted => "warm_started",
        }
    }
}

/// One entry of the persisted decision log.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Class name the decision concerns.
    pub class: String,
    /// Field name (empty for class-wide actions like reverts).
    pub field: String,
    /// What happened.
    pub kind: DecisionKind,
    /// Simulated cycle of the event within its run.
    pub cycles: u64,
}

/// Decay-merged miss history of one reference field.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldProfile {
    /// Owning class name.
    pub class: String,
    /// Field name within the class.
    pub field: String,
    /// Exponentially decayed sampled-miss weight across runs. After a
    /// merge with decay `d`: `weight = old_weight * d + latest_misses`.
    pub weight: f64,
    /// Raw sampled misses of the most recent run (undecayed, for
    /// inspect/diff).
    pub last_run_misses: u64,
}

/// A complete persisted profile: fingerprint, run count, per-field miss
/// histogram, and the most recent run's decision log.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Which (program, config) this was measured on.
    pub fingerprint: Fingerprint,
    /// Number of runs merged into [`FieldProfile::weight`].
    pub runs: u32,
    /// Per-field decayed miss histogram, hottest first after
    /// [`Profile::seal_run`].
    pub fields: Vec<FieldProfile>,
    /// Decision log of the most recent run.
    pub decisions: Vec<DecisionRecord>,
    /// Methods the tiered JIT promoted past baseline in the most recent
    /// run (bare method names). A warm start folds these into the VM's
    /// compilation plan so hot methods skip the tier-1 warm-up. Format
    /// v1 files load with this empty.
    pub hot_methods: Vec<String>,
}

impl Profile {
    /// An empty profile for `fingerprint` (zero runs).
    #[must_use]
    pub fn new(fingerprint: Fingerprint) -> Self {
        Profile {
            fingerprint,
            runs: 0,
            fields: Vec::new(),
            decisions: Vec::new(),
            hot_methods: Vec::new(),
        }
    }

    /// Record a method the JIT promoted past baseline this run
    /// (deduplicated, insertion order preserved).
    pub fn record_hot_method(&mut self, name: &str) {
        if !self.hot_methods.iter().any(|m| m == name) {
            self.hot_methods.push(name.to_string());
        }
    }

    /// Record (or accumulate) one field's sampled misses for the
    /// current run.
    pub fn record_field(&mut self, class: &str, field: &str, misses: u64) {
        match self.field_mut(class, field) {
            Some(f) => {
                f.weight += misses as f64;
                f.last_run_misses += misses;
            }
            None => self.fields.push(FieldProfile {
                class: class.to_string(),
                field: field.to_string(),
                weight: misses as f64,
                last_run_misses: misses,
            }),
        }
    }

    /// Append one decision-log entry.
    pub fn record_decision(&mut self, class: &str, field: &str, kind: DecisionKind, cycles: u64) {
        self.decisions.push(DecisionRecord {
            class: class.to_string(),
            field: field.to_string(),
            kind,
            cycles,
        });
    }

    /// Close the current run: bump the run count and sort fields
    /// hottest-first (ties broken by name for determinism).
    pub fn seal_run(&mut self) {
        self.runs += 1;
        self.sort_fields();
    }

    fn sort_fields(&mut self) {
        self.fields.sort_by(|a, b| {
            b.weight
                .total_cmp(&a.weight)
                .then_with(|| a.class.cmp(&b.class))
                .then_with(|| a.field.cmp(&b.field))
        });
    }

    fn field_mut(&mut self, class: &str, field: &str) -> Option<&mut FieldProfile> {
        self.fields
            .iter_mut()
            .find(|f| f.class == class && f.field == field)
    }

    /// Deterministic approximation of this profile's in-memory
    /// footprint, used by [`SharedProfileRepo`]'s byte-capacity bound.
    /// Counts struct sizes plus owned string bytes; deliberately
    /// ignores allocator overhead and `Vec` spare capacity so the same
    /// logical profile always reports the same size on every platform.
    #[must_use]
    pub fn approx_bytes(&self) -> u64 {
        let mut bytes = std::mem::size_of::<Profile>() as u64;
        bytes += self.fingerprint.workload.len() as u64;
        for f in &self.fields {
            bytes += std::mem::size_of::<FieldProfile>() as u64;
            bytes += (f.class.len() + f.field.len()) as u64;
        }
        for d in &self.decisions {
            bytes += std::mem::size_of::<DecisionRecord>() as u64;
            bytes += (d.class.len() + d.field.len()) as u64;
        }
        for m in &self.hot_methods {
            bytes += std::mem::size_of::<String>() as u64 + m.len() as u64;
        }
        bytes
    }

    /// Current decayed weight of a field (0 when unknown).
    #[must_use]
    pub fn field_weight(&self, class: &str, field: &str) -> f64 {
        self.fields
            .iter()
            .find(|f| f.class == class && f.field == field)
            .map_or(0.0, |f| f.weight)
    }

    /// Classes whose *last* decision-log entry is a revert: their
    /// decisions regressed and must not be re-seeded next run.
    #[must_use]
    pub fn reverted_classes(&self) -> Vec<&str> {
        let mut last: Vec<(&str, DecisionKind)> = Vec::new();
        for d in &self.decisions {
            match last.iter_mut().find(|(c, _)| *c == d.class) {
                Some(slot) => slot.1 = d.kind,
                None => last.push((&d.class, d.kind)),
            }
        }
        last.iter()
            .filter(|(_, k)| *k == DecisionKind::Reverted)
            .map(|(c, _)| *c)
            .collect()
    }

    /// Merge a freshly measured run into this (prior) profile with
    /// exponential decay: old weights are multiplied by `decay`
    /// (clamped to `[0, 1]`), then the fresh run's misses are added.
    /// The decision log and `last_run_misses` are replaced by the fresh
    /// run's; the run count accumulates.
    pub fn merge_run(&mut self, fresh: &Profile, decay: f64) {
        let decay = decay.clamp(0.0, 1.0);
        for f in &mut self.fields {
            f.weight *= decay;
            f.last_run_misses = 0;
        }
        for f in &fresh.fields {
            match self.field_mut(&f.class, &f.field) {
                Some(prior) => {
                    prior.weight += f.last_run_misses as f64;
                    prior.last_run_misses = f.last_run_misses;
                }
                None => self.fields.push(FieldProfile {
                    class: f.class.clone(),
                    field: f.field.clone(),
                    weight: f.last_run_misses as f64,
                    last_run_misses: f.last_run_misses,
                }),
            }
        }
        self.decisions = fresh.decisions.clone();
        self.hot_methods = fresh.hot_methods.clone();
        self.runs += 1;
        self.sort_fields();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> Fingerprint {
        Fingerprint::new(1, 2, "db")
    }

    #[test]
    fn record_accumulates_and_seal_sorts() {
        let mut p = Profile::new(fp());
        p.record_field("A", "x", 5);
        p.record_field("B", "y", 20);
        p.record_field("A", "x", 5);
        p.seal_run();
        assert_eq!(p.runs, 1);
        assert_eq!(p.fields[0].class, "B", "hottest first");
        assert_eq!(p.field_weight("A", "x"), 10.0);
        assert_eq!(p.fields[1].last_run_misses, 10);
    }

    #[test]
    fn merge_decays_prior_weight() {
        let mut prior = Profile::new(fp());
        prior.record_field("A", "x", 100);
        prior.record_field("A", "gone", 40);
        prior.seal_run();

        let mut fresh = Profile::new(fp());
        fresh.record_field("A", "x", 10);
        fresh.record_field("B", "new", 30);
        fresh.record_decision("A", "x", DecisionKind::Enabled, 7);
        fresh.seal_run();

        prior.merge_run(&fresh, 0.5);
        assert_eq!(prior.runs, 2);
        assert_eq!(prior.field_weight("A", "x"), 60.0, "100*0.5 + 10");
        assert_eq!(prior.field_weight("A", "gone"), 20.0, "decays toward 0");
        assert_eq!(prior.field_weight("B", "new"), 30.0);
        assert_eq!(prior.decisions.len(), 1, "log replaced by fresh run");
    }

    #[test]
    fn reverted_classes_use_last_entry() {
        let mut p = Profile::new(fp());
        p.record_decision("A", "x", DecisionKind::Enabled, 1);
        p.record_decision("A", "", DecisionKind::Reverted, 2);
        p.record_decision("B", "y", DecisionKind::Enabled, 3);
        p.record_decision("C", "", DecisionKind::Reverted, 4);
        p.record_decision("C", "z", DecisionKind::Enabled, 5);
        assert_eq!(p.reverted_classes(), vec!["A"], "B active, C re-enabled");
    }

    #[test]
    fn decision_kind_round_trips() {
        for kind in [
            DecisionKind::Enabled,
            DecisionKind::Pinned,
            DecisionKind::Reverted,
            DecisionKind::WarmStarted,
        ] {
            assert_eq!(DecisionKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(DecisionKind::from_u8(200), None);
    }
}
