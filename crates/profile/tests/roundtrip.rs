//! Integration round-trip tests against the public API, including the
//! deliberately-damaged-file cases CI gates on: a profile written to
//! disk and then corrupted, truncated, or version-bumped must load as a
//! clean cold start, never a panic.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use hpmopt_profile::{
    ColdReason, DecisionKind, Fingerprint, LoadOutcome, Profile, ProfileError, ProfileStore,
};

fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "hpmopt-roundtrip-{}-{tag}-{n}.hpmprof",
        std::process::id()
    ))
}

fn sample() -> Profile {
    let mut p = Profile::new(Fingerprint::new(0xfeed_f00d, 0xc0ff_ee00, "db"));
    p.record_field("String", "value", 321);
    p.record_field("Entry", "key", 44);
    p.record_field("Entry", "items", 7);
    p.record_decision("String", "value", DecisionKind::Enabled, 40_123);
    p.record_decision("Entry", "key", DecisionKind::Enabled, 55_000);
    p.record_decision("Entry", "", DecisionKind::Reverted, 90_001);
    p.seal_run();
    p
}

#[test]
fn disk_round_trip_preserves_everything() {
    let p = sample();
    let path = temp_path("ok");
    let store = ProfileStore::new(&path);
    store.save(&p).unwrap();
    match store.load(&p.fingerprint) {
        LoadOutcome::Warm(back) => assert_eq!(back, p),
        LoadOutcome::Cold(reason) => panic!("expected warm, got cold: {reason}"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncated_file_loads_cold() {
    let p = sample();
    let path = temp_path("truncated");
    let bytes = p.encode();
    // Every strict prefix must be rejected; spot-check a spread of
    // truncation points including mid-header and mid-payload.
    for len in [0, 3, 10, 16, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..len]).unwrap();
        let store = ProfileStore::new(&path);
        match store.load(&p.fingerprint) {
            LoadOutcome::Cold(ColdReason::Format(
                ProfileError::Truncated | ProfileError::Malformed,
            )) => {}
            other => panic!("prefix of {len} bytes gave {other:?}"),
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corrupted_file_loads_cold() {
    let p = sample();
    let path = temp_path("corrupt");
    let mut bytes = p.encode();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(
        ProfileStore::new(&path).load(&p.fingerprint),
        LoadOutcome::Cold(ColdReason::Format(ProfileError::ChecksumMismatch))
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn future_version_loads_cold() {
    let p = sample();
    let path = temp_path("version");
    let mut bytes = p.encode();
    bytes[4] = bytes[4].wrapping_add(1); // bump the u32 LE version field
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(
        ProfileStore::new(&path).load(&p.fingerprint),
        LoadOutcome::Cold(ColdReason::Format(ProfileError::UnsupportedVersion))
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn merge_chain_keeps_files_loadable() {
    // Simulate three runs persisting through the same store, as the
    // runtime does at shutdown.
    let path = temp_path("chain");
    let store = ProfileStore::new(&path);
    let fp = sample().fingerprint.clone();

    let mut on_disk = Profile::new(fp.clone());
    for _ in 0..3 {
        let fresh = sample();
        on_disk.merge_run(&fresh, 0.5);
        store.save(&on_disk).unwrap();
        match store.load(&fp) {
            LoadOutcome::Warm(back) => on_disk = back,
            LoadOutcome::Cold(reason) => panic!("chain broke: {reason}"),
        }
    }
    assert_eq!(on_disk.runs, 3);
    // 321 + decayed history: 321*0.25 + 321*0.5 + 321 = 561.75.
    assert!((on_disk.field_weight("String", "value") - 561.75).abs() < 1e-9);
    std::fs::remove_file(&path).unwrap();
}
