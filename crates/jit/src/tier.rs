//! Execution-count-driven tier management.
//!
//! Replaces the old binary baseline/opt adaptive-optimization split
//! (Jikes RVM AOS, Section 3.2 of the paper) with a [`TierManager`]:
//!
//! - **Tier 1 (opt):** the VM samples the currently executing method on a
//!   timer; a method sampled [`JitConfig::tier1_threshold`] times is
//!   recompiled with the optimizing tier. This is arithmetic-for-
//!   arithmetic the legacy AOS behaviour, so with tier 2 disabled the
//!   tiered VM reproduces the old one bit-for-bit.
//! - **Tier 2 (region):** taken backward branches in opt-compiled methods
//!   tick every block in the branch's target→source span (the loop
//!   body); a target block crossing
//!   [`JitConfig::tier2_threshold`] promotes the method to *region*
//!   compilation over its hottest [`JitConfig::max_region_blocks`]
//!   blocks. Leaving the region deoptimizes back to baseline and bans the
//!   method from further tier-2 promotion (no deopt loops).
//!
//! For reproducible experiments a *pseudo-adaptive* [`CompilationPlan`]
//! pins the exact set of opt-compiled methods, as the paper's evaluation
//! does ("Each program runs with a pre-generated compilation plan",
//! Section 6.1).

use std::collections::HashMap;

use hpmopt_bytecode::MethodId;

/// Tiered-JIT configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JitConfig {
    /// Whether timer-based tier-1 recompilation is active.
    pub tier1_enabled: bool,
    /// Cycles between call-stack samples (1 ms at 3 GHz by default,
    /// matching Jikes' timer tick).
    pub sample_period_cycles: u64,
    /// Samples of one method that trigger tier-1 (opt) recompilation.
    pub tier1_threshold: u32,
    /// Whether back-edge-driven tier-2 (region) compilation is active.
    /// Off by default: region code deoptimizes, which the legacy
    /// baseline/opt pipeline never did.
    pub tier2_enabled: bool,
    /// Executions of one basic block (counted at taken backward branches
    /// in opt code) that trigger region compilation of its method.
    pub tier2_threshold: u64,
    /// Maximum number of basic blocks in a compiled region (the entry
    /// block is always included).
    pub max_region_blocks: usize,
    /// Code-cache capacity in bytes. `None` (the default) is the legacy
    /// unbounded immortal code space; `Some(n)` enables freeing, LRU
    /// eviction, and reuse of code-address ranges once live code exceeds
    /// `n` bytes.
    pub code_cache_capacity_bytes: Option<u64>,
}

impl Default for JitConfig {
    fn default() -> Self {
        JitConfig {
            tier1_enabled: true,
            sample_period_cycles: 3_000_000,
            tier1_threshold: 3,
            tier2_enabled: false,
            tier2_threshold: 1_000,
            max_region_blocks: 32,
            code_cache_capacity_bytes: None,
        }
    }
}

/// A pseudo-adaptive compilation plan: the set of methods to opt-compile
/// eagerly, bypassing timer-driven recompilation entirely.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompilationPlan {
    methods: Vec<MethodId>,
}

impl CompilationPlan {
    /// Create a plan from the methods to opt-compile.
    #[must_use]
    pub fn new(mut methods: Vec<MethodId>) -> Self {
        methods.sort_unstable();
        methods.dedup();
        CompilationPlan { methods }
    }

    /// The planned methods, sorted.
    #[must_use]
    pub fn methods(&self) -> &[MethodId] {
        &self.methods
    }

    /// Whether `m` is in the plan.
    #[must_use]
    pub fn contains(&self, m: MethodId) -> bool {
        self.methods.binary_search(&m).is_ok()
    }

    /// Number of planned methods.
    #[must_use]
    pub fn len(&self) -> usize {
        self.methods.len()
    }

    /// Whether the plan is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }
}

/// Tier-promotion state: timer samples (tier 1) and back-edge block
/// counts (tier 2).
#[derive(Debug, Clone)]
pub struct TierManager {
    config: JitConfig,
    samples: HashMap<MethodId, u32>,
    next_sample_at: u64,
    opt_compiled: Vec<MethodId>,
    block_counts: HashMap<(MethodId, u32), u64>,
    region_compiled: Vec<MethodId>,
    tier2_banned: Vec<MethodId>,
}

impl TierManager {
    /// Create a tier manager with the given configuration.
    #[must_use]
    pub fn new(config: JitConfig) -> Self {
        TierManager {
            next_sample_at: config.sample_period_cycles,
            config,
            samples: HashMap::new(),
            opt_compiled: Vec::new(),
            block_counts: HashMap::new(),
            region_compiled: Vec::new(),
            tier2_banned: Vec::new(),
        }
    }

    /// The configuration this manager was built with.
    #[must_use]
    pub fn config(&self) -> &JitConfig {
        &self.config
    }

    /// Whether the tier-1 timer fires at `cycles` (the interpreter calls
    /// this on its slow path; cheap check first).
    #[must_use]
    pub fn should_sample(&self, cycles: u64) -> bool {
        self.config.tier1_enabled && cycles >= self.next_sample_at
    }

    /// Record a timer sample of the executing method; returns
    /// `Some(method)` when the method just crossed the tier-1
    /// recompilation threshold.
    pub fn sample(&mut self, method: MethodId, cycles: u64) -> Option<MethodId> {
        self.next_sample_at =
            cycles - (cycles % self.config.sample_period_cycles) + self.config.sample_period_cycles;
        if self.opt_compiled.contains(&method) {
            return None;
        }
        let n = self.samples.entry(method).or_insert(0);
        *n += 1;
        if *n >= self.config.tier1_threshold {
            self.opt_compiled.push(method);
            Some(method)
        } else {
            None
        }
    }

    /// Record a taken backward branch from `source_block` to
    /// `target_block` in an opt-compiled method. Every block in the
    /// `target..=source` span — the natural loop body, since block ids
    /// ascend with bytecode index — gets one execution tick, so the
    /// region later built from these counts covers the whole loop and
    /// not just the branch target. Returns `true` when the target block
    /// just crossed the tier-2 threshold and the method should be
    /// region-compiled.
    pub fn record_back_edge(
        &mut self,
        method: MethodId,
        target_block: u32,
        source_block: u32,
    ) -> bool {
        if !self.config.tier2_enabled
            || self.region_compiled.contains(&method)
            || self.tier2_banned.contains(&method)
        {
            return false;
        }
        for b in target_block..=source_block.max(target_block) {
            *self.block_counts.entry((method, b)).or_insert(0) += 1;
        }
        if self.block_counts[&(method, target_block)] >= self.config.tier2_threshold {
            self.region_compiled.push(method);
            true
        } else {
            false
        }
    }

    /// The hottest blocks of `method` by back-edge count — at most
    /// [`JitConfig::max_region_blocks`], always including the entry block
    /// 0, sorted ascending. This is the region the tier-2 compiler emits.
    #[must_use]
    pub fn hot_region(&self, method: MethodId) -> Vec<u32> {
        let mut blocks: Vec<(u32, u64)> = self
            .block_counts
            .iter()
            .filter(|&(&(m, _), _)| m == method)
            .map(|(&(_, b), &c)| (b, c))
            .collect();
        // Hottest first; ties broken by block id so the region is
        // deterministic regardless of hash-map iteration order.
        blocks.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let cap = self.config.max_region_blocks.max(1);
        let mut region: Vec<u32> = blocks.iter().map(|&(b, _)| b).take(cap).collect();
        if !region.contains(&0) {
            if region.len() >= cap {
                region.pop();
            }
            region.push(0);
        }
        region.sort_unstable();
        region
    }

    /// Deoptimize `method` back to baseline: it leaves both promoted
    /// sets, its tier-1 sample count resets (it can earn opt again), and
    /// it is banned from further tier-2 promotion so a region that keeps
    /// escaping cannot ping-pong.
    pub fn deopt(&mut self, method: MethodId) {
        self.opt_compiled.retain(|&m| m != method);
        self.region_compiled.retain(|&m| m != method);
        self.samples.remove(&method);
        self.block_counts.retain(|&(m, _), _| m != method);
        if !self.tier2_banned.contains(&method) {
            self.tier2_banned.push(method);
        }
    }

    /// Methods promoted to the optimizing tier so far, in promotion
    /// order. Running once and feeding the result to
    /// [`CompilationPlan::new`] produces the paper's pseudo-adaptive
    /// setup.
    #[must_use]
    pub fn opt_compiled(&self) -> &[MethodId] {
        &self.opt_compiled
    }

    /// Methods promoted to region compilation so far, in promotion order.
    #[must_use]
    pub fn region_compiled(&self) -> &[MethodId] {
        &self.region_compiled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tier1_config(period: u64, threshold: u32) -> JitConfig {
        JitConfig {
            sample_period_cycles: period,
            tier1_threshold: threshold,
            ..JitConfig::default()
        }
    }

    #[test]
    fn threshold_triggers_recompilation_once() {
        let mut tiers = TierManager::new(tier1_config(100, 2));
        let m = MethodId(5);
        assert!(tiers.should_sample(100));
        assert_eq!(tiers.sample(m, 100), None);
        assert!(!tiers.should_sample(150), "next tick at 200");
        assert_eq!(tiers.sample(m, 200), Some(m));
        assert_eq!(tiers.sample(m, 300), None, "already opt-compiled");
        assert_eq!(tiers.opt_compiled(), &[m]);
    }

    #[test]
    fn disabled_tier1_never_samples() {
        let tiers = TierManager::new(JitConfig {
            tier1_enabled: false,
            ..JitConfig::default()
        });
        assert!(!tiers.should_sample(u64::MAX));
    }

    #[test]
    fn plan_membership() {
        let plan = CompilationPlan::new(vec![MethodId(3), MethodId(1), MethodId(3)]);
        assert_eq!(plan.len(), 2, "deduplicated");
        assert!(plan.contains(MethodId(1)));
        assert!(plan.contains(MethodId(3)));
        assert!(!plan.contains(MethodId(2)));
        assert!(!plan.is_empty());
    }

    #[test]
    fn different_methods_tracked_independently() {
        let mut tiers = TierManager::new(tier1_config(10, 2));
        assert_eq!(tiers.sample(MethodId(0), 10), None);
        assert_eq!(tiers.sample(MethodId(1), 20), None);
        assert_eq!(tiers.sample(MethodId(0), 30), Some(MethodId(0)));
        assert_eq!(tiers.sample(MethodId(1), 40), Some(MethodId(1)));
    }

    #[test]
    fn back_edges_promote_to_region_once() {
        let mut tiers = TierManager::new(JitConfig {
            tier2_enabled: true,
            tier2_threshold: 3,
            ..JitConfig::default()
        });
        let m = MethodId(7);
        assert!(!tiers.record_back_edge(m, 2, 4));
        assert!(!tiers.record_back_edge(m, 2, 4));
        assert!(
            tiers.record_back_edge(m, 2, 4),
            "third hit crosses threshold"
        );
        assert_eq!(tiers.region_compiled(), &[m]);
        assert!(
            !tiers.record_back_edge(m, 2, 4),
            "already region-compiled, no re-promotion"
        );
    }

    #[test]
    fn back_edge_span_counts_the_whole_loop_body() {
        let mut tiers = TierManager::new(JitConfig {
            tier2_enabled: true,
            tier2_threshold: 2,
            ..JitConfig::default()
        });
        let m = MethodId(3);
        assert!(!tiers.record_back_edge(m, 1, 3));
        assert!(tiers.record_back_edge(m, 1, 3));
        // Blocks 1..=3 all got ticks, so the region covers the loop body,
        // not just the branch target.
        assert_eq!(tiers.hot_region(m), vec![0, 1, 2, 3]);
    }

    #[test]
    fn tier2_disabled_counts_nothing() {
        let mut tiers = TierManager::new(JitConfig {
            tier2_enabled: false,
            tier2_threshold: 1,
            ..JitConfig::default()
        });
        assert!(!tiers.record_back_edge(MethodId(0), 0, 1));
        assert!(tiers.region_compiled().is_empty());
    }

    #[test]
    fn hot_region_keeps_entry_block_and_caps_size() {
        let mut tiers = TierManager::new(JitConfig {
            tier2_enabled: true,
            tier2_threshold: 100,
            max_region_blocks: 2,
            ..JitConfig::default()
        });
        let m = MethodId(1);
        for _ in 0..5 {
            tiers.record_back_edge(m, 3, 3);
        }
        for _ in 0..4 {
            tiers.record_back_edge(m, 4, 4);
        }
        // Entry block 0 was never a branch target but must be in the
        // region; the colder of the two counted blocks is dropped.
        assert_eq!(tiers.hot_region(m), vec![0, 3]);
    }

    #[test]
    fn deopt_resets_and_bans_tier2() {
        let mut tiers = TierManager::new(JitConfig {
            sample_period_cycles: 10,
            tier1_threshold: 1,
            tier2_enabled: true,
            tier2_threshold: 1,
            ..JitConfig::default()
        });
        let m = MethodId(9);
        assert_eq!(tiers.sample(m, 10), Some(m));
        assert!(tiers.record_back_edge(m, 1, 1));
        tiers.deopt(m);
        assert!(tiers.opt_compiled().is_empty());
        assert!(tiers.region_compiled().is_empty());
        assert!(
            !tiers.record_back_edge(m, 1, 1),
            "deopted method is banned from tier 2"
        );
        assert_eq!(tiers.sample(m, 20), Some(m), "tier 1 can re-promote");
    }
}
