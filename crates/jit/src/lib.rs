//! Tiered JIT compilation: code artifacts, tier management, and a
//! capacity-bounded, evicting code cache.
//!
//! This crate owns everything about compiled code as a *mutable*
//! resource:
//!
//! - [`code`] — the [`CompiledCode`] artifact and its machine-code map
//!   ([`McMap`]), moved here from `hpmopt-vm::machine` so that both the
//!   VM and the attribution pipeline depend on one definition.
//! - [`tier`] — the [`TierManager`], which replaces the old binary
//!   baseline/opt adaptive-optimization split with execution-count-driven
//!   tiers: a timer-sample threshold promotes a method to the optimizing
//!   tier (tier 1, exactly the Jikes AOS behaviour the paper relies on),
//!   and a back-edge block-count threshold promotes hot block sequences
//!   to region compilation (tier 2) with deoptimization back to baseline
//!   when execution leaves the region.
//! - [`cache`] — the [`CodeCache`]: unbounded bump allocation by default
//!   (bit-for-bit the legacy immortal code space), or a capacity-bounded
//!   mode that frees, evicts (LRU by last-sampled cycle), and *reuses*
//!   code-address ranges. Every free bumps a global **code epoch**;
//!   samples stamped with an older epoch that resolve into a retired
//!   range are counted and dropped, never misattributed.

pub mod cache;
pub mod code;
pub mod tier;

pub use cache::{CodeCache, FreedRange};
pub use code::{CompiledCode, McMap, Tier, GCMAP_ENTRY_BYTES, MCMAP_ENTRY_BYTES};
pub use tier::{CompilationPlan, JitConfig, TierManager};

/// Bytes per simulated machine instruction.
pub const MACH_INSTR_BYTES: u64 = 4;
