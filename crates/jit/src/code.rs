//! Compiled-code artifacts and machine-code maps.
//!
//! A [`CompiledCode`] is what a compilation tier produces for one method:
//! a contiguous range of machine instructions at concrete code addresses,
//! per-bytecode instruction counts (the cycle cost model), and the
//! machine-code map used to translate a sampled PC back to a bytecode
//! index (Section 4.2 of the paper).

use hpmopt_bytecode::MethodId;

use crate::MACH_INSTR_BYTES;

/// Compilation tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tier {
    /// Quick, unoptimized compilation (every method starts here).
    #[default]
    Baseline,
    /// The optimizing compiler (applied to hot methods at tier 1).
    Opt,
    /// Region compilation over the method's hot block sequence (tier 2);
    /// bytecodes outside the region deoptimize back to baseline.
    Region,
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tier::Baseline => f.write_str("baseline"),
            Tier::Opt => f.write_str("opt"),
            Tier::Region => f.write_str("region"),
        }
    }
}

/// Machine-code map: machine-instruction index → bytecode index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McMap {
    /// One entry per machine instruction (baseline code always has this;
    /// opt code gains it through the paper's compiler extension).
    Full(Vec<u32>),
    /// Entries only at GC points (the stock Jikes opt-compiler behaviour);
    /// sampled PCs between GC points cannot be attributed.
    GcPointsOnly(Vec<(u32, u32)>),
}

/// Bytes per full-map entry (packed machine-offset → bytecode-index).
pub const MCMAP_ENTRY_BYTES: u64 = 6;

/// Bytes per GC-map entry (bytecode index plus a reference map).
pub const GCMAP_ENTRY_BYTES: u64 = 12;

impl McMap {
    /// Bytecode index for machine instruction `mach_idx`, if mapped.
    #[must_use]
    pub fn lookup(&self, mach_idx: u32) -> Option<u32> {
        match self {
            McMap::Full(v) => v.get(mach_idx as usize).copied(),
            McMap::GcPointsOnly(v) => v
                .binary_search_by_key(&mach_idx, |&(m, _)| m)
                .ok()
                .map(|i| v[i].1),
        }
    }

    /// Size of this map in bytes (Table 2 accounting).
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        match self {
            McMap::Full(v) => v.len() as u64 * MCMAP_ENTRY_BYTES,
            McMap::GcPointsOnly(v) => v.len() as u64 * MCMAP_ENTRY_BYTES,
        }
    }
}

/// The compiled artifact for one method at one tier.
#[derive(Debug, Clone)]
pub struct CompiledCode {
    /// The method this code implements.
    pub method: MethodId,
    /// Tier that produced it.
    pub tier: Tier,
    /// First code address.
    pub code_start: u64,
    /// Code epoch at install time. The epoch advances every time the code
    /// cache frees a range; a sample stamped with an older epoch cannot be
    /// attributed to this artifact (its PC may belong to whatever occupied
    /// the range before). Always 0 with an unbounded cache, which never
    /// frees.
    pub install_epoch: u64,
    /// Machine-instruction count of each bytecode, as a cumulative sum:
    /// bytecode `i` occupies machine instructions
    /// `bc_end[i-1]..bc_end[i]` (with `bc_end[-1] = 0`).
    bc_end: Vec<u32>,
    /// PC → bytecode translation map.
    pub mc_map: McMap,
    /// Machine indices of GC points (allocations and calls); sized like
    /// the stock GC maps for the space comparison in Table 2.
    pub gc_points: Vec<u32>,
}

impl CompiledCode {
    /// Assemble an artifact from per-bytecode machine-instruction counts.
    #[must_use]
    pub fn new(
        method: MethodId,
        tier: Tier,
        code_start: u64,
        counts: &[u32],
        mc_map: McMap,
        gc_points: Vec<u32>,
    ) -> Self {
        let mut bc_end = Vec::with_capacity(counts.len());
        let mut total = 0;
        for &c in counts {
            total += c;
            bc_end.push(total);
        }
        CompiledCode {
            method,
            tier,
            code_start,
            install_epoch: 0,
            bc_end,
            mc_map,
            gc_points,
        }
    }

    /// Total machine instructions.
    #[must_use]
    pub fn machine_len(&self) -> u32 {
        self.bc_end.last().copied().unwrap_or(0)
    }

    /// Machine-code size in bytes.
    #[must_use]
    pub fn machine_code_bytes(&self) -> u64 {
        u64::from(self.machine_len()) * MACH_INSTR_BYTES
    }

    /// One past the last code address.
    #[must_use]
    pub fn code_end(&self) -> u64 {
        self.code_start + self.machine_code_bytes()
    }

    /// Number of machine instructions lowered for bytecode `bc`.
    #[must_use]
    pub fn mach_count(&self, bc: usize) -> u32 {
        let end = self.bc_end[bc];
        let start = if bc == 0 { 0 } else { self.bc_end[bc - 1] };
        end - start
    }

    /// Machine address of the *last* machine instruction of bytecode `bc`
    /// — the one that performs the memory access for heap-access
    /// bytecodes; this is the PC a precise event sample reports.
    #[must_use]
    pub fn mem_pc(&self, bc: usize) -> u64 {
        let end = self.bc_end[bc];
        debug_assert!(end > 0);
        self.code_start + u64::from(end - 1) * MACH_INSTR_BYTES
    }

    /// GC-map size in bytes (Table 2 accounting).
    #[must_use]
    pub fn gc_map_bytes(&self) -> u64 {
        self.gc_points.len() as u64 * GCMAP_ENTRY_BYTES
    }

    /// Translate a code address inside this artifact to a bytecode index.
    #[must_use]
    pub fn bytecode_at(&self, pc: u64) -> Option<u32> {
        if pc < self.code_start || pc >= self.code_end() {
            return None;
        }
        let mach_idx = ((pc - self.code_start) / MACH_INSTR_BYTES) as u32;
        self.mc_map.lookup(mach_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact() -> CompiledCode {
        // 3 bytecodes lowered to 2, 3, 1 machine instructions.
        let counts = [2, 3, 1];
        let full: Vec<u32> = vec![0, 0, 1, 1, 1, 2];
        CompiledCode::new(
            MethodId(0),
            Tier::Baseline,
            0x4000_0000,
            &counts,
            McMap::Full(full),
            vec![4],
        )
    }

    #[test]
    fn cumulative_counts() {
        let c = artifact();
        assert_eq!(c.machine_len(), 6);
        assert_eq!(c.mach_count(0), 2);
        assert_eq!(c.mach_count(1), 3);
        assert_eq!(c.mach_count(2), 1);
        assert_eq!(c.machine_code_bytes(), 24);
    }

    #[test]
    fn mem_pc_is_last_instruction_of_bytecode() {
        let c = artifact();
        assert_eq!(c.mem_pc(0), 0x4000_0000 + 4);
        assert_eq!(c.mem_pc(1), 0x4000_0000 + 16);
    }

    #[test]
    fn full_map_translates_every_pc() {
        let c = artifact();
        assert_eq!(c.bytecode_at(0x4000_0000), Some(0));
        assert_eq!(c.bytecode_at(0x4000_0000 + 8), Some(1));
        assert_eq!(c.bytecode_at(0x4000_0000 + 20), Some(2));
        assert_eq!(c.bytecode_at(0x4000_0000 + 24), None, "past the end");
        assert_eq!(c.bytecode_at(0x3fff_fffc), None, "before the start");
    }

    #[test]
    fn gc_points_only_map_has_holes() {
        let m = McMap::GcPointsOnly(vec![(2, 1), (5, 3)]);
        assert_eq!(m.lookup(2), Some(1));
        assert_eq!(m.lookup(5), Some(3));
        assert_eq!(m.lookup(3), None);
    }

    #[test]
    fn full_map_lookup_out_of_range_is_none() {
        let m = McMap::Full(vec![0, 0, 1]);
        assert_eq!(m.lookup(0), Some(0));
        assert_eq!(m.lookup(2), Some(1));
        assert_eq!(m.lookup(3), None, "one past the last instruction");
        assert_eq!(m.lookup(u32::MAX), None);
    }

    #[test]
    fn gc_points_only_lookup_out_of_range_is_none() {
        let m = McMap::GcPointsOnly(vec![(2, 1), (5, 3)]);
        assert_eq!(m.lookup(0), None);
        assert_eq!(m.lookup(6), None);
        assert_eq!(m.lookup(u32::MAX), None);
    }

    #[test]
    fn map_sizes_count_entries() {
        let c = artifact();
        assert_eq!(c.mc_map.size_bytes(), 6 * MCMAP_ENTRY_BYTES);
        assert_eq!(c.gc_map_bytes(), GCMAP_ENTRY_BYTES);
    }

    #[test]
    fn tier_display_names() {
        assert_eq!(Tier::Baseline.to_string(), "baseline");
        assert_eq!(Tier::Opt.to_string(), "opt");
        assert_eq!(Tier::Region.to_string(), "region");
    }
}
