//! The code cache: where compiled artifacts live.
//!
//! Two modes, selected by [`JitConfig::code_cache_capacity_bytes`]:
//!
//! - **Unbounded** (`None`, the default): a pure bump allocator over the
//!   immortal code space — byte-for-byte the legacy `code_cursor`
//!   behaviour. Nothing is ever freed (recompiling a method leaks its old
//!   range, exactly as before), so the code epoch stays 0 forever and
//!   every historical sample remains attributable.
//! - **Bounded** (`Some(capacity)`): ranges are freed when a method is
//!   recompiled or deoptimized, kept in a coalescing first-fit free list,
//!   and **reused**. When neither the free list nor the remaining bump
//!   space fits a new allocation, the least-recently-*sampled* live range
//!   whose method is not pinned (on the call stack or mid-install) is
//!   evicted. Every free advances the global **code epoch**; the epoch a
//!   sample was captured at decides downstream whether its PC may still
//!   be attributed to the artifact now occupying that range.
//!
//! [`JitConfig::code_cache_capacity_bytes`]: crate::JitConfig

use hpmopt_bytecode::MethodId;

use crate::Tier;

/// A code-address range returned to the cache: the caller must
/// unregister it from its method table and retire it from sample
/// attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreedRange {
    /// Method whose code occupied the range.
    pub method: MethodId,
    /// Tier of the freed artifact.
    pub tier: Tier,
    /// First freed address.
    pub start: u64,
    /// One past the last freed address.
    pub end: u64,
    /// Code epoch *after* this free — samples stamped with an earlier
    /// epoch may carry PCs from inside `start..end` and must not be
    /// attributed to whatever is installed there next.
    pub epoch: u64,
    /// True when the range was evicted for capacity (vs freed because its
    /// method was recompiled or deoptimized).
    pub evicted: bool,
}

#[derive(Debug, Clone)]
struct LiveRange {
    start: u64,
    end: u64,
    method: MethodId,
    tier: Tier,
    last_touch: u64,
}

/// Bump (unbounded) or free-list + LRU-evicting (bounded) allocator for
/// compiled-code address ranges.
#[derive(Debug, Clone)]
pub struct CodeCache {
    base: u64,
    capacity: Option<u64>,
    cursor: u64,
    /// Live ranges, sorted by start. Only maintained in bounded mode —
    /// the unbounded cache never frees, so it needs no registry.
    live: Vec<LiveRange>,
    /// Free ranges `(start, end)`, sorted by start, coalesced.
    free: Vec<(u64, u64)>,
    live_bytes: u64,
    epoch: u64,
    evictions: u64,
    frees: u64,
}

impl CodeCache {
    /// Create a cache over code addresses starting at `base`.
    #[must_use]
    pub fn new(base: u64, capacity: Option<u64>) -> Self {
        CodeCache {
            base,
            capacity,
            cursor: base,
            live: Vec::new(),
            free: Vec::new(),
            live_bytes: 0,
            epoch: 0,
            evictions: 0,
            frees: 0,
        }
    }

    /// Whether the cache is capacity-bounded (frees and evicts).
    #[must_use]
    pub fn bounded(&self) -> bool {
        self.capacity.is_some()
    }

    /// Configured capacity, if bounded.
    #[must_use]
    pub fn capacity(&self) -> Option<u64> {
        self.capacity
    }

    /// Current code epoch (number of ranges freed so far).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bytes of live code.
    #[must_use]
    pub fn live_bytes(&self) -> u64 {
        if self.bounded() {
            self.live_bytes
        } else {
            self.cursor - self.base
        }
    }

    /// Ranges evicted for capacity so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Ranges freed so far (evictions plus recompile/deopt frees).
    #[must_use]
    pub fn frees(&self) -> u64 {
        self.frees
    }

    /// Allocate `bytes` of code space for `method` at `tier`. `now` is
    /// the current simulated cycle (the LRU timestamp); `pinned` lists
    /// methods whose code must not be evicted (anything on the call
    /// stack, plus the method being installed). Returns the start
    /// address and any ranges evicted to make room — the caller must
    /// unregister each from its method table and retire it from sample
    /// attribution.
    pub fn alloc(
        &mut self,
        method: MethodId,
        tier: Tier,
        bytes: u64,
        now: u64,
        pinned: &[MethodId],
    ) -> (u64, Vec<FreedRange>) {
        let Some(capacity) = self.capacity else {
            let start = self.cursor;
            self.cursor += bytes;
            return (start, Vec::new());
        };
        let limit = self.base + capacity;
        let mut evicted = Vec::new();
        let start = loop {
            if let Some(start) = self.take_first_fit(bytes) {
                break start;
            }
            if self.cursor + bytes <= limit {
                let start = self.cursor;
                self.cursor += bytes;
                break start;
            }
            // Too big to ever fit, or nothing evictable left: overflow
            // the bump pointer rather than deadlock. The cache runs over
            // capacity until enough code dies.
            if bytes > capacity || !self.evict_lru(pinned, &mut evicted) {
                let start = self.cursor;
                self.cursor += bytes;
                break start;
            }
        };
        let pos = self.live.partition_point(|r| r.start < start);
        self.live.insert(
            pos,
            LiveRange {
                start,
                end: start + bytes,
                method,
                tier,
                last_touch: now,
            },
        );
        self.live_bytes += bytes;
        (start, evicted)
    }

    /// Free the live range of `method` starting at `start` (its old
    /// artifact, on recompile or deopt). No-op in unbounded mode — the
    /// legacy code space leaks dead ranges and keeps them attributable.
    pub fn free(&mut self, method: MethodId, start: u64) -> Option<FreedRange> {
        if !self.bounded() {
            return None;
        }
        let pos = self
            .live
            .iter()
            .position(|r| r.start == start && r.method == method)?;
        Some(self.release(pos, false))
    }

    /// Refresh the LRU timestamp of `method`'s live code — called when a
    /// timer sample lands in the method, so eviction preys on code that
    /// stopped being sampled.
    pub fn touch(&mut self, method: MethodId, now: u64) {
        if !self.bounded() {
            return;
        }
        for r in &mut self.live {
            if r.method == method {
                r.last_touch = now;
            }
        }
    }

    /// Evict the least-recently-touched non-pinned range; ties broken by
    /// lowest start address so eviction order is deterministic. Returns
    /// false when every live range is pinned.
    fn evict_lru(&mut self, pinned: &[MethodId], evicted: &mut Vec<FreedRange>) -> bool {
        let victim = self
            .live
            .iter()
            .enumerate()
            .filter(|(_, r)| !pinned.contains(&r.method))
            .min_by_key(|(_, r)| (r.last_touch, r.start))
            .map(|(i, _)| i);
        match victim {
            Some(i) => {
                let mut freed = self.release(i, true);
                freed.evicted = true;
                self.evictions += 1;
                evicted.push(freed);
                true
            }
            None => false,
        }
    }

    /// Remove live range `pos`, return its space to the free list
    /// (coalescing with neighbours), and advance the epoch.
    fn release(&mut self, pos: usize, evicted: bool) -> FreedRange {
        let r = self.live.remove(pos);
        self.live_bytes -= r.end - r.start;
        self.epoch += 1;
        self.frees += 1;
        self.insert_free(r.start, r.end);
        FreedRange {
            method: r.method,
            tier: r.tier,
            start: r.start,
            end: r.end,
            epoch: self.epoch,
            evicted,
        }
    }

    fn insert_free(&mut self, mut start: u64, mut end: u64) {
        let pos = self.free.partition_point(|&(s, _)| s < start);
        // Coalesce with the preceding and following free ranges.
        if pos > 0 && self.free[pos - 1].1 == start {
            start = self.free[pos - 1].0;
            self.free.remove(pos - 1);
            let pos = pos - 1;
            if pos < self.free.len() && self.free[pos].0 == end {
                end = self.free[pos].1;
                self.free.remove(pos);
            }
        } else if pos < self.free.len() && self.free[pos].0 == end {
            end = self.free[pos].1;
            self.free.remove(pos);
        }
        let pos = self.free.partition_point(|&(s, _)| s < start);
        self.free.insert(pos, (start, end));
    }

    /// First free range that fits `bytes`, splitting off the remainder.
    fn take_first_fit(&mut self, bytes: u64) -> Option<u64> {
        let i = self.free.iter().position(|&(s, e)| e - s >= bytes)?;
        let (s, e) = self.free[i];
        if e - s == bytes {
            self.free.remove(i);
        } else {
            self.free[i] = (s + bytes, e);
        }
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u64 = 0x4000_0000;

    #[test]
    fn unbounded_is_a_pure_bump_allocator() {
        let mut c = CodeCache::new(BASE, None);
        let (a, ev) = c.alloc(MethodId(0), Tier::Baseline, 40, 0, &[]);
        assert_eq!(a, BASE);
        assert!(ev.is_empty());
        let (b, _) = c.alloc(MethodId(1), Tier::Baseline, 24, 5, &[]);
        assert_eq!(b, BASE + 40, "contiguous, never reused");
        assert_eq!(c.free(MethodId(0), a), None, "unbounded never frees");
        assert_eq!(c.epoch(), 0);
        assert_eq!(c.live_bytes(), 64);
    }

    #[test]
    fn bounded_reuses_a_freed_range() {
        let mut c = CodeCache::new(BASE, Some(1024));
        let (a, _) = c.alloc(MethodId(0), Tier::Baseline, 40, 0, &[]);
        let freed = c.free(MethodId(0), a).expect("live range");
        assert_eq!((freed.start, freed.end), (a, a + 40));
        assert_eq!(freed.epoch, 1, "epoch advances on free");
        assert!(!freed.evicted);
        let (b, ev) = c.alloc(MethodId(1), Tier::Opt, 24, 10, &[]);
        assert_eq!(b, a, "freed range is reused first-fit");
        assert!(ev.is_empty());
        assert_eq!(c.frees(), 1);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn capacity_pressure_evicts_lru_and_skips_pinned() {
        let mut c = CodeCache::new(BASE, Some(100));
        let (a, _) = c.alloc(MethodId(0), Tier::Baseline, 40, 0, &[]);
        let (b, _) = c.alloc(MethodId(1), Tier::Baseline, 40, 1, &[]);
        // Method 0 is older but pinned; method 1 must be the victim.
        let (d, ev) = c.alloc(MethodId(2), Tier::Baseline, 40, 2, &[MethodId(0)]);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].method, MethodId(1));
        assert!(ev[0].evicted);
        assert_eq!(d, b, "reuses the evicted range");
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.epoch(), 1);
        // Touching refreshes LRU order: method 0, though older, is now
        // hotter than method 2.
        c.touch(MethodId(2), 3);
        c.touch(MethodId(0), 4);
        let (_, ev) = c.alloc(MethodId(3), Tier::Baseline, 40, 5, &[]);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].method, MethodId(2));
        let _ = a;
    }

    #[test]
    fn adjacent_frees_coalesce() {
        let mut c = CodeCache::new(BASE, Some(1024));
        let (a, _) = c.alloc(MethodId(0), Tier::Baseline, 40, 0, &[]);
        let (b, _) = c.alloc(MethodId(1), Tier::Baseline, 40, 0, &[]);
        c.free(MethodId(0), a).unwrap();
        c.free(MethodId(1), b).unwrap();
        // An 80-byte allocation only fits the free list if the two
        // 40-byte holes merged.
        let (d, ev) = c.alloc(MethodId(2), Tier::Baseline, 80, 1, &[]);
        assert_eq!(d, a);
        assert!(ev.is_empty());
        assert_eq!(c.epoch(), 2);
    }

    #[test]
    fn all_pinned_overflows_instead_of_deadlocking() {
        let mut c = CodeCache::new(BASE, Some(64));
        let (a, _) = c.alloc(MethodId(0), Tier::Baseline, 64, 0, &[]);
        let (b, ev) = c.alloc(MethodId(1), Tier::Baseline, 32, 1, &[MethodId(0)]);
        assert!(ev.is_empty(), "nothing evictable");
        assert_eq!(b, a + 64, "bump pointer overflows capacity");
        assert!(c.live_bytes() > 64);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn oversized_allocation_overflows_without_evicting() {
        let mut c = CodeCache::new(BASE, Some(64));
        c.alloc(MethodId(0), Tier::Baseline, 40, 0, &[]);
        let (_, ev) = c.alloc(MethodId(1), Tier::Baseline, 128, 1, &[]);
        assert!(
            ev.is_empty(),
            "evicting cannot make a > capacity allocation fit"
        );
        assert_eq!(c.evictions(), 0);
    }
}
