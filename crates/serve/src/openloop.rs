//! Open-loop (QPS-paced) latency benchmark.
//!
//! The closed-loop bench ([`crate::bench`]) measures steady-state
//! throughput: a new job starts only when a worker frees up, so queue
//! wait is invisible by construction. Production traffic is open-loop —
//! arrivals don't care whether the service is keeping up — and the
//! quantity that matters is the *queue-wait tail* under load,
//! especially for a light tenant sharing the service with a heavy one.
//! This module paces a seeded job schedule at a fixed arrival rate on
//! the **simulated** clock ([`setup::MONITOR_CPU_HZ`]) and reports
//! p50/p95/p99 queue-wait and service-time histograms.
//!
//! Determinism contract: like the closed-loop bench, the printed
//! summary is byte-identical for any real `--workers` value. That
//! requires separating two concerns the live daemon fuses:
//!
//! 1. **Service times** are measured by executing the schedule in
//!    fixed arrival-order *waves* (checkout snapshot at wave start,
//!    merges at the wave barrier in job-index order against the
//!    *bounded* repository) on the indexed work-stealing pool — the
//!    real worker count changes wall time, never results.
//! 2. **Queueing** is then computed by a discrete-event simulation
//!    (G/G/W on the simulated clock) over those service times, at
//!    *pinned virtual worker counts* (1 and 4) and under two dispatch
//!    disciplines: the daemon's deficit-round-robin queue
//!    ([`crate::scheduler::DrrQueue`] — literally the same type the
//!    live scheduler shards) charging each job its service cycles, and
//!    plain FIFO as the fairness control.
//!
//! One invocation therefore reports single-worker *and* multi-worker
//! latency: CI diffs the summary across real `--workers` values byte
//! for byte while still gating that 4 virtual workers outrun 1
//! (`BENCH_trajectory.json` serve row).
//!
//! The bounded repository is part of the measurement: the default
//! config caps capacity below the two tenants' combined profile
//! footprint, so merges continuously evict and checkouts alternate warm
//! and cold — the trajectory row pins the exact eviction count.

use std::time::{Duration, Instant};

use hpmopt_bench::setup;
use hpmopt_bench::trajectory::ServePoint;
use hpmopt_profile::{RepoConfig, SharedProfileRepo};
use hpmopt_stress::pool;
use hpmopt_telemetry::{HistogramId, Telemetry, TelemetrySnapshot};
use hpmopt_workloads::Size;

use crate::job::{fingerprint_of, run_job, JobOutcome, JobRun, JobSpec};
use crate::scheduler::DrrQueue;

/// The two tenants of the canonical open-loop mix.
const HEAVY: &str = "heavy";
const LIGHT: &str = "light";

/// Open-loop generator parameters.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Real worker threads executing jobs (wall time only — the summary
    /// is identical for any value).
    pub workers: usize,
    /// Jobs to pace in.
    pub jobs: usize,
    /// Arrival rate in jobs per second of simulated time; arrival `i`
    /// lands at `i * (MONITOR_CPU_HZ / qps)` cycles.
    pub qps: u64,
    /// Of every `heavy_share + 1` arrivals, `heavy_share` belong to the
    /// heavy tenant and one to the light tenant.
    pub heavy_share: usize,
    /// Workloads: the heavy tenant runs `workloads[0]`, the light
    /// tenant `workloads[1 % len]` — two distinct profile fingerprints
    /// fighting for the bounded repository.
    pub workloads: Vec<String>,
    /// Workload size.
    pub size: Size,
    /// Heap multiplier over each workload's minimum heap.
    pub heap_mult: u64,
    /// Seed (stamped into the summary; execution is schedule-driven).
    pub seed: u64,
    /// Repository merge decay.
    pub decay: f64,
    /// DRR quantum in service cycles for the fair virtual dispatch.
    pub quantum_cycles: u64,
    /// Bounds of the shared profile repository under test.
    pub repo: RepoConfig,
    /// Jobs per execution wave (the checkout-snapshot granularity).
    pub wave: usize,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            workers: 4,
            jobs: 24,
            // jess tiny runs ~3.9M service cycles, so a 250k-cycle
            // arrival gap with a 3:1 jess share loads four virtual
            // workers at ρ≈3: the queue genuinely builds (nonzero wait
            // percentiles, real fair-vs-FIFO separation) while four
            // workers still clearly outrun one.
            qps: 400,
            heavy_share: 3,
            // Heavy tenant: expensive jess jobs. Light tenant: cheap
            // fop jobs that FIFO would trap behind the jess backlog.
            workloads: vec!["jess".to_string(), "fop".to_string()],
            size: Size::Tiny,
            heap_mult: 4,
            seed: 0xB0B,
            decay: 0.5,
            quantum_cycles: 1_000_000,
            // One shard, capacity under the two tenants' combined
            // profile footprint (fop ≈ 156 B, jess ≈ 452 B): the two
            // fingerprints cannot coexist, so eviction runs
            // continuously (pinned in the trajectory row).
            repo: RepoConfig {
                shards: 1,
                capacity_bytes: Some(512),
                ttl_ops: None,
            },
            wave: 8,
        }
    }
}

/// One arrival for the queueing simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimJob {
    /// Tenant index (0 = heavy, 1 = light).
    pub tenant: usize,
    /// Arrival cycle on the simulated clock.
    pub arrival: u64,
    /// Service cycles (the job's measured simulated execution length).
    pub service: u64,
}

/// Virtual dispatch discipline for [`simulate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Deficit round robin across tenants, charging each job its
    /// service cycles against the given quantum.
    Fair {
        /// DRR quantum in service cycles.
        quantum: u64,
    },
    /// Plain arrival-order FIFO (the fairness control).
    Fifo,
}

/// What one queueing simulation produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Per dispatched job: (tenant index, queue-wait cycles), in
    /// dispatch order.
    pub waits: Vec<(usize, u64)>,
    /// Cycle the last job finished.
    pub makespan: u64,
    /// Deepest the queue got, measured after each admission sweep.
    pub max_depth: usize,
}

/// Deterministic discrete-event G/G/W queueing simulation: `workers`
/// virtual servers drain `jobs` (sorted by arrival) under `dispatch`.
/// Pure integer arithmetic on the simulated clock — no wall time, no
/// randomness, no dependence on real thread scheduling.
#[must_use]
pub fn simulate(jobs: &[SimJob], workers: usize, dispatch: Dispatch) -> SimResult {
    let tenant_name = |t: usize| if t == 0 { HEAVY } else { LIGHT };
    let mut fair = match dispatch {
        Dispatch::Fair { quantum } => Some(DrrQueue::new(quantum)),
        Dispatch::Fifo => None,
    };
    let mut fifo: std::collections::VecDeque<SimJob> = std::collections::VecDeque::new();
    let queue_len = |fair: &Option<DrrQueue<SimJob>>, fifo: &std::collections::VecDeque<SimJob>| {
        fair.as_ref().map_or(fifo.len(), DrrQueue::len)
    };

    let mut free = vec![0u64; workers.max(1)];
    let mut next = 0; // arrival pointer
    let mut result = SimResult {
        waits: Vec::with_capacity(jobs.len()),
        makespan: 0,
        max_depth: 0,
    };
    while next < jobs.len() || queue_len(&fair, &fifo) > 0 {
        // Earliest-free virtual worker, lowest index on ties.
        let w = (0..free.len()).min_by_key(|&i| (free[i], i)).unwrap();
        let mut t = free[w];
        if queue_len(&fair, &fifo) == 0 {
            // Idle: advance to the next arrival.
            t = t.max(jobs[next].arrival);
        }
        while next < jobs.len() && jobs[next].arrival <= t {
            let job = jobs[next].clone();
            match &mut fair {
                Some(q) => q.push(tenant_name(job.tenant), job.service, job),
                None => fifo.push_back(job),
            }
            next += 1;
        }
        result.max_depth = result.max_depth.max(queue_len(&fair, &fifo));
        let job = match &mut fair {
            Some(q) => q.pop(),
            None => fifo.pop_front(),
        }
        .expect("loop invariant: queue is non-empty here");
        // An idle-jump iteration can admit several simultaneous
        // arrivals; a different worker may then pop one while its own
        // free time is still below that arrival. Dispatch never starts
        // before the job arrives.
        let start = t.max(job.arrival);
        result.waits.push((job.tenant, start - job.arrival));
        free[w] = start + job.service;
        result.makespan = result.makespan.max(free[w]);
    }
    result
}

/// Exact nearest-rank percentile of an unsorted sample (0 when empty).
#[must_use]
pub fn percentile(values: &[u64], pct: u64) -> u64 {
    if values.is_empty() {
        return 0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = (values.len() as u64 * pct).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Per-tenant outcome of the fair 4-worker simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantLatency {
    /// Tenant label.
    pub tenant: String,
    /// Jobs the tenant completed (must never be 0 — that is
    /// starvation).
    pub completed: usize,
    /// p99 queue wait in simulated cycles under fair dispatch.
    pub p99_wait_fair: u64,
    /// p99 queue wait under the FIFO control.
    pub p99_wait_fifo: u64,
}

/// What one open-loop run produced.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// The deterministic, timing-free summary (identical for any real
    /// worker count).
    pub summary: String,
    /// Jobs executed to completion.
    pub jobs: usize,
    /// Completed jobs whose digest deviated from the unmonitored
    /// baseline (must be 0).
    pub perturbation_deltas: usize,
    /// Profiles the bounded repository evicted.
    pub evictions: u64,
    /// Throughput at one virtual worker (jobs per simulated second).
    pub throughput_1w: f64,
    /// Throughput at four virtual workers.
    pub throughput_4w: f64,
    /// Queue-wait percentiles at four virtual workers, fair dispatch.
    pub p50_wait: u64,
    /// 95th percentile queue wait.
    pub p95_wait: u64,
    /// 99th percentile queue wait.
    pub p99_wait: u64,
    /// 99th percentile service time.
    pub p99_service: u64,
    /// Per-tenant latency split (heavy, then light).
    pub tenants: Vec<TenantLatency>,
    /// Frozen telemetry of the run (`serve.queue_wait_cycles`,
    /// `serve.service_cycles` histograms).
    pub telemetry: TelemetrySnapshot,
    /// Wall-clock duration (excluded from the summary).
    pub wall: Duration,
}

impl OpenLoopReport {
    /// The gate: zero perturbation, and four virtual workers strictly
    /// outrun one.
    #[must_use]
    pub fn check(&self) -> bool {
        self.perturbation_deltas == 0 && self.throughput_4w > self.throughput_1w
    }

    /// The non-deterministic wall-clock line (stderr only).
    #[must_use]
    pub fn throughput_line(&self) -> String {
        format!("open-loop wall {:.3}s", self.wall.as_secs_f64())
    }
}

fn fmt_jobs_per_sec(jobs: usize, makespan_cycles: u64) -> f64 {
    if makespan_cycles == 0 {
        return 0.0;
    }
    jobs as f64 * setup::MONITOR_CPU_HZ as f64 / makespan_cycles as f64
}

/// Run the open-loop bench: execute the paced schedule in waves against
/// a fresh *bounded* repository, then simulate queueing at pinned
/// virtual worker counts and build the deterministic summary.
///
/// # Panics
///
/// Panics when a job fails outright (the canonical workloads must not
/// fault) — killed/cancelled jobs cannot occur here (no budgets, no
/// cancel token).
#[must_use]
pub fn run_openloop(config: &OpenLoopConfig) -> OpenLoopReport {
    let period = config.heavy_share + 1;
    let gap = setup::MONITOR_CPU_HZ / config.qps.max(1);
    let specs: Vec<(usize, JobSpec, u64)> = (0..config.jobs)
        .map(|i| {
            let tenant = usize::from(i % period == period - 1); // 0 heavy, 1 light
            let name = [HEAVY, LIGHT][tenant];
            let workload = &config.workloads[tenant % config.workloads.len().max(1)];
            let mut spec = JobSpec::new(name, workload);
            spec.size = config.size;
            spec.heap_mult = config.heap_mult;
            (tenant, spec, i as u64 * gap)
        })
        .collect();

    let repo = SharedProfileRepo::with_config(config.repo.clone());
    let telemetry = Telemetry::enabled(hpmopt_telemetry::DEFAULT_TRACE_CAPACITY);
    let start = Instant::now();

    // Phase 1: measure service times deterministically, wave by wave.
    let mut sim_jobs: Vec<SimJob> = Vec::with_capacity(specs.len());
    let mut deltas = 0usize;
    let mut warm_checkouts = 0usize;
    for wave in specs.chunks(config.wave.max(1)) {
        let checkouts: Vec<_> = wave
            .iter()
            .map(|(_, spec, _)| {
                spec.resolve()
                    .and_then(|w| repo.checkout(&fingerprint_of(spec, &w)))
            })
            .collect();
        warm_checkouts += checkouts.iter().filter(|c| c.is_some()).count();
        let runs: Vec<JobRun> = pool::contiguous_prefix(pool::run_indexed(
            wave.len() as u64,
            config.workers.max(1),
            None,
            |i| {
                run_job(
                    &wave[i as usize].1,
                    checkouts[i as usize].clone(),
                    None,
                    None,
                )
            },
        ));
        for ((tenant, spec, arrival), run) in wave.iter().zip(&runs) {
            assert!(
                run.outcome == JobOutcome::Completed,
                "open-loop job ({} {}) did not complete: {:?}",
                spec.tenant,
                spec.workload,
                run.outcome
            );
            if let Some(fresh) = &run.fresh_profile {
                repo.merge(fresh, config.decay);
            }
            let baseline = spec
                .resolve()
                .map(|w| setup::baseline_digest(&w, spec.size, spec.heap_mult, 1));
            if baseline != Some(run.digest) {
                deltas += 1;
            }
            telemetry.observe(HistogramId::ServeServiceCycles, run.cycles);
            sim_jobs.push(SimJob {
                tenant: *tenant,
                arrival: *arrival,
                service: run.cycles,
            });
        }
    }

    // Phase 2: queueing at pinned virtual worker counts. The real
    // `config.workers` has no influence from here on.
    let fair = Dispatch::Fair {
        quantum: config.quantum_cycles,
    };
    let sim_1w = simulate(&sim_jobs, 1, fair);
    let sim_4w = simulate(&sim_jobs, 4, fair);
    let fifo_4w = simulate(&sim_jobs, 4, Dispatch::Fifo);
    for &(_, wait) in &sim_4w.waits {
        telemetry.observe(HistogramId::ServeQueueWaitCycles, wait);
    }

    let all_waits: Vec<u64> = sim_4w.waits.iter().map(|&(_, w)| w).collect();
    let services: Vec<u64> = sim_jobs.iter().map(|j| j.service).collect();
    let tenants: Vec<TenantLatency> = [(0, HEAVY), (1, LIGHT)]
        .iter()
        .map(|&(idx, name)| {
            let fair_waits: Vec<u64> = sim_4w
                .waits
                .iter()
                .filter(|&&(t, _)| t == idx)
                .map(|&(_, w)| w)
                .collect();
            let fifo_waits: Vec<u64> = fifo_4w
                .waits
                .iter()
                .filter(|&&(t, _)| t == idx)
                .map(|&(_, w)| w)
                .collect();
            TenantLatency {
                tenant: name.to_string(),
                completed: fair_waits.len(),
                p99_wait_fair: percentile(&fair_waits, 99),
                p99_wait_fifo: percentile(&fifo_waits, 99),
            }
        })
        .collect();

    let stats = repo.stats();
    let throughput_1w = fmt_jobs_per_sec(sim_jobs.len(), sim_1w.makespan);
    let throughput_4w = fmt_jobs_per_sec(sim_jobs.len(), sim_4w.makespan);
    let (p50, p95, p99) = (
        percentile(&all_waits, 50),
        percentile(&all_waits, 95),
        percentile(&all_waits, 99),
    );
    let p99_service = percentile(&services, 99);

    let mut summary = format!(
        "serve open-loop: {} job(s) @ {} qps (gap {} cycles), heavy:light {}:1, \
         workloads [{}], size {:?}, heap {}x, seed {:#x}, quantum {} cycles, wave {}\n",
        config.jobs,
        config.qps,
        gap,
        config.heavy_share,
        config.workloads.join(", "),
        config.size,
        config.heap_mult,
        config.seed,
        config.quantum_cycles,
        config.wave
    );
    summary.push_str(&format!(
        "repo bound: {} shard(s), capacity {}, ttl {}\n",
        config.repo.shards,
        config
            .repo
            .capacity_bytes
            .map_or_else(|| "unbounded".to_string(), |b| format!("{b} bytes")),
        config
            .repo
            .ttl_ops
            .map_or_else(|| "off".to_string(), |t| format!("{t} ops")),
    ));
    for (label, sim) in [("1w", &sim_1w), ("4w", &sim_4w)] {
        let waits: Vec<u64> = sim.waits.iter().map(|&(_, w)| w).collect();
        summary.push_str(&format!(
            "virtual {label}: throughput {:.2} jobs/s, queue wait p50 {} p95 {} p99 {}, \
             max depth {}, makespan {} cycles\n",
            fmt_jobs_per_sec(sim.waits.len(), sim.makespan),
            percentile(&waits, 50),
            percentile(&waits, 95),
            percentile(&waits, 99),
            sim.max_depth,
            sim.makespan
        ));
    }
    summary.push_str(&format!("service p99: {p99_service} cycles\n"));
    for t in &tenants {
        summary.push_str(&format!(
            "tenant {}: completed {}, p99 queue wait {} cycles fair vs {} fifo (4w)\n",
            t.tenant, t.completed, t.p99_wait_fair, t.p99_wait_fifo
        ));
    }
    summary.push_str(&format!(
        "repo: {} profile(s), {} eviction(s) ({} ttl), {} checkout(s) ({} warm), {} merge(s)\n",
        repo.len(),
        stats.evictions,
        stats.ttl_evictions,
        stats.checkouts,
        warm_checkouts,
        stats.merges
    ));
    summary.push_str(&format!("perturbation deltas: {deltas}\n"));
    summary.push_str(&format!(
        "multi-worker speedup: {}\n",
        throughput_4w > throughput_1w
    ));

    OpenLoopReport {
        summary,
        jobs: sim_jobs.len(),
        perturbation_deltas: deltas,
        evictions: stats.evictions,
        throughput_1w,
        throughput_4w,
        p50_wait: p50,
        p95_wait: p95,
        p99_wait: p99,
        p99_service,
        tenants,
        telemetry: telemetry.snapshot(0),
        wall: start.elapsed(),
    }
}

/// Measure the pinned `serve` trajectory row: the default open-loop
/// config under the default seed, shaped for `BENCH_trajectory.json`.
///
/// # Panics
///
/// Panics when the run perturbs (a perturbed measurement must never
/// reach a baseline file) or when virtual multi-worker throughput fails
/// to beat single-worker.
#[must_use]
pub fn trajectory_point() -> ServePoint {
    let config = OpenLoopConfig::default();
    let report = run_openloop(&config);
    assert_eq!(
        report.perturbation_deltas, 0,
        "open-loop run perturbed the guest"
    );
    assert!(
        report.throughput_4w > report.throughput_1w,
        "4 virtual workers must outrun 1: {} vs {} jobs/s",
        report.throughput_4w,
        report.throughput_1w
    );
    ServePoint {
        name: "openloop".to_string(),
        jobs: report.jobs as u64,
        qps: config.qps,
        throughput_1w_jobs_per_sec: report.throughput_1w,
        throughput_4w_jobs_per_sec: report.throughput_4w,
        p50_queue_wait_cycles: report.p50_wait,
        p95_queue_wait_cycles: report.p95_wait,
        p99_queue_wait_cycles: report.p99_wait,
        p99_service_cycles: report.p99_service,
        repo_evictions: report.evictions,
        perturbation_deltas: report.perturbation_deltas as u64,
        wall_ms: report.wall.as_millis() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs_heavy_light(heavy: &[(u64, u64)], light: &[(u64, u64)]) -> Vec<SimJob> {
        let mut jobs: Vec<SimJob> = heavy
            .iter()
            .map(|&(arrival, service)| SimJob {
                tenant: 0,
                arrival,
                service,
            })
            .chain(light.iter().map(|&(arrival, service)| SimJob {
                tenant: 1,
                arrival,
                service,
            }))
            .collect();
        jobs.sort_by_key(|j| j.arrival);
        jobs
    }

    #[test]
    fn simulate_single_job_has_zero_wait() {
        let jobs = jobs_heavy_light(&[(100, 5000)], &[]);
        let r = simulate(&jobs, 1, Dispatch::Fifo);
        assert_eq!(r.waits, vec![(0, 0)]);
        assert_eq!(r.makespan, 5100);
    }

    #[test]
    fn simulate_more_workers_cut_the_makespan() {
        // Four simultaneous arrivals, equal service: 1 worker
        // serializes, 4 workers run them all at once.
        let jobs = jobs_heavy_light(&[(0, 1000), (0, 1000), (0, 1000), (0, 1000)], &[]);
        let one = simulate(&jobs, 1, Dispatch::Fifo);
        let four = simulate(&jobs, 4, Dispatch::Fifo);
        assert_eq!(one.makespan, 4000);
        assert_eq!(four.makespan, 1000);
        assert!(four.waits.iter().all(|&(_, w)| w == 0));
        assert_eq!(one.waits.iter().map(|&(_, w)| w).max(), Some(3000));
    }

    #[test]
    fn simulate_duplicate_arrivals_never_start_before_arrival() {
        // Regression: two jobs arriving at the same nonzero cycle with
        // two idle workers. The idle jump admits both on worker 0's
        // iteration; worker 1 (free at 0) then pops the second job and
        // `t - arrival` underflowed. Both jobs must start at their
        // arrival with zero wait.
        let jobs = jobs_heavy_light(&[(1000, 500), (1000, 500)], &[]);
        let r = simulate(&jobs, 2, Dispatch::Fifo);
        assert_eq!(r.waits, vec![(0, 0), (0, 0)]);
        assert_eq!(r.makespan, 1500);
        let fair = simulate(&jobs, 2, Dispatch::Fair { quantum: 1000 });
        assert_eq!(fair.waits, vec![(0, 0), (0, 0)]);
    }

    #[test]
    fn fair_dispatch_bounds_the_light_tenants_wait() {
        // A heavy burst lands first; light jobs trickle in behind it.
        // FIFO makes every light job wait out the whole burst; DRR
        // interleaves.
        let heavy: Vec<(u64, u64)> = (0..20).map(|i| (i * 10, 200_000)).collect();
        let light: Vec<(u64, u64)> = (0..5).map(|i| (500 + i * 10, 1_000)).collect();
        let jobs = jobs_heavy_light(&heavy, &light);
        let fair = simulate(&jobs, 1, Dispatch::Fair { quantum: 100_000 });
        let fifo = simulate(&jobs, 1, Dispatch::Fifo);
        let light_p99 = |r: &SimResult| {
            let waits: Vec<u64> = r
                .waits
                .iter()
                .filter(|&&(t, _)| t == 1)
                .map(|&(_, w)| w)
                .collect();
            assert_eq!(waits.len(), 5, "no light job starved");
            percentile(&waits, 99)
        };
        let (fair_p99, fifo_p99) = (light_p99(&fair), light_p99(&fifo));
        assert!(
            fair_p99 < fifo_p99 / 2,
            "DRR must shield the light tenant: fair p99 {fair_p99} vs fifo p99 {fifo_p99}"
        );
    }

    #[test]
    fn simulate_is_deterministic() {
        let heavy: Vec<(u64, u64)> = (0..10).map(|i| (i * 7, 50_000 + i * 13)).collect();
        let light: Vec<(u64, u64)> = (0..3).map(|i| (i * 11, 900 + i)).collect();
        let jobs = jobs_heavy_light(&heavy, &light);
        for &workers in &[1usize, 2, 4] {
            let a = simulate(&jobs, workers, Dispatch::Fair { quantum: 10_000 });
            let b = simulate(&jobs, workers, Dispatch::Fair { quantum: 10_000 });
            assert_eq!(a, b);
        }
    }

    #[test]
    fn percentile_is_exact_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 95), 95);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[], 99), 0);
    }
}
