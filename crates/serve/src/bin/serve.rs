//! `hpmopt-serve` — the multi-tenant VM service from the command line.
//!
//! ```text
//! hpmopt-serve run   [--jobs N] [--workers W] [--tenants T]
//!                    [--workloads A,B,..] [--size tiny|small|full]
//!                    [--heap-mult M] [--cycle-budget C]
//!                    [--max-live-jobs N] [--max-heap-bytes B]
//!                    [--spill DIR] [--prom]
//! hpmopt-serve bench [--rounds R] [--jobs N] [--workers W] [--tenants T]
//!                    [--workloads A,B,..] [--size tiny|small|full]
//!                    [--seed S] [--qps Q] [--open-jobs N] [--quantum C]
//!                    [--repo-bytes B] [--repo-ttl OPS] [--check]
//! ```
//!
//! `run` starts the live daemon, submits `N` jobs round-robin across
//! tenants and workloads, waits for every report, prints them plus the
//! fleet telemetry, and shuts down (persisting the repository to
//! `--spill DIR` when given). `bench` runs both deterministic load
//! generators — the closed-loop rounds, then the QPS-paced open-loop
//! latency run: the combined summary on stdout is byte-identical for
//! any `--workers` value; wall-clock throughput goes to stderr.
//! `--qps 0` skips the open-loop section; `--qps Q` paces its arrivals,
//! `--open-jobs` sizes it, `--quantum` sets the DRR fairness quantum in
//! service cycles, and `--repo-bytes`/`--repo-ttl` bound its profile
//! repository (capacity bytes / TTL in repository operations). With
//! `--check`, `bench` exits 1 unless perturbation deltas are zero, warm
//! jobs beat cold to the first decision, and (when the open-loop
//! section ran) four virtual workers strictly outrun one.

use std::process::ExitCode;

use hpmopt_serve::{
    run_bench, run_openloop, BenchConfig, JobSpec, OpenLoopConfig, Service, ServiceConfig,
    TenantCaps,
};
use hpmopt_workloads::Size;

fn usage() -> ExitCode {
    eprintln!(
        "usage: hpmopt-serve run [--jobs N] [--workers W] [--tenants T] \
         [--workloads A,B,..] [--size tiny|small|full] [--heap-mult M] \
         [--cycle-budget C] [--max-live-jobs N] [--max-heap-bytes B] \
         [--spill DIR] [--prom]\n\
         hpmopt-serve bench [--rounds R] [--jobs N] [--workers W] [--tenants T] \
         [--workloads A,B,..] [--size tiny|small|full] [--seed S] \
         [--qps Q] [--open-jobs N] [--quantum C] [--repo-bytes B] [--repo-ttl OPS] \
         [--check]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        _ => usage(),
    }
}

/// Parse `--flag VALUE` pairs; returns `None` on malformed input.
fn take_value<'a>(args: &'a [String], i: &mut usize) -> Option<&'a str> {
    *i += 1;
    args.get(*i).map(String::as_str)
}

fn parse_size(v: &str) -> Option<Size> {
    match v {
        "tiny" => Some(Size::Tiny),
        "small" => Some(Size::Small),
        "full" => Some(Size::Full),
        _ => None,
    }
}

fn parse_workloads(v: &str) -> Vec<String> {
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut jobs = 8usize;
    let mut tenants = 2usize;
    let mut workloads = vec!["db".to_string(), "hsqldb".to_string()];
    let mut size = Size::Tiny;
    let mut heap_mult = 4u64;
    let mut cycle_budget: Option<u64> = None;
    let mut caps = TenantCaps::default();
    let mut prom = false;
    let mut config = ServiceConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(n) => jobs = n,
                None => return usage(),
            },
            "--workers" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(n) => config.workers = n,
                None => return usage(),
            },
            "--tenants" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(n) => tenants = n,
                None => return usage(),
            },
            "--workloads" => match take_value(args, &mut i) {
                Some(v) => workloads = parse_workloads(v),
                None => return usage(),
            },
            "--size" => match take_value(args, &mut i).and_then(parse_size) {
                Some(s) => size = s,
                None => return usage(),
            },
            "--heap-mult" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(m) => heap_mult = m,
                None => return usage(),
            },
            "--cycle-budget" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(c) => cycle_budget = Some(c),
                None => return usage(),
            },
            "--max-live-jobs" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(n) => caps.max_live_jobs = n,
                None => return usage(),
            },
            "--max-heap-bytes" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(b) => caps.max_heap_bytes = b,
                None => return usage(),
            },
            "--spill" => match take_value(args, &mut i) {
                Some(dir) => config.spill_dir = Some(dir.into()),
                None => return usage(),
            },
            "--prom" => prom = true,
            _ => return usage(),
        }
        i += 1;
    }
    if workloads.is_empty() {
        return usage();
    }
    config.default_caps = caps;

    let service = Service::start(config);
    let mut ids = Vec::new();
    for n in 0..jobs {
        let mut spec = JobSpec::new(
            &format!("t{}", n % tenants.max(1)),
            &workloads[n % workloads.len()],
        );
        spec.size = size;
        spec.heap_mult = heap_mult;
        spec.cycle_budget = cycle_budget;
        match service.submit(spec.clone()) {
            Ok(id) => ids.push(id),
            Err(reason) => println!(
                "job {n} tenant {} workload {} rejected: {reason}",
                spec.tenant, spec.workload
            ),
        }
    }
    for id in ids {
        let r = service.wait(id);
        println!(
            "job {id} tenant {} workload {} {} {} cycles {} first-decision {} digest {:#018x}",
            r.spec.tenant,
            r.spec.workload,
            if r.warm { "warm" } else { "cold" },
            r.outcome.tag(),
            r.cycles,
            r.first_decision_cycles
                .map_or_else(|| "never".to_string(), |c| c.to_string()),
            r.digest
        );
    }
    let snapshot = service.snapshot();
    if prom {
        print!(
            "{}",
            hpmopt_telemetry::prom::render(&snapshot, &[("service", "hpmopt-serve")])
        );
    } else {
        print!("{}", snapshot.render_text());
    }
    let persisted = service.shutdown();
    if persisted > 0 {
        println!("persisted {persisted} profile(s)");
    }
    ExitCode::SUCCESS
}

fn cmd_bench(args: &[String]) -> ExitCode {
    let mut config = BenchConfig::default();
    let mut open = OpenLoopConfig::default();
    let mut run_open = true;
    let mut check = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rounds" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(n) => config.rounds = n,
                None => return usage(),
            },
            "--jobs" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(n) => config.jobs_per_round = n,
                None => return usage(),
            },
            "--workers" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(n) => {
                    config.workers = n;
                    open.workers = n;
                }
                None => return usage(),
            },
            "--tenants" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(n) => config.tenants = n,
                None => return usage(),
            },
            "--workloads" => match take_value(args, &mut i) {
                Some(v) => config.workloads = parse_workloads(v),
                None => return usage(),
            },
            "--size" => match take_value(args, &mut i).and_then(parse_size) {
                Some(s) => config.size = s,
                None => return usage(),
            },
            "--seed" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(s) => {
                    config.seed = s;
                    open.seed = s;
                }
                None => return usage(),
            },
            "--qps" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(0) => run_open = false,
                Some(q) => open.qps = q,
                None => return usage(),
            },
            "--open-jobs" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(n) => open.jobs = n,
                None => return usage(),
            },
            "--quantum" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(q) => open.quantum_cycles = q,
                None => return usage(),
            },
            "--repo-bytes" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(0) => open.repo.capacity_bytes = None,
                Some(b) => open.repo.capacity_bytes = Some(b),
                None => return usage(),
            },
            "--repo-ttl" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(0) => open.repo.ttl_ops = None,
                Some(t) => open.repo.ttl_ops = Some(t),
                None => return usage(),
            },
            "--check" => check = true,
            _ => return usage(),
        }
        i += 1;
    }
    if config.workloads.is_empty() {
        return usage();
    }

    let report = run_bench(&config);
    print!("{}", report.summary);
    eprintln!("{}", report.throughput_line());
    let open_ok = if run_open {
        let open_report = run_openloop(&open);
        print!("{}", open_report.summary);
        eprintln!("{}", open_report.throughput_line());
        open_report.check()
    } else {
        true
    };
    if check && !(report.check() && open_ok) {
        eprintln!(
            "check failed: perturbation deltas, warm-start regression, or \
             missing multi-worker speedup (see summary)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
