//! Job vocabulary: what a tenant submits and what it gets back.
//!
//! A [`JobSpec`] names a workload and its execution envelope; running
//! one is a pure function of the spec plus the warm-start checkout
//! ([`run_job`]), so the same unit serves both the live daemon (which
//! checks out and merges against the shared repository as jobs flow)
//! and the deterministic bench (which snapshots checkouts per round and
//! merges in job order).
//!
//! Every job gets its own VM, heap, HPM unit, and telemetry handle —
//! tenant isolation is by construction, not by locking: two jobs share
//! no mutable state at all until their frozen results are folded into
//! the repository and the fleet registry.

use hpmopt_bench::setup;
use hpmopt_core::runtime::{HpmRuntime, RunConfig};
use hpmopt_core::{warmstart, ProfileOptions};
use hpmopt_gc::CollectorKind;
use hpmopt_profile::{Fingerprint, Profile};
use hpmopt_telemetry::{Telemetry, TelemetrySnapshot};
use hpmopt_vm::{CancelToken, VmError};
use hpmopt_workloads::{by_name, Size, Workload};

/// What a tenant asks the service to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Tenant the job is accounted to.
    pub tenant: String,
    /// Workload name (see `hpmopt_workloads::names`).
    pub workload: String,
    /// Workload size.
    pub size: Size,
    /// Heap at `heap_mult ×` the workload's minimum heap.
    pub heap_mult: u64,
    /// Simulated-cycle budget requested by the job itself; the tenant's
    /// cap may lower it further. `None` leaves the job unbounded.
    pub cycle_budget: Option<u64>,
}

impl JobSpec {
    /// A job with the default envelope: tiny size, 4× minimum heap, no
    /// cycle budget.
    #[must_use]
    pub fn new(tenant: &str, workload: &str) -> Self {
        JobSpec {
            tenant: tenant.to_string(),
            workload: workload.to_string(),
            size: Size::Tiny,
            heap_mult: 4,
            cycle_budget: None,
        }
    }

    /// The workload this spec names, if it exists.
    #[must_use]
    pub fn resolve(&self) -> Option<Workload> {
        by_name(&self.workload, self.size)
    }

    /// Heap bytes the job will reserve (what admission control charges
    /// against the tenant's heap cap).
    #[must_use]
    pub fn heap_bytes(&self, w: &Workload) -> u64 {
        w.min_heap_bytes * self.heap_mult
    }
}

/// Why admission control refused a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The workload name resolves to nothing.
    UnknownWorkload(String),
    /// The tenant is already running its maximum number of jobs.
    LiveJobCap {
        /// Jobs currently live for the tenant.
        live: usize,
        /// The tenant's cap.
        cap: usize,
    },
    /// The job's heap reservation exceeds the tenant's per-job cap.
    HeapCap {
        /// Bytes the job asked for.
        requested_bytes: u64,
        /// The tenant's cap.
        cap_bytes: u64,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::UnknownWorkload(name) => write!(f, "unknown workload {name:?}"),
            RejectReason::LiveJobCap { live, cap } => {
                write!(f, "tenant at live-job cap ({live} live, cap {cap})")
            }
            RejectReason::HeapCap {
                requested_bytes,
                cap_bytes,
            } => write!(
                f,
                "heap request {requested_bytes} exceeds tenant cap {cap_bytes}"
            ),
        }
    }
}

/// Terminal state of an admitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran to completion.
    Completed,
    /// Killed deterministically at its simulated-cycle budget.
    Killed,
    /// Cancelled by the service (shutdown) at a poll boundary.
    Cancelled,
    /// The guest program itself faulted.
    Failed(String),
}

impl JobOutcome {
    /// Short lowercase tag for summaries.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            JobOutcome::Completed => "completed",
            JobOutcome::Killed => "killed",
            JobOutcome::Cancelled => "cancelled",
            JobOutcome::Failed(_) => "failed",
        }
    }
}

/// Everything one executed job produced, before the service folds it
/// into shared state.
#[derive(Debug, Clone)]
pub struct JobRun {
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Whether a warm checkout actually seeded the run.
    pub warm: bool,
    /// Total simulated cycles (the kill budget for killed jobs, 0 for
    /// failures).
    pub cycles: u64,
    /// Simulated cycles until the first co-allocation decision was in
    /// force; `None` when the run never decided (or died early).
    pub first_decision_cycles: Option<u64>,
    /// Placement-independent state digest (0 unless completed).
    pub digest: u64,
    /// What this run measured, for the repository to decay-merge.
    pub fresh_profile: Option<Profile>,
    /// The job's frozen private telemetry, for fleet aggregation.
    pub telemetry: TelemetrySnapshot,
}

/// What the service hands back for one submitted job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Service-assigned job id (submission order).
    pub id: u64,
    /// The spec as submitted.
    pub spec: JobSpec,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Whether the job warm-started from the shared repository.
    pub warm: bool,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Cycles to the first co-allocation decision.
    pub first_decision_cycles: Option<u64>,
    /// Placement-independent state digest (0 unless completed).
    pub digest: u64,
}

/// Workload label baked into the profile fingerprint: name plus size,
/// so a `Tiny` profile never seeds a `Full` run even though the program
/// hash would differ anyway.
#[must_use]
pub fn profile_label(spec: &JobSpec) -> String {
    format!("{}@{:?}", spec.workload, spec.size)
}

/// The full run configuration for a spec: the bench harness's standard
/// cell (pseudo-adaptive plan, auto sampling, scaled monitor clock) at
/// the spec's heap point.
#[must_use]
pub fn run_config_for(spec: &JobSpec, w: &Workload) -> RunConfig {
    let heap = setup::heap_config(w, spec.heap_mult, 1, CollectorKind::GenMs);
    setup::run_config(w, spec.size, heap, setup::auto_interval(), true)
}

/// The repository key for a spec: program structure + machine
/// configuration + labeled workload.
#[must_use]
pub fn fingerprint_of(spec: &JobSpec, w: &Workload) -> Fingerprint {
    let cfg = run_config_for(spec, w);
    warmstart::fingerprint(&w.program, &cfg.vm, &profile_label(spec))
}

/// Execute one job in complete isolation: fresh VM, heap, HPM unit, and
/// telemetry handle. `checkout` is the warm-start profile (if any),
/// `cycle_budget` the effective kill budget after tenant caps, `cancel`
/// the service's shutdown token.
#[must_use]
pub fn run_job(
    spec: &JobSpec,
    checkout: Option<Profile>,
    cycle_budget: Option<u64>,
    cancel: Option<CancelToken>,
) -> JobRun {
    let Some(w) = spec.resolve() else {
        return JobRun {
            outcome: JobOutcome::Failed(format!("unknown workload {:?}", spec.workload)),
            warm: false,
            cycles: 0,
            first_decision_cycles: None,
            digest: 0,
            fresh_profile: None,
            telemetry: TelemetrySnapshot::empty(),
        };
    };
    let warm_in = checkout.is_some();
    let mut cfg = run_config_for(spec, &w);
    cfg.vm.cycle_budget = cycle_budget;
    cfg.vm.cancel = cancel;
    cfg.profile = ProfileOptions::from_checkout(checkout, &profile_label(spec));
    let telemetry = Telemetry::enabled(hpmopt_telemetry::DEFAULT_TRACE_CAPACITY);
    cfg.telemetry = telemetry.clone();

    match HpmRuntime::new(cfg).run(&w.program) {
        Ok(report) => JobRun {
            outcome: JobOutcome::Completed,
            warm: report.warm_start,
            cycles: report.cycles,
            first_decision_cycles: report.cycles_to_first_decision(),
            digest: report.result_digest,
            fresh_profile: report.fresh_profile,
            telemetry: telemetry.snapshot(report.cycles),
        },
        Err(e) => {
            // A killed or faulted run reports what it can; its partial
            // measurements are NOT merged back (fresh_profile: None) —
            // a truncated run would drag warm profiles toward zero.
            let (outcome, cycles) = match e {
                VmError::CycleBudget => (JobOutcome::Killed, cycle_budget.unwrap_or(0)),
                VmError::Cancelled => (JobOutcome::Cancelled, 0),
                other => (JobOutcome::Failed(other.to_string()), 0),
            };
            JobRun {
                outcome,
                warm: warm_in,
                cycles,
                first_decision_cycles: None,
                digest: 0,
                fresh_profile: None,
                telemetry: telemetry.snapshot(cycles),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_workload_fails_without_panicking() {
        let run = run_job(&JobSpec::new("t0", "no-such-program"), None, None, None);
        assert!(matches!(run.outcome, JobOutcome::Failed(_)));
        assert!(run.fresh_profile.is_none());
    }

    #[test]
    fn fingerprint_is_stable_and_size_sensitive() {
        let spec = JobSpec::new("t0", "fop");
        let w = spec.resolve().unwrap();
        assert_eq!(fingerprint_of(&spec, &w), fingerprint_of(&spec, &w));
        let mut small = spec.clone();
        small.size = Size::Small;
        let ws = small.resolve().unwrap();
        assert_ne!(
            fingerprint_of(&spec, &w),
            fingerprint_of(&small, &ws),
            "size is part of the profile identity"
        );
    }

    #[test]
    fn cycle_budget_kills_a_job_cleanly_and_reproducibly() {
        let mut spec = JobSpec::new("t0", "db");
        spec.cycle_budget = Some(1_000_000);
        let a = run_job(&spec, None, spec.cycle_budget, None);
        let b = run_job(&spec, None, spec.cycle_budget, None);
        assert_eq!(a.outcome, JobOutcome::Killed);
        assert_eq!(b.outcome, JobOutcome::Killed);
        assert_eq!(a.cycles, b.cycles, "kill point is simulated, not timed");
        assert!(a.fresh_profile.is_none(), "killed runs merge nothing back");
    }
}
