//! Multi-tenant VM service with a shared warm-start profile repository.
//!
//! This crate promotes the one-shot monitored run
//! ([`hpmopt_core::runtime::HpmRuntime`]) into a long-lived daemon:
//! many concurrent guest executions multiplexed over a `std::thread`
//! worker pool, each job fully isolated (its own heap, VM, HPM unit,
//! and telemetry handle), all of them sharing one concurrently updated
//! in-process profile repository
//! ([`hpmopt_profile::SharedProfileRepo`]). A job checks out a warm
//! profile keyed by its program+config fingerprint at admission and
//! decay-merges its freshly measured results back on completion, so one
//! tenant's finished run is the next tenant's warm start and
//! cycles-to-first-decision drops fleet-wide as traffic flows.
//!
//! Four layers:
//!
//! - [`job`] — the isolated execution unit and its vocabulary
//!   ([`JobSpec`], [`JobOutcome`], [`JobReport`]);
//! - [`scheduler`] — sharded per-worker run queues with
//!   seed-deterministic work stealing and deficit-round-robin
//!   tenant fairness;
//! - [`tenant`] + [`service`] — admission control (live-job, heap, and
//!   cycle caps → [`RejectReason`] / killed jobs) and the live
//!   scheduler-and-workers daemon over a *bounded* profile repository
//!   (LRU+TTL byte-capacity eviction);
//! - [`bench`] + [`openloop`] — the deterministic load generators:
//!   closed-loop rounds for throughput/warm-start, and a QPS-paced
//!   open-loop run for queue-wait tails and tenant fairness. Both
//!   summaries are byte-identical for any worker count (CI diffs 1
//!   worker against N).
//!
//! Fleet observability reuses the workspace telemetry: per-job
//! snapshots are absorbed into `serve.*` counters and histograms
//! ([`hpmopt_telemetry::Telemetry::absorb`]) and exported through the
//! existing Prometheus exposition.

pub mod bench;
pub mod job;
pub mod openloop;
pub mod scheduler;
pub mod service;
pub mod tenant;

pub use bench::{run_bench, BenchConfig, BenchReport};
pub use job::{run_job, JobOutcome, JobReport, JobRun, JobSpec, RejectReason};
pub use openloop::{run_openloop, OpenLoopConfig, OpenLoopReport};
pub use scheduler::{DrrQueue, SchedulerConfig, ShardedScheduler};
pub use service::{Service, ServiceConfig};
pub use tenant::{TenantBook, TenantCaps};
