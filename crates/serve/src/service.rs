//! The live daemon: a queue, a worker pool, and the shared repository.
//!
//! Job lifecycle: `submit` runs admission control synchronously
//! (rejections never enter the queue), assigns an id, and enqueues.
//! A worker claims the job, checks out a warm profile from the shared
//! [`SharedProfileRepo`] keyed by the job's fingerprint, executes it in
//! full isolation ([`crate::job::run_job`]), then folds the results
//! back: decay-merges the fresh profile, absorbs the job's private
//! telemetry into the fleet registry, and publishes the
//! [`JobReport`] for `wait`.
//!
//! Live mode trades the bench's determinism for latency: merges land in
//! completion order, so two daemon runs may interleave differently.
//! The deterministic counterpart with the same execution unit is
//! [`crate::bench`].

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use hpmopt_profile::SharedProfileRepo;
use hpmopt_telemetry::{HistogramId, MetricId, Telemetry, TelemetrySnapshot};
use hpmopt_vm::CancelToken;

use crate::job::{fingerprint_of, run_job, JobOutcome, JobReport, JobSpec, RejectReason};
use crate::tenant::{TenantBook, TenantCaps};

/// Daemon parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing jobs (clamped to ≥ 1).
    pub workers: usize,
    /// Exponential decay for repository merges.
    pub decay: f64,
    /// Caps applied to tenants without explicit caps.
    pub default_caps: TenantCaps,
    /// Directory to preload profiles from at startup and persist to at
    /// shutdown — warm starts across daemon restarts.
    pub spill_dir: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            decay: 0.5,
            default_caps: TenantCaps::default(),
            spill_dir: None,
        }
    }
}

struct Queued {
    id: u64,
    spec: JobSpec,
    budget: Option<u64>,
}

struct Inner {
    repo: SharedProfileRepo,
    tenants: TenantBook,
    queue: Mutex<VecDeque<Queued>>,
    wake: Condvar,
    results: Mutex<BTreeMap<u64, JobReport>>,
    done: Condvar,
    stopping: AtomicBool,
    cancel: CancelToken,
    next_id: AtomicU64,
    telemetry: Telemetry,
    decay: f64,
}

/// The running service. Dropping it stops the workers: queued jobs are
/// drained, in-flight jobs are cancelled at their next poll boundary.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    spill_dir: Option<PathBuf>,
}

impl Service {
    /// Start the daemon: preload the spill directory (if configured)
    /// and spawn the worker pool.
    #[must_use]
    pub fn start(config: ServiceConfig) -> Self {
        let inner = Arc::new(Inner {
            repo: SharedProfileRepo::new(),
            tenants: TenantBook::new(config.default_caps),
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            results: Mutex::new(BTreeMap::new()),
            done: Condvar::new(),
            stopping: AtomicBool::new(false),
            cancel: CancelToken::new(),
            next_id: AtomicU64::new(0),
            telemetry: Telemetry::enabled(hpmopt_telemetry::DEFAULT_TRACE_CAPACITY),
            decay: config.decay,
        });
        if let Some(dir) = &config.spill_dir {
            let loaded = inner.repo.preload(dir);
            inner
                .telemetry
                .set_gauge(MetricId::ServeRepoProfiles, loaded as u64);
        }
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Service {
            inner,
            workers,
            spill_dir: config.spill_dir,
        }
    }

    /// Install explicit caps for one tenant.
    pub fn set_caps(&self, tenant: &str, caps: TenantCaps) {
        self.inner.tenants.set_caps(tenant, caps);
    }

    /// Submit one job. Admission control runs here, synchronously: a
    /// rejected job never consumes a queue slot or a worker.
    ///
    /// # Errors
    ///
    /// The [`RejectReason`] when the workload is unknown or a tenant
    /// cap would be exceeded.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, RejectReason> {
        let t = &self.inner.telemetry;
        t.incr(MetricId::ServeJobsSubmitted);
        let admitted = spec
            .resolve()
            .ok_or_else(|| RejectReason::UnknownWorkload(spec.workload.clone()))
            .and_then(|w| {
                self.inner
                    .tenants
                    .admit(&spec.tenant, spec.heap_bytes(&w), spec.cycle_budget)
            });
        let budget = match admitted {
            Ok(budget) => budget,
            Err(reason) => {
                t.incr(MetricId::ServeJobsRejected);
                return Err(reason);
            }
        };
        t.set_gauge_max(
            MetricId::ServeTenants,
            self.inner.tenants.tenant_count() as u64,
        );
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut queue = self.inner.queue.lock().unwrap();
            queue.push_back(Queued { id, spec, budget });
            // High-water mark of jobs in flight (queued + running).
            t.set_gauge_max(
                MetricId::ServeLiveJobs,
                queue.len() as u64 + self.inner.running(),
            );
        }
        self.inner.wake.notify_one();
        Ok(id)
    }

    /// Block until job `id` reaches a terminal state and take its
    /// report.
    #[must_use]
    pub fn wait(&self, id: u64) -> JobReport {
        let mut results = self.inner.results.lock().unwrap();
        loop {
            if let Some(report) = results.remove(&id) {
                return report;
            }
            results = self.inner.done.wait(results).unwrap();
        }
    }

    /// The shared profile repository (for inspection and tests).
    #[must_use]
    pub fn repo(&self) -> &SharedProfileRepo {
        &self.inner.repo
    }

    /// The fleet telemetry handle.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// Freeze the fleet metrics, syncing the repository gauges first.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.inner.sync_repo_gauges();
        self.inner.telemetry.snapshot(0)
    }

    /// Drain the queue, stop the workers, and persist the repository to
    /// the spill directory if one was configured. Returns the number of
    /// profiles persisted.
    pub fn shutdown(mut self) -> usize {
        // Graceful: let queued jobs finish before stopping.
        {
            let mut queue = self.inner.queue.lock().unwrap();
            while !queue.is_empty() {
                queue = self.inner.wake.wait(queue).unwrap();
            }
        }
        self.stop_workers(false);
        let persisted = match &self.spill_dir {
            Some(dir) => self.inner.repo.persist(dir).unwrap_or(0),
            None => 0,
        };
        self.spill_dir = None; // Drop must not persist again.
        persisted
    }

    fn stop_workers(&mut self, cancel_running: bool) {
        self.inner.stopping.store(true, Ordering::SeqCst);
        if cancel_running {
            self.inner.cancel.cancel();
        }
        self.inner.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Fast teardown: abandon the queue, cancel in-flight jobs at
        // their next poll boundary.
        self.stop_workers(true);
    }
}

impl Inner {
    fn running(&self) -> u64 {
        // Live minus queued is implicit; the gauge is a high-water mark
        // so an approximation from completed counts suffices.
        let t = &self.telemetry;
        t.get(MetricId::ServeJobsSubmitted)
            .saturating_sub(t.get(MetricId::ServeJobsRejected))
            .saturating_sub(t.get(MetricId::ServeJobsCompleted))
            .saturating_sub(t.get(MetricId::ServeJobsKilled))
            .saturating_sub(t.get(MetricId::ServeJobsFailed))
    }

    fn sync_repo_gauges(&self) {
        let stats = self.repo.stats();
        let t = &self.telemetry;
        t.set_gauge(MetricId::ServeRepoProfiles, self.repo.len() as u64);
        t.set_gauge_max(MetricId::ServeRepoCheckouts, stats.checkouts);
        t.set_gauge_max(MetricId::ServeRepoMerges, stats.merges);
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    // Wake `shutdown`'s drain wait when the queue runs dry.
                    if queue.is_empty() {
                        inner.wake.notify_all();
                    }
                    break Some(job);
                }
                if inner.stopping.load(Ordering::SeqCst) {
                    break None;
                }
                queue = inner.wake.wait(queue).unwrap();
            }
        };
        let Some(Queued { id, spec, budget }) = job else {
            return;
        };

        let t = &inner.telemetry;
        let checkout = spec.resolve().map(|w| {
            t.incr(MetricId::ServeRepoCheckouts);
            inner.repo.checkout(&fingerprint_of(&spec, &w))
        });
        let run = run_job(
            &spec,
            checkout.flatten(),
            budget,
            Some(inner.cancel.clone()),
        );

        if let Some(fresh) = &run.fresh_profile {
            inner.repo.merge(fresh, inner.decay);
            t.incr(MetricId::ServeRepoMerges);
        }
        t.absorb(&run.telemetry);
        t.incr(match run.outcome {
            JobOutcome::Completed => MetricId::ServeJobsCompleted,
            JobOutcome::Killed | JobOutcome::Cancelled => MetricId::ServeJobsKilled,
            JobOutcome::Failed(_) => MetricId::ServeJobsFailed,
        });
        if run.outcome == JobOutcome::Completed {
            t.incr(if run.warm {
                MetricId::ServeWarmJobs
            } else {
                MetricId::ServeColdJobs
            });
            t.observe(HistogramId::ServeJobCycles, run.cycles);
            if let Some(first) = run.first_decision_cycles {
                t.observe(
                    if run.warm {
                        HistogramId::ServeWarmFirstDecisionCycles
                    } else {
                        HistogramId::ServeColdFirstDecisionCycles
                    },
                    first,
                );
            }
        }
        inner.sync_repo_gauges();
        inner.tenants.release(&spec.tenant);

        let report = JobReport {
            id,
            outcome: run.outcome,
            warm: run.warm,
            cycles: run.cycles,
            first_decision_cycles: run.first_decision_cycles,
            digest: run.digest,
            spec,
        };
        inner.results.lock().unwrap().insert(id, report);
        inner.done.notify_all();
    }
}
