//! The live daemon: sharded run queues, a work-stealing worker pool,
//! and the shared repository.
//!
//! Job lifecycle: `submit` runs admission control synchronously
//! (rejections never enter a queue), assigns an id, and enqueues onto
//! the tenant's shard of the [`ShardedScheduler`] under
//! deficit-round-robin fairness. A worker claims the job — from its own
//! shard, or by stealing from a victim shard in seed-deterministic
//! order when its own runs dry — checks out a warm profile from the
//! shared [`SharedProfileRepo`] keyed by the job's fingerprint,
//! executes it in full isolation ([`crate::job::run_job`]), then folds
//! the results back: decay-merges the fresh profile (subject to the
//! repository's LRU+TTL byte-capacity bound), absorbs the job's private
//! telemetry into the fleet registry, and publishes the [`JobReport`]
//! for `wait`.
//!
//! Live mode trades the bench's determinism for latency: merges land in
//! completion order, so two daemon runs may interleave differently.
//! The deterministic counterparts with the same execution unit are
//! [`crate::bench`] (closed-loop) and [`crate::openloop`] (QPS-paced).
//!
//! # Shutdown vs Drop
//!
//! The two teardown paths are deliberately asymmetric:
//!
//! * [`Service::shutdown`] is graceful — it blocks until every queued
//!   job has been claimed and finished, then stops the workers and
//!   persists the repository to the spill directory.
//! * [`Drop`] is fast — queued jobs are **abandoned** (never executed,
//!   never merged) and in-flight jobs are cancelled at their next poll
//!   boundary via the shared [`CancelToken`]. Cancelled and killed jobs
//!   produce no fresh profile, so nothing from an interrupted run ever
//!   reaches the repository.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use hpmopt_profile::{RepoConfig, SharedProfileRepo};
use hpmopt_telemetry::{HistogramId, MetricId, Telemetry, TelemetrySnapshot};
use hpmopt_vm::CancelToken;

use crate::job::{fingerprint_of, run_job, JobOutcome, JobReport, JobSpec, RejectReason};
use crate::scheduler::{Claim, SchedulerConfig, ShardedScheduler};
use crate::tenant::{TenantBook, TenantCaps};

/// Daemon parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing jobs (clamped to ≥ 1). Also the shard
    /// count of the run-queue scheduler: one home shard per worker.
    pub workers: usize,
    /// Exponential decay for repository merges.
    pub decay: f64,
    /// Caps applied to tenants without explicit caps.
    pub default_caps: TenantCaps,
    /// Directory to preload profiles from at startup and persist to at
    /// shutdown — warm starts across daemon restarts.
    pub spill_dir: Option<PathBuf>,
    /// Run-queue fairness and steal-order parameters.
    pub scheduler: SchedulerConfig,
    /// Sharding and bounds of the shared profile repository.
    pub repo: RepoConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            decay: 0.5,
            default_caps: TenantCaps::default(),
            spill_dir: None,
            scheduler: SchedulerConfig::default(),
            repo: RepoConfig::default(),
        }
    }
}

struct Queued {
    id: u64,
    spec: JobSpec,
    budget: Option<u64>,
}

struct Inner {
    repo: SharedProfileRepo,
    tenants: TenantBook,
    scheduler: ShardedScheduler<Queued>,
    results: Mutex<BTreeMap<u64, JobReport>>,
    done: Condvar,
    cancel: CancelToken,
    next_id: AtomicU64,
    telemetry: Telemetry,
    decay: f64,
}

/// The running service. Dropping it stops the workers fast: queued jobs
/// are abandoned, in-flight jobs are cancelled at their next poll
/// boundary. Use [`Service::shutdown`] to drain gracefully instead (see
/// the module docs for the full asymmetry).
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    spill_dir: Option<PathBuf>,
}

impl Service {
    /// Start the daemon: preload the spill directory (if configured)
    /// and spawn the worker pool.
    #[must_use]
    pub fn start(config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            repo: SharedProfileRepo::with_config(config.repo),
            tenants: TenantBook::new(config.default_caps),
            scheduler: ShardedScheduler::new(workers, &config.scheduler),
            results: Mutex::new(BTreeMap::new()),
            done: Condvar::new(),
            cancel: CancelToken::new(),
            next_id: AtomicU64::new(0),
            telemetry: Telemetry::enabled(hpmopt_telemetry::DEFAULT_TRACE_CAPACITY),
            decay: config.decay,
        });
        if let Some(dir) = &config.spill_dir {
            let loaded = inner.repo.preload(dir);
            inner
                .telemetry
                .set_gauge(MetricId::ServeRepoProfiles, loaded as u64);
        }
        let workers = (0..workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner, w))
            })
            .collect();
        Service {
            inner,
            workers,
            spill_dir: config.spill_dir,
        }
    }

    /// Install explicit caps for one tenant.
    pub fn set_caps(&self, tenant: &str, caps: TenantCaps) {
        self.inner.tenants.set_caps(tenant, caps);
    }

    /// Submit one job. Admission control runs here, synchronously: a
    /// rejected job never consumes a queue slot or a worker.
    ///
    /// # Errors
    ///
    /// The [`RejectReason`] when the workload is unknown or a tenant
    /// cap would be exceeded.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, RejectReason> {
        let t = &self.inner.telemetry;
        t.incr(MetricId::ServeJobsSubmitted);
        let admitted = spec
            .resolve()
            .ok_or_else(|| RejectReason::UnknownWorkload(spec.workload.clone()))
            .and_then(|w| {
                self.inner
                    .tenants
                    .admit(&spec.tenant, spec.heap_bytes(&w), spec.cycle_budget)
            });
        let budget = match admitted {
            Ok(budget) => budget,
            Err(reason) => {
                t.incr(MetricId::ServeJobsRejected);
                return Err(reason);
            }
        };
        t.set_gauge_max(
            MetricId::ServeTenants,
            self.inner.tenants.tenant_count() as u64,
        );
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let tenant = spec.tenant.clone();
        // DRR cost 1: the daemon schedules job *slots* fairly. (The
        // open-loop simulator charges service cycles instead; see
        // crate::openloop.)
        let depth = self
            .inner
            .scheduler
            .submit(&tenant, 1, Queued { id, spec, budget });
        // High-water marks: deepest single shard, and jobs in flight
        // (queued + running). `pending()` reads the scheduler's gate
        // counter — one lock, not a sweep over every shard mutex, which
        // would reintroduce the cross-shard contention sharding removed.
        t.set_gauge_max(MetricId::ServeQueueDepth, depth as u64);
        t.set_gauge_max(
            MetricId::ServeLiveJobs,
            self.inner.scheduler.pending() as u64 + self.inner.running(),
        );
        Ok(id)
    }

    /// Block until job `id` reaches a terminal state and take its
    /// report.
    #[must_use]
    pub fn wait(&self, id: u64) -> JobReport {
        let mut results = self.inner.results.lock().unwrap();
        loop {
            if let Some(report) = results.remove(&id) {
                return report;
            }
            results = self.inner.done.wait(results).unwrap();
        }
    }

    /// The shared profile repository (for inspection and tests).
    #[must_use]
    pub fn repo(&self) -> &SharedProfileRepo {
        &self.inner.repo
    }

    /// The fleet telemetry handle.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// Freeze the fleet metrics, syncing the repository gauges first.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.inner.sync_repo_gauges();
        self.inner.telemetry.snapshot(0)
    }

    /// Drain the queues, stop the workers, and persist the repository
    /// to the spill directory if one was configured. Returns the number
    /// of profiles persisted.
    pub fn shutdown(mut self) -> usize {
        // Graceful: every queued job is claimed and finished before the
        // workers stop (workers finish their in-flight job on join).
        self.inner.scheduler.drain();
        self.stop_workers(false);
        let persisted = match &self.spill_dir {
            Some(dir) => self.inner.repo.persist(dir).unwrap_or(0),
            None => 0,
        };
        self.spill_dir = None; // Drop must not persist again.
        persisted
    }

    fn stop_workers(&mut self, cancel_running: bool) {
        if cancel_running {
            self.inner.cancel.cancel();
        }
        self.inner.scheduler.stop();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Fast teardown: abandon queued jobs, cancel in-flight jobs at
        // their next poll boundary. See the module docs.
        self.stop_workers(true);
    }
}

impl Inner {
    fn running(&self) -> u64 {
        // Live minus queued is implicit; the gauge is a high-water mark
        // so an approximation from completed counts suffices.
        let t = &self.telemetry;
        t.get(MetricId::ServeJobsSubmitted)
            .saturating_sub(t.get(MetricId::ServeJobsRejected))
            .saturating_sub(t.get(MetricId::ServeJobsCompleted))
            .saturating_sub(t.get(MetricId::ServeJobsKilled))
            .saturating_sub(t.get(MetricId::ServeJobsFailed))
    }

    fn sync_repo_gauges(&self) {
        let stats = self.repo.stats();
        let t = &self.telemetry;
        t.set_gauge(MetricId::ServeRepoProfiles, self.repo.len() as u64);
        t.set_gauge_max(MetricId::ServeRepoCheckouts, stats.checkouts);
        t.set_gauge_max(MetricId::ServeRepoMerges, stats.merges);
        // RepoStats.evictions is already monotonic, so raising to the
        // latest reading counts each eviction exactly once.
        t.set_gauge_max(MetricId::ServeRepoEvictions, stats.evictions);
    }
}

fn worker_loop(inner: &Inner, worker: usize) {
    while let Some((Queued { id, spec, budget }, claim)) = inner.scheduler.next(worker) {
        let t = &inner.telemetry;
        if claim == Claim::Stolen {
            t.incr(MetricId::ServeSteals);
        }
        let checkout = spec.resolve().map(|w| {
            t.incr(MetricId::ServeRepoCheckouts);
            inner.repo.checkout(&fingerprint_of(&spec, &w))
        });
        let run = run_job(
            &spec,
            checkout.flatten(),
            budget,
            Some(inner.cancel.clone()),
        );

        if let Some(fresh) = &run.fresh_profile {
            inner.repo.merge(fresh, inner.decay);
            t.incr(MetricId::ServeRepoMerges);
        }
        t.absorb(&run.telemetry);
        t.incr(match run.outcome {
            JobOutcome::Completed => MetricId::ServeJobsCompleted,
            JobOutcome::Killed | JobOutcome::Cancelled => MetricId::ServeJobsKilled,
            JobOutcome::Failed(_) => MetricId::ServeJobsFailed,
        });
        if run.outcome == JobOutcome::Completed {
            t.incr(if run.warm {
                MetricId::ServeWarmJobs
            } else {
                MetricId::ServeColdJobs
            });
            t.observe(HistogramId::ServeJobCycles, run.cycles);
            t.observe(HistogramId::ServeServiceCycles, run.cycles);
            if let Some(first) = run.first_decision_cycles {
                t.observe(
                    if run.warm {
                        HistogramId::ServeWarmFirstDecisionCycles
                    } else {
                        HistogramId::ServeColdFirstDecisionCycles
                    },
                    first,
                );
            }
        }
        inner.sync_repo_gauges();
        inner.tenants.release(&spec.tenant);

        let report = JobReport {
            id,
            outcome: run.outcome,
            warm: run.warm,
            cycles: run.cycles,
            first_decision_cycles: run.first_decision_cycles,
            digest: run.digest,
            spec,
        };
        inner.results.lock().unwrap().insert(id, report);
        inner.done.notify_all();
    }
}
