//! Deterministic seeded load generator.
//!
//! The bench replays a mixed-workload job schedule at configurable
//! concurrency and prints a summary that is *byte-identical for any
//! worker count*. Determinism comes from round/generation execution:
//!
//! 1. The full schedule is drawn up front from the seed.
//! 2. Each round checks out every job's warm profile from the
//!    repository state *at round start* — concurrent jobs in a round
//!    cannot observe each other.
//! 3. The round's jobs run on the indexed work-stealing pool
//!    ([`hpmopt_stress::pool`]), whose output depends only on the task
//!    function and index range.
//! 4. Merges apply at the round barrier, in job-index order.
//!
//! The live daemon ([`crate::service`]) intentionally skips steps 2 and
//! 4 (merge-on-completion, lower latency); the bench is the mode CI can
//! diff byte for byte. Wall-clock throughput is reported separately
//! ([`BenchReport::throughput_line`]) so the deterministic summary
//! stays free of timing.
//!
//! Two invariants are checked per job and surfaced in the summary:
//! zero perturbation (every completed job's state digest equals the
//! unmonitored baseline digest of its workload) and the fleet
//! warm-start payoff (per program, mean warm cycles-to-first-decision
//! strictly below the cold mean).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use hpmopt_bench::setup;
use hpmopt_profile::SharedProfileRepo;
use hpmopt_stress::pool;
use hpmopt_workloads::Size;

use crate::job::{fingerprint_of, run_job, JobOutcome, JobRun, JobSpec};

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Worker threads per round (the summary is identical for any
    /// value).
    pub workers: usize,
    /// Rounds to run; warm starts appear from round 1 on.
    pub rounds: usize,
    /// Jobs per round.
    pub jobs_per_round: usize,
    /// Tenants jobs are spread across.
    pub tenants: usize,
    /// Workload mix drawn from per job slot.
    pub workloads: Vec<String>,
    /// Workload size.
    pub size: Size,
    /// Heap multiplier over each workload's minimum heap.
    pub heap_mult: u64,
    /// Schedule seed.
    pub seed: u64,
    /// Repository merge decay.
    pub decay: f64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            workers: 4,
            rounds: 3,
            jobs_per_round: 4,
            tenants: 2,
            workloads: vec!["db".to_string(), "hsqldb".to_string()],
            size: Size::Tiny,
            heap_mult: 4,
            seed: 0xB0B,
            decay: 0.5,
        }
    }
}

/// What one bench run produced.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The deterministic, timing-free summary (worker-count
    /// independent).
    pub summary: String,
    /// Completed jobs whose digest deviated from the unmonitored
    /// baseline (must be 0).
    pub perturbation_deltas: usize,
    /// Whether every deciding program showed mean warm
    /// cycles-to-first-decision strictly below the cold mean — and at
    /// least one program decided at all.
    pub warm_ok: bool,
    /// Jobs executed.
    pub jobs: usize,
    /// Wall-clock duration (excluded from the summary).
    pub wall: Duration,
}

impl BenchReport {
    /// Both invariants hold: zero perturbation, warm beats cold.
    #[must_use]
    pub fn check(&self) -> bool {
        self.perturbation_deltas == 0 && self.warm_ok
    }

    /// The non-deterministic throughput line (print to stderr, never
    /// into the diffable summary).
    #[must_use]
    pub fn throughput_line(&self) -> String {
        let secs = self.wall.as_secs_f64().max(1e-9);
        format!(
            "wall {:.3}s, {:.2} jobs/s",
            self.wall.as_secs_f64(),
            self.jobs as f64 / secs
        )
    }
}

/// Tiny deterministic xorshift64 for schedule drawing.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Draw the full job schedule from the seed, flat in execution order
/// (`rounds * jobs_per_round` entries).
#[must_use]
pub fn schedule(config: &BenchConfig) -> Vec<JobSpec> {
    let mut rng = XorShift(config.seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut specs = Vec::with_capacity(config.rounds * config.jobs_per_round);
    for _ in 0..config.rounds * config.jobs_per_round {
        let workload = &config.workloads[(rng.next() as usize) % config.workloads.len().max(1)];
        let tenant = format!("t{}", rng.next() % config.tenants.max(1) as u64);
        let mut spec = JobSpec::new(&tenant, workload);
        spec.size = config.size;
        spec.heap_mult = config.heap_mult;
        specs.push(spec);
    }
    specs
}

fn mean(values: &[u64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<u64>() as f64 / values.len() as f64
    }
}

/// Run the bench: execute the schedule in rounds against a fresh
/// shared repository and build the deterministic summary.
#[must_use]
pub fn run_bench(config: &BenchConfig) -> BenchReport {
    let specs = schedule(config);
    let repo = SharedProfileRepo::new();
    let start = Instant::now();

    let mut summary = format!(
        "serve bench: {} round(s) x {} job(s), {} tenant(s), workloads [{}], size {:?}, heap {}x, seed {:#x}\n",
        config.rounds,
        config.jobs_per_round,
        config.tenants,
        config.workloads.join(", "),
        config.size,
        config.heap_mult,
        config.seed
    );
    // Per program: (cold first-decisions, warm first-decisions).
    let mut per_program: BTreeMap<String, (Vec<u64>, Vec<u64>)> = BTreeMap::new();
    let mut deltas = 0usize;
    let mut completed = 0usize;

    for (r, round) in specs.chunks(config.jobs_per_round.max(1)).enumerate() {
        // Round-start snapshot: every job in the round checks out
        // against the same repository state.
        let checkouts: Vec<_> = round
            .iter()
            .map(|spec| {
                spec.resolve()
                    .and_then(|w| repo.checkout(&fingerprint_of(spec, &w)))
            })
            .collect();
        let runs: Vec<JobRun> = pool::contiguous_prefix(pool::run_indexed(
            round.len() as u64,
            config.workers,
            None,
            |i| {
                run_job(
                    &round[i as usize],
                    checkouts[i as usize].clone(),
                    None,
                    None,
                )
            },
        ));
        for (j, (spec, run)) in round.iter().zip(&runs).enumerate() {
            // Merge at the barrier, in job-index order: the repository
            // evolves identically for any worker count.
            if let Some(fresh) = &run.fresh_profile {
                repo.merge(fresh, config.decay);
            }
            if run.outcome == JobOutcome::Completed {
                completed += 1;
                let baseline = spec
                    .resolve()
                    .map(|w| setup::baseline_digest(&w, spec.size, spec.heap_mult, 1));
                if baseline != Some(run.digest) {
                    deltas += 1;
                }
                if let Some(first) = run.first_decision_cycles {
                    let slot = per_program.entry(spec.workload.clone()).or_default();
                    if run.warm {
                        slot.1.push(first);
                    } else {
                        slot.0.push(first);
                    }
                }
            }
            summary.push_str(&format!(
                "round {r} job {j} tenant {} workload {} {} {} cycles {} first-decision {} digest {:#018x}\n",
                spec.tenant,
                spec.workload,
                if run.warm { "warm" } else { "cold" },
                run.outcome.tag(),
                run.cycles,
                run.first_decision_cycles
                    .map_or_else(|| "never".to_string(), |c| c.to_string()),
                run.digest
            ));
        }
    }
    let wall = start.elapsed();

    let mut any_decided = false;
    let mut warm_ok = true;
    for (program, (cold, warm)) in &per_program {
        if cold.is_empty() || warm.is_empty() {
            continue;
        }
        any_decided = true;
        let (cm, wm) = (mean(cold), mean(warm));
        summary.push_str(&format!(
            "program {program}: cold mean first-decision {cm:.0} ({}), warm mean {wm:.0} ({})\n",
            cold.len(),
            warm.len()
        ));
        if wm >= cm {
            warm_ok = false;
        }
    }
    warm_ok &= any_decided;
    let stats = repo.stats();
    summary.push_str(&format!(
        "repo: {} profile(s), {} checkout(s) ({} warm), {} merge(s)\n",
        repo.len(),
        stats.checkouts,
        stats.warm_checkouts,
        stats.merges
    ));
    summary.push_str(&format!("perturbation deltas: {deltas}\n"));
    summary.push_str(&format!("warm beats cold: {warm_ok}\n"));

    BenchReport {
        summary,
        perturbation_deltas: deltas,
        warm_ok,
        jobs: completed,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_mixed() {
        let config = BenchConfig::default();
        let a = schedule(&config);
        let b = schedule(&config);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), config.rounds * config.jobs_per_round);
        let programs: std::collections::BTreeSet<_> =
            a.iter().map(|s| s.workload.clone()).collect();
        assert!(
            programs.len() > 1,
            "mix draws more than one workload: {programs:?}"
        );

        let other = schedule(&BenchConfig {
            seed: 1,
            ..config.clone()
        });
        assert_ne!(a, other, "different seed, different schedule");
    }
}
