//! Per-tenant resource caps and admission control.
//!
//! Admission is the only gate: once a job is admitted, nothing it does
//! can starve another tenant, because every resource it touches (heap,
//! VM, HPM unit, telemetry) is private and its simulated-cycle budget
//! was fixed at admission. The book therefore only has to track *live
//! job counts* per tenant and answer three questions at submit time:
//! is the tenant under its concurrency cap, is the requested heap under
//! its per-job heap cap, and what cycle budget applies.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::job::RejectReason;

/// Resource caps applied to one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantCaps {
    /// Maximum jobs live (queued or running) at once.
    pub max_live_jobs: usize,
    /// Maximum heap bytes one job may reserve.
    pub max_heap_bytes: u64,
    /// Cycle budget imposed on every job; combined with the job's own
    /// requested budget by taking the minimum. `None` imposes nothing.
    pub max_cycles_per_job: Option<u64>,
}

impl Default for TenantCaps {
    fn default() -> Self {
        TenantCaps {
            max_live_jobs: 8,
            max_heap_bytes: 256 * 1024 * 1024,
            max_cycles_per_job: None,
        }
    }
}

#[derive(Debug, Default)]
struct TenantState {
    caps: Option<TenantCaps>,
    live: usize,
}

/// The admission book: per-tenant caps and live-job counts.
#[derive(Debug, Default)]
pub struct TenantBook {
    default_caps: TenantCaps,
    tenants: Mutex<BTreeMap<String, TenantState>>,
}

impl TenantBook {
    /// A book applying `default_caps` to tenants with no explicit caps.
    #[must_use]
    pub fn new(default_caps: TenantCaps) -> Self {
        TenantBook {
            default_caps,
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// Install explicit caps for one tenant (replacing any prior caps).
    pub fn set_caps(&self, tenant: &str, caps: TenantCaps) {
        self.tenants
            .lock()
            .unwrap()
            .entry(tenant.to_string())
            .or_default()
            .caps = Some(caps);
    }

    /// The caps in force for a tenant.
    #[must_use]
    pub fn caps_of(&self, tenant: &str) -> TenantCaps {
        self.tenants
            .lock()
            .unwrap()
            .get(tenant)
            .and_then(|t| t.caps)
            .unwrap_or(self.default_caps)
    }

    /// Admit one job: check the tenant's caps against the request and,
    /// on success, count the job live and return the effective cycle
    /// budget (minimum of the tenant cap and the job's own request).
    ///
    /// # Errors
    ///
    /// The [`RejectReason`] when a cap would be exceeded; the live
    /// count is untouched.
    pub fn admit(
        &self,
        tenant: &str,
        heap_bytes: u64,
        requested_budget: Option<u64>,
    ) -> Result<Option<u64>, RejectReason> {
        let mut book = self.tenants.lock().unwrap();
        let state = book.entry(tenant.to_string()).or_default();
        let caps = state.caps.unwrap_or(self.default_caps);
        if state.live >= caps.max_live_jobs {
            return Err(RejectReason::LiveJobCap {
                live: state.live,
                cap: caps.max_live_jobs,
            });
        }
        if heap_bytes > caps.max_heap_bytes {
            return Err(RejectReason::HeapCap {
                requested_bytes: heap_bytes,
                cap_bytes: caps.max_heap_bytes,
            });
        }
        state.live += 1;
        Ok(match (caps.max_cycles_per_job, requested_budget) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        })
    }

    /// Release one live-job slot after the job reaches a terminal
    /// state.
    pub fn release(&self, tenant: &str) {
        let mut book = self.tenants.lock().unwrap();
        if let Some(state) = book.get_mut(tenant) {
            state.live = state.live.saturating_sub(1);
        }
    }

    /// Jobs currently live for a tenant.
    #[must_use]
    pub fn live(&self, tenant: &str) -> usize {
        self.tenants
            .lock()
            .unwrap()
            .get(tenant)
            .map_or(0, |t| t.live)
    }

    /// Tenants the book has seen.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.tenants.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_job_cap_rejects_then_release_readmits() {
        let book = TenantBook::new(TenantCaps {
            max_live_jobs: 2,
            ..TenantCaps::default()
        });
        assert!(book.admit("a", 1, None).is_ok());
        assert!(book.admit("a", 1, None).is_ok());
        assert_eq!(
            book.admit("a", 1, None),
            Err(RejectReason::LiveJobCap { live: 2, cap: 2 })
        );
        assert!(book.admit("b", 1, None).is_ok(), "caps are per tenant");
        book.release("a");
        assert!(book.admit("a", 1, None).is_ok());
        assert_eq!(book.live("a"), 2);
        assert_eq!(book.tenant_count(), 2);
    }

    #[test]
    fn heap_cap_rejects_without_consuming_a_slot() {
        let book = TenantBook::new(TenantCaps {
            max_heap_bytes: 100,
            ..TenantCaps::default()
        });
        assert_eq!(
            book.admit("a", 101, None),
            Err(RejectReason::HeapCap {
                requested_bytes: 101,
                cap_bytes: 100
            })
        );
        assert_eq!(book.live("a"), 0);
    }

    #[test]
    fn budget_is_the_minimum_of_cap_and_request() {
        let book = TenantBook::new(TenantCaps::default());
        book.set_caps(
            "a",
            TenantCaps {
                max_cycles_per_job: Some(500),
                ..TenantCaps::default()
            },
        );
        assert_eq!(book.admit("a", 1, Some(900)).unwrap(), Some(500));
        assert_eq!(book.admit("a", 1, Some(200)).unwrap(), Some(200));
        assert_eq!(book.admit("a", 1, None).unwrap(), Some(500));
        assert_eq!(book.admit("b", 1, Some(900)).unwrap(), Some(900));
        assert_eq!(book.admit("b", 1, None).unwrap(), None);
    }
}
