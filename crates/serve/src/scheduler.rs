//! Sharded, tenant-fair run queues with work stealing.
//!
//! PR 8's daemon kept one global `Mutex<VecDeque>`: every submit,
//! claim, and completion contended on the same lock, and FIFO order
//! let one tenant's burst starve everyone behind it. This module
//! replaces it with two composed layers:
//!
//! * **Sharding + stealing** ([`ShardedScheduler`]): submissions hash
//!   by tenant onto one of `shards` independently locked run queues, so
//!   concurrent submitters and claimers touch disjoint mutexes. A
//!   worker claims from its own shard first and, when that runs dry,
//!   *steals* from the other shards in a seed-deterministic victim
//!   order (a per-worker permutation drawn from
//!   [`SchedulerConfig::steal_seed`]) — idle workers find work instead
//!   of sleeping behind a hot shard, and the order is reproducible for
//!   a given seed rather than dependent on thread timing.
//!
//! * **Deficit round robin** ([`DrrQueue`], per shard): within a shard,
//!   each tenant has its own FIFO and a *deficit counter*. The
//!   scheduler visits backlogged tenants in rotation; each visit grants
//!   the tenant [`SchedulerConfig::quantum`] cost units of deficit, and
//!   the tenant dispatches queued items while its front item's cost
//!   fits the accumulated deficit. A heavy tenant that enqueued a burst
//!   of expensive jobs therefore interleaves with — rather than walls
//!   off — a light tenant's cheap jobs, and long-run dispatch
//!   bandwidth is proportional to the quantum regardless of arrival
//!   order. With unit costs and a unit quantum this degenerates to
//!   plain per-tenant round robin.
//!
//! The scheduler moves queue *order* decisions off the submit path and
//! into data structures with O(1) amortized dispatch; fairness is
//! enforced at claim time, not by re-sorting queues.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Scheduling parameters of a [`ShardedScheduler`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Deficit granted to a tenant per scheduler visit, in the same
    /// cost units items are submitted with (clamped to ≥ 1). Larger
    /// quanta favor throughput (longer per-tenant runs); smaller quanta
    /// favor fairness granularity.
    pub quantum: u64,
    /// Seed for the per-worker steal-victim permutation. Two schedulers
    /// with the same seed and shard count steal in the same order.
    pub steal_seed: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            quantum: 1,
            steal_seed: 0xB0B,
        }
    }
}

struct TenantLane<T> {
    name: String,
    items: VecDeque<(u64, T)>,
    deficit: u64,
}

/// A deficit-round-robin queue: per-tenant FIFOs served in rotation,
/// each visit funding the tenant's deficit with one quantum.
pub struct DrrQueue<T> {
    quantum: u64,
    lanes: Vec<TenantLane<T>>,
    /// Rotation of backlogged lanes (indexes into `lanes`).
    active: VecDeque<usize>,
    /// Whether the lane at the front of `active` has already been
    /// granted its quantum for the current visit.
    front_funded: bool,
    len: usize,
}

impl<T> DrrQueue<T> {
    #[must_use]
    pub fn new(quantum: u64) -> Self {
        DrrQueue {
            quantum: quantum.max(1),
            lanes: Vec::new(),
            active: VecDeque::new(),
            front_funded: false,
            len: 0,
        }
    }

    /// Queued items across all tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueue one item for `tenant` with dispatch cost `cost`
    /// (clamped to ≥ 1). FIFO within the tenant.
    pub fn push(&mut self, tenant: &str, cost: u64, item: T) {
        let idx = match self.lanes.iter().position(|l| l.name == tenant) {
            Some(idx) => idx,
            None => {
                self.lanes.push(TenantLane {
                    name: tenant.to_string(),
                    items: VecDeque::new(),
                    deficit: 0,
                });
                self.lanes.len() - 1
            }
        };
        if self.lanes[idx].items.is_empty() {
            // Lane becomes backlogged: join the rotation at the tail
            // with an empty deficit (funded on its first visit).
            self.lanes[idx].deficit = 0;
            self.active.push_back(idx);
        }
        self.lanes[idx].items.push_back((cost.max(1), item));
        self.len += 1;
    }

    /// Dispatch the next item under DRR order, or `None` when empty.
    pub fn pop(&mut self) -> Option<T> {
        loop {
            let idx = *self.active.front()?;
            if !self.front_funded {
                let lane = &mut self.lanes[idx];
                lane.deficit = lane.deficit.saturating_add(self.quantum);
                self.front_funded = true;
            }
            let lane = &mut self.lanes[idx];
            let &(cost, _) = lane.items.front().expect("active lane is backlogged");
            if cost <= lane.deficit {
                let (cost, item) = lane.items.pop_front().expect("front checked");
                lane.deficit -= cost;
                self.len -= 1;
                if lane.items.is_empty() {
                    // Classic DRR: an emptied lane forfeits its
                    // leftover deficit and leaves the rotation.
                    lane.deficit = 0;
                    self.active.pop_front();
                    self.front_funded = false;
                }
                return Some(item);
            }
            // Can't afford the front item yet: end of this visit, move
            // to the back of the rotation keeping the deficit earned so
            // far. The deficit grows by one quantum per visit, so any
            // finite cost is eventually funded.
            let idx = self.active.pop_front().expect("front checked");
            self.active.push_back(idx);
            self.front_funded = false;
        }
    }
}

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// FNV-1a of a tenant name, for shard selection.
fn shard_hash(tenant: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

struct Gate {
    /// Submitted items not yet claimed, across all shards.
    pending: usize,
    stopping: bool,
}

/// `shards` independently locked [`DrrQueue`]s plus the blocking
/// claim/drain protocol workers and `shutdown` coordinate through.
pub struct ShardedScheduler<T> {
    shards: Vec<Mutex<DrrQueue<T>>>,
    gate: Mutex<Gate>,
    /// Workers sleep here for pending work (or stop).
    wake: Condvar,
    /// `drain` sleeps here for the backlog to hit zero.
    drained: Condvar,
    steal_seed: u64,
}

/// What a successful claim was: the worker's own shard, or a steal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    Own,
    Stolen,
}

impl<T> ShardedScheduler<T> {
    #[must_use]
    pub fn new(shards: usize, config: &SchedulerConfig) -> Self {
        ShardedScheduler {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(DrrQueue::new(config.quantum)))
                .collect(),
            gate: Mutex::new(Gate {
                pending: 0,
                stopping: false,
            }),
            wake: Condvar::new(),
            drained: Condvar::new(),
            steal_seed: config.steal_seed,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `tenant`'s submissions land on.
    #[must_use]
    pub fn shard_of(&self, tenant: &str) -> usize {
        (shard_hash(tenant) % self.shards.len() as u64) as usize
    }

    /// Enqueue one item for `tenant` with DRR cost `cost` and wake a
    /// worker. Returns the depth of the target shard after the push
    /// (for the `serve.queue_depth` gauge).
    pub fn submit(&self, tenant: &str, cost: u64, item: T) -> usize {
        // Count the item BEFORE it becomes poppable: `pending` is then
        // always >= the number of queued items, so a claimer's
        // decrement can never underflow. A worker that wins the race
        // between this increment and the push below scans, misses, and
        // re-checks the gate — it never observes pending == 0 with an
        // item still queued.
        self.gate.lock().unwrap().pending += 1;
        let depth = {
            let mut shard = self.shards[self.shard_of(tenant)].lock().unwrap();
            shard.push(tenant, cost, item);
            shard.len()
        };
        self.wake.notify_one();
        depth
    }

    /// Steal-victim visit order for `worker`: its own shard first, then
    /// every other shard in a seed-deterministic permutation.
    #[must_use]
    pub fn victim_order(&self, worker: usize) -> Vec<usize> {
        let own = worker % self.shards.len();
        let mut rest: Vec<usize> = (0..self.shards.len()).filter(|&s| s != own).collect();
        // Fisher-Yates driven by a per-worker xorshift stream.
        let mut state = xorshift(self.steal_seed ^ (worker as u64).wrapping_mul(0x9e37_79b9));
        state |= 1; // xorshift must never reach the zero fixpoint
        for i in (1..rest.len()).rev() {
            state = xorshift(state);
            rest.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let mut order = Vec::with_capacity(self.shards.len());
        order.push(own);
        order.extend(rest);
        order
    }

    /// Block until an item is claimable or the scheduler stops. Returns
    /// the item plus whether it was stolen from another worker's shard,
    /// or `None` once stopped (a stopped scheduler abandons any backlog
    /// — the caller decides whether to [`ShardedScheduler::drain`]
    /// first).
    pub fn next(&self, worker: usize) -> Option<(T, Claim)> {
        let order = self.victim_order(worker);
        loop {
            {
                let mut gate = self.gate.lock().unwrap();
                loop {
                    if gate.stopping {
                        return None;
                    }
                    if gate.pending > 0 {
                        break;
                    }
                    gate = self.wake.wait(gate).unwrap();
                }
            }
            // The gate said work exists somewhere; scan for it without
            // holding the gate. A racing worker may claim it first —
            // then the scan misses and we re-check the gate.
            for (i, &shard_idx) in order.iter().enumerate() {
                let popped = self.shards[shard_idx].lock().unwrap().pop();
                if let Some(item) = popped {
                    let mut gate = self.gate.lock().unwrap();
                    gate.pending -= 1;
                    if gate.pending == 0 {
                        self.drained.notify_all();
                    }
                    return Some((item, if i == 0 { Claim::Own } else { Claim::Stolen }));
                }
            }
        }
    }

    /// Block until every submitted item has been claimed by a worker,
    /// or until the scheduler stops (a stopped scheduler abandons its
    /// backlog, so waiting on it would never return).
    pub fn drain(&self) {
        let mut gate = self.gate.lock().unwrap();
        while gate.pending > 0 && !gate.stopping {
            gate = self.drained.wait(gate).unwrap();
        }
    }

    /// Stop the scheduler: wake every blocked worker and make all
    /// future [`ShardedScheduler::next`] calls return `None`
    /// immediately. Unclaimed items are abandoned, not dispatched.
    pub fn stop(&self) {
        self.gate.lock().unwrap().stopping = true;
        self.wake.notify_all();
        // Unblock a drain() that would otherwise wait forever on an
        // abandoned backlog.
        self.drained.notify_all();
    }

    /// Unclaimed items by the gate's count: one lock, no shard sweep.
    /// May transiently exceed [`ShardedScheduler::backlog`] while a
    /// racing `submit` has counted an item but not yet pushed it.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.gate.lock().unwrap().pending
    }

    /// Total unclaimed items across shards (diagnostics; locks every
    /// shard in sequence — prefer [`ShardedScheduler::pending`] on hot
    /// paths).
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drr_unit_costs_round_robin_across_tenants() {
        let mut q = DrrQueue::new(1);
        for i in 0..3 {
            q.push("heavy", 1, format!("h{i}"));
        }
        for i in 0..3 {
            q.push("light", 1, format!("l{i}"));
        }
        let order: Vec<String> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, ["h0", "l0", "h1", "l1", "h2", "l2"]);
        assert!(q.is_empty());
    }

    #[test]
    fn drr_fifo_within_a_tenant() {
        let mut q = DrrQueue::new(4);
        q.push("a", 1, 1);
        q.push("a", 1, 2);
        q.push("a", 1, 3);
        assert_eq!(
            std::iter::from_fn(|| q.pop()).collect::<Vec<_>>(),
            [1, 2, 3]
        );
    }

    #[test]
    fn drr_expensive_items_wait_for_deficit() {
        // Heavy's items cost 3; light's cost 1; quantum 1. Heavy must
        // accumulate three visits of deficit per item, so light
        // dispatches ~3 items per heavy item despite arriving second.
        let mut q = DrrQueue::new(1);
        for i in 0..2 {
            q.push("heavy", 3, format!("h{i}"));
        }
        for i in 0..6 {
            q.push("light", 1, format!("l{i}"));
        }
        let order: Vec<String> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, ["l0", "l1", "h0", "l2", "l3", "l4", "h1", "l5"]);
    }

    #[test]
    fn drr_emptied_lane_forfeits_deficit() {
        let mut q = DrrQueue::new(10);
        q.push("a", 1, "a0");
        assert_eq!(q.pop(), Some("a0"));
        // Re-backlogged lane starts from zero deficit: a cost-15 item
        // needs two fresh visits, not leftover credit from before.
        q.push("a", 15, "a1");
        q.push("b", 1, "b0");
        assert_eq!(q.pop(), Some("b0"), "a can't afford 15 on one quantum");
        assert_eq!(q.pop(), Some("a1"), "second visit funds it");
    }

    #[test]
    fn drr_single_tenant_degenerates_to_fifo() {
        let mut q = DrrQueue::new(1);
        for i in 0..5 {
            q.push("only", 7, i);
        }
        assert_eq!(
            std::iter::from_fn(|| q.pop()).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn victim_order_is_deterministic_and_complete() {
        let config = SchedulerConfig::default();
        let s: ShardedScheduler<u32> = ShardedScheduler::new(8, &config);
        for worker in 0..8 {
            let order = s.victim_order(worker);
            assert_eq!(order[0], worker, "own shard first");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "a permutation");
            assert_eq!(order, s.victim_order(worker), "stable per worker");
        }
        let other: ShardedScheduler<u32> = ShardedScheduler::new(
            8,
            &SchedulerConfig {
                steal_seed: 0xDEAD,
                ..config
            },
        );
        assert_ne!(
            other.victim_order(0)[1..],
            s.victim_order(0)[1..],
            "seed changes the steal order"
        );
    }

    #[test]
    fn workers_claim_everything_and_steals_are_flagged() {
        let s: ShardedScheduler<u64> = ShardedScheduler::new(4, &SchedulerConfig::default());
        // All work lands on one tenant's shard; the other workers must
        // steal to participate.
        for i in 0..40 {
            s.submit("solo", 1, i);
        }
        let shard = s.shard_of("solo");
        let claims = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..4 {
                let (s, claims) = (&s, &claims);
                scope.spawn(move || {
                    while let Some((item, claim)) = s.next(w) {
                        claims.lock().unwrap().push((item, w, claim));
                    }
                });
            }
            s.drain();
            s.stop();
        });
        let claims = claims.into_inner().unwrap();
        assert_eq!(claims.len(), 40, "nothing lost, nothing duplicated");
        let mut items: Vec<u64> = claims.iter().map(|(i, _, _)| *i).collect();
        items.sort_unstable();
        assert_eq!(items, (0..40).collect::<Vec<_>>());
        for (_, w, claim) in &claims {
            let expected = if *w % 4 == shard {
                Claim::Own
            } else {
                Claim::Stolen
            };
            assert_eq!(*claim, expected);
        }
        assert_eq!(s.backlog(), 0);
    }

    #[test]
    fn concurrent_submits_race_claimers_without_loss() {
        // Regression: submit() once made the item poppable before
        // counting it in the gate, so a racing claimer could decrement
        // pending below zero (panic in debug, wrap + hang in release).
        // Hammer submits against claimers and verify exact delivery.
        let s: ShardedScheduler<u64> = ShardedScheduler::new(4, &SchedulerConfig::default());
        const PER_TENANT: u64 = 200;
        let claimed = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..4 {
                let (s, claimed) = (&s, &claimed);
                scope.spawn(move || {
                    while let Some((item, _)) = s.next(w) {
                        claimed.lock().unwrap().push(item);
                    }
                });
            }
            let submitters: Vec<_> = (0..3u64)
                .map(|t| {
                    let s = &s;
                    scope.spawn(move || {
                        let tenant = format!("t{t}");
                        for i in 0..PER_TENANT {
                            s.submit(&tenant, 1, t * PER_TENANT + i);
                        }
                    })
                })
                .collect();
            for h in submitters {
                h.join().unwrap();
            }
            // Every submit has been counted; drain() returns only once
            // every counted item has also been claimed.
            s.drain();
            s.stop();
        });
        let mut claimed = claimed.into_inner().unwrap();
        claimed.sort_unstable();
        assert_eq!(claimed, (0..3 * PER_TENANT).collect::<Vec<_>>());
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn drain_after_stop_returns() {
        // Regression: drain() looped solely on pending > 0, so a
        // stopped scheduler with an abandoned backlog deadlocked any
        // drainer despite stop() documenting that it unblocks them.
        let s: ShardedScheduler<u32> = ShardedScheduler::new(2, &SchedulerConfig::default());
        s.submit("t", 1, 1);
        s.stop();
        s.drain(); // must return despite the abandoned item
        assert_eq!(s.backlog(), 1, "the item stays abandoned, not claimed");

        // And a drainer already blocked when stop() lands wakes up too.
        let s2: ShardedScheduler<u32> = ShardedScheduler::new(2, &SchedulerConfig::default());
        s2.submit("t", 1, 1);
        std::thread::scope(|scope| {
            scope.spawn(|| s2.drain());
            std::thread::sleep(std::time::Duration::from_millis(10));
            s2.stop();
        });
    }

    #[test]
    fn stop_abandons_the_backlog() {
        let s: ShardedScheduler<u32> = ShardedScheduler::new(2, &SchedulerConfig::default());
        s.submit("t", 1, 1);
        s.submit("t", 1, 2);
        s.stop();
        assert_eq!(s.next(0), None, "stopped scheduler dispatches nothing");
        assert_eq!(s.backlog(), 2, "items stay queued, abandoned");
    }

    #[test]
    fn drain_returns_once_claimed() {
        let s: ShardedScheduler<u32> = ShardedScheduler::new(2, &SchedulerConfig::default());
        s.drain(); // empty: returns immediately
        s.submit("t", 1, 7);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                assert!(s.next(0).is_some());
            });
            s.drain();
        });
        assert_eq!(s.backlog(), 0);
    }
}
