//! Integration tests for the multi-tenant service: admission control,
//! clean cycle-budget kills, tenant isolation (one tenant's misbehavior
//! never perturbs another's digests), fleet warm start, and the
//! worker-count independence of the deterministic bench.

use hpmopt_bench::setup;
use hpmopt_serve::bench::{run_bench, BenchConfig};
use hpmopt_serve::{JobOutcome, JobSpec, RejectReason, Service, ServiceConfig, TenantCaps};
use hpmopt_telemetry::MetricId;

fn one_worker() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    }
}

/// Over-cap submissions come back as `JobRejected` synchronously: they
/// never consume a queue slot, a worker, or a telemetry completion.
#[test]
fn over_cap_submission_is_rejected_synchronously() {
    let service = Service::start(one_worker());
    service.set_caps(
        "greedy",
        TenantCaps {
            max_live_jobs: 0,
            ..TenantCaps::default()
        },
    );
    service.set_caps(
        "hoarder",
        TenantCaps {
            max_heap_bytes: 1,
            ..TenantCaps::default()
        },
    );

    assert_eq!(
        service.submit(JobSpec::new("greedy", "hsqldb")),
        Err(RejectReason::LiveJobCap { live: 0, cap: 0 })
    );
    let spec = JobSpec::new("hoarder", "hsqldb");
    let w = spec.resolve().unwrap();
    assert_eq!(
        service.submit(spec.clone()),
        Err(RejectReason::HeapCap {
            requested_bytes: spec.heap_bytes(&w),
            cap_bytes: 1
        })
    );
    assert!(matches!(
        service.submit(JobSpec::new("greedy", "no-such-program")),
        Err(RejectReason::UnknownWorkload(_))
    ));

    let snap = service.snapshot();
    assert_eq!(snap.get(MetricId::ServeJobsSubmitted), 3);
    assert_eq!(snap.get(MetricId::ServeJobsRejected), 3);
    assert_eq!(snap.get(MetricId::ServeJobsCompleted), 0);
    assert_eq!(service.shutdown(), 0, "nothing ran, nothing to persist");
}

/// A job that exceeds its tenant's cycle cap is killed cleanly at the
/// simulated-cycle budget — and a concurrent tenant's jobs complete
/// with digests identical to the unmonitored baseline, so the kill
/// perturbed nobody. The killed run merges nothing back: the shared
/// repository only ever holds the victim tenant's program.
#[test]
fn cycle_budget_kill_is_clean_and_perturbs_no_other_tenant() {
    let service = Service::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    const BUDGET: u64 = 1_000_000;
    service.set_caps(
        "greedy",
        TenantCaps {
            max_cycles_per_job: Some(BUDGET),
            ..TenantCaps::default()
        },
    );

    let greedy = service.submit(JobSpec::new("greedy", "db")).unwrap();
    let victim_a = service.submit(JobSpec::new("victim", "hsqldb")).unwrap();
    let victim_b = service.submit(JobSpec::new("victim", "hsqldb")).unwrap();

    let killed = service.wait(greedy);
    assert_eq!(killed.outcome, JobOutcome::Killed);
    assert_eq!(killed.cycles, BUDGET, "kill lands exactly on the budget");

    let spec = JobSpec::new("victim", "hsqldb");
    let w = spec.resolve().unwrap();
    let baseline = setup::baseline_digest(&w, spec.size, spec.heap_mult, 1);
    for id in [victim_a, victim_b] {
        let report = service.wait(id);
        assert_eq!(report.outcome, JobOutcome::Completed);
        assert_eq!(
            report.digest, baseline,
            "victim digest must equal the unmonitored baseline"
        );
    }

    assert_eq!(
        service.repo().len(),
        1,
        "killed runs merge nothing: only the victim's profile exists"
    );
    let snap = service.snapshot();
    assert_eq!(snap.get(MetricId::ServeJobsKilled), 1);
    assert_eq!(snap.get(MetricId::ServeJobsCompleted), 2);
    service.shutdown();
}

/// Fleet warm start through the live daemon: N sequential jobs of the
/// same program show monotonically non-increasing cycles-to-first-
/// decision, and every job after the first seeds from the shared
/// repository (first decision in force at cycle 0) — the PR 3 ablation
/// (cold vs warm), replayed through the service.
#[test]
fn sequential_jobs_warm_start_monotonically() {
    let service = Service::start(one_worker());
    let spec = JobSpec::new("t0", "hsqldb");
    let w = spec.resolve().unwrap();
    let baseline = setup::baseline_digest(&w, spec.size, spec.heap_mult, 1);

    let mut firsts = Vec::new();
    for n in 0..4 {
        let id = service.submit(spec.clone()).unwrap();
        let report = service.wait(id);
        assert_eq!(report.outcome, JobOutcome::Completed);
        assert_eq!(report.warm, n > 0, "first job cold, rest warm");
        assert_eq!(report.digest, baseline, "warm start never perturbs state");
        firsts.push(
            report
                .first_decision_cycles
                .expect("hsqldb decides at Tiny size"),
        );
    }

    assert!(
        firsts.windows(2).all(|w| w[1] <= w[0]),
        "cycles-to-first-decision must be non-increasing: {firsts:?}"
    );
    assert!(firsts[0] > 0, "cold run must pay the monitoring ramp");
    assert_eq!(
        *firsts.last().unwrap(),
        0,
        "warm runs start with decisions already in force"
    );

    let snap = service.snapshot();
    assert_eq!(snap.get(MetricId::ServeColdJobs), 1);
    assert_eq!(snap.get(MetricId::ServeWarmJobs), 3);
    assert_eq!(snap.get(MetricId::ServeRepoMerges), 4);
    service.shutdown();
}

/// The bench summary is byte-identical across worker counts: same
/// schedule, same checkouts, same merges, same text.
#[test]
fn bench_summary_is_worker_count_independent() {
    let config = BenchConfig {
        workers: 1,
        rounds: 2,
        jobs_per_round: 2,
        workloads: vec!["hsqldb".to_string()],
        ..BenchConfig::default()
    };
    let solo = run_bench(&config);
    let pooled = run_bench(&BenchConfig {
        workers: 3,
        ..config
    });

    assert_eq!(
        solo.summary, pooled.summary,
        "summary must not depend on worker count"
    );
    assert_eq!(solo.perturbation_deltas, 0);
    assert!(
        solo.warm_ok,
        "warm mean must beat cold mean:\n{}",
        solo.summary
    );
    assert!(solo.check() && pooled.check());
}
