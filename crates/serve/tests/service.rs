//! Integration tests for the multi-tenant service: admission control,
//! clean cycle-budget kills, tenant isolation (one tenant's misbehavior
//! never perturbs another's digests), fleet warm start, the worker-count
//! independence of the deterministic bench, bounded-repository eviction
//! (evicted fingerprints fall back to a clean cold start), the
//! shutdown-vs-Drop asymmetry, and open-loop tenant fairness.

use hpmopt_bench::setup;
use hpmopt_profile::RepoConfig;
use hpmopt_serve::bench::{run_bench, BenchConfig};
use hpmopt_serve::job::fingerprint_of;
use hpmopt_serve::{
    run_openloop, JobOutcome, JobSpec, OpenLoopConfig, RejectReason, Service, ServiceConfig,
    TenantCaps,
};
use hpmopt_telemetry::{MetricId, Telemetry};

fn one_worker() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    }
}

/// Over-cap submissions come back as `JobRejected` synchronously: they
/// never consume a queue slot, a worker, or a telemetry completion.
#[test]
fn over_cap_submission_is_rejected_synchronously() {
    let service = Service::start(one_worker());
    service.set_caps(
        "greedy",
        TenantCaps {
            max_live_jobs: 0,
            ..TenantCaps::default()
        },
    );
    service.set_caps(
        "hoarder",
        TenantCaps {
            max_heap_bytes: 1,
            ..TenantCaps::default()
        },
    );

    assert_eq!(
        service.submit(JobSpec::new("greedy", "hsqldb")),
        Err(RejectReason::LiveJobCap { live: 0, cap: 0 })
    );
    let spec = JobSpec::new("hoarder", "hsqldb");
    let w = spec.resolve().unwrap();
    assert_eq!(
        service.submit(spec.clone()),
        Err(RejectReason::HeapCap {
            requested_bytes: spec.heap_bytes(&w),
            cap_bytes: 1
        })
    );
    assert!(matches!(
        service.submit(JobSpec::new("greedy", "no-such-program")),
        Err(RejectReason::UnknownWorkload(_))
    ));

    let snap = service.snapshot();
    assert_eq!(snap.get(MetricId::ServeJobsSubmitted), 3);
    assert_eq!(snap.get(MetricId::ServeJobsRejected), 3);
    assert_eq!(snap.get(MetricId::ServeJobsCompleted), 0);
    assert_eq!(service.shutdown(), 0, "nothing ran, nothing to persist");
}

/// A job that exceeds its tenant's cycle cap is killed cleanly at the
/// simulated-cycle budget — and a concurrent tenant's jobs complete
/// with digests identical to the unmonitored baseline, so the kill
/// perturbed nobody. The killed run merges nothing back: the shared
/// repository only ever holds the victim tenant's program.
#[test]
fn cycle_budget_kill_is_clean_and_perturbs_no_other_tenant() {
    let service = Service::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    const BUDGET: u64 = 1_000_000;
    service.set_caps(
        "greedy",
        TenantCaps {
            max_cycles_per_job: Some(BUDGET),
            ..TenantCaps::default()
        },
    );

    let greedy = service.submit(JobSpec::new("greedy", "db")).unwrap();
    let victim_a = service.submit(JobSpec::new("victim", "hsqldb")).unwrap();
    let victim_b = service.submit(JobSpec::new("victim", "hsqldb")).unwrap();

    let killed = service.wait(greedy);
    assert_eq!(killed.outcome, JobOutcome::Killed);
    assert_eq!(killed.cycles, BUDGET, "kill lands exactly on the budget");

    let spec = JobSpec::new("victim", "hsqldb");
    let w = spec.resolve().unwrap();
    let baseline = setup::baseline_digest(&w, spec.size, spec.heap_mult, 1);
    for id in [victim_a, victim_b] {
        let report = service.wait(id);
        assert_eq!(report.outcome, JobOutcome::Completed);
        assert_eq!(
            report.digest, baseline,
            "victim digest must equal the unmonitored baseline"
        );
    }

    assert_eq!(
        service.repo().len(),
        1,
        "killed runs merge nothing: only the victim's profile exists"
    );
    let snap = service.snapshot();
    assert_eq!(snap.get(MetricId::ServeJobsKilled), 1);
    assert_eq!(snap.get(MetricId::ServeJobsCompleted), 2);
    service.shutdown();
}

/// Fleet warm start through the live daemon: N sequential jobs of the
/// same program show monotonically non-increasing cycles-to-first-
/// decision, and every job after the first seeds from the shared
/// repository (first decision in force at cycle 0) — the PR 3 ablation
/// (cold vs warm), replayed through the service.
#[test]
fn sequential_jobs_warm_start_monotonically() {
    let service = Service::start(one_worker());
    let spec = JobSpec::new("t0", "hsqldb");
    let w = spec.resolve().unwrap();
    let baseline = setup::baseline_digest(&w, spec.size, spec.heap_mult, 1);

    let mut firsts = Vec::new();
    for n in 0..4 {
        let id = service.submit(spec.clone()).unwrap();
        let report = service.wait(id);
        assert_eq!(report.outcome, JobOutcome::Completed);
        assert_eq!(report.warm, n > 0, "first job cold, rest warm");
        assert_eq!(report.digest, baseline, "warm start never perturbs state");
        firsts.push(
            report
                .first_decision_cycles
                .expect("hsqldb decides at Tiny size"),
        );
    }

    assert!(
        firsts.windows(2).all(|w| w[1] <= w[0]),
        "cycles-to-first-decision must be non-increasing: {firsts:?}"
    );
    assert!(firsts[0] > 0, "cold run must pay the monitoring ramp");
    assert_eq!(
        *firsts.last().unwrap(),
        0,
        "warm runs start with decisions already in force"
    );

    let snap = service.snapshot();
    assert_eq!(snap.get(MetricId::ServeColdJobs), 1);
    assert_eq!(snap.get(MetricId::ServeWarmJobs), 3);
    assert_eq!(snap.get(MetricId::ServeRepoMerges), 4);
    service.shutdown();
}

/// The bench summary is byte-identical across worker counts: same
/// schedule, same checkouts, same merges, same text.
#[test]
fn bench_summary_is_worker_count_independent() {
    let config = BenchConfig {
        workers: 1,
        rounds: 2,
        jobs_per_round: 2,
        workloads: vec!["hsqldb".to_string()],
        ..BenchConfig::default()
    };
    let solo = run_bench(&config);
    let pooled = run_bench(&BenchConfig {
        workers: 3,
        ..config
    });

    assert_eq!(
        solo.summary, pooled.summary,
        "summary must not depend on worker count"
    );
    assert_eq!(solo.perturbation_deltas, 0);
    assert!(
        solo.warm_ok,
        "warm mean must beat cold mean:\n{}",
        solo.summary
    );
    assert!(solo.check() && pooled.check());
}

/// A single-shard repository small enough for one profile but not two.
/// fop's tiny profile is ~156 bytes and jess's ~452, so 512 holds
/// either alone and evicts the LRU entry when the second one merges.
fn tiny_repo() -> RepoConfig {
    RepoConfig {
        shards: 1,
        capacity_bytes: Some(512),
        ttl_ops: None,
    }
}

/// Killed jobs merge nothing — even while capacity eviction is churning
/// the repository underneath them. The victim's fingerprint must never
/// appear, and the filler tenant's merges must still evict normally.
#[test]
fn killed_jobs_never_merge_even_under_eviction_pressure() {
    let service = Service::start(ServiceConfig {
        workers: 2,
        repo: tiny_repo(),
        ..ServiceConfig::default()
    });
    service.set_caps(
        "greedy",
        TenantCaps {
            max_cycles_per_job: Some(1_000_000),
            ..TenantCaps::default()
        },
    );

    let greedy = service.submit(JobSpec::new("greedy", "db")).unwrap();
    // Filler traffic over two distinct fingerprints keeps the bounded
    // repo at capacity and forces evictions while the kill lands.
    let mut fillers = Vec::new();
    for n in 0..4 {
        let workload = if n % 2 == 0 { "fop" } else { "jess" };
        fillers.push(service.submit(JobSpec::new("filler", workload)).unwrap());
    }

    assert_eq!(service.wait(greedy).outcome, JobOutcome::Killed);
    for id in fillers {
        assert_eq!(service.wait(id).outcome, JobOutcome::Completed);
    }

    let spec = JobSpec::new("greedy", "db");
    let fp = fingerprint_of(&spec, &spec.resolve().unwrap());
    assert!(
        !service.repo().contains(&fp),
        "a killed run must never merge its fingerprint"
    );
    let stats = service.repo().stats();
    assert!(
        stats.evictions >= 1,
        "the filler churn must actually evict: {stats:?}"
    );
    service.shutdown();
}

/// The shutdown-vs-Drop asymmetry, observed through the spill
/// directory: `shutdown` drains and persists the repository, `Drop`
/// abandons the backlog and persists nothing.
#[test]
fn shutdown_persists_but_drop_abandons() {
    let base = std::env::temp_dir().join(format!("hpmopt-serve-drop-{}", std::process::id()));
    let graceful_dir = base.join("graceful");
    let dropped_dir = base.join("dropped");

    let graceful = Service::start(ServiceConfig {
        workers: 1,
        spill_dir: Some(graceful_dir.clone()),
        ..ServiceConfig::default()
    });
    let id = graceful.submit(JobSpec::new("t0", "fop")).unwrap();
    assert_eq!(graceful.wait(id).outcome, JobOutcome::Completed);
    assert_eq!(graceful.shutdown(), 1, "shutdown persists the profile");
    assert_eq!(std::fs::read_dir(&graceful_dir).unwrap().count(), 1);

    let dropped = Service::start(ServiceConfig {
        workers: 1,
        spill_dir: Some(dropped_dir.clone()),
        ..ServiceConfig::default()
    });
    let id = dropped.submit(JobSpec::new("t0", "fop")).unwrap();
    assert_eq!(dropped.wait(id).outcome, JobOutcome::Completed);
    // Queue more work, then drop: the backlog is abandoned at the next
    // poll boundary and nothing is persisted.
    for _ in 0..4 {
        dropped.submit(JobSpec::new("t0", "jess")).unwrap();
    }
    drop(dropped);
    assert!(
        !dropped_dir.exists() || std::fs::read_dir(&dropped_dir).unwrap().count() == 0,
        "Drop must not persist profiles"
    );

    std::fs::remove_dir_all(&base).ok();
}

/// Capacity eviction falls back to a clean cold start: evict a warm
/// fingerprint by merging a competitor into a full single-shard repo,
/// resubmit the victim, and the rerun is cold with an unperturbed
/// digest — and the eviction shows up in `serve.repo_evictions`.
#[test]
fn evicted_fingerprint_resubmits_as_clean_cold_start() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        repo: tiny_repo(),
        ..ServiceConfig::default()
    });
    let fop = JobSpec::new("t0", "fop");
    let fop_w = fop.resolve().unwrap();
    let fop_fp = fingerprint_of(&fop, &fop_w);

    let id = service.submit(fop.clone()).unwrap();
    assert!(!service.wait(id).warm, "first run is cold");
    assert!(service.repo().contains(&fop_fp), "fop is warm in the repo");

    // jess's merge overflows the 512-byte shard and evicts fop (LRU).
    let id = service.submit(JobSpec::new("t0", "jess")).unwrap();
    assert_eq!(service.wait(id).outcome, JobOutcome::Completed);
    assert!(
        !service.repo().contains(&fop_fp),
        "fop must be evicted by jess's merge"
    );
    assert_eq!(service.repo().stats().evictions, 1);

    let rerun = service.submit(fop).unwrap();
    let report = service.wait(rerun);
    assert!(!report.warm, "an evicted fingerprint restarts cold");
    assert_eq!(report.outcome, JobOutcome::Completed);
    let baseline = setup::baseline_digest(&fop_w, report.spec.size, report.spec.heap_mult, 1);
    assert_eq!(report.digest, baseline, "the cold restart is clean");

    let snap = service.snapshot();
    assert!(
        snap.get(MetricId::ServeRepoEvictions) >= 1,
        "the eviction must be visible in serve.repo_evictions"
    );
    service.shutdown();
}

/// One heavy tenant (3 jess jobs per fop job) and one light tenant
/// under QPS-paced open-loop load: nobody starves, and DRR keeps the
/// light tenant's p99 queue wait well under the FIFO control where
/// heavy jobs queued first simply win.
#[test]
fn open_loop_fairness_bounds_light_tenant_and_starves_nobody() {
    let report = run_openloop(&OpenLoopConfig::default());
    assert!(report.check(), "open-loop contract:\n{}", report.summary);
    assert!(report.evictions >= 1, "the bounded repo must churn");

    let light = report
        .tenants
        .iter()
        .find(|t| t.tenant == "light")
        .expect("light tenant row");
    for t in &report.tenants {
        assert!(
            t.completed > 0,
            "tenant {} starved:\n{}",
            t.tenant,
            report.summary
        );
    }
    assert!(
        light.p99_wait_fair * 2 < light.p99_wait_fifo,
        "fair dispatch must at least halve the light tenant's p99 wait: \
         {} fair vs {} fifo",
        light.p99_wait_fair,
        light.p99_wait_fifo
    );
}

/// `serve.queue_depth` is a gauge: `Telemetry::absorb` folds it by max,
/// and a single busy worker with a backlog records a nonzero depth.
#[test]
fn queue_depth_gauge_is_recorded_and_folds_by_max() {
    let fleet = Telemetry::enabled(0);
    let shard = Telemetry::enabled(0);
    fleet.set_gauge(MetricId::ServeQueueDepth, 3);
    shard.set_gauge(MetricId::ServeQueueDepth, 5);
    fleet.absorb(&shard.snapshot(0));
    assert_eq!(fleet.get(MetricId::ServeQueueDepth), 5, "absorb takes max");
    shard.set_gauge(MetricId::ServeQueueDepth, 2);
    fleet.absorb(&shard.snapshot(0));
    assert_eq!(fleet.get(MetricId::ServeQueueDepth), 5, "max never lowers");

    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let ids: Vec<u64> = (0..4)
        .map(|_| service.submit(JobSpec::new("t0", "jess")).unwrap())
        .collect();
    for id in ids {
        assert_eq!(service.wait(id).outcome, JobOutcome::Completed);
    }
    assert!(
        service.snapshot().get(MetricId::ServeQueueDepth) >= 1,
        "a backlog behind one worker must register queue depth"
    );
    service.shutdown();
}
