//! `lusearch` (DaCapo) — Lucene querying a prebuilt index.
//!
//! The read-heavy twin of `luindex`: the index is built once, then many
//! queries walk posting chains. Co-allocation helps the chains built
//! *after* decisions exist; periodic segment merges provide that churn.

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::{ElemKind, FieldType};

use crate::framework::{Size, Suite, Workload};

const TERMS: i64 = 512;
const POSTINGS_PER_TERM: i64 = 24;

/// Build the workload.
#[must_use]
pub fn build(size: Size) -> Workload {
    let f = size.factor();
    let mut pb = ProgramBuilder::new();
    let posting = pb.add_class(
        "Posting",
        &[
            ("payload", FieldType::Ref),
            ("next", FieldType::Ref),
            ("doc", FieldType::Int),
        ],
    );
    let payload = pb.field_id(posting, "payload").unwrap();
    let next = pb.field_id(posting, "next").unwrap();
    let doc = pb.field_id(posting, "doc").unwrap();
    let index = pb.add_static("index", FieldType::Ref);
    let hits = pb.add_static("hits", FieldType::Int);

    // build_index(): fresh posting chains for every term.
    let build_ix = pb.declare_method("build_index", 0, false);
    {
        let mut m = MethodBuilder::new("build_index", 0, 4, false);
        let p = 1;
        m.for_loop(
            0,
            |m| {
                m.const_i(TERMS);
            },
            |m| {
                m.get_static(index);
                m.load(0);
                m.const_null();
                m.array_set(ElemKind::Ref);
                m.for_loop(
                    2,
                    |m| {
                        m.const_i(POSTINGS_PER_TERM);
                    },
                    |m| {
                        m.new_object(posting);
                        m.store(p);
                        m.load(p);
                        m.const_i(2);
                        m.new_array(ElemKind::I32);
                        m.put_field(payload);
                        m.load(p);
                        m.load(2);
                        m.put_field(doc);
                        m.load(p);
                        m.get_static(index);
                        m.load(0);
                        m.array_get(ElemKind::Ref);
                        m.put_field(next);
                        m.get_static(index);
                        m.load(0);
                        m.load(p);
                        m.array_set(ElemKind::Ref);
                    },
                );
            },
        );
        m.ret();
        pb.define_method(build_ix, m);
    }

    // query(t): walk term t's chain scoring each posting.
    let query = pb.declare_method("query", 1, false);
    {
        let mut m = MethodBuilder::new("query", 1, 2, false);
        let cur = 1;
        m.get_static(index);
        m.load(0);
        m.array_get(ElemKind::Ref);
        m.store(cur);
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.load(cur);
        m.is_null();
        m.jump_if(done);
        m.get_static(hits);
        m.load(cur);
        m.get_field(payload);
        m.const_i(0);
        m.array_get(ElemKind::I32);
        m.load(cur);
        m.get_field(doc);
        m.add();
        m.add();
        m.put_static(hits);
        m.load(cur);
        m.get_field(next);
        m.store(cur);
        m.jump(top);
        m.bind(done);
        m.ret();
        pb.define_method(query, m);
    }

    let mut m = MethodBuilder::new("main", 0, 2, false);
    let rng = 1;
    m.const_i(0x1_0c3a_1ea5);
    m.store(rng);
    m.const_i(TERMS);
    m.new_array(ElemKind::Ref);
    m.put_static(index);
    // Merge rounds: rebuild the index, then fire a batch of queries.
    m.for_loop(
        0,
        move |m| {
            m.const_i(2 + f);
        },
        |m| {
            m.call(build_ix);
            let q = m.new_local();
            m.for_loop(
                q,
                move |m| {
                    m.const_i(2500 * f);
                },
                |m| {
                    m.rng_next(rng);
                    m.const_i(TERMS);
                    m.rem();
                    m.call(query);
                },
            );
        },
    );
    m.ret();
    let main = pb.add_method(m);
    pb.set_entry(main);

    Workload {
        name: "lusearch",
        suite: Suite::DaCapo,
        description:
            "index search: shuffled queries walking Posting::payload chains between segment merges",
        program: pb.finish().expect("lusearch verifies"),
        min_heap_bytes: 2560 * 1024,
        hot_field: Some(("Posting", "payload")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lusearch_builds() {
        assert_eq!(build(Size::Tiny).name, "lusearch");
    }
}
