//! `luindex` (DaCapo) — Lucene indexing the works of Shakespeare.
//!
//! An index build: documents are tokenized into posting objects chained
//! per term. luindex is among the programs with large co-allocation
//! counts in Figure 3 — postings (`Posting { positions, next }`) churn
//! constantly and are re-read when the in-memory segment is flushed.

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::{ElemKind, FieldType};

use crate::framework::{Size, Suite, Workload};

const TERMS: i64 = 1024;
const DOCS_PER_SEGMENT: i64 = 400;

/// Build the workload.
#[must_use]
pub fn build(size: Size) -> Workload {
    let f = size.factor();
    let mut pb = ProgramBuilder::new();
    let posting = pb.add_class(
        "Posting",
        &[
            ("positions", FieldType::Ref),
            ("next", FieldType::Ref),
            ("doc", FieldType::Int),
        ],
    );
    let positions = pb.field_id(posting, "positions").unwrap();
    let next = pb.field_id(posting, "next").unwrap();
    let doc = pb.field_id(posting, "doc").unwrap();
    let index = pb.add_static("index", FieldType::Ref); // Posting[TERMS]
    let indexed = pb.add_static("indexed", FieldType::Int);

    // add_doc(d): add postings for a pseudo-random subset of terms.
    let add_doc = pb.declare_method("add_doc", 1, false);
    {
        let mut m = MethodBuilder::new("add_doc", 1, 4, false);
        let p = 1;
        let t = 2;
        m.for_loop(
            3,
            |m| {
                m.const_i(24); // terms per document
            },
            |m| {
                // t = (d * 31 + j * 131) % TERMS
                m.load(0);
                m.const_i(31);
                m.mul();
                m.load(3);
                m.const_i(131);
                m.mul();
                m.add();
                m.const_i(TERMS);
                m.rem();
                m.store(t);
                m.new_object(posting);
                m.store(p);
                m.load(p);
                m.const_i(3);
                m.new_array(ElemKind::I32);
                m.put_field(positions);
                m.load(p);
                m.load(0);
                m.put_field(doc);
                m.load(p);
                m.get_static(index);
                m.load(t);
                m.array_get(ElemKind::Ref);
                m.put_field(next);
                m.get_static(index);
                m.load(t);
                m.load(p);
                m.array_set(ElemKind::Ref);
            },
        );
        m.ret();
        pb.define_method(add_doc, m);
    }

    // flush_segment(): walk every term's posting chain reading positions,
    // then clear the index.
    let flush = pb.declare_method("flush_segment", 0, false);
    {
        let mut m = MethodBuilder::new("flush_segment", 0, 3, false);
        let cur = 1;
        m.for_loop(
            0,
            |m| {
                m.const_i(TERMS);
            },
            |m| {
                m.get_static(index);
                m.load(0);
                m.array_get(ElemKind::Ref);
                m.store(cur);
                let top = m.label();
                let done = m.label();
                m.bind(top);
                m.load(cur);
                m.is_null();
                m.jump_if(done);
                m.get_static(indexed);
                m.load(cur);
                m.get_field(positions);
                m.const_i(0);
                m.array_get(ElemKind::I32);
                m.load(cur);
                m.get_field(doc);
                m.add();
                m.add();
                m.put_static(indexed);
                m.load(cur);
                m.get_field(next);
                m.store(cur);
                m.jump(top);
                m.bind(done);
                m.get_static(index);
                m.load(0);
                m.const_null();
                m.array_set(ElemKind::Ref);
            },
        );
        m.ret();
        pb.define_method(flush, m);
    }

    let mut m = MethodBuilder::new("main", 0, 1, false);
    m.const_i(TERMS);
    m.new_array(ElemKind::Ref);
    m.put_static(index);
    m.for_loop(
        0,
        move |m| {
            m.const_i(2 + f);
        },
        |m| {
            let d = m.new_local();
            m.for_loop(
                d,
                |m| {
                    m.const_i(DOCS_PER_SEGMENT);
                },
                |m| {
                    m.load(d);
                    m.call(add_doc);
                },
            );
            // Re-read the segment a few times before flushing (the reader
            // warms the postings; co-located positions pay off here).
            let p = m.new_local();
            m.for_loop(
                p,
                |m| {
                    m.const_i(2);
                },
                |m| {
                    m.call(flush);
                    let d2 = m.new_local();
                    m.for_loop(
                        d2,
                        |m| {
                            m.const_i(DOCS_PER_SEGMENT);
                        },
                        |m| {
                            m.load(d2);
                            m.call(add_doc);
                        },
                    );
                },
            );
            m.call(flush);
        },
    );
    m.ret();
    let main = pb.add_method(m);
    pb.set_entry(main);

    Workload {
        name: "luindex",
        suite: Suite::DaCapo,
        description: "index build: Posting→positions chains per term, segment build/flush churn",
        program: pb.finish().expect("luindex verifies"),
        min_heap_bytes: 2 * 1024 * 1024,
        hot_field: Some(("Posting", "positions")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luindex_builds() {
        assert_eq!(build(Size::Tiny).name, "luindex");
    }
}
