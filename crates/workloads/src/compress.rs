//! `_201_compress` — LZW-style compression over large buffers.
//!
//! The paper: "There are 2 programs (compress and mpegaudio) where no
//! objects are co-allocated. They allocate mostly large objects which are
//! placed in the separate large-object space ... Therefore, they have no
//! candidate objects for co-allocation" (Figure 3 discussion).
//!
//! The model: a handful of 64 KB byte buffers (all above the 4 KB LOS
//! threshold) processed by repeated sequential compression passes with a
//! small dictionary that also lives in a large array. The working set is
//! streaming, so the stream prefetcher absorbs much of the miss cost.

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::{ElemKind, FieldType};

use crate::framework::{Size, Suite, Workload};

const BUF_BYTES: i64 = 64 * 1024;

/// Build the workload.
#[must_use]
pub fn build(size: Size) -> Workload {
    let f = size.factor();
    let mut pb = ProgramBuilder::new();
    let input = pb.add_static("input", FieldType::Ref);
    let output = pb.add_static("output", FieldType::Ref);
    let dict = pb.add_static("dict", FieldType::Ref);
    let checksum = pb.add_static("checksum", FieldType::Int);

    // compress_pass(): one sequential pass input → output with a
    // dictionary lookup per byte.
    let pass = pb.declare_method("compress_pass", 0, false);
    {
        let mut m = MethodBuilder::new("compress_pass", 0, 3, false);
        let code = 1;
        m.for_loop(
            0,
            |m| {
                m.const_i(BUF_BYTES);
            },
            |m| {
                // code = dict[(input[i] + i) & 0xfff]
                m.get_static(dict);
                m.get_static(input);
                m.load(0);
                m.array_get(ElemKind::I8);
                m.load(0);
                m.add();
                m.const_i(0xfff);
                m.and();
                m.array_get(ElemKind::I32);
                m.store(code);
                // output[i] = code ^ input[i]
                m.get_static(output);
                m.load(0);
                m.load(code);
                m.get_static(input);
                m.load(0);
                m.array_get(ElemKind::I8);
                m.xor();
                m.array_set(ElemKind::I8);
            },
        );
        m.ret();
        pb.define_method(pass, m);
    }

    let mut m = MethodBuilder::new("main", 0, 2, false);
    // Allocate the large buffers (LOS) and the dictionary.
    m.const_i(BUF_BYTES);
    m.new_array(ElemKind::I8);
    m.put_static(input);
    m.const_i(BUF_BYTES);
    m.new_array(ElemKind::I8);
    m.put_static(output);
    m.const_i(4096);
    m.new_array(ElemKind::I32);
    m.put_static(dict);
    // Seed input and dictionary.
    m.for_loop(
        0,
        |m| {
            m.const_i(BUF_BYTES);
        },
        |m| {
            m.get_static(input);
            m.load(0);
            m.load(0);
            m.const_i(251);
            m.rem();
            m.array_set(ElemKind::I8);
        },
    );
    m.for_loop(
        0,
        |m| {
            m.const_i(4096);
        },
        |m| {
            m.get_static(dict);
            m.load(0);
            m.load(0);
            m.const_i(2654435761);
            m.mul();
            m.array_set(ElemKind::I32);
        },
    );
    // Repeated passes (the SPEC harness runs the input 3 times).
    m.for_loop(
        1,
        move |m| {
            m.const_i(2 * f);
        },
        |m| {
            m.call(pass);
        },
    );
    m.get_static(output);
    m.const_i(0);
    m.array_get(ElemKind::I8);
    m.put_static(checksum);
    m.ret();
    let main = pb.add_method(m);
    pb.set_entry(main);

    Workload {
        name: "compress",
        suite: Suite::SpecJvm98,
        description: "LZW-style compression: streaming passes over 64 KB LOS buffers, no co-allocation candidates",
        program: pb.finish().expect("compress verifies"),
        min_heap_bytes: 384 * 1024,
        hot_field: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compress_has_no_hot_field() {
        let w = build(Size::Tiny);
        assert_eq!(w.hot_field, None);
        assert_eq!(w.suite, Suite::SpecJvm98);
    }
}
