//! `fop` (DaCapo) — XSL-FO to PDF formatting.
//!
//! fop is the smallest program in the paper's Table 2 (8 KB of machine
//! code, 16 KB of maps) with a short run and a small heap: it formats one
//! document and exits. Co-allocation finds few candidates.
//!
//! The model: build a small formatting-object tree once, lay it out a few
//! times, and exit.

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::FieldType;

use crate::framework::{Size, Suite, Workload};

const BLOCKS: i64 = 600;

/// Build the workload.
#[must_use]
pub fn build(size: Size) -> Workload {
    let f = size.factor();
    let mut pb = ProgramBuilder::new();
    let block = pb.add_class(
        "FoBlock",
        &[
            ("child", FieldType::Ref),
            ("width", FieldType::Int),
            ("height", FieldType::Int),
        ],
    );
    let child = pb.field_id(block, "child").unwrap();
    let width = pb.field_id(block, "width").unwrap();
    let height = pb.field_id(block, "height").unwrap();
    let doc = pb.add_static("doc", FieldType::Ref);
    let laid_out = pb.add_static("laid_out", FieldType::Int);

    let mut m = MethodBuilder::new("main", 0, 2, false);
    let b = 1;
    // Build the chain of blocks once.
    m.const_null();
    m.put_static(doc);
    m.for_loop(
        0,
        |m| {
            m.const_i(BLOCKS);
        },
        |m| {
            m.new_object(block);
            m.store(b);
            m.load(b);
            m.get_static(doc);
            m.put_field(child);
            m.load(b);
            m.load(0);
            m.const_i(595);
            m.rem();
            m.put_field(width);
            m.load(b);
            m.put_static(doc);
        },
    );
    // Layout passes: propagate heights down the chain.
    m.for_loop(
        0,
        move |m| {
            m.const_i(4 * f);
        },
        |m| {
            let cur = m.new_local();
            m.get_static(doc);
            m.store(cur);
            let top = m.label();
            let done = m.label();
            m.bind(top);
            m.load(cur);
            m.is_null();
            m.jump_if(done);
            m.load(cur);
            m.load(cur);
            m.get_field(width);
            m.const_i(3);
            m.mul();
            m.const_i(2);
            m.div();
            m.put_field(height);
            m.get_static(laid_out);
            m.const_i(1);
            m.add();
            m.put_static(laid_out);
            m.load(cur);
            m.get_field(child);
            m.store(cur);
            m.jump(top);
            m.bind(done);
        },
    );
    m.ret();
    let main = pb.add_method(m);
    pb.set_entry(main);

    Workload {
        name: "fop",
        suite: Suite::DaCapo,
        description:
            "document formatter: one small FoBlock tree, a few layout passes, smallest footprint",
        program: pb.finish().expect("fop verifies"),
        min_heap_bytes: 256 * 1024,
        hot_field: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fop_is_small() {
        let w = build(Size::Tiny);
        assert!(w.min_heap_bytes <= 512 * 1024);
    }
}
