//! The benchmark programs of the paper's evaluation (Table 1), rebuilt
//! as synthetic hpmopt-bytecode programs.
//!
//! Each module reproduces the *memory behaviour* the paper attributes to
//! one benchmark — the property that determines how that program responds
//! to HPM-guided co-allocation:
//!
//! | Program | Suite | Behaviour modelled |
//! |---|---|---|
//! | [`compress`] | SPECjvm98 | large LOS buffers, no co-allocation candidates |
//! | [`jess`] | SPECjvm98 | rule network of small linked nodes |
//! | [`db`] | SPECjvm98 | String→char[] pointer chasing; the paper's showcase |
//! | [`javac`] | SPECjvm98 | AST build/walk, many classes, little reuse |
//! | [`mpegaudio`] | SPECjvm98 | streaming DSP over large arrays, few allocations |
//! | [`mtrt`] | SPECjvm98 | ray tracing, short-lived young objects |
//! | [`jack`] | SPECjvm98 | parser: token stream, string building |
//! | [`pseudojbb`] | SPEC JBB2000 | order processing; co-allocated children larger than a cache line |
//! | [`antlr`] | DaCapo | grammar graph traversal |
//! | [`bloat`] | DaCapo | instruction/operand chains |
//! | [`fop`] | DaCapo | tiny heap, smallest code footprint |
//! | [`hsqldb`] | DaCapo | row→value-array database pages |
//! | [`jython`] | DaCapo | very large code footprint (many methods) |
//! | [`luindex`] | DaCapo | document→posting chains (index build) |
//! | [`lusearch`] | DaCapo | read-heavy search over an index |
//! | [`pmd`] | DaCapo | AST nodes with child arrays |
//!
//! Sizes are scaled by [`Size`] so unit tests stay fast while benches get
//! meaningful working sets.
//!
//! # Example
//!
//! ```
//! use hpmopt_workloads::{by_name, names, Size};
//!
//! assert_eq!(names().len(), 16);
//! let db = by_name("db", Size::Tiny).expect("db exists");
//! assert!(db.min_heap_bytes > 0);
//! assert_eq!(db.program.entry(), db.program.method_by_name("main").unwrap());
//! ```

pub mod framework;

pub mod antlr;
pub mod bloat;
pub mod compress;
pub mod db;
pub mod fop;
pub mod hsqldb;
pub mod jack;
pub mod javac;
pub mod jess;
pub mod jython;
pub mod luindex;
pub mod lusearch;
pub mod mpegaudio;
pub mod mtrt;
pub mod pmd;
pub mod pseudojbb;

pub use framework::{Size, Suite, Workload};

/// The benchmark names in the paper's Table 1 order.
#[must_use]
pub fn names() -> [&'static str; 16] {
    [
        "compress",
        "jess",
        "db",
        "javac",
        "mpegaudio",
        "mtrt",
        "jack",
        "pseudojbb",
        "antlr",
        "bloat",
        "fop",
        "hsqldb",
        "jython",
        "luindex",
        "lusearch",
        "pmd",
    ]
}

/// Build one workload by name.
#[must_use]
pub fn by_name(name: &str, size: Size) -> Option<Workload> {
    let w = match name {
        "compress" => compress::build(size),
        "jess" => jess::build(size),
        "db" => db::build(size),
        "javac" => javac::build(size),
        "mpegaudio" => mpegaudio::build(size),
        "mtrt" => mtrt::build(size),
        "jack" => jack::build(size),
        "pseudojbb" => pseudojbb::build(size),
        "antlr" => antlr::build(size),
        "bloat" => bloat::build(size),
        "fop" => fop::build(size),
        "hsqldb" => hsqldb::build(size),
        "jython" => jython::build(size),
        "luindex" => luindex::build(size),
        "lusearch" => lusearch::build(size),
        "pmd" => pmd::build(size),
        _ => return None,
    };
    Some(w)
}

/// Build every workload at the given size, in Table 1 order.
#[must_use]
pub fn all(size: Size) -> Vec<Workload> {
    names()
        .iter()
        .map(|n| by_name(n, size).expect("known name"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_builds_and_verifies_at_tiny() {
        // `finish()` inside each builder already runs the verifier; this
        // asserts every builder completes and is well-formed.
        let ws = all(Size::Tiny);
        assert_eq!(ws.len(), 16);
        for w in &ws {
            assert!(!w.program.methods().is_empty(), "{}", w.name);
            assert!(w.min_heap_bytes >= 64 * 1024, "{}", w.name);
            assert!(!w.description.is_empty(), "{}", w.name);
        }
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("quake", Size::Tiny).is_none());
    }

    #[test]
    fn names_are_unique() {
        let mut n = names().to_vec();
        n.sort_unstable();
        n.dedup();
        assert_eq!(n.len(), 16);
    }
}
