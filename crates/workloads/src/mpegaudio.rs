//! `_222_mpegaudio` — MP3 decoding as streaming DSP.
//!
//! Like `compress`, mpegaudio has "no candidate objects for
//! co-allocation" (Figure 3): it decodes frames by filter passes over
//! large sample arrays, allocating almost nothing after startup. The
//! paper notes its execution-time numbers vary ±5 % purely from event
//! monitoring, not co-allocation.

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::{ElemKind, FieldType};

use crate::framework::{Size, Suite, Workload};

const SAMPLES: i64 = 16 * 1024;
const COEFFS: i64 = 32;

/// Build the workload.
#[must_use]
pub fn build(size: Size) -> Workload {
    let f = size.factor();
    let mut pb = ProgramBuilder::new();
    let pcm = pb.add_static("pcm", FieldType::Ref);
    let filt = pb.add_static("filter", FieldType::Ref);
    let out = pb.add_static("out", FieldType::Ref);
    let checksum = pb.add_static("checksum", FieldType::Int);

    // synth_frame(base): a 32-tap filter over one frame of samples.
    let synth = pb.declare_method("synth_frame", 1, false);
    {
        let mut m = MethodBuilder::new("synth_frame", 1, 3, false);
        let acc = 1;
        m.for_loop(
            2,
            |m| {
                m.const_i(576);
            },
            |m| {
                m.const_i(0);
                m.store(acc);
                m.for_loop(
                    0,
                    |m| {
                        m.const_i(COEFFS);
                    },
                    |m| {
                        // acc += pcm[(base + i + t) % SAMPLES] * filter[t]
                        m.load(acc);
                        m.get_static(pcm);
                        m.load(1); // base
                        m.load(2); // i
                        m.add();
                        m.load(0); // t
                        m.add();
                        m.const_i(SAMPLES);
                        m.rem();
                        m.array_get(ElemKind::I32);
                        m.get_static(filt);
                        m.load(0);
                        m.array_get(ElemKind::I32);
                        m.mul();
                        m.add();
                        m.store(acc);
                    },
                );
                m.get_static(out);
                m.load(1);
                m.load(2);
                m.add();
                m.const_i(SAMPLES);
                m.rem();
                m.load(acc);
                m.const_i(11);
                m.shr();
                m.array_set(ElemKind::I32);
            },
        );
        m.ret();
        pb.define_method(synth, m);
    }

    let mut m = MethodBuilder::new("main", 0, 2, false);
    m.const_i(SAMPLES);
    m.new_array(ElemKind::I32);
    m.put_static(pcm);
    m.const_i(SAMPLES);
    m.new_array(ElemKind::I32);
    m.put_static(out);
    m.const_i(COEFFS);
    m.new_array(ElemKind::I32);
    m.put_static(filt);
    m.for_loop(
        0,
        |m| {
            m.const_i(SAMPLES);
        },
        |m| {
            m.get_static(pcm);
            m.load(0);
            m.load(0);
            m.const_i(17);
            m.mul();
            m.const_i(0xffff);
            m.and();
            m.array_set(ElemKind::I32);
        },
    );
    m.for_loop(
        0,
        |m| {
            m.const_i(COEFFS);
        },
        |m| {
            m.get_static(filt);
            m.load(0);
            m.load(0);
            m.const_i(3);
            m.add();
            m.array_set(ElemKind::I32);
        },
    );
    // Decode frames.
    m.for_loop(
        0,
        move |m| {
            m.const_i(12 * f);
        },
        |m| {
            m.load(0);
            m.const_i(576);
            m.mul();
            m.const_i(SAMPLES);
            m.rem();
            m.call(synth);
        },
    );
    m.get_static(out);
    m.const_i(1);
    m.array_get(ElemKind::I32);
    m.put_static(checksum);
    m.ret();
    let main = pb.add_method(m);
    pb.set_entry(main);

    Workload {
        name: "mpegaudio",
        suite: Suite::SpecJvm98,
        description:
            "MP3-style synthesis filter over large sample arrays; allocation-free steady state",
        program: pb.finish().expect("mpegaudio verifies"),
        min_heap_bytes: 384 * 1024,
        hot_field: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpegaudio_builds() {
        let w = build(Size::Tiny);
        assert_eq!(w.name, "mpegaudio");
        assert_eq!(w.hot_field, None);
    }
}
