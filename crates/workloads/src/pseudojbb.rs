//! `pseudojbb` — SPEC JBB2000 with a fixed transaction count.
//!
//! The paper's analysis of jbb is specific: "there are many frequently
//! missed objects (2.4 million objects were co-allocated) and ... the
//! majority of those objects are relatively large (long[] arrays with a
//! size of >128 bytes). As a consequence, optimizing for reduced cache
//! misses at the cache-line level does not yield a significant benefit"
//! — many co-allocations, little payoff, because parent and child cannot
//! share a 128-byte line when the child alone exceeds it.
//!
//! The model: warehouses process orders; each `Order` holds a `long[20]`
//! (176 bytes > one cache line). Orders churn constantly (high promotion
//! rate → the large co-allocation counts of Figure 3).

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::{ElemKind, FieldType};

use crate::framework::{Size, Suite, Workload};

const WAREHOUSE_ORDERS: i64 = 1500;
const ITEMS: i64 = 20; // long[20] = 176 bytes with header: > 128-byte line

/// Build the workload.
#[must_use]
pub fn build(size: Size) -> Workload {
    let f = size.factor();
    let mut pb = ProgramBuilder::new();
    let order = pb.add_class(
        "Order",
        &[("items", FieldType::Ref), ("id", FieldType::Int)],
    );
    let items = pb.field_id(order, "items").unwrap();
    let id = pb.field_id(order, "id").unwrap();
    let warehouse = pb.add_static("warehouse", FieldType::Ref);
    let total = pb.add_static("total", FieldType::Int);

    // new_order(i) -> Order
    let new_order = pb.declare_method("new_order", 1, true);
    {
        let mut m = MethodBuilder::new("new_order", 1, 2, true);
        let o = 1;
        m.new_object(order);
        m.store(o);
        m.load(o);
        m.const_i(ITEMS);
        m.new_array(ElemKind::I64);
        m.put_field(items);
        m.load(o);
        m.load(0);
        m.put_field(id);
        m.for_loop(
            2,
            |m| {
                m.const_i(ITEMS);
            },
            |m| {
                m.load(o);
                m.get_field(items);
                m.load(2);
                m.load(0);
                m.load(2);
                m.mul();
                m.array_set(ElemKind::I64);
            },
        );
        m.load(o);
        m.ret_val();
        pb.define_method(new_order, m);
    }

    // process(idx): replace the order at idx and tally its items — the
    // Order::items dereference is the hot (but unprofitable) edge.
    let process = pb.declare_method("process", 1, false);
    {
        let mut m = MethodBuilder::new("process", 1, 3, false);
        let o = 1;
        m.get_static(warehouse);
        m.load(0);
        m.load(0);
        m.call(new_order);
        m.array_set(ElemKind::Ref);
        m.get_static(warehouse);
        m.load(0);
        m.array_get(ElemKind::Ref);
        m.store(o);
        m.for_loop(
            2,
            |m| {
                m.const_i(ITEMS);
            },
            |m| {
                m.get_static(total);
                m.load(o);
                m.get_field(items);
                m.load(2);
                m.array_get(ElemKind::I64);
                m.add();
                m.put_static(total);
            },
        );
        m.ret();
        pb.define_method(process, m);
    }

    let mut m = MethodBuilder::new("main", 0, 2, false);
    let rng = 1;
    m.const_i(0x0bb0_cafe);
    m.store(rng);
    m.const_i(WAREHOUSE_ORDERS);
    m.new_array(ElemKind::Ref);
    m.put_static(warehouse);
    m.for_loop(
        0,
        |m| {
            m.const_i(WAREHOUSE_ORDERS);
        },
        |m| {
            m.get_static(warehouse);
            m.load(0);
            m.load(0);
            m.call(new_order);
            m.array_set(ElemKind::Ref);
        },
    );
    // Fixed transaction count (n = 100000 in the paper; scaled here).
    m.for_loop(
        0,
        move |m| {
            m.const_i(9000 * f);
        },
        |m| {
            m.rng_next(rng);
            m.const_i(WAREHOUSE_ORDERS);
            m.rem();
            m.call(process);
        },
    );
    m.ret();
    let main = pb.add_method(m);
    pb.set_entry(main);

    Workload {
        name: "pseudojbb",
        suite: Suite::PseudoJbb,
        description: "order processing: heavy churn of Order→long[20] pairs whose children exceed one cache line",
        program: pb.finish().expect("pseudojbb verifies"),
        min_heap_bytes: 768 * 1024,
        hot_field: Some(("Order", "items")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmopt_bytecode::OBJECT_HEADER_BYTES;

    #[test]
    fn order_items_exceed_one_cache_line() {
        // The workload's defining property (paper Section 6.3).
        assert!(OBJECT_HEADER_BYTES + 8 * ITEMS as u64 > 128);
    }

    #[test]
    fn pseudojbb_builds() {
        assert_eq!(build(Size::Tiny).suite, Suite::PseudoJbb);
    }
}
