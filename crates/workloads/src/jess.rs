//! `_202_jess` — an expert-system shell.
//!
//! Jess repeatedly matches facts against a rule network of small linked
//! nodes. The paper shows a visible L1-miss reduction for jess with
//! co-allocation (Figure 4) but only a small execution-time effect: the
//! network nodes are small and the working set only moderately exceeds
//! the L1.
//!
//! The model: a network of `RuleNode { next, fact }` chains over `Fact {
//! slots }` payloads; activation sweeps chase `RuleNode::fact` (the hot
//! edge), and each round asserts fresh facts (churn → promotion →
//! co-allocation opportunities).

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::{ElemKind, FieldType};

use crate::framework::{Size, Suite, Workload};

const NODES: i64 = 2500;

/// Build the workload.
#[must_use]
pub fn build(size: Size) -> Workload {
    let f = size.factor();
    let mut pb = ProgramBuilder::new();
    let fact = pb.add_class("Fact", &[("slots", FieldType::Ref), ("id", FieldType::Int)]);
    let slots = pb.field_id(fact, "slots").unwrap();
    let fact_id = pb.field_id(fact, "id").unwrap();
    let node = pb.add_class(
        "RuleNode",
        &[("next", FieldType::Ref), ("fact", FieldType::Ref)],
    );
    let next = pb.field_id(node, "next").unwrap();
    let node_fact = pb.field_id(node, "fact").unwrap();
    let head = pb.add_static("network", FieldType::Ref);
    let fired = pb.add_static("fired", FieldType::Int);

    // assert_facts(): rebuild the network with fresh facts.
    let assert_facts = pb.declare_method("assert_facts", 0, false);
    {
        let mut m = MethodBuilder::new("assert_facts", 0, 3, false);
        let n = 1;
        let ft = 2;
        m.const_null();
        m.put_static(head);
        m.for_loop(
            0,
            |m| {
                m.const_i(NODES);
            },
            |m| {
                m.new_object(fact);
                m.store(ft);
                m.load(ft);
                m.const_i(4);
                m.new_array(ElemKind::I32);
                m.put_field(slots);
                m.load(ft);
                m.load(0);
                m.put_field(fact_id);
                m.new_object(node);
                m.store(n);
                m.load(n);
                m.get_static(head);
                m.put_field(next);
                m.load(n);
                m.load(ft);
                m.put_field(node_fact);
                m.load(n);
                m.put_static(head);
            },
        );
        m.ret();
        pb.define_method(assert_facts, m);
    }

    // match_pass(): walk the network, touching each node's fact slots.
    let match_pass = pb.declare_method("match_pass", 0, false);
    {
        let mut m = MethodBuilder::new("match_pass", 0, 2, false);
        let cur = 0;
        let acc = 1;
        m.const_i(0);
        m.store(acc);
        m.get_static(head);
        m.store(cur);
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.load(cur);
        m.is_null();
        m.jump_if(done);
        // acc += node.fact.slots[0] + node.fact.id
        m.load(acc);
        m.load(cur);
        m.get_field(node_fact);
        m.get_field(slots);
        m.const_i(0);
        m.array_get(ElemKind::I32);
        m.add();
        m.load(cur);
        m.get_field(node_fact);
        m.get_field(fact_id);
        m.add();
        m.store(acc);
        m.load(cur);
        m.get_field(next);
        m.store(cur);
        m.jump(top);
        m.bind(done);
        m.get_static(fired);
        m.load(acc);
        m.add();
        m.put_static(fired);
        m.ret();
        pb.define_method(match_pass, m);
    }

    let mut m = MethodBuilder::new("main", 0, 1, false);
    m.for_loop(
        0,
        move |m| {
            m.const_i(3 + 2 * f);
        },
        |m| {
            m.call(assert_facts);
            let passes = m.new_local();
            m.for_loop(
                passes,
                |m| {
                    m.const_i(6);
                },
                |m| {
                    m.call(match_pass);
                },
            );
        },
    );
    m.ret();
    let main = pb.add_method(m);
    pb.set_entry(main);

    Workload {
        name: "jess",
        suite: Suite::SpecJvm98,
        description:
            "expert-system shell: rule-network sweeps chasing RuleNode::fact into Fact slots",
        program: pb.finish().expect("jess verifies"),
        min_heap_bytes: 640 * 1024,
        hot_field: Some(("RuleNode", "fact")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jess_builds() {
        let w = build(Size::Tiny);
        assert_eq!(w.name, "jess");
        assert!(w.hot_field.is_some());
    }
}
