//! Shared workload infrastructure: sizing, metadata, and builder helpers.

use hpmopt_bytecode::Program;

/// Input-size scaling, in the spirit of SPEC's `s=1/10/100` settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Size {
    /// Smallest data sets: unit tests and smoke runs.
    Tiny,
    /// Default experiment size (what the `experiments` binary uses).
    #[default]
    Small,
    /// Largest practical size for Criterion benches.
    Full,
}

impl Size {
    /// A scale factor the builders multiply their iteration counts by.
    #[must_use]
    pub fn factor(self) -> i64 {
        match self {
            Size::Tiny => 1,
            Size::Small => 4,
            Size::Full => 10,
        }
    }
}

impl std::fmt::Display for Size {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Size::Tiny => f.write_str("tiny"),
            Size::Small => f.write_str("small"),
            Size::Full => f.write_str("full"),
        }
    }
}

/// Which benchmark suite a program models (Table 1 groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECjvm98 (largest workload, s=100, repeated 3 times in the paper).
    SpecJvm98,
    /// DaCapo (version 10-2006 MR-2 in the paper).
    DaCapo,
    /// SPEC JBB2000 with a fixed number of transactions.
    PseudoJbb,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::SpecJvm98 => f.write_str("SPECjvm98"),
            Suite::DaCapo => f.write_str("DaCapo"),
            Suite::PseudoJbb => f.write_str("SPEC JBB2000"),
        }
    }
}

/// One benchmark: a program plus the metadata the experiments need.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Table 1 name.
    pub name: &'static str,
    /// Originating suite.
    pub suite: Suite,
    /// What the program models (shown by `experiments table1`).
    pub description: &'static str,
    /// The executable program.
    pub program: Program,
    /// Approximate minimum mature-heap size — the evaluation's "1×" heap.
    pub min_heap_bytes: u64,
    /// The field whose misses dominate, if the workload has one (the
    /// Figure 7 watch target for `db` is `String::value`).
    pub hot_field: Option<(&'static str, &'static str)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_factors_increase() {
        assert!(Size::Tiny.factor() < Size::Small.factor());
        assert!(Size::Small.factor() < Size::Full.factor());
    }

    #[test]
    fn display_strings() {
        assert_eq!(Size::Small.to_string(), "small");
        assert_eq!(Suite::DaCapo.to_string(), "DaCapo");
    }
}
