//! `hsqldb` (DaCapo) — an in-memory SQL database under a banking
//! workload.
//!
//! hsqldb appears in the paper among the programs with the largest
//! co-allocation counts (Figure 3) and shows one of the larger sampling
//! overheads at fine intervals (Figure 2: ~3 % at 25 K) — it is
//! miss-heavy and allocation-heavy at once.
//!
//! The model: a table of `Row { values, next }` records; transactions
//! update random rows (allocating replacement rows — churn) and scans
//! aggregate `Row::values`.

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::{ElemKind, FieldType};

use crate::framework::{Size, Suite, Workload};

const ROWS: i64 = 3000;
const COLS: i64 = 6;

/// Build the workload.
#[must_use]
pub fn build(size: Size) -> Workload {
    let f = size.factor();
    let mut pb = ProgramBuilder::new();
    let row = pb.add_class(
        "Row",
        &[("values", FieldType::Ref), ("key", FieldType::Int)],
    );
    let values = pb.field_id(row, "values").unwrap();
    let key = pb.field_id(row, "key").unwrap();
    let table = pb.add_static("table", FieldType::Ref);
    let balance = pb.add_static("balance", FieldType::Int);

    // make_row(k) -> Row
    let make_row = pb.declare_method("make_row", 1, true);
    {
        let mut m = MethodBuilder::new("make_row", 1, 2, true);
        let r = 1;
        m.new_object(row);
        m.store(r);
        m.load(r);
        m.const_i(COLS);
        m.new_array(ElemKind::I64);
        m.put_field(values);
        m.load(r);
        m.load(0);
        m.put_field(key);
        m.for_loop(
            2,
            |m| {
                m.const_i(COLS);
            },
            |m| {
                m.load(r);
                m.get_field(values);
                m.load(2);
                m.load(0);
                m.load(2);
                m.add();
                m.array_set(ElemKind::I64);
            },
        );
        m.load(r);
        m.ret_val();
        pb.define_method(make_row, m);
    }

    // transaction(i): replace row i, then read COLS values through
    // Row::values.
    let tx = pb.declare_method("transaction", 1, false);
    {
        let mut m = MethodBuilder::new("transaction", 1, 3, false);
        let r = 1;
        m.get_static(table);
        m.load(0);
        m.load(0);
        m.call(make_row);
        m.array_set(ElemKind::Ref);
        m.get_static(table);
        m.load(0);
        m.array_get(ElemKind::Ref);
        m.store(r);
        m.for_loop(
            2,
            |m| {
                m.const_i(COLS);
            },
            |m| {
                m.get_static(balance);
                m.load(r);
                m.get_field(values);
                m.load(2);
                m.array_get(ElemKind::I64);
                m.add();
                m.put_static(balance);
            },
        );
        m.ret();
        pb.define_method(tx, m);
    }

    // scan(): full-table aggregation.
    let scan = pb.declare_method("scan", 0, false);
    {
        let mut m = MethodBuilder::new("scan", 0, 2, false);
        m.for_loop(
            0,
            |m| {
                m.const_i(ROWS);
            },
            |m| {
                m.get_static(balance);
                m.get_static(table);
                m.load(0);
                m.array_get(ElemKind::Ref);
                m.get_field(values);
                m.const_i(0);
                m.array_get(ElemKind::I64);
                m.add();
                m.put_static(balance);
            },
        );
        m.ret();
        pb.define_method(scan, m);
    }

    let mut m = MethodBuilder::new("main", 0, 2, false);
    let rng = 1;
    m.const_i(0x5eed_d00d);
    m.store(rng);
    m.const_i(ROWS);
    m.new_array(ElemKind::Ref);
    m.put_static(table);
    m.for_loop(
        0,
        |m| {
            m.const_i(ROWS);
        },
        |m| {
            m.get_static(table);
            m.load(0);
            m.load(0);
            m.call(make_row);
            m.array_set(ElemKind::Ref);
        },
    );
    m.for_loop(
        0,
        move |m| {
            m.const_i(5000 * f);
        },
        |m| {
            m.rng_next(rng);
            m.const_i(ROWS);
            m.rem();
            m.call(tx);
        },
    );
    m.for_loop(
        0,
        move |m| {
            m.const_i(4 * f);
        },
        |m| {
            m.call(scan);
        },
    );
    m.ret();
    let main = pb.add_method(m);
    pb.set_entry(main);

    Workload {
        name: "hsqldb",
        suite: Suite::DaCapo,
        description: "in-memory SQL: transactions replace Row→long[] records, scans aggregate through Row::values",
        program: pb.finish().expect("hsqldb verifies"),
        min_heap_bytes: 768 * 1024,
        hot_field: Some(("Row", "values")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hsqldb_builds() {
        assert_eq!(build(Size::Tiny).name, "hsqldb");
    }
}
