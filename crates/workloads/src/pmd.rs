//! `pmd` (DaCapo) — static analysis of Java source.
//!
//! pmd walks ASTs applying rule visitors; it is one of the programs with
//! both a large co-allocation count and a visible L1-miss reduction in
//! the paper (Figures 3 and 4).
//!
//! The model: files become `AstNode { children, attrs, kind }` trees
//! (children are small ref-arrays); rule passes visit every node reading
//! `AstNode::attrs`, and files are re-parsed steadily (churn).

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::{ElemKind, FieldType};

use crate::framework::{Size, Suite, Workload};

const FILES: i64 = 24;
const NODE_FANOUT: i64 = 4;
const TREE_DEPTH: i64 = 5; // 4^5 ≈ 1365 nodes per file

/// Build the workload.
#[must_use]
pub fn build(size: Size) -> Workload {
    let f = size.factor();
    let mut pb = ProgramBuilder::new();
    let node = pb.add_class(
        "AstNode",
        &[
            ("children", FieldType::Ref),
            ("attrs", FieldType::Ref),
            ("kind", FieldType::Int),
        ],
    );
    let children = pb.field_id(node, "children").unwrap();
    let attrs = pb.field_id(node, "attrs").unwrap();
    let kind = pb.field_id(node, "kind").unwrap();
    let files = pb.add_static("files", FieldType::Ref);
    let violations = pb.add_static("violations", FieldType::Int);

    // parse(depth) -> AstNode
    let parse = pb.declare_method("parse", 1, true);
    {
        let mut m = MethodBuilder::new("parse", 1, 2, true);
        let n = 1;
        m.new_object(node);
        m.store(n);
        m.load(n);
        m.const_i(2);
        m.new_array(ElemKind::I32);
        m.put_field(attrs);
        m.load(n);
        m.load(0);
        m.put_field(kind);
        let leaf = m.label();
        m.load(0);
        m.const_i(0);
        m.le();
        m.jump_if(leaf);
        m.load(n);
        m.const_i(NODE_FANOUT);
        m.new_array(ElemKind::Ref);
        m.put_field(children);
        m.for_loop(
            2,
            |m| {
                m.const_i(NODE_FANOUT);
            },
            |m| {
                m.load(n);
                m.get_field(children);
                m.load(2);
                m.load(0);
                m.const_i(1);
                m.sub();
                m.call(parse);
                m.array_set(ElemKind::Ref);
            },
        );
        m.bind(leaf);
        m.load(n);
        m.ret_val();
        pb.define_method(parse, m);
    }

    // visit(node) -> int: recursive rule pass reading attrs.
    let visit = pb.declare_method("visit", 1, true);
    {
        let mut m = MethodBuilder::new("visit", 1, 2, true);
        let acc = 1;
        m.load(0);
        m.get_field(attrs);
        m.const_i(0);
        m.array_get(ElemKind::I32);
        m.load(0);
        m.get_field(kind);
        m.add();
        m.store(acc);
        let leaf = m.label();
        m.load(0);
        m.get_field(children);
        m.is_null();
        m.jump_if(leaf);
        m.for_loop(
            2,
            |m| {
                m.const_i(NODE_FANOUT);
            },
            |m| {
                m.load(acc);
                m.load(0);
                m.get_field(children);
                m.load(2);
                m.array_get(ElemKind::Ref);
                m.call(visit);
                m.add();
                m.store(acc);
            },
        );
        m.bind(leaf);
        m.load(acc);
        m.ret_val();
        pb.define_method(visit, m);
    }

    let mut m = MethodBuilder::new("main", 0, 1, false);
    m.const_i(FILES);
    m.new_array(ElemKind::Ref);
    m.put_static(files);
    m.for_loop(
        0,
        move |m| {
            m.const_i(2 + f);
        },
        |m| {
            // Re-parse every file, then run 3 rule passes over all files.
            let i = m.new_local();
            m.for_loop(
                i,
                |m| {
                    m.const_i(FILES);
                },
                |m| {
                    m.get_static(files);
                    m.load(i);
                    m.const_i(TREE_DEPTH);
                    m.call(parse);
                    m.array_set(ElemKind::Ref);
                },
            );
            let p = m.new_local();
            m.for_loop(
                p,
                |m| {
                    m.const_i(3);
                },
                |m| {
                    let j = m.new_local();
                    m.for_loop(
                        j,
                        |m| {
                            m.const_i(FILES);
                        },
                        |m| {
                            m.get_static(violations);
                            m.get_static(files);
                            m.load(j);
                            m.array_get(ElemKind::Ref);
                            m.call(visit);
                            m.add();
                            m.put_static(violations);
                        },
                    );
                },
            );
        },
    );
    m.ret();
    let main = pb.add_method(m);
    pb.set_entry(main);

    Workload {
        name: "pmd",
        suite: Suite::DaCapo,
        description:
            "source analyzer: rule visitors over AstNode→attrs trees, re-parsed each round",
        program: pb.finish().expect("pmd verifies"),
        min_heap_bytes: 8 * 1024 * 1024,
        hot_field: Some(("AstNode", "attrs")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmd_builds() {
        assert_eq!(build(Size::Tiny).name, "pmd");
    }
}
