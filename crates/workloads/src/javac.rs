//! `_213_javac` — the JDK 1.0.2 Java compiler.
//!
//! javac builds and walks abstract syntax trees with many distinct node
//! classes. In the paper it shows the *worst case* for co-allocation at
//! large heaps (−2.1 %, "similar to the sampling overhead"): misses are
//! spread over many classes and access paths, so few decisions pay off.
//!
//! The model: repeatedly parse (build) binary expression trees from four
//! node classes with interleaved lifetimes, then type-check (walk) them.
//! The varied classes dilute per-field miss counts.

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::FieldType;

use crate::framework::{Size, Suite, Workload};

const TREE_DEPTH: i64 = 12; // 2^12 ≈ 4K leaves per tree

/// Build the workload.
#[must_use]
pub fn build(size: Size) -> Workload {
    let f = size.factor();
    let mut pb = ProgramBuilder::new();
    // Four node classes with the same shape but distinct identities, so
    // misses are spread across classes (as in a real compiler front end).
    let classes: Vec<_> = ["Plus", "Times", "Ident", "Lit"]
        .iter()
        .map(|n| {
            pb.add_class(
                n,
                &[
                    ("left", FieldType::Ref),
                    ("right", FieldType::Ref),
                    ("kind", FieldType::Int),
                ],
            )
        })
        .collect();
    let left = pb.field_id(classes[0], "left").unwrap();
    let right = pb.field_id(classes[0], "right").unwrap();
    let kind = pb.field_id(classes[0], "kind").unwrap();
    // Field offsets are identical across the four classes, so the same
    // field ids work for all of them at runtime; the *per-class* miss
    // accounting still sees four different classes. Use per-class ids for
    // stores so the policy sees accurate classes.
    let roots = pb.add_static("roots", FieldType::Ref);
    let checked = pb.add_static("checked", FieldType::Int);

    // build_tree(depth, salt) -> node
    let build_tree = pb.declare_method("build_tree", 2, true);
    {
        let mut m = MethodBuilder::new("build_tree", 2, 1, true);
        let n = 2;
        let leaf = m.label();
        m.load(0);
        m.const_i(0);
        m.le();
        m.jump_if(leaf);
        // pick class by (depth + salt) % 4
        let mk_end = m.label();
        let mut arms = Vec::new();
        for _ in 0..3 {
            arms.push(m.label());
        }
        m.load(0);
        m.load(1);
        m.add();
        m.const_i(4);
        m.rem();
        m.dup();
        m.const_i(1);
        m.eq();
        m.jump_if(arms[0]);
        m.dup();
        m.const_i(2);
        m.eq();
        m.jump_if(arms[1]);
        m.dup();
        m.const_i(3);
        m.eq();
        m.jump_if(arms[2]);
        m.pop();
        m.new_object(classes[0]);
        m.jump(mk_end);
        for (i, arm) in arms.iter().enumerate() {
            m.bind(*arm);
            m.pop();
            m.new_object(classes[i + 1]);
            m.jump(mk_end);
        }
        m.bind(mk_end);
        m.store(n);
        m.load(n);
        m.load(0);
        m.const_i(1);
        m.sub();
        m.load(1);
        m.call(build_tree);
        m.put_field(left);
        m.load(n);
        m.load(0);
        m.const_i(1);
        m.sub();
        m.load(1);
        m.const_i(7);
        m.add();
        m.call(build_tree);
        m.put_field(right);
        m.load(n);
        m.load(0);
        m.put_field(kind);
        m.load(n);
        m.ret_val();
        m.bind(leaf);
        m.new_object(classes[3]);
        m.store(n);
        m.load(n);
        m.load(1);
        m.put_field(kind);
        m.load(n);
        m.ret_val();
        pb.define_method(build_tree, m);
    }

    // check(node) -> int: recursive walk.
    let check = pb.declare_method("check", 1, true);
    {
        let mut m = MethodBuilder::new("check", 1, 1, true);
        let leaf = m.label();
        m.load(0);
        m.get_field(left);
        m.is_null();
        m.jump_if(leaf);
        m.load(0);
        m.get_field(left);
        m.call(check);
        m.load(0);
        m.get_field(right);
        m.call(check);
        m.add();
        m.load(0);
        m.get_field(kind);
        m.add();
        m.ret_val();
        m.bind(leaf);
        m.load(0);
        m.get_field(kind);
        m.ret_val();
        pb.define_method(check, m);
    }

    let mut m = MethodBuilder::new("main", 0, 2, false);
    m.for_loop(
        0,
        move |m| {
            m.const_i(3 + f);
        },
        |m| {
            m.load(0);
            m.const_i(TREE_DEPTH);
            m.swap();
            m.call(build_tree);
            m.store(1);
            let passes = m.new_local();
            m.for_loop(
                passes,
                |m| {
                    m.const_i(3);
                },
                |m| {
                    m.get_static(checked);
                    m.load(1);
                    m.call(check);
                    m.add();
                    m.put_static(checked);
                },
            );
            // Keep the latest tree reachable, drop the previous one.
            m.load(1);
            m.put_static(roots);
        },
    );
    m.ret();
    let main = pb.add_method(m);
    pb.set_entry(main);

    Workload {
        name: "javac",
        suite: Suite::SpecJvm98,
        description: "compiler front end: builds and type-checks ASTs of four node classes with diluted per-field misses",
        program: pb.finish().expect("javac verifies"),
        min_heap_bytes: 2 * 1024 * 1024,
        hot_field: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn javac_builds_with_four_classes() {
        let w = build(Size::Tiny);
        assert_eq!(w.program.classes().len(), 4);
    }
}
