//! `antlr` (DaCapo) — parser-generator grammar analysis.
//!
//! antlr walks grammar graphs whose nodes reference alternative lists.
//! Its co-allocation counts in the paper are moderate and
//! interval-sensitive (Figure 3): the graph is rebuilt only a few times,
//! so a coarse sampling interval sees fewer of the relevant misses.
//!
//! The model: a grammar of `Rule { alts, link }` nodes, where `alts` is a
//! small ref-array of `Alt { symbols }` leaves; analysis passes chase
//! `Rule::alts` and `Alt::symbols`.

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::{ElemKind, FieldType};

use crate::framework::{Size, Suite, Workload};

const RULES: i64 = 1200;
const ALTS: i64 = 3;

/// Build the workload.
#[must_use]
pub fn build(size: Size) -> Workload {
    let f = size.factor();
    let mut pb = ProgramBuilder::new();
    let alt = pb.add_class("Alt", &[("symbols", FieldType::Ref)]);
    let symbols = pb.field_id(alt, "symbols").unwrap();
    let rule = pb.add_class(
        "Rule",
        &[("alts", FieldType::Ref), ("link", FieldType::Ref)],
    );
    let alts = pb.field_id(rule, "alts").unwrap();
    let link = pb.field_id(rule, "link").unwrap();
    let grammar = pb.add_static("grammar", FieldType::Ref);
    let metric = pb.add_static("metric", FieldType::Int);

    // build_grammar(): fresh linked grammar.
    let build_g = pb.declare_method("build_grammar", 0, false);
    {
        let mut m = MethodBuilder::new("build_grammar", 0, 4, false);
        let r = 1;
        let a = 2;
        m.const_null();
        m.put_static(grammar);
        m.for_loop(
            0,
            |m| {
                m.const_i(RULES);
            },
            |m| {
                m.new_object(rule);
                m.store(r);
                m.load(r);
                m.const_i(ALTS);
                m.new_array(ElemKind::Ref);
                m.put_field(alts);
                m.for_loop(
                    3,
                    |m| {
                        m.const_i(ALTS);
                    },
                    |m| {
                        m.new_object(alt);
                        m.store(a);
                        m.load(a);
                        m.const_i(4);
                        m.new_array(ElemKind::I32);
                        m.put_field(symbols);
                        m.load(r);
                        m.get_field(alts);
                        m.load(3);
                        m.load(a);
                        m.array_set(ElemKind::Ref);
                    },
                );
                m.load(r);
                m.get_static(grammar);
                m.put_field(link);
                m.load(r);
                m.put_static(grammar);
            },
        );
        m.ret();
        pb.define_method(build_g, m);
    }

    // analyze(): walk rules, first alternative, first symbol.
    let analyze = pb.declare_method("analyze", 0, false);
    {
        let mut m = MethodBuilder::new("analyze", 0, 2, false);
        let cur = 0;
        m.get_static(grammar);
        m.store(cur);
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.load(cur);
        m.is_null();
        m.jump_if(done);
        m.get_static(metric);
        m.load(cur);
        m.get_field(alts);
        m.const_i(0);
        m.array_get(ElemKind::Ref);
        m.get_field(symbols);
        m.const_i(0);
        m.array_get(ElemKind::I32);
        m.add();
        m.put_static(metric);
        m.load(cur);
        m.get_field(link);
        m.store(cur);
        m.jump(top);
        m.bind(done);
        m.ret();
        pb.define_method(analyze, m);
    }

    let mut m = MethodBuilder::new("main", 0, 1, false);
    m.for_loop(
        0,
        move |m| {
            m.const_i(2 + f);
        },
        |m| {
            m.call(build_g);
            let p = m.new_local();
            m.for_loop(
                p,
                |m| {
                    m.const_i(8);
                },
                |m| {
                    m.call(analyze);
                },
            );
        },
    );
    m.ret();
    let main = pb.add_method(m);
    pb.set_entry(main);

    Workload {
        name: "antlr",
        suite: Suite::DaCapo,
        description: "grammar analysis: Rule→Alt[]→Alt::symbols chains rebuilt a few times",
        program: pb.finish().expect("antlr verifies"),
        min_heap_bytes: 768 * 1024,
        hot_field: Some(("Rule", "alts")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn antlr_builds() {
        assert_eq!(build(Size::Tiny).suite, Suite::DaCapo);
    }
}
