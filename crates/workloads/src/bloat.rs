//! `bloat` (DaCapo) — a bytecode optimizer optimizing itself.
//!
//! bloat is one of the three programs the paper reports a real speedup
//! for ("three programs (db, pseudojbb, bloat) show a speedup"): it
//! rewrites long instruction lists where each `Insn` holds a small
//! `Operand` record that is touched on every rewriting pass — a
//! line-sharing-friendly parent/child pair.

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::{ElemKind, FieldType};

use crate::framework::{Size, Suite, Workload};

const INSNS: i64 = 3500;

/// Build the workload.
#[must_use]
pub fn build(size: Size) -> Workload {
    let f = size.factor();
    let mut pb = ProgramBuilder::new();
    let operand = pb.add_class("Operand", &[("bits", FieldType::Ref)]);
    let bits = pb.field_id(operand, "bits").unwrap();
    let insn = pb.add_class(
        "Insn",
        &[
            ("op", FieldType::Ref),
            ("next", FieldType::Ref),
            ("opcode", FieldType::Int),
        ],
    );
    let op = pb.field_id(insn, "op").unwrap();
    let next = pb.field_id(insn, "next").unwrap();
    let opcode = pb.field_id(insn, "opcode").unwrap();
    let method_list = pb.add_static("method", FieldType::Ref);
    let rewrites = pb.add_static("rewrites", FieldType::Int);

    // emit_method(): build a fresh instruction list.
    let emit = pb.declare_method("emit_method", 0, false);
    {
        let mut m = MethodBuilder::new("emit_method", 0, 3, false);
        let i = 1;
        let o = 2;
        m.const_null();
        m.put_static(method_list);
        m.for_loop(
            0,
            |m| {
                m.const_i(INSNS);
            },
            |m| {
                m.new_object(operand);
                m.store(o);
                m.load(o);
                m.const_i(2);
                m.new_array(ElemKind::I32);
                m.put_field(bits);
                m.new_object(insn);
                m.store(i);
                m.load(i);
                m.load(o);
                m.put_field(op);
                m.load(i);
                m.load(0);
                m.const_i(201);
                m.rem();
                m.put_field(opcode);
                m.load(i);
                m.get_static(method_list);
                m.put_field(next);
                m.load(i);
                m.put_static(method_list);
            },
        );
        m.ret();
        pb.define_method(emit, m);
    }

    // peephole(): one rewriting pass touching insn.op.bits.
    let pass = pb.declare_method("peephole", 0, false);
    {
        let mut m = MethodBuilder::new("peephole", 0, 2, false);
        let cur = 0;
        m.get_static(method_list);
        m.store(cur);
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.load(cur);
        m.is_null();
        m.jump_if(done);
        // op.bits[0] = op.bits[0] ^ opcode; rewrites += opcode & 1
        m.load(cur);
        m.get_field(op);
        m.get_field(bits);
        m.const_i(0);
        m.load(cur);
        m.get_field(op);
        m.get_field(bits);
        m.const_i(0);
        m.array_get(ElemKind::I32);
        m.load(cur);
        m.get_field(opcode);
        m.xor();
        m.array_set(ElemKind::I32);
        m.get_static(rewrites);
        m.load(cur);
        m.get_field(opcode);
        m.const_i(1);
        m.and();
        m.add();
        m.put_static(rewrites);
        m.load(cur);
        m.get_field(next);
        m.store(cur);
        m.jump(top);
        m.bind(done);
        m.ret();
        pb.define_method(pass, m);
    }

    let mut m = MethodBuilder::new("main", 0, 1, false);
    m.for_loop(
        0,
        move |m| {
            m.const_i(2 + f);
        },
        |m| {
            m.call(emit);
            let p = m.new_local();
            m.for_loop(
                p,
                |m| {
                    m.const_i(7);
                },
                |m| {
                    m.call(pass);
                },
            );
        },
    );
    m.ret();
    let main = pb.add_method(m);
    pb.set_entry(main);

    Workload {
        name: "bloat",
        suite: Suite::DaCapo,
        description: "bytecode optimizer: peephole passes over Insn→Operand pairs (one of the paper's three speedup cases)",
        program: pb.finish().expect("bloat verifies"),
        min_heap_bytes: 1024 * 1024,
        hot_field: Some(("Insn", "op")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bloat_builds() {
        assert_eq!(build(Size::Tiny).hot_field, Some(("Insn", "op")));
    }
}
