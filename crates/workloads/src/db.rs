//! `_209_db` — the paper's showcase benchmark.
//!
//! SPECjvm98's `db` performs database functions on a memory-resident
//! address database: records are `String`s backed by `char[]` arrays, and
//! the hot loop compares keys by dereferencing `String::value` — exactly
//! the parent→child access path object co-allocation accelerates. The
//! paper reports its largest win here: 28 % fewer L1 misses, up to 13.9 %
//! faster (Figures 4–7).
//!
//! The model: a table of `String` records over `char[12]` payloads. Each
//! round rebuilds part of the database (fresh allocations keep promotion
//! — and therefore co-allocation — active) and then performs many
//! shuffled lookups, each walking the record's `char[]` through
//! `String::value`.

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::{ElemKind, FieldType};

use crate::framework::{Size, Suite, Workload};

/// Records in the database. The resident set (~1.8 MB of String/char[]
/// pairs plus churn) exceeds the 16 KB L1 by two orders of magnitude and
/// overflows the 1 MB L2, as the real db's working set does — misses are frequent and
/// expensive, which is what makes the locality optimization pay.
const RECORDS: i64 = 25000;
/// Payload chars per record.
const CHARS: i64 = 12;

/// Build the workload.
#[must_use]
pub fn build(size: Size) -> Workload {
    let f = size.factor();
    let mut pb = ProgramBuilder::new();
    let string = pb.add_class(
        "String",
        &[("value", FieldType::Ref), ("hash", FieldType::Int)],
    );
    let value = pb.field_id(string, "value").unwrap();
    let hash = pb.field_id(string, "hash").unwrap();
    let table = pb.add_static("table", FieldType::Ref);
    let checksum = pb.add_static("checksum", FieldType::Int);

    // make_record(seed) -> String: a fresh record with payload derived
    // from the seed.
    let make_record = pb.declare_method("make_record", 1, true);
    {
        let mut m = MethodBuilder::new("make_record", 1, 2, true);
        let s = 1; // local: the record
        m.new_object(string);
        m.store(s);
        m.load(s);
        m.const_i(CHARS);
        m.new_array(ElemKind::I16);
        m.put_field(value);
        m.load(s);
        m.load(0);
        m.put_field(hash);
        // fill value[j] = (seed + j) & 0x7fff
        m.for_loop(
            2,
            |m| {
                m.const_i(CHARS);
            },
            |m| {
                m.load(s);
                m.get_field(value);
                m.load(2);
                m.load(0);
                m.load(2);
                m.add();
                m.const_i(0x7fff);
                m.and();
                m.array_set(ElemKind::I16);
            },
        );
        m.load(s);
        m.ret_val();
        pb.define_method(make_record, m);
    }

    // key_of(record) -> int: walk the payload through String::value —
    // the instruction of interest that takes the misses.
    let key_of = pb.declare_method("key_of", 1, true);
    {
        let mut m = MethodBuilder::new("key_of", 1, 2, true);
        let acc = 1;
        m.const_i(0);
        m.store(acc);
        m.for_loop(
            2,
            |m| {
                m.const_i(CHARS);
            },
            |m| {
                m.load(acc);
                m.load(0);
                m.get_field(value);
                m.load(2);
                m.array_get(ElemKind::I16);
                m.add();
                m.store(acc);
            },
        );
        m.load(acc);
        m.ret_val();
        pb.define_method(key_of, m);
    }

    // main: rounds of (partial rebuild, shuffled lookups).
    let mut m = MethodBuilder::new("main", 0, 6, false);
    let rng = 4;
    let tmp = 5;
    m.const_i(0x00c0_ffee_i64);
    m.store(rng);
    // table = new String[RECORDS], fully populated once.
    m.const_i(RECORDS);
    m.new_array(ElemKind::Ref);
    m.put_static(table);
    m.for_loop(
        0,
        |m| {
            m.const_i(RECORDS);
        },
        |m| {
            m.get_static(table);
            m.load(0);
            m.load(0);
            m.call(make_record);
            m.array_set(ElemKind::Ref);
        },
    );
    // Rounds: rebuild the database (the SPEC harness re-runs the whole
    // benchmark; each re-run reloads the database), then do shuffled
    // lookups against it.
    m.for_loop(
        3,
        move |m| {
            m.const_i(2 + f);
        },
        |m| {
            m.for_loop(
                0,
                |m| {
                    m.const_i(RECORDS);
                },
                |m| {
                    m.get_static(table);
                    m.load(0);
                    m.load(0);
                    m.call(make_record);
                    m.array_set(ElemKind::Ref);
                },
            );
            // Shuffled lookups.
            m.for_loop(
                0,
                move |m| {
                    m.const_i(RECORDS * f / 2);
                },
                |m| {
                    m.rng_next(rng);
                    m.const_i(RECORDS);
                    m.rem();
                    m.store(tmp);
                    m.get_static(checksum);
                    m.get_static(table);
                    m.load(tmp);
                    m.array_get(ElemKind::Ref);
                    m.call(key_of);
                    m.add();
                    m.put_static(checksum);
                },
            );
        },
    );
    m.ret();
    let main = pb.add_method(m);
    pb.set_entry(main);

    Workload {
        name: "db",
        suite: Suite::SpecJvm98,
        description: "memory-resident database: shuffled key lookups chase String::value into char[] payloads",
        program: pb.finish().expect("db verifies"),
        min_heap_bytes: 6 * 1024 * 1024,
        hot_field: Some(("String", "value")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_builds_and_names_hot_field() {
        let w = build(Size::Tiny);
        assert_eq!(w.name, "db");
        assert_eq!(w.hot_field, Some(("String", "value")));
        let string = w.program.class_by_name("String").unwrap();
        assert!(w.program.field_by_name(string, "value").is_some());
    }
}
