//! `_228_jack` — a parser generator (early JavaCC).
//!
//! jack tokenizes its own grammar over and over, building short token
//! lists and small string buffers. Mature-space traffic is modest; the
//! paper's co-allocation counts for jack are small ("in the order of
//! thousands") with correspondingly small effects.
//!
//! The model: repeated lexing passes over a character buffer producing
//! `Token { text, next }` chains that survive one pass each.

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::{ElemKind, FieldType};

use crate::framework::{Size, Suite, Workload};

const SOURCE_CHARS: i64 = 8192;
const TOKEN_LEN: i64 = 6;

/// Build the workload.
#[must_use]
pub fn build(size: Size) -> Workload {
    let f = size.factor();
    let mut pb = ProgramBuilder::new();
    let token = pb.add_class(
        "Token",
        &[
            ("text", FieldType::Ref),
            ("next", FieldType::Ref),
            ("kind", FieldType::Int),
        ],
    );
    let text = pb.field_id(token, "text").unwrap();
    let next = pb.field_id(token, "next").unwrap();
    let kind = pb.field_id(token, "kind").unwrap();
    let source = pb.add_static("source", FieldType::Ref);
    let stream = pb.add_static("stream", FieldType::Ref);
    let parsed = pb.add_static("parsed", FieldType::Int);

    // lex_pass(): tokenize the source into a fresh token chain.
    let lex = pb.declare_method("lex_pass", 0, false);
    {
        let mut m = MethodBuilder::new("lex_pass", 0, 3, false);
        let t = 1;
        m.const_null();
        m.put_static(stream);
        m.for_loop(
            0,
            |m| {
                m.const_i(SOURCE_CHARS / TOKEN_LEN);
            },
            |m| {
                m.new_object(token);
                m.store(t);
                m.load(t);
                m.const_i(TOKEN_LEN);
                m.new_array(ElemKind::I16);
                m.put_field(text);
                // copy characters
                m.for_loop(
                    2,
                    |m| {
                        m.const_i(TOKEN_LEN);
                    },
                    |m| {
                        m.load(t);
                        m.get_field(text);
                        m.load(2);
                        m.get_static(source);
                        m.load(0);
                        m.const_i(TOKEN_LEN);
                        m.mul();
                        m.load(2);
                        m.add();
                        m.array_get(ElemKind::I8);
                        m.array_set(ElemKind::I16);
                    },
                );
                m.load(t);
                m.load(0);
                m.const_i(11);
                m.rem();
                m.put_field(kind);
                m.load(t);
                m.get_static(stream);
                m.put_field(next);
                m.load(t);
                m.put_static(stream);
            },
        );
        m.ret();
        pb.define_method(lex, m);
    }

    // parse_pass(): walk the token chain reading text through Token::text.
    let parse = pb.declare_method("parse_pass", 0, false);
    {
        let mut m = MethodBuilder::new("parse_pass", 0, 2, false);
        let cur = 0;
        m.get_static(stream);
        m.store(cur);
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.load(cur);
        m.is_null();
        m.jump_if(done);
        m.get_static(parsed);
        m.load(cur);
        m.get_field(text);
        m.const_i(0);
        m.array_get(ElemKind::I16);
        m.load(cur);
        m.get_field(kind);
        m.add();
        m.add();
        m.put_static(parsed);
        m.load(cur);
        m.get_field(next);
        m.store(cur);
        m.jump(top);
        m.bind(done);
        m.ret();
        pb.define_method(parse, m);
    }

    let mut m = MethodBuilder::new("main", 0, 1, false);
    m.const_i(SOURCE_CHARS);
    m.new_array(ElemKind::I8);
    m.put_static(source);
    m.for_loop(
        0,
        |m| {
            m.const_i(SOURCE_CHARS);
        },
        |m| {
            m.get_static(source);
            m.load(0);
            m.load(0);
            m.const_i(127);
            m.and();
            m.array_set(ElemKind::I8);
        },
    );
    // The SPEC harness parses the same input 16 times; scale by size.
    m.for_loop(
        0,
        move |m| {
            m.const_i(6 * f);
        },
        |m| {
            m.call(lex);
            let p = m.new_local();
            m.for_loop(
                p,
                |m| {
                    m.const_i(4);
                },
                |m| {
                    m.call(parse);
                },
            );
        },
    );
    m.ret();
    let main = pb.add_method(m);
    pb.set_entry(main);

    Workload {
        name: "jack",
        suite: Suite::SpecJvm98,
        description: "parser generator: repeated lexing into Token::text chains that live one pass",
        program: pb.finish().expect("jack verifies"),
        min_heap_bytes: 384 * 1024,
        hot_field: Some(("Token", "text")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jack_builds() {
        assert_eq!(build(Size::Tiny).name, "jack");
    }
}
