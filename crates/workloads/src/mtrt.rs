//! `_227_mtrt` — a multithreaded ray tracer (modelled single-threaded,
//! as the deterministic simulation requires).
//!
//! mtrt allocates enormous numbers of *short-lived* vector objects that
//! die in the nursery; its mature working set is small. The paper's
//! numbers show essentially no co-allocation benefit for it: nursery
//! objects never reach the free-list space where co-allocation acts.
//!
//! The model: per-ray `Vec3` triples allocated, combined, and dropped,
//! against a small immortal scene of spheres.

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::{ElemKind, FieldType};

use crate::framework::{Size, Suite, Workload};

const SPHERES: i64 = 64;
const RAYS_PER_ROUND: i64 = 6000;

/// Build the workload.
#[must_use]
pub fn build(size: Size) -> Workload {
    let f = size.factor();
    let mut pb = ProgramBuilder::new();
    let vec3 = pb.add_class(
        "Vec3",
        &[
            ("x", FieldType::Int),
            ("y", FieldType::Int),
            ("z", FieldType::Int),
        ],
    );
    let fx = pb.field_id(vec3, "x").unwrap();
    let fy = pb.field_id(vec3, "y").unwrap();
    let fz = pb.field_id(vec3, "z").unwrap();
    let scene = pb.add_static("scene", FieldType::Ref); // i32[4*SPHERES]
    let image = pb.add_static("image", FieldType::Int);

    // trace(seed) -> int: allocate direction/origin vectors, test against
    // every sphere, return a shade.
    let trace = pb.declare_method("trace", 1, true);
    {
        let mut m = MethodBuilder::new("trace", 1, 4, true);
        let dir = 1;
        let acc = 2;
        m.new_object(vec3);
        m.store(dir);
        m.load(dir);
        m.load(0);
        m.const_i(0xff);
        m.and();
        m.put_field(fx);
        m.load(dir);
        m.load(0);
        m.const_i(8);
        m.shr();
        m.const_i(0xff);
        m.and();
        m.put_field(fy);
        m.load(dir);
        m.const_i(255);
        m.put_field(fz);
        m.const_i(0);
        m.store(acc);
        m.for_loop(
            3,
            |m| {
                m.const_i(SPHERES);
            },
            |m| {
                // acc += dir.x*scene[4s] + dir.y*scene[4s+1] + dir.z*scene[4s+2]
                m.load(acc);
                m.load(dir);
                m.get_field(fx);
                m.get_static(scene);
                m.load(3);
                m.const_i(4);
                m.mul();
                m.array_get(ElemKind::I32);
                m.mul();
                m.add();
                m.load(dir);
                m.get_field(fy);
                m.get_static(scene);
                m.load(3);
                m.const_i(4);
                m.mul();
                m.const_i(1);
                m.add();
                m.array_get(ElemKind::I32);
                m.mul();
                m.add();
                m.store(acc);
            },
        );
        m.load(acc);
        m.ret_val();
        pb.define_method(trace, m);
    }

    let mut m = MethodBuilder::new("main", 0, 2, false);
    let rng = 1;
    m.const_i(0x7ace_7ace);
    m.store(rng);
    m.const_i(SPHERES * 4);
    m.new_array(ElemKind::I32);
    m.put_static(scene);
    m.for_loop(
        0,
        |m| {
            m.const_i(SPHERES * 4);
        },
        |m| {
            m.get_static(scene);
            m.load(0);
            m.load(0);
            m.const_i(37);
            m.mul();
            m.const_i(1023);
            m.and();
            m.array_set(ElemKind::I32);
        },
    );
    m.for_loop(
        0,
        move |m| {
            m.const_i(RAYS_PER_ROUND * f);
        },
        |m| {
            m.get_static(image);
            m.rng_next(rng);
            m.call(trace);
            m.add();
            m.put_static(image);
        },
    );
    m.ret();
    let main = pb.add_method(m);
    pb.set_entry(main);

    Workload {
        name: "mtrt",
        suite: Suite::SpecJvm98,
        description: "ray tracer: short-lived Vec3 objects that die young; tiny mature working set",
        program: pb.finish().expect("mtrt verifies"),
        min_heap_bytes: 384 * 1024,
        hot_field: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtrt_builds() {
        assert_eq!(build(Size::Tiny).name, "mtrt");
    }
}
