//! Figure 2 — execution-time overhead of runtime event sampling.
//!
//! Per program: execution time with monitoring at the three fixed
//! intervals and in auto mode, relative to the unmonitored baseline
//! (co-allocation off — this isolates monitoring cost). Heap = 4× min.
//!
//! Expected shape (paper): overhead roughly proportional to sampling
//! rate; worst cases ~3 % at the finest interval; auto and the coarsest
//! interval below 1 % on average.

use hpmopt_gc::CollectorKind;
use hpmopt_hpm::SamplingInterval;
use hpmopt_workloads::{all, Size, Workload};

use crate::{fmt, setup, INTERVALS};

/// One Figure 2 row: per-interval overhead ratios (monitored/baseline).
#[derive(Debug, Clone)]
pub struct Row {
    /// Program name.
    pub program: String,
    /// Overhead ratio at each fixed interval, in [`INTERVALS`] order.
    pub fixed: Vec<f64>,
    /// Overhead ratio in auto mode.
    pub auto: f64,
}

/// Measure the given workloads.
#[must_use]
pub fn measure(ws: &[Workload], size: Size) -> Vec<Row> {
    ws.iter()
        .map(|w| {
            let base = setup::baseline_report(w, size, 4, 1).cycles as f64;
            let at = |sampling: SamplingInterval| {
                let heap = setup::heap_config(w, 4, 1, CollectorKind::GenMs);
                let cfg = setup::run_config(w, size, heap, sampling, false);
                setup::run(w, cfg).cycles as f64 / base
            };
            Row {
                program: w.name.to_string(),
                fixed: INTERVALS
                    .iter()
                    .map(|&(n, _)| at(SamplingInterval::Fixed(n)))
                    .collect(),
                auto: at(setup::auto_interval()),
            }
        })
        .collect()
}

/// Render the figure as a table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.program.clone()];
            cells.extend(r.fixed.iter().map(|&x| fmt::pct_change(x)));
            cells.push(fmt::pct_change(r.auto));
            cells
        })
        .collect();
    let headers: Vec<String> = std::iter::once("program".to_string())
        .chain(INTERVALS.iter().map(|&(_, l)| l.to_string()))
        .chain(std::iter::once("auto".to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut out = String::from(
        "Figure 2: Execution-time overhead of event sampling vs. interval (heap = 4x min).\n\n",
    );
    out.push_str(&fmt::table(&header_refs, &data));
    let avg_auto: f64 = rows.iter().map(|r| r.auto - 1.0).sum::<f64>() / rows.len() as f64;
    let avg_fine: f64 = rows.iter().map(|r| r.fixed[0] - 1.0).sum::<f64>() / rows.len() as f64;
    out.push_str(&format!(
        "\naverage overhead: {} (finest interval), {} (auto)\n",
        fmt::pct(avg_fine),
        fmt::pct(avg_auto)
    ));
    out
}

/// Run and render over all workloads.
#[must_use]
pub fn run(size: Size) -> String {
    render(&measure(&all(size), size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmopt_workloads::by_name;

    #[test]
    fn finer_sampling_costs_more_and_stays_bounded() {
        let ws = vec![by_name("db", Size::Tiny).unwrap()];
        let rows = measure(&ws, Size::Tiny);
        let r = &rows[0];
        assert!(
            r.fixed[0] >= r.fixed[2] - 0.005,
            "finest interval should cost at least as much: {:?}",
            r.fixed
        );
        for &x in &r.fixed {
            assert!((0.99..1.10).contains(&x), "overhead out of range: {x}");
        }
    }
}
