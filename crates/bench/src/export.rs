//! CSV export of experiment data, for plotting the figures with external
//! tools.
//!
//! Each `*_csv` function takes the same measured data the text renderers
//! take and produces an RFC-4180-ish CSV string (comma-separated, `\n`
//! line endings, no quoting needed — all fields are numeric or simple
//! identifiers).

use crate::{fig2, fig3, fig4, fig5, fig7, HEAP_MULTS, INTERVALS};
use hpmopt_telemetry::{MetricId, MetricKind, TelemetrySnapshot};

/// Figure 2 data as CSV: `program,i25k,i50k,i100k,auto` overhead ratios.
#[must_use]
pub fn fig2_csv(rows: &[fig2::Row]) -> String {
    let mut out = String::from("program");
    for &(_, label) in &INTERVALS {
        out.push_str(&format!(",{label}"));
    }
    out.push_str(",auto\n");
    for r in rows {
        out.push_str(&r.program);
        for &x in &r.fixed {
            out.push_str(&format!(",{x:.6}"));
        }
        out.push_str(&format!(",{:.6}\n", r.auto));
    }
    out
}

/// Figure 3 data as CSV: co-allocated object counts per interval.
#[must_use]
pub fn fig3_csv(rows: &[fig3::Row]) -> String {
    let mut out = String::from("program");
    for &(_, label) in &INTERVALS {
        out.push_str(&format!(",{label}"));
    }
    out.push('\n');
    for r in rows {
        out.push_str(&r.program);
        for &c in &r.coallocated {
            out.push_str(&format!(",{c}"));
        }
        out.push('\n');
    }
    out
}

/// Figure 4 data as CSV.
#[must_use]
pub fn fig4_csv(rows: &[fig4::Row]) -> String {
    let mut out = String::from("program,misses_off,misses_on,ratio,coallocated\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.6},{}\n",
            r.program,
            r.misses_off,
            r.misses_on,
            r.ratio(),
            r.coallocated
        ));
    }
    out
}

/// Figure 5 data as CSV: normalized time per heap multiplier.
#[must_use]
pub fn fig5_csv(rows: &[fig5::Row]) -> String {
    let mut out = String::from("program");
    for &(_, _, label) in &HEAP_MULTS {
        out.push_str(&format!(",{label}"));
    }
    out.push('\n');
    for r in rows {
        out.push_str(&r.program);
        for &x in &r.normalized {
            out.push_str(&format!(",{x:.6}"));
        }
        out.push('\n');
    }
    out
}

/// Figure 7 data as CSV: the cumulative and rate series.
#[must_use]
pub fn fig7_csv(s: &fig7::Series) -> String {
    let mut out = String::from("cycles,cumulative,rate,rate_ma3\n");
    for (i, p) in s.cumulative.iter().enumerate() {
        let (rate, ma) = if i == 0 {
            (0.0, 0.0)
        } else {
            (s.rate[i - 1].1, s.rate_ma3[i - 1].1)
        };
        out.push_str(&format!("{},{},{rate:.4},{ma:.4}\n", p.cycles, p.total));
    }
    out
}

/// A telemetry snapshot as CSV: `metric,kind,value`, one row per
/// metric in declaration order, so successive snapshots of the same
/// build diff line-by-line.
#[must_use]
pub fn telemetry_csv(snap: &TelemetrySnapshot) -> String {
    let mut out = String::from("metric,kind,value\n");
    for &id in MetricId::ALL {
        let kind = match id.kind() {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        };
        out.push_str(&format!("{},{kind},{}\n", id.name(), snap.get(id)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmopt_core::monitor::SeriesPoint;

    #[test]
    fn fig4_csv_shape() {
        let rows = vec![fig4::Row {
            program: "db".into(),
            misses_off: 100,
            misses_on: 80,
            coallocated: 7,
        }];
        let csv = fig4_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].split(',').count(), 5);
        assert!(lines[1].starts_with("db,100,80,0.8"));
    }

    #[test]
    fn fig2_csv_has_all_interval_columns() {
        let rows = vec![fig2::Row {
            program: "fop".into(),
            fixed: vec![1.01, 1.005, 1.002],
            auto: 1.003,
        }];
        let csv = fig2_csv(&rows);
        assert_eq!(csv.lines().next().unwrap().split(',').count(), 5);
    }

    #[test]
    fn telemetry_csv_lists_every_metric() {
        let mut snap = TelemetrySnapshot::empty();
        snap.values[MetricId::HpmPolls as usize] = 13;
        let csv = telemetry_csv(&snap);
        assert_eq!(csv.lines().count(), 1 + MetricId::COUNT);
        assert!(csv.contains("hpm.polls,counter,13\n"));
        assert!(csv.contains("hpm.poll_period_ms,gauge,0\n"));
    }

    #[test]
    fn fig7_csv_aligns_series() {
        let s = fig7::Series {
            cumulative: vec![
                SeriesPoint {
                    cycles: 10,
                    total: 1,
                },
                SeriesPoint {
                    cycles: 20,
                    total: 3,
                },
            ],
            rate: vec![(20, 0.2)],
            rate_ma3: vec![(20, 0.2)],
            decision_at: None,
        };
        let csv = fig7_csv(&s);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(2).unwrap().starts_with("20,3,0.2"));
    }
}
