//! Figure 6 — GenCopy vs GenMS with co-allocation on `db`.
//!
//! Expected shape (paper): GenMS+co-allocation beats plain GenCopy at
//! every heap size (7 % at large heaps to 10 % at small ones in the
//! paper), because it combines the copying collector's locality with the
//! non-copying collector's space efficiency; GenCopy suffers most at
//! small heaps, where its copy reserve halves the usable space.

use hpmopt_gc::CollectorKind;
use hpmopt_hpm::SamplingInterval;
use hpmopt_workloads::{by_name, Size};

use crate::{fmt, setup, HEAP_MULTS};

/// One heap-size cell of Figure 6, normalized to the GenMS baseline.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Heap-size label.
    pub heap: &'static str,
    /// Plain GenMS baseline cycles (the 1.0 reference).
    pub genms_baseline: u64,
    /// GenCopy cycles / baseline.
    pub gencopy: f64,
    /// GenMS + co-allocation cycles / baseline.
    pub genms_coalloc: f64,
}

/// Measure all heap sizes for `db`.
#[must_use]
pub fn measure(size: Size) -> Vec<Cell> {
    let w = by_name("db", size).expect("db exists");
    HEAP_MULTS
        .iter()
        .map(|&(num, den, label)| {
            let baseline = setup::baseline_report(&w, size, num, den).cycles;
            let copy_heap = setup::heap_config(&w, num, den, CollectorKind::GenCopy);
            let copy_cfg = setup::run_config(&w, size, copy_heap, SamplingInterval::Off, false);
            let gencopy = setup::run(&w, copy_cfg).cycles as f64 / baseline as f64;
            let ms_heap = setup::heap_config(&w, num, den, CollectorKind::GenMs);
            let ms_cfg = setup::run_config(&w, size, ms_heap, setup::auto_interval(), true);
            let genms_coalloc = setup::run(&w, ms_cfg).cycles as f64 / baseline as f64;
            Cell {
                heap: label,
                genms_baseline: baseline,
                gencopy,
                genms_coalloc,
            }
        })
        .collect()
}

/// Render the figure as a table.
#[must_use]
pub fn render(cells: &[Cell]) -> String {
    let data: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.heap.to_string(),
                format!("{:.3}", c.gencopy),
                format!("{:.3}", c.genms_coalloc),
                fmt::pct_change(c.genms_coalloc / c.gencopy),
            ]
        })
        .collect();
    let mut out = String::from(
        "Figure 6: _209_db — GenCopy vs GenMS with co-allocation (normalized to plain GenMS).\n\n",
    );
    out.push_str(&fmt::table(
        &["heap", "GenCopy", "GenMS+coalloc", "coalloc vs GenCopy"],
        &data,
    ));
    out
}

/// Run and render.
#[must_use]
pub fn run(size: Size) -> String {
    render(&measure(size))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genms_coalloc_beats_gencopy_at_large_heaps() {
        let cells = measure(Size::Tiny);
        let large = cells.last().unwrap();
        assert!(
            large.genms_coalloc < large.gencopy,
            "GenMS+coalloc must beat GenCopy at 4x: {large:?}"
        );
    }
}
