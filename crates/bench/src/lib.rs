//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Section 6).
//!
//! Each experiment module produces both machine-readable data and the
//! formatted text the `experiments` binary prints:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — benchmark programs |
//! | [`table2`] | Table 2 — space overhead of machine-code maps |
//! | [`fig2`]   | Figure 2 — sampling overhead vs. interval |
//! | [`fig3`]   | Figure 3 — co-allocated objects vs. interval |
//! | [`fig4`]   | Figure 4 — L1 miss reduction with co-allocation |
//! | [`fig5`]   | Figure 5 — execution time across heap sizes |
//! | [`fig6`]   | Figure 6 — GenCopy vs. GenMS+co-allocation on `db` |
//! | [`fig7`]   | Figure 7 — per-field miss series for `db` |
//! | [`fig8`]   | Figure 8 — bad placement detected and reverted |
//! | [`ablations`] | beyond the paper: map extension, event choice, prefetcher |
//! | [`warmstart`] | beyond the paper: profile-repository warm start on `db` |
//! | [`trajectory`] | beyond the paper: perf-trajectory baseline + CI gate |
//!
//! # Scaling
//!
//! The paper's programs run for minutes on a 3 GHz machine (~10¹¹ cycles
//! and ~10⁹ cache misses); the simulated workloads run for ~10⁸ cycles
//! with ~10⁶ misses. All sampling parameters are therefore scaled to keep
//! *samples per run* proportional: the paper's 25 K / 50 K / 100 K event
//! intervals map to 2 K / 4 K / 8 K here, and the auto mode targets
//! proportionally more samples per simulated second. `EXPERIMENTS.md` at
//! the repository root records this mapping alongside the measured
//! results.

pub mod ablations;
pub mod export;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fmt;
pub mod setup;
pub mod table1;
pub mod table2;
pub mod trajectory;
pub mod warmstart;

/// The simulated-scale sampling intervals standing in for the paper's
/// 25 K / 50 K / 100 K, with their display labels.
pub const INTERVALS: [(u64, &str); 3] = [(2048, "25K"), (4096, "50K"), (8192, "100K")];

/// Heap-size multipliers used by the heap sweeps (Figures 5 and 6).
pub const HEAP_MULTS: [(u64, u64, &str); 5] = [
    (1, 1, "1x"),
    (3, 2, "1.5x"),
    (2, 1, "2x"),
    (3, 1, "3x"),
    (4, 1, "4x"),
];
