//! Ablation studies beyond the paper's figures.
//!
//! Three design points the paper argues for in prose get measured here:
//! the full machine-code maps (Section 4.2's compiler extension), the
//! choice of sampled event (Section 6.3 notes TLB-driven decisions do
//! not help jbb), and the hardware prefetcher's role in the streaming
//! programs' immunity.

use hpmopt_gc::CollectorKind;
use hpmopt_memsim::EventKind;
use hpmopt_workloads::{by_name, Size};

use crate::{fmt, setup};

/// Ablation 1 — full MC maps vs. stock GC-point-only maps, on `db`.
///
/// Without the extension, samples landing between GC points cannot be
/// attributed; the policy starves and co-allocation collapses.
#[must_use]
pub fn maps(size: Size) -> String {
    let w = by_name("db", size).expect("db exists");
    let mut rows = Vec::new();
    for full in [true, false] {
        let heap = setup::heap_config(&w, 4, 1, CollectorKind::GenMs);
        let mut cfg = setup::run_config(&w, size, heap, setup::auto_interval(), true);
        cfg.vm.full_mcmaps = full;
        let r = setup::run(&w, cfg);
        let a = r.attribution;
        rows.push(vec![
            if full {
                "full maps (paper)"
            } else {
                "GC points only"
            }
            .to_string(),
            a.total().to_string(),
            a.unmapped.to_string(),
            fmt::pct(a.attribution_rate()),
            r.vm.gc.objects_coallocated.to_string(),
            r.vm.mem.l1_misses.to_string(),
        ]);
    }
    let mut out = String::from(
        "Ablation 1: the machine-code-map extension (db, heap = 4x, auto interval).\n\n",
    );
    out.push_str(&fmt::table(
        &[
            "opt-tier maps",
            "samples",
            "unmapped",
            "attributed",
            "coallocated",
            "L1 misses",
        ],
        &rows,
    ));
    out
}

/// Ablation 2 — which hardware event drives the policy, on `db`.
#[must_use]
pub fn events(size: Size) -> String {
    let w = by_name("db", size).expect("db exists");
    let heap = setup::heap_config(&w, 4, 1, CollectorKind::GenMs);
    let base = setup::baseline_report(&w, size, 4, 1);
    let mut rows = Vec::new();
    for event in EventKind::all() {
        let mut cfg = setup::run_config(&w, size, heap.clone(), setup::auto_interval(), true);
        cfg.hpm.event = event;
        let r = setup::run(&w, cfg);
        rows.push(vec![
            event.to_string(),
            r.hpm.events.to_string(),
            r.vm.gc.objects_coallocated.to_string(),
            fmt::pct_change(r.vm.mem.l1_misses as f64 / base.vm.mem.l1_misses as f64),
            fmt::pct_change(r.cycles as f64 / base.cycles as f64),
        ]);
    }
    let mut out = String::from(
        "Ablation 2: the event driving co-allocation (db, heap = 4x, auto interval).\n\n",
    );
    out.push_str(&fmt::table(
        &[
            "event",
            "events seen",
            "coallocated",
            "L1 miss change",
            "time change",
        ],
        &rows,
    ));
    out.push_str("\n(the paper notes TLB-driven decisions do not beat L1-driven ones)\n");
    out
}

/// Ablation 3 — the stream prefetcher's contribution, on `compress` (the
/// streaming program it shields) and `db` (pointer chasing it cannot
/// help).
#[must_use]
pub fn prefetch(size: Size) -> String {
    let mut rows = Vec::new();
    for name in ["compress", "db"] {
        let w = by_name(name, size).expect("workload exists");
        for pf in [true, false] {
            let heap = setup::heap_config(&w, 4, 1, CollectorKind::GenMs);
            let mut cfg =
                setup::run_config(&w, size, heap, hpmopt_hpm::SamplingInterval::Off, false);
            if !pf {
                cfg.vm.mem = cfg.vm.mem.without_prefetch();
            }
            let r = setup::run(&w, cfg);
            rows.push(vec![
                format!(
                    "{name} ({})",
                    if pf { "prefetch on" } else { "prefetch off" }
                ),
                r.cycles.to_string(),
                r.vm.mem.l2_misses.to_string(),
                r.vm.mem.prefetches.to_string(),
            ]);
        }
    }
    let mut out = String::from("Ablation 3: the hardware stream prefetcher.\n\n");
    out.push_str(&fmt::table(
        &["configuration", "cycles", "L2 misses", "prefetches"],
        &rows,
    ));
    out.push_str(
        "\n(streaming programs lean on the prefetcher; pointer chasing cannot — which is why\nco-allocation, not prefetching, is the lever for db-like programs)\n",
    );
    out
}

/// All three ablations.
#[must_use]
pub fn run(size: Size) -> String {
    let mut out = maps(size);
    out.push('\n');
    out.push_str(&events(size));
    out.push('\n');
    out.push_str(&prefetch(size));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gc_point_maps_starve_attribution() {
        let text = maps(Size::Tiny);
        // The rendered table carries the numbers; assert the mechanism
        // via a direct comparison.
        let w = by_name("db", Size::Tiny).unwrap();
        let heap = setup::heap_config(&w, 4, 1, CollectorKind::GenMs);
        let mut full =
            setup::run_config(&w, Size::Tiny, heap.clone(), setup::auto_interval(), true);
        full.vm.full_mcmaps = true;
        let mut stock = setup::run_config(&w, Size::Tiny, heap, setup::auto_interval(), true);
        stock.vm.full_mcmaps = false;
        let rf = setup::run(&w, full);
        let rs = setup::run(&w, stock);
        assert!(rs.attribution.unmapped > 0, "stock maps must drop samples");
        assert!(
            rs.attribution.attributed < rf.attribution.attributed,
            "extension must attribute more: {:?} vs {:?}",
            rs.attribution,
            rf.attribution
        );
        assert!(text.contains("GC points only"));
    }

    #[test]
    fn prefetcher_absorbs_streaming_misses() {
        let w = by_name("compress", Size::Tiny).unwrap();
        let heap = setup::heap_config(&w, 4, 1, CollectorKind::GenMs);
        let on = setup::run_config(
            &w,
            Size::Tiny,
            heap.clone(),
            hpmopt_hpm::SamplingInterval::Off,
            false,
        );
        let mut off = setup::run_config(
            &w,
            Size::Tiny,
            heap,
            hpmopt_hpm::SamplingInterval::Off,
            false,
        );
        off.vm.mem = off.vm.mem.without_prefetch();
        let r_on = setup::run(&w, on);
        let r_off = setup::run(&w, off);
        assert!(
            r_on.vm.mem.l2_misses < r_off.vm.mem.l2_misses,
            "prefetcher must absorb L2 misses: {} vs {}",
            r_on.vm.mem.l2_misses,
            r_off.vm.mem.l2_misses
        );
        assert!(r_on.cycles < r_off.cycles);
    }
}
