//! Shared run-configuration and plan-caching machinery.

use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::OnceLock;

use hpmopt_core::runtime::{HpmRuntime, RunConfig, RunReport};
use hpmopt_gc::{CollectorKind, HeapConfig};
use hpmopt_hpm::{HpmConfig, SamplingInterval};
use hpmopt_vm::{CompilationPlan, VmConfig};
use hpmopt_workloads::{Size, Workload};

/// The monitoring clock at simulation scale. The paper's collector
/// thread polls every 10-1000 ms of a minutes-long run; our runs are four
/// orders of magnitude shorter, so the monitoring stack is told the CPU
/// runs at 100 MHz, which scales the poll periods (and auto-mode rate
/// conversion) to the simulated run lengths while keeping the algorithms
/// untouched.
pub const MONITOR_CPU_HZ: u64 = 100_000_000;

/// The auto-mode sample-rate target at simulation scale (see the
/// crate-level scaling note): ~10 samples per simulated 10 ms poll.
pub const AUTO_TARGET_PER_SEC: u64 = 1_000;

/// Kernel sample-buffer capacity at simulation scale (the paper's 80 KB /
/// 2000-sample buffer scaled to the smaller sample volume).
pub const BUFFER_CAPACITY: usize = 256;

fn plan_cache() -> &'static Mutex<HashMap<(String, Size), CompilationPlan>> {
    static CACHE: OnceLock<Mutex<HashMap<(String, Size), CompilationPlan>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The pseudo-adaptive compilation plan for a workload: generated once by
/// a profiling run with the timer-driven AOS (Section 6.1's
/// "pre-generated compilation plan"), then cached for the process.
#[must_use]
pub fn plan_for(w: &Workload, size: Size) -> CompilationPlan {
    let key = (w.name.to_string(), size);
    if let Some(p) = plan_cache().lock().unwrap().get(&key) {
        return p.clone();
    }
    let mut vm = VmConfig {
        heap: heap_config(w, 4, 1, CollectorKind::GenMs),
        ..VmConfig::default()
    };
    // A tight tier-1 timer so even the short simulated runs promote
    // their hot methods to the optimizing tier, as the paper's long
    // runs do.
    vm.jit.sample_period_cycles = 200_000;
    vm.jit.tier1_threshold = 2;
    let mut plan = HpmRuntime::generate_plan(&w.program, vm).expect("plan profiling run completes");
    // The entry method drives every workload; guarantee it is in the plan
    // even if the profiling run spent most samples in callees.
    if !plan.contains(w.program.entry()) {
        let mut methods = plan.methods().to_vec();
        methods.push(w.program.entry());
        plan = CompilationPlan::new(methods);
    }
    plan_cache().lock().unwrap().insert(key, plan.clone());
    plan
}

/// Heap configuration for a workload at `num/den ×` its minimum heap.
#[must_use]
pub fn heap_config(w: &Workload, num: u64, den: u64, collector: CollectorKind) -> HeapConfig {
    HeapConfig {
        heap_bytes: w.min_heap_bytes * num / den,
        nursery_bytes: 256 * 1024,
        los_bytes: 64 * 1024 * 1024,
        collector,
        ..Default::default()
    }
}

/// Full run configuration for one experiment cell.
#[must_use]
pub fn run_config(
    w: &Workload,
    size: Size,
    heap: HeapConfig,
    sampling: SamplingInterval,
    coalloc: bool,
) -> RunConfig {
    let mut vm = VmConfig {
        heap,
        plan: Some(plan_for(w, size)),
        step_limit: Some(3_000_000_000),
        ..VmConfig::default()
    };
    vm.jit.tier1_enabled = false;
    RunConfig {
        vm,
        hpm: HpmConfig {
            interval: sampling,
            buffer_capacity: BUFFER_CAPACITY,
            cpu_hz: MONITOR_CPU_HZ,
            ..HpmConfig::default()
        },
        coalloc,
        policy: hpmopt_core::policy::PolicyConfig {
            // Sample volume is ~10^3 smaller than the paper's; the
            // decision threshold scales with it.
            min_field_misses: 4,
        },
        ..RunConfig::default()
    }
}

/// The auto sampling mode at simulation scale.
#[must_use]
pub fn auto_interval() -> SamplingInterval {
    SamplingInterval::Auto {
        target_per_sec: AUTO_TARGET_PER_SEC,
    }
}

/// Execute one configured run.
///
/// # Panics
///
/// Panics if the workload fails (experiment configurations are sized to
/// succeed; a failure is a harness bug worth crashing on).
#[must_use]
pub fn run(w: &Workload, config: RunConfig) -> RunReport {
    HpmRuntime::new(config)
        .run(&w.program)
        .unwrap_or_else(|e| panic!("workload {} failed: {e}", w.name))
}

/// Convenience: the unmonitored GenMS baseline the figures normalize to.
#[must_use]
pub fn baseline_report(w: &Workload, size: Size, num: u64, den: u64) -> RunReport {
    let heap = heap_config(w, num, den, CollectorKind::GenMs);
    let cfg = run_config(w, size, heap, SamplingInterval::Off, false);
    run(w, cfg)
}

/// Digest cache key: workload name + size + heap fraction.
type DigestKey = (String, Size, u64, u64);

fn digest_cache() -> &'static Mutex<HashMap<DigestKey, u64>> {
    static CACHE: OnceLock<Mutex<HashMap<DigestKey, u64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Placement-independent state digest of the *unmonitored* run at this
/// heap point, cached per process. Monitored runs of the same workload
/// and heap must reproduce it exactly — the zero-perturbation oracle
/// the stress engine checks per seed and the serve bench checks per
/// job.
#[must_use]
pub fn baseline_digest(w: &Workload, size: Size, num: u64, den: u64) -> u64 {
    let key = (w.name.to_string(), size, num, den);
    if let Some(&d) = digest_cache().lock().unwrap().get(&key) {
        return d;
    }
    let d = baseline_report(w, size, num, den).result_digest;
    digest_cache().lock().unwrap().insert(key, d);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmopt_workloads::by_name;

    #[test]
    fn plans_are_cached_and_contain_entry() {
        let w = by_name("fop", Size::Tiny).unwrap();
        let a = plan_for(&w, Size::Tiny);
        let b = plan_for(&w, Size::Tiny);
        assert_eq!(a, b);
        assert!(a.contains(w.program.entry()));
    }

    #[test]
    fn baseline_runs() {
        let w = by_name("fop", Size::Tiny).unwrap();
        let r = baseline_report(&w, Size::Tiny, 4, 1);
        assert!(r.cycles > 0);
        assert_eq!(r.hpm.samples, 0, "baseline is unmonitored");
    }
}
