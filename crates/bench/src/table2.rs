//! Table 2 — space overhead: size of machine-code maps.
//!
//! The paper measures, per program, the machine-code bytes the compilers
//! emitted, the stock GC-map bytes, and the bytes of the extended
//! machine-code maps (an entry per instruction). The headline: MC maps
//! are 4–5× the GC maps, but small in absolute terms.

use hpmopt_workloads::{all, Size, Workload};

use crate::{fmt, setup};

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Program name.
    pub program: String,
    /// Machine-code bytes of all compiled methods.
    pub machine_code: u64,
    /// GC-map bytes.
    pub gc_maps: u64,
    /// Machine-code-map bytes.
    pub mc_maps: u64,
}

/// Measure every workload.
#[must_use]
pub fn measure(ws: &[Workload], size: Size) -> Vec<Row> {
    ws.iter()
        .map(|w| {
            let report = setup::baseline_report(w, size, 4, 1);
            Row {
                program: w.name.to_string(),
                machine_code: report.vm.total_machine_code_bytes(),
                gc_maps: report.vm.total_gc_map_bytes(),
                mc_maps: report.vm.total_mc_map_bytes(),
            }
        })
        .collect()
}

/// Render the table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.program.clone(),
                format!("{:.1}", r.machine_code as f64 / 1024.0),
                format!("{:.1}", r.gc_maps as f64 / 1024.0),
                format!("{:.1}", r.mc_maps as f64 / 1024.0),
                format!("{:.1}x", r.mc_maps as f64 / r.gc_maps.max(1) as f64),
            ]
        })
        .collect();
    let mut out = String::from("Table 2: Space overhead — size of machine code and maps (KB).\n\n");
    out.push_str(&fmt::table(
        &["program", "machine code", "GC maps", "MC maps", "MC/GC"],
        &data,
    ));
    out
}

/// Run and render.
#[must_use]
pub fn run(size: Size) -> String {
    render(&measure(&all(size), size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmopt_workloads::by_name;

    #[test]
    fn maps_are_several_times_gc_maps_and_jython_is_largest() {
        let ws = vec![
            by_name("fop", Size::Tiny).unwrap(),
            by_name("jython", Size::Tiny).unwrap(),
        ];
        let rows = measure(&ws, Size::Tiny);
        for r in &rows {
            assert!(r.mc_maps > 2 * r.gc_maps, "{}: {:?}", r.program, r);
            assert!(r.machine_code > 0);
        }
        // jython's generated handlers dominate fop (the paper's extremes).
        assert!(rows[1].machine_code > 5 * rows[0].machine_code);
        assert!(rows[1].mc_maps > 5 * rows[0].mc_maps);
    }
}
