//! Performance trajectory: fixed workload + stress-shard measurements,
//! a committable JSON baseline, and the regression gate behind
//! `hpmopt-bench --check`.
//!
//! The trajectory records, for a fixed set of workloads, the simulated
//! cycle cost of three arms — unmonitored baseline, monitored with
//! telemetry disabled, monitored with telemetry enabled — plus a pinned
//! *tiered* row ([`TIERED_WORKLOAD`] rerun with tier-2 region
//! compilation and a deliberately tiny code cache, so
//! compile/deopt/eviction churn is gated like any other cycle cost) and
//! a pinned stress-seed shard
//! whose per-seed cycle counts come straight from the shard runner's
//! summary data. Simulated cycles are deterministic, so
//! the committed baseline (`BENCH_trajectory.json`) only changes when
//! the code's cost model actually changes; wall time is recorded for
//! context but never gated on.
//!
//! Two invariants are enforced at measurement time and again by
//! [`compare`]:
//!
//! 1. **Zero perturbation**: the telemetry-enabled and telemetry-off
//!    monitored runs must land on the same cycle, always.
//! 2. **No silent drift**: per-seed stress digests must match the
//!    baseline byte for byte; a digest change is a behavior change and
//!    requires a deliberate `--update`.

use std::time::Instant;

use hpmopt_gc::CollectorKind;
use hpmopt_hpm::SamplingInterval;
use hpmopt_stress::{run_shards, RunnerConfig};
use hpmopt_telemetry::json::JsonWriter;
use hpmopt_telemetry::read::{self, Value};
use hpmopt_telemetry::{Telemetry, DEFAULT_TRACE_CAPACITY};
use hpmopt_workloads::{by_name, Size};

use crate::setup::{auto_interval, heap_config, run, run_config};

/// The fixed workload set a default trajectory measures.
pub const DEFAULT_WORKLOADS: [&str; 3] = ["db", "fop", "jess"];

/// Seeds in the pinned stress shard of a default trajectory.
pub const DEFAULT_STRESS_SEEDS: u64 = 6;

/// The workload behind the pinned tiered-churn row. `jython`
/// specifically: at ~4.5 KB of baseline code over eleven methods it is
/// the only tiny workload whose working set genuinely fights for a
/// sub-footprint cache — three-method workloads reuse their own freed
/// ranges and never evict a neighbour.
pub const TIERED_WORKLOAD: &str = "jython";

/// One workload's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPoint {
    /// Workload name (`hpmopt_workloads::by_name`).
    pub name: String,
    /// Workload size the run used.
    pub size: String,
    /// Simulated cycles of the monitored, telemetry-enabled run — the
    /// gated quantity.
    pub cycles: u64,
    /// Simulated cycles of the unmonitored baseline run.
    pub baseline_cycles: u64,
    /// Bytecodes the monitored run executed.
    pub bytecodes: u64,
    /// Bytecodes per simulated kilocycle of the monitored run.
    pub throughput_bc_per_kcycle: f64,
    /// Cycles the hooks charged for monitoring work, as a percentage of
    /// the unmonitored baseline. Computed from the VM's own
    /// `monitor_cycles` counter, so it is non-negative by construction —
    /// co-allocation savings land in
    /// [`WorkloadPoint::optimization_delta_pct`] instead of silently
    /// offsetting this figure.
    pub monitoring_overhead_pct: f64,
    /// Net monitored-minus-baseline cycle delta relative to the
    /// baseline, in percent: monitoring overhead and optimization wins
    /// combined (negative when co-allocation wins back more than
    /// monitoring costs).
    pub optimization_delta_pct: f64,
    /// Cycle delta between the telemetry-enabled and telemetry-off
    /// monitored runs, in percent. Must be exactly zero.
    pub perturbation_delta_pct: f64,
    /// L1 demand misses of the monitored run.
    pub l1_misses: u64,
    /// Wall-clock milliseconds of the telemetry-enabled run.
    /// Informational only: never fingerprinted, never gated.
    pub wall_ms: u64,
}

/// One stress seed's measurement, lifted from the shard runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StressPoint {
    /// Scenario seed.
    pub seed: u64,
    /// Arm-A (interpreter, unmonitored) simulated cycles.
    pub cycles: u64,
    /// Arm-D (monitored, co-allocating) simulated cycles — the gated
    /// quantity.
    pub monitored_cycles: u64,
    /// Arm-A state digest; any change is a behavior change.
    pub digest: u64,
}

/// One open-loop serve-bench measurement: the scale-out row of the
/// trajectory. Produced by `hpmopt_serve::openloop` (the serve crate
/// depends on this one, so the measurement function lives there and the
/// root `hpmopt-bench` binary attaches the row); this crate owns the
/// schema and the gate.
#[derive(Debug, Clone, PartialEq)]
pub struct ServePoint {
    /// Row name (`"openloop"` for the pinned default run).
    pub name: String,
    /// Jobs the open-loop generator paced in.
    pub jobs: u64,
    /// Arrival rate in queries per second of simulated time.
    pub qps: u64,
    /// Completed jobs per second of simulated time with one virtual
    /// worker.
    pub throughput_1w_jobs_per_sec: f64,
    /// Completed jobs per second of simulated time with four virtual
    /// workers. Must be strictly above the 1-worker figure: if adding
    /// workers stops helping, the scheduler has regressed.
    pub throughput_4w_jobs_per_sec: f64,
    /// Queue-wait percentiles (simulated cycles) under tenant-fair
    /// dispatch at four virtual workers.
    pub p50_queue_wait_cycles: u64,
    /// 95th percentile queue wait (simulated cycles).
    pub p95_queue_wait_cycles: u64,
    /// 99th percentile queue wait (simulated cycles) — the gated tail.
    pub p99_queue_wait_cycles: u64,
    /// 99th percentile service time (simulated cycles).
    pub p99_service_cycles: u64,
    /// Profiles evicted by the bounded repository during the run. Exact
    /// (deterministic): any drift is a behavior change.
    pub repo_evictions: u64,
    /// Completed jobs whose digest deviated from the unmonitored
    /// baseline. Must be zero.
    pub perturbation_deltas: u64,
    /// Wall-clock milliseconds of the run. Informational only.
    pub wall_ms: u64,
}

/// A full trajectory: the committable measurement set.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Per-workload points, in measurement order.
    pub workloads: Vec<WorkloadPoint>,
    /// Per-seed stress points, in seed order.
    pub stress: Vec<StressPoint>,
    /// Open-loop serve-bench rows. [`measure`] leaves this empty — the
    /// root `hpmopt-bench` binary attaches it from
    /// `hpmopt_serve::openloop` (dependency direction: serve depends on
    /// this crate).
    pub serve: Vec<ServePoint>,
}

fn delta_pct(current: u64, reference: u64) -> f64 {
    if reference == 0 {
        return 0.0;
    }
    (current as f64 - reference as f64) / reference as f64 * 100.0
}

/// Measure one workload at `size`: unmonitored baseline, then the two
/// monitored arms (telemetry off, telemetry on).
///
/// # Panics
///
/// Panics on unknown workload names and when the telemetry-enabled run
/// lands on a different cycle than the telemetry-off control — that is
/// the zero-perturbation invariant failing, which must never reach a
/// baseline file.
#[must_use]
pub fn measure_workload(name: &str, size: Size) -> WorkloadPoint {
    let w = by_name(name, size).unwrap_or_else(|| panic!("unknown workload `{name}`"));
    let heap = heap_config(&w, 2, 1, CollectorKind::GenMs);

    let baseline = run(
        &w,
        run_config(&w, size, heap.clone(), SamplingInterval::Off, false),
    );
    let control = run(
        &w,
        run_config(&w, size, heap.clone(), auto_interval(), true),
    );
    let mut enabled_cfg = run_config(&w, size, heap, auto_interval(), true);
    enabled_cfg.telemetry = Telemetry::enabled(DEFAULT_TRACE_CAPACITY);
    let started = Instant::now();
    let enabled = run(&w, enabled_cfg);
    let wall_ms = started.elapsed().as_millis() as u64;

    let perturbation = delta_pct(enabled.cycles, control.cycles);
    assert!(
        perturbation == 0.0,
        "telemetry perturbed {name}: {} cycles enabled vs {} disabled",
        enabled.cycles,
        control.cycles
    );
    WorkloadPoint {
        name: w.name.to_string(),
        size: size.to_string(),
        cycles: enabled.cycles,
        baseline_cycles: baseline.cycles,
        bytecodes: enabled.vm.bytecodes_executed,
        throughput_bc_per_kcycle: enabled.vm.bytecodes_executed as f64 * 1000.0
            / enabled.cycles as f64,
        monitoring_overhead_pct: if baseline.cycles == 0 {
            0.0
        } else {
            enabled.vm.monitor_cycles as f64 / baseline.cycles as f64 * 100.0
        },
        optimization_delta_pct: delta_pct(enabled.cycles, baseline.cycles),
        perturbation_delta_pct: perturbation,
        l1_misses: enabled.vm.mem.l1_misses,
        wall_ms,
    }
}

/// Measure the tiered-churn arm of one workload: no pre-generated plan —
/// timer-driven tier-1 promotion, back-edge-driven tier-2 region
/// compilation, and a code cache far smaller than the workload's code
/// footprint, so eviction and address-range reuse run continuously under
/// monitoring. The point is recorded as `<name>+tiered` so it gates
/// independently of the pseudo-adaptive row.
///
/// # Panics
///
/// Panics on unknown workload names, on telemetry perturbation, when
/// tier churn changes the program-visible end state (digest mismatch
/// against the unmonitored baseline), and when the tiny cache fails to
/// evict (the row would silently stop measuring churn).
#[must_use]
pub fn measure_workload_tiered(name: &str, size: Size) -> WorkloadPoint {
    let w = by_name(name, size).unwrap_or_else(|| panic!("unknown workload `{name}`"));
    let heap = heap_config(&w, 2, 1, CollectorKind::GenMs);

    let baseline = run(
        &w,
        run_config(&w, size, heap.clone(), SamplingInterval::Off, false),
    );
    let tiered_cfg = |sampling| {
        let mut cfg = run_config(&w, size, heap.clone(), sampling, true);
        cfg.vm.plan = None;
        cfg.vm.jit.tier1_enabled = true;
        cfg.vm.jit.sample_period_cycles = 200_000;
        cfg.vm.jit.tier1_threshold = 2;
        cfg.vm.jit.tier2_enabled = true;
        cfg.vm.jit.tier2_threshold = 64;
        // Well under the workload's code footprint: every compile must
        // fight for space, so eviction and range reuse run constantly.
        cfg.vm.jit.code_cache_capacity_bytes = Some(512);
        cfg
    };
    let control = run(&w, tiered_cfg(auto_interval()));
    let mut enabled_cfg = tiered_cfg(auto_interval());
    enabled_cfg.telemetry = Telemetry::enabled(DEFAULT_TRACE_CAPACITY);
    let started = Instant::now();
    let enabled = run(&w, enabled_cfg);
    let wall_ms = started.elapsed().as_millis() as u64;

    let perturbation = delta_pct(enabled.cycles, control.cycles);
    assert!(
        perturbation == 0.0,
        "telemetry perturbed tiered {name}: {} cycles enabled vs {} disabled",
        enabled.cycles,
        control.cycles
    );
    assert_eq!(
        enabled.result_digest, baseline.result_digest,
        "tier churn changed {name}'s program-visible state"
    );
    assert!(
        enabled.vm.code_evictions > 0,
        "tiered {name}: the tiny code cache produced no evictions"
    );
    WorkloadPoint {
        name: format!("{name}+tiered"),
        size: size.to_string(),
        cycles: enabled.cycles,
        baseline_cycles: baseline.cycles,
        bytecodes: enabled.vm.bytecodes_executed,
        throughput_bc_per_kcycle: enabled.vm.bytecodes_executed as f64 * 1000.0
            / enabled.cycles as f64,
        monitoring_overhead_pct: if baseline.cycles == 0 {
            0.0
        } else {
            enabled.vm.monitor_cycles as f64 / baseline.cycles as f64 * 100.0
        },
        optimization_delta_pct: delta_pct(enabled.cycles, baseline.cycles),
        perturbation_delta_pct: perturbation,
        l1_misses: enabled.vm.mem.l1_misses,
        wall_ms,
    }
}

/// Measure a full trajectory: every named workload at `size`, the
/// pinned [`TIERED_WORKLOAD`] tiered-churn row, then the pinned stress
/// shard `0..seeds`.
///
/// # Panics
///
/// Panics when a stress seed fails its oracles — a failing seed has no
/// meaningful cost to record, and the stress suite (not the perf gate)
/// is the place to debug it.
#[must_use]
pub fn measure(workloads: &[String], size: Size, seeds: u64) -> Trajectory {
    let mut points: Vec<WorkloadPoint> = workloads
        .iter()
        .map(|name| measure_workload(name, size))
        .collect();
    points.push(measure_workload_tiered(TIERED_WORKLOAD, size));
    let shard = run_shards(&RunnerConfig {
        start_seed: 0,
        seeds,
        workers: 1,
        time_budget: None,
        fault_skip_zeroing: false,
    });
    let stress = shard
        .outcomes
        .iter()
        .map(|o| {
            assert!(
                o.pass,
                "stress seed {} failed its oracles: {:?}",
                o.scenario.seed, o.failures
            );
            StressPoint {
                seed: o.scenario.seed,
                cycles: o.cycles,
                monitored_cycles: o.monitored_cycles,
                digest: o.digest,
            }
        })
        .collect();
    Trajectory {
        workloads: points,
        stress,
        serve: Vec::new(),
    }
}

impl Trajectory {
    /// Serialize to the committed-baseline JSON format. Deterministic
    /// except for the explicitly informational `wall_ms` fields.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("version", 3);
        w.key("workloads").array_value();
        for p in &self.workloads {
            w.begin_object();
            w.field_str("workload", &p.name);
            w.field_str("size", &p.size);
            w.field_u64("cycles", p.cycles);
            w.field_u64("baseline_cycles", p.baseline_cycles);
            w.field_u64("bytecodes", p.bytecodes);
            w.field_f64("throughput_bc_per_kcycle", p.throughput_bc_per_kcycle);
            w.field_f64("monitoring_overhead_pct", p.monitoring_overhead_pct);
            w.field_f64("optimization_delta_pct", p.optimization_delta_pct);
            w.field_f64("perturbation_delta_pct", p.perturbation_delta_pct);
            w.field_u64("l1_misses", p.l1_misses);
            w.field_u64("wall_ms", p.wall_ms);
            w.end_object();
        }
        w.end_array();
        w.key("stress").array_value();
        for p in &self.stress {
            w.begin_object();
            w.field_u64("seed", p.seed);
            w.field_u64("cycles", p.cycles);
            w.field_u64("monitored_cycles", p.monitored_cycles);
            // Digests use the full u64 range; a JSON number would round
            // through f64, so they travel as hex strings.
            w.field_str("digest", &format!("{:#018x}", p.digest));
            w.end_object();
        }
        w.end_array();
        w.key("serve").array_value();
        for p in &self.serve {
            w.begin_object();
            w.field_str("name", &p.name);
            w.field_u64("jobs", p.jobs);
            w.field_u64("qps", p.qps);
            w.field_f64("throughput_1w_jobs_per_sec", p.throughput_1w_jobs_per_sec);
            w.field_f64("throughput_4w_jobs_per_sec", p.throughput_4w_jobs_per_sec);
            w.field_u64("p50_queue_wait_cycles", p.p50_queue_wait_cycles);
            w.field_u64("p95_queue_wait_cycles", p.p95_queue_wait_cycles);
            w.field_u64("p99_queue_wait_cycles", p.p99_queue_wait_cycles);
            w.field_u64("p99_service_cycles", p.p99_service_cycles);
            w.field_u64("repo_evictions", p.repo_evictions);
            w.field_u64("perturbation_deltas", p.perturbation_deltas);
            w.field_u64("wall_ms", p.wall_ms);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        let mut out = w.finish();
        out.push('\n');
        out
    }

    /// Parse a baseline produced by [`Trajectory::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed construct (parse errors
    /// carry a byte offset; structural errors name the field).
    pub fn parse(input: &str) -> Result<Trajectory, String> {
        let doc = read::parse(input)?;
        let version = need(&doc, "version")?.as_u64();
        if version != 3 {
            return Err(format!("unsupported trajectory version {version}"));
        }
        let mut workloads = Vec::new();
        for p in need(&doc, "workloads")?.as_array() {
            workloads.push(WorkloadPoint {
                name: need(p, "workload")?.as_str().to_string(),
                size: need(p, "size")?.as_str().to_string(),
                cycles: need(p, "cycles")?.as_u64(),
                baseline_cycles: need(p, "baseline_cycles")?.as_u64(),
                bytecodes: need(p, "bytecodes")?.as_u64(),
                throughput_bc_per_kcycle: need(p, "throughput_bc_per_kcycle")?.as_f64(),
                monitoring_overhead_pct: need(p, "monitoring_overhead_pct")?.as_f64(),
                optimization_delta_pct: need(p, "optimization_delta_pct")?.as_f64(),
                perturbation_delta_pct: need(p, "perturbation_delta_pct")?.as_f64(),
                l1_misses: need(p, "l1_misses")?.as_u64(),
                wall_ms: need(p, "wall_ms")?.as_u64(),
            });
        }
        let mut stress = Vec::new();
        for p in need(&doc, "stress")?.as_array() {
            let hex = need(p, "digest")?.as_str();
            let digit = hex
                .strip_prefix("0x")
                .ok_or_else(|| format!("digest {hex:?} is not 0x-prefixed"))?;
            stress.push(StressPoint {
                seed: need(p, "seed")?.as_u64(),
                cycles: need(p, "cycles")?.as_u64(),
                monitored_cycles: need(p, "monitored_cycles")?.as_u64(),
                digest: u64::from_str_radix(digit, 16)
                    .map_err(|e| format!("bad digest {hex:?}: {e}"))?,
            });
        }
        let mut serve = Vec::new();
        for p in need(&doc, "serve")?.as_array() {
            serve.push(ServePoint {
                name: need(p, "name")?.as_str().to_string(),
                jobs: need(p, "jobs")?.as_u64(),
                qps: need(p, "qps")?.as_u64(),
                throughput_1w_jobs_per_sec: need(p, "throughput_1w_jobs_per_sec")?.as_f64(),
                throughput_4w_jobs_per_sec: need(p, "throughput_4w_jobs_per_sec")?.as_f64(),
                p50_queue_wait_cycles: need(p, "p50_queue_wait_cycles")?.as_u64(),
                p95_queue_wait_cycles: need(p, "p95_queue_wait_cycles")?.as_u64(),
                p99_queue_wait_cycles: need(p, "p99_queue_wait_cycles")?.as_u64(),
                p99_service_cycles: need(p, "p99_service_cycles")?.as_u64(),
                repo_evictions: need(p, "repo_evictions")?.as_u64(),
                perturbation_deltas: need(p, "perturbation_deltas")?.as_u64(),
                wall_ms: need(p, "wall_ms")?.as_u64(),
            });
        }
        Ok(Trajectory {
            workloads,
            stress,
            serve,
        })
    }
}

fn need<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.try_get(key)
        .ok_or_else(|| format!("missing field {key:?}"))
}

/// Gate `current` against a committed `baseline`: returns one line per
/// violation (empty means the gate passes).
///
/// Cycle counts may regress up to `threshold_pct` percent before the
/// gate trips (improvements never trip it — commit a new baseline with
/// `--update` to bank them). Perturbation and stress digests have no
/// tolerance at all.
#[must_use]
pub fn compare(current: &Trajectory, baseline: &Trajectory, threshold_pct: f64) -> Vec<String> {
    let mut violations = Vec::new();
    let limit = |base: u64| base as f64 * (1.0 + threshold_pct / 100.0);

    for b in &baseline.workloads {
        let Some(c) = current
            .workloads
            .iter()
            .find(|c| c.name == b.name && c.size == b.size)
        else {
            violations.push(format!("workload {} ({}) not measured", b.name, b.size));
            continue;
        };
        if (c.cycles as f64) > limit(b.cycles) {
            violations.push(format!(
                "workload {} ({}): {} cycles vs baseline {} (+{:.2}% > +{threshold_pct}%)",
                c.name,
                c.size,
                c.cycles,
                b.cycles,
                delta_pct(c.cycles, b.cycles)
            ));
        }
        if c.perturbation_delta_pct != 0.0 {
            violations.push(format!(
                "workload {} ({}): telemetry perturbation {}% (must be exactly 0)",
                c.name, c.size, c.perturbation_delta_pct
            ));
        }
    }
    for b in &baseline.stress {
        let Some(c) = current.stress.iter().find(|c| c.seed == b.seed) else {
            violations.push(format!("stress seed {} not measured", b.seed));
            continue;
        };
        if c.digest != b.digest {
            violations.push(format!(
                "stress seed {}: digest {:#018x} != baseline {:#018x} (behavior change; \
                 re-baseline deliberately with --update)",
                b.seed, c.digest, b.digest
            ));
        }
        if (c.monitored_cycles as f64) > limit(b.monitored_cycles) {
            violations.push(format!(
                "stress seed {}: {} monitored cycles vs baseline {} (+{:.2}% > +{threshold_pct}%)",
                b.seed,
                c.monitored_cycles,
                b.monitored_cycles,
                delta_pct(c.monitored_cycles, b.monitored_cycles)
            ));
        }
    }
    for b in &baseline.serve {
        let Some(c) = current.serve.iter().find(|c| c.name == b.name) else {
            violations.push(format!("serve row {} not measured", b.name));
            continue;
        };
        if c.perturbation_deltas != 0 {
            violations.push(format!(
                "serve row {}: {} perturbation delta(s) (must be exactly 0)",
                c.name, c.perturbation_deltas
            ));
        }
        if c.repo_evictions != b.repo_evictions {
            violations.push(format!(
                "serve row {}: {} repo eviction(s) != baseline {} (behavior change; \
                 re-baseline deliberately with --update)",
                c.name, c.repo_evictions, b.repo_evictions
            ));
        }
        if (c.p99_queue_wait_cycles as f64) > limit(b.p99_queue_wait_cycles) {
            violations.push(format!(
                "serve row {}: p99 queue wait {} cycles vs baseline {} (+{:.2}% > +{threshold_pct}%)",
                c.name,
                c.p99_queue_wait_cycles,
                b.p99_queue_wait_cycles,
                delta_pct(c.p99_queue_wait_cycles, b.p99_queue_wait_cycles)
            ));
        }
        if c.throughput_4w_jobs_per_sec <= c.throughput_1w_jobs_per_sec {
            violations.push(format!(
                "serve row {}: 4-worker throughput {:.2} jobs/s not above 1-worker {:.2} \
                 (scaling regressed)",
                c.name, c.throughput_4w_jobs_per_sec, c.throughput_1w_jobs_per_sec
            ));
        }
        let floor = b.throughput_4w_jobs_per_sec * (1.0 - threshold_pct / 100.0);
        if c.throughput_4w_jobs_per_sec < floor {
            violations.push(format!(
                "serve row {}: 4-worker throughput {:.2} jobs/s vs baseline {:.2} \
                 ({:.2}% drop > {threshold_pct}%)",
                c.name,
                c.throughput_4w_jobs_per_sec,
                b.throughput_4w_jobs_per_sec,
                (b.throughput_4w_jobs_per_sec - c.throughput_4w_jobs_per_sec)
                    / b.throughput_4w_jobs_per_sec
                    * 100.0
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(name: &str, cycles: u64) -> WorkloadPoint {
        WorkloadPoint {
            name: name.to_string(),
            size: "tiny".to_string(),
            cycles,
            baseline_cycles: cycles - cycles / 10,
            bytecodes: 1000,
            throughput_bc_per_kcycle: 1000.0 * 1000.0 / cycles as f64,
            monitoring_overhead_pct: 11.1,
            optimization_delta_pct: -2.5,
            perturbation_delta_pct: 0.0,
            l1_misses: 42,
            wall_ms: 7,
        }
    }

    fn stress_point(seed: u64, monitored: u64) -> StressPoint {
        StressPoint {
            seed,
            cycles: monitored - 1,
            monitored_cycles: monitored,
            digest: 0xdead_beef_0000_0000 | seed,
        }
    }

    fn serve_point() -> ServePoint {
        ServePoint {
            name: "openloop".to_string(),
            jobs: 16,
            qps: 100,
            throughput_1w_jobs_per_sec: 10.0,
            throughput_4w_jobs_per_sec: 35.0,
            p50_queue_wait_cycles: 1_000,
            p95_queue_wait_cycles: 5_000,
            p99_queue_wait_cycles: 10_000,
            p99_service_cycles: 2_000_000,
            repo_evictions: 7,
            perturbation_deltas: 0,
            wall_ms: 9,
        }
    }

    fn sample() -> Trajectory {
        Trajectory {
            workloads: vec![point("db", 1_000_000), point("fop", 2_000_000)],
            stress: vec![stress_point(0, 500_000), stress_point(1, 600_000)],
            serve: vec![serve_point()],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let t = sample();
        let json = t.to_json();
        let back = Trajectory::parse(&json).expect("parses");
        assert_eq!(back, t);
        assert_eq!(back.to_json(), json, "serialization is idempotent");
    }

    #[test]
    fn identical_trajectories_pass_the_gate() {
        let t = sample();
        assert!(compare(&t, &t, 0.0).is_empty());
    }

    #[test]
    fn cycle_regressions_trip_beyond_the_threshold() {
        let base = sample();
        let mut cur = sample();
        cur.workloads[0].cycles = 1_040_000; // +4%
        assert!(compare(&cur, &base, 5.0).is_empty(), "within threshold");
        cur.workloads[0].cycles = 1_060_000; // +6%
        let v = compare(&cur, &base, 5.0);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("workload db"));
        // Improvements never trip.
        cur.workloads[0].cycles = 500_000;
        assert!(compare(&cur, &base, 5.0).is_empty());
    }

    #[test]
    fn stress_digest_and_cycle_drift_are_caught() {
        let base = sample();
        let mut cur = sample();
        cur.stress[1].digest ^= 1;
        cur.stress[0].monitored_cycles *= 2;
        let v = compare(&cur, &base, 5.0);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|l| l.contains("digest")));
        assert!(v.iter().any(|l| l.contains("monitored cycles")));
    }

    #[test]
    fn perturbation_and_missing_points_are_violations() {
        let base = sample();
        let mut cur = sample();
        cur.workloads[1].perturbation_delta_pct = 0.5;
        cur.stress.pop();
        cur.workloads.remove(0);
        let v = compare(&cur, &base, 100.0);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().any(|l| l.contains("not measured")));
        assert!(v.iter().any(|l| l.contains("perturbation")));
    }

    #[test]
    fn malformed_baselines_report_the_field() {
        assert!(Trajectory::parse("{").is_err());
        assert!(Trajectory::parse("{}").unwrap_err().contains("version"));
        let err =
            Trajectory::parse(r#"{"version": 2, "workloads": [], "stress": []}"#).unwrap_err();
        assert!(err.contains("version 2"), "pre-serve baselines are stale");
        let err = Trajectory::parse(
            r#"{"version": 3, "workloads": [], "stress": [{"seed": 0, "cycles": 1, "monitored_cycles": 1, "digest": "nope"}], "serve": []}"#,
        )
        .unwrap_err();
        assert!(err.contains("digest"));
        let err =
            Trajectory::parse(r#"{"version": 3, "workloads": [], "stress": []}"#).unwrap_err();
        assert!(err.contains("serve"), "the serve array is required");
    }

    #[test]
    fn serve_row_regressions_are_caught() {
        let base = sample();

        let mut cur = sample();
        cur.serve[0].perturbation_deltas = 1;
        cur.serve[0].repo_evictions += 1;
        cur.serve[0].p99_queue_wait_cycles = 12_000; // +20%
        let v = compare(&cur, &base, 5.0);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().any(|l| l.contains("perturbation")));
        assert!(v.iter().any(|l| l.contains("eviction")));
        assert!(v.iter().any(|l| l.contains("p99 queue wait")));

        // Scaling inversion: 4 workers no faster than 1.
        let mut cur = sample();
        cur.serve[0].throughput_4w_jobs_per_sec = cur.serve[0].throughput_1w_jobs_per_sec;
        let v = compare(&cur, &base, 50.0);
        assert!(v.iter().any(|l| l.contains("scaling regressed")), "{v:?}");

        // Throughput floor vs baseline.
        let mut cur = sample();
        cur.serve[0].throughput_4w_jobs_per_sec = 30.0; // -14% vs 35
        assert!(!compare(&cur, &base, 5.0).is_empty());
        assert!(compare(&cur, &base, 20.0).is_empty(), "within threshold");

        // Missing row.
        let mut cur = sample();
        cur.serve.clear();
        let v = compare(&cur, &base, 5.0);
        assert!(v.iter().any(|l| l.contains("not measured")), "{v:?}");
    }

    #[test]
    fn measured_trajectory_is_deterministic_and_gate_clean() {
        let names = vec!["fop".to_string()];
        let a = measure(&names, Size::Tiny, 2);
        let b = measure(&names, Size::Tiny, 2);
        assert_eq!(a.workloads[0].cycles, b.workloads[0].cycles);
        assert_eq!(a.workloads[1].name, "jython+tiered");
        assert_eq!(a.workloads[1].cycles, b.workloads[1].cycles);
        assert_eq!(a.workloads[1].perturbation_delta_pct, 0.0);
        assert_eq!(a.workloads[0].perturbation_delta_pct, 0.0);
        assert!(
            a.workloads[0].monitoring_overhead_pct >= 0.0,
            "monitoring overhead is non-negative by construction: {}",
            a.workloads[0].monitoring_overhead_pct
        );
        assert_eq!(a.stress, b.stress);
        assert!(a.stress.iter().all(|p| p.monitored_cycles > 0));
        assert!(compare(&a, &b, 0.0).is_empty());
    }
}
