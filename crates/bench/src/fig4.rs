//! Figure 4 — L1 cache-miss reduction with co-allocation (heap = 4× min).
//!
//! Expected shape (paper): noticeable reductions for jess, db, pseudojbb,
//! bloat, pmd — with db the largest (−28 % in the paper); little or no
//! effect elsewhere; compress/mpegaudio only show monitoring noise.

use hpmopt_gc::CollectorKind;
use hpmopt_workloads::{all, Size, Workload};

use crate::{fmt, setup};

/// One Figure 4 row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Program name.
    pub program: String,
    /// L1 misses without co-allocation (monitored baseline).
    pub misses_off: u64,
    /// L1 misses with co-allocation.
    pub misses_on: u64,
    /// Objects co-allocated.
    pub coallocated: u64,
}

impl Row {
    /// `misses_on / misses_off`.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.misses_on as f64 / self.misses_off.max(1) as f64
    }
}

/// Measure the given workloads.
#[must_use]
pub fn measure(ws: &[Workload], size: Size) -> Vec<Row> {
    ws.iter()
        .map(|w| {
            let heap = setup::heap_config(w, 4, 1, CollectorKind::GenMs);
            let off_cfg = setup::run_config(w, size, heap.clone(), setup::auto_interval(), false);
            let on_cfg = setup::run_config(w, size, heap, setup::auto_interval(), true);
            let off = setup::run(w, off_cfg);
            let on = setup::run(w, on_cfg);
            Row {
                program: w.name.to_string(),
                misses_off: off.vm.mem.l1_misses,
                misses_on: on.vm.mem.l1_misses,
                coallocated: on.vm.gc.objects_coallocated,
            }
        })
        .collect()
}

/// Render the figure as a table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.program.clone(),
                r.misses_off.to_string(),
                r.misses_on.to_string(),
                fmt::pct_change(r.ratio()),
                r.coallocated.to_string(),
            ]
        })
        .collect();
    let mut out = String::from(
        "Figure 4: L1 miss reduction with co-allocated objects (heap = 4x min, auto interval).\n\n",
    );
    out.push_str(&fmt::table(
        &[
            "program",
            "L1 misses (off)",
            "L1 misses (on)",
            "change",
            "coallocated",
        ],
        &data,
    ));
    out
}

/// Run and render over all workloads.
#[must_use]
pub fn run(size: Size) -> String {
    render(&measure(&all(size), size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmopt_workloads::by_name;

    #[test]
    fn db_reduces_misses_most() {
        let ws = vec![
            by_name("db", Size::Tiny).unwrap(),
            by_name("compress", Size::Tiny).unwrap(),
        ];
        let rows = measure(&ws, Size::Tiny);
        assert!(
            rows[0].ratio() < 0.95,
            "db must lose ≥5% of its L1 misses: {:?}",
            rows[0]
        );
        assert!(
            (rows[1].ratio() - 1.0).abs() < 0.05,
            "compress is unaffected: {:?}",
            rows[1]
        );
    }
}
