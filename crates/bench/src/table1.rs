//! Table 1 — the benchmark programs.

use hpmopt_workloads::{all, Size, Workload};

use crate::fmt;

/// Render Table 1.
#[must_use]
pub fn run(size: Size) -> String {
    let ws = all(size);
    render(&ws)
}

/// Render the table for an explicit workload set.
#[must_use]
pub fn render(ws: &[Workload]) -> String {
    let rows: Vec<Vec<String>> = ws
        .iter()
        .map(|w| {
            vec![
                w.name.to_string(),
                w.suite.to_string(),
                format!("{} KB", w.min_heap_bytes / 1024),
                w.description.to_string(),
            ]
        })
        .collect();
    let mut out = String::from("Table 1: Benchmark programs.\n\n");
    out.push_str(&fmt::table(
        &["program", "suite", "min heap", "models"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_all_sixteen() {
        let t = run(Size::Tiny);
        for name in hpmopt_workloads::names() {
            assert!(t.contains(name), "missing {name}");
        }
        assert!(t.contains("SPECjvm98"));
        assert!(t.contains("DaCapo"));
    }
}
