//! Figure 3 — number of co-allocated objects at different sampling
//! intervals (heap = 4× min).
//!
//! Expected shape (paper): `compress` and `mpegaudio` co-allocate
//! nothing; the programs with large counts (db, pseudojbb, hsqldb,
//! luindex, pmd) are insensitive to the interval; programs with small
//! counts are more sensitive.

use hpmopt_gc::CollectorKind;
use hpmopt_hpm::SamplingInterval;
use hpmopt_workloads::{all, Size, Workload};

use crate::{fmt, setup, INTERVALS};

/// One Figure 3 row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Program name.
    pub program: String,
    /// Objects co-allocated at each interval, in [`INTERVALS`] order.
    pub coallocated: Vec<u64>,
}

/// Measure the given workloads.
#[must_use]
pub fn measure(ws: &[Workload], size: Size) -> Vec<Row> {
    ws.iter()
        .map(|w| {
            let coallocated = INTERVALS
                .iter()
                .map(|&(n, _)| {
                    let heap = setup::heap_config(w, 4, 1, CollectorKind::GenMs);
                    let cfg = setup::run_config(w, size, heap, SamplingInterval::Fixed(n), true);
                    setup::run(w, cfg).vm.gc.objects_coallocated
                })
                .collect();
            Row {
                program: w.name.to_string(),
                coallocated,
            }
        })
        .collect()
}

/// Render the figure as a table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.program.clone()];
            cells.extend(r.coallocated.iter().map(u64::to_string));
            cells
        })
        .collect();
    let headers: Vec<String> = std::iter::once("program".to_string())
        .chain(INTERVALS.iter().map(|&(_, l)| l.to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut out = String::from(
        "Figure 3: Number of co-allocated objects at different sampling intervals (heap = 4x).\n\n",
    );
    out.push_str(&fmt::table(&header_refs, &data));
    out
}

/// Run and render over all workloads.
#[must_use]
pub fn run(size: Size) -> String {
    render(&measure(&all(size), size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmopt_workloads::by_name;

    #[test]
    fn compress_never_coallocates_and_db_does() {
        let ws = vec![
            by_name("compress", Size::Tiny).unwrap(),
            by_name("db", Size::Tiny).unwrap(),
        ];
        let rows = measure(&ws, Size::Tiny);
        assert!(
            rows[0].coallocated.iter().all(|&c| c == 0),
            "compress has no candidates: {:?}",
            rows[0]
        );
        assert!(
            rows[1].coallocated.iter().any(|&c| c > 0),
            "db must co-allocate: {:?}",
            rows[1]
        );
    }
}
