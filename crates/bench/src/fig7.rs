//! Figure 7 — runtime feedback on `db`: cache misses sampled for the
//! `String::value` field over time.
//!
//! (a) The cumulative count of misses attributed to the field bends
//! sharply once co-allocation kicks in after the warm-up phase.
//! (b) The per-period miss rate drops at the same point; a moving average
//! over the last 3 periods smooths local volatility.

use hpmopt_core::monitor::SeriesPoint;
use hpmopt_gc::CollectorKind;
use hpmopt_workloads::{by_name, Size};

use crate::{fmt, setup};

/// The measured series.
#[derive(Debug, Clone)]
pub struct Series {
    /// `(cycles, cumulative sampled misses)` for `String::value`.
    pub cumulative: Vec<SeriesPoint>,
    /// `(cycles, misses per megacycle)` per period.
    pub rate: Vec<(u64, f64)>,
    /// Moving average (window 3) of `rate`.
    pub rate_ma3: Vec<(u64, f64)>,
    /// Cycle at which the first co-allocation decision was made.
    pub decision_at: Option<u64>,
}

/// Run `db` and collect the per-field series.
#[must_use]
pub fn measure(size: Size) -> Series {
    let w = by_name("db", size).expect("db exists");
    let heap = setup::heap_config(&w, 4, 1, CollectorKind::GenMs);
    let mut cfg = setup::run_config(&w, size, heap, setup::auto_interval(), true);
    cfg.watch_fields = vec![("String".into(), "value".into())];
    let report = setup::run(&w, cfg);

    let cumulative = report
        .series
        .first()
        .map(|(_, s)| s.clone())
        .unwrap_or_default();
    let mut rate = Vec::new();
    for pair in cumulative.windows(2) {
        let dt = pair[1].cycles.saturating_sub(pair[0].cycles).max(1);
        let dm = pair[1].total - pair[0].total;
        rate.push((pair[1].cycles, dm as f64 * 1_000_000.0 / dt as f64));
    }
    let rate_ma3 = rate
        .iter()
        .enumerate()
        .map(|(i, &(c, _))| {
            let lo = i.saturating_sub(2);
            let window = &rate[lo..=i];
            let avg = window.iter().map(|&(_, r)| r).sum::<f64>() / window.len() as f64;
            (c, avg)
        })
        .collect();
    let decision_at = report.policy_events.first().map(|e| match e {
        hpmopt_core::policy::PolicyEvent::Enabled { cycles, .. }
        | hpmopt_core::policy::PolicyEvent::Pinned { cycles, .. }
        | hpmopt_core::policy::PolicyEvent::Reverted { cycles, .. }
        | hpmopt_core::policy::PolicyEvent::WarmStarted { cycles, .. } => *cycles,
    });
    Series {
        cumulative,
        rate,
        rate_ma3,
        decision_at,
    }
}

/// Render both panels as text.
#[must_use]
pub fn render(s: &Series) -> String {
    let mut out = String::from(
        "Figure 7: db — cache misses sampled for String objects over time.\n\n(a) cumulative attributed misses on String::value\n\n",
    );
    let rows_a: Vec<Vec<String>> = s
        .cumulative
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}M", p.cycles as f64 / 1e6),
                p.total.to_string(),
            ]
        })
        .collect();
    out.push_str(&fmt::table(&["cycles", "cumulative misses"], &rows_a));
    if let Some(at) = s.decision_at {
        out.push_str(&format!(
            "\nco-allocation decision enabled at {:.1}M cycles (the bend in the curve)\n",
            at as f64 / 1e6
        ));
    }
    out.push_str(
        "\n(b) miss rate over time (sampled misses per Mcycle) with moving average(3)\n\n",
    );
    let rows_b: Vec<Vec<String>> = s
        .rate
        .iter()
        .zip(&s.rate_ma3)
        .map(|(&(c, r), &(_, ma))| {
            vec![
                format!("{:.1}M", c as f64 / 1e6),
                format!("{r:.2}"),
                format!("{ma:.2}"),
            ]
        })
        .collect();
    out.push_str(&fmt::table(&["cycles", "rate", "avg(3)"], &rows_b));
    out
}

/// Run and render.
#[must_use]
pub fn run(size: Size) -> String {
    render(&measure(size))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_is_monotone_and_rate_drops_after_decision() {
        let s = measure(Size::Tiny);
        assert!(s.cumulative.len() >= 4, "need several periods: {s:?}");
        assert!(s.cumulative.windows(2).all(|w| w[0].total <= w[1].total));
        assert!(s.decision_at.is_some(), "db must enable co-allocation");
        // Rate after the decision (once promoted pairs dominate) should
        // drop below the peak pre-decision rate.
        let at = s.decision_at.unwrap();
        let pre_peak = s
            .rate
            .iter()
            .filter(|&&(c, _)| c <= at)
            .map(|&(_, r)| r)
            .fold(0.0_f64, f64::max);
        let post_min = s
            .rate
            .iter()
            .filter(|&&(c, _)| c > at)
            .map(|&(_, r)| r)
            .fold(f64::INFINITY, f64::min);
        assert!(
            post_min < pre_peak,
            "miss rate must drop after co-allocation: pre_peak={pre_peak}, post_min={post_min}"
        );
    }
}
