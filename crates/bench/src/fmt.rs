//! Tiny text-table formatting helpers shared by the experiments.

/// Render a table: a header row plus data rows, columns padded to fit.
/// The first column is left-aligned, the rest right-aligned.
#[must_use]
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i == 0 {
                line.push_str(&format!("{:<w$}", cell, w = widths[0]));
            } else {
                line.push_str(&format!("  {:>w$}", cell, w = widths[i]));
            }
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
    }
    out
}

/// Format a ratio as a signed percentage change (`0.98` → `-2.0%`).
#[must_use]
pub fn pct_change(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

/// Format a fraction as a percentage (`0.034` → `3.4%`).
#[must_use]
pub fn pct(frac: f64) -> String {
    format!("{:.2}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn percent_formats() {
        assert_eq!(pct_change(1.021), "+2.1%");
        assert_eq!(pct_change(0.861), "-13.9%");
        assert_eq!(pct(0.0034), "0.34%");
    }
}
