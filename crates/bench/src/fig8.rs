//! Figure 8 — a poorly performing locality optimization, detected and
//! reverted.
//!
//! The controlled experiment of Section 6.4: `db` starts with a good
//! allocation order; mid-run the GC is instructed to place one cache line
//! (128 bytes) of empty space between each `String` and its `char[]` —
//! "effectively undoing the originally well performing setting". The
//! per-class miss-rate monitoring discovers the regression and after
//! several measurement periods switches back; the miss rate returns to
//! its old value.

use hpmopt_core::policy::PolicyEvent;
use hpmopt_core::runtime::ForcedBadPlacement;
use hpmopt_gc::CollectorKind;
use hpmopt_workloads::{by_name, Size};

use crate::{fmt, setup};

/// The measured trajectory.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// Per-period `(cycles, misses per megacycle)` for `String::value`.
    pub rate: Vec<(u64, f64)>,
    /// When the bad placement was pinned.
    pub pinned_at: Option<u64>,
    /// When the feedback loop reverted it.
    pub reverted_at: Option<u64>,
}

/// Run the experiment.
#[must_use]
pub fn measure(size: Size) -> Trajectory {
    let w = by_name("db", size).expect("db exists");
    let heap = setup::heap_config(&w, 4, 1, CollectorKind::GenMs);
    let mut cfg = setup::run_config(
        &w,
        size,
        heap,
        hpmopt_hpm::SamplingInterval::Fixed(256),
        true,
    );
    cfg.watch_fields = vec![("String".into(), "value".into())];
    // Let the good configuration warm up past the enable decision, then
    // sabotage it while the build phase is still allocating — objects
    // copied after the pin get the bad layout, so the regression shows
    // up in the very next periods (cut-over points scale with input
    // size).
    let at_cycles = match size {
        Size::Tiny => 6_000_000,
        Size::Small => 15_000_000,
        Size::Full => 36_000_000,
    };
    cfg.forced_bad = Some(ForcedBadPlacement {
        class: "String".into(),
        field: "value".into(),
        gap_bytes: 128,
        at_cycles,
    });
    cfg.feedback = hpmopt_core::feedback::FeedbackConfig {
        tolerance: 1.25,
        revert_after_periods: 2,
        min_period_misses: 25,
    };
    let report = setup::run(&w, cfg);

    let cumulative = report
        .series
        .first()
        .map(|(_, s)| s.clone())
        .unwrap_or_default();
    let mut rate = Vec::new();
    for pair in cumulative.windows(2) {
        let dt = pair[1].cycles.saturating_sub(pair[0].cycles).max(1);
        let dm = pair[1].total - pair[0].total;
        rate.push((pair[1].cycles, dm as f64 * 1_000_000.0 / dt as f64));
    }
    let mut pinned_at = None;
    let mut reverted_at = None;
    for e in &report.policy_events {
        match *e {
            PolicyEvent::Pinned { cycles, .. } => pinned_at = Some(cycles),
            PolicyEvent::Reverted { cycles, .. }
                if pinned_at.is_some() && reverted_at.is_none() =>
            {
                reverted_at = Some(cycles);
            }
            PolicyEvent::Enabled { .. }
            | PolicyEvent::Reverted { .. }
            | PolicyEvent::WarmStarted { .. } => {}
        }
    }
    Trajectory {
        rate,
        pinned_at,
        reverted_at,
    }
}

/// Render the trajectory.
#[must_use]
pub fn render(t: &Trajectory) -> String {
    let mut out = String::from(
        "Figure 8: db — cache misses for String objects under a deliberately bad placement.\n\n",
    );
    let rows: Vec<Vec<String>> = t
        .rate
        .iter()
        .map(|&(c, r)| {
            let phase = match (t.pinned_at, t.reverted_at) {
                (Some(p), _) if c <= p => "good",
                (Some(_), Some(rv)) if c <= rv => "BAD (gap=128B)",
                (Some(_), Some(_)) => "reverted",
                (Some(_), None) => "BAD (gap=128B)",
                _ => "good",
            };
            vec![
                format!("{:.1}M", c as f64 / 1e6),
                format!("{r:.2}"),
                phase.to_string(),
            ]
        })
        .collect();
    out.push_str(&fmt::table(&["cycles", "miss rate", "phase"], &rows));
    match (t.pinned_at, t.reverted_at) {
        (Some(p), Some(r)) => out.push_str(&format!(
            "\nbad placement installed at {:.1}M cycles; feedback reverted it at {:.1}M cycles\n",
            p as f64 / 1e6,
            r as f64 / 1e6
        )),
        (Some(p), None) => out.push_str(&format!(
            "\nbad placement installed at {:.1}M cycles; run ended before revert\n",
            p as f64 / 1e6
        )),
        _ => out.push_str("\nbad placement was never installed (run too short)\n"),
    }
    out
}

/// Run and render.
#[must_use]
pub fn run(size: Size) -> String {
    render(&measure(size))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_placement_is_detected_and_reverted() {
        let t = measure(Size::Tiny);
        assert!(t.pinned_at.is_some(), "pin must happen: {t:?}");
        assert!(t.reverted_at.is_some(), "feedback must revert: {t:?}");
        assert!(t.reverted_at.unwrap() > t.pinned_at.unwrap());
    }
}
