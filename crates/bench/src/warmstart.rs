//! Warm-start ablation: the profile repository's effect on `db`.
//!
//! Beyond the paper. The online pipeline needs a sampling warm-up
//! before the per-field counters cross the decision threshold, so the
//! first co-allocation decision lands well into the run — and the
//! nursery collections before it promote without co-allocation. This
//! ablation runs `db` twice against the same profile file: a cold run
//! (no prior profile; saves one at exit) and a warm run (loads it;
//! decisions installed at cycle 0), and compares the time to the first
//! decision plus the resulting miss trajectory.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use hpmopt_core::runtime::RunReport;
use hpmopt_core::ProfileOptions;
use hpmopt_gc::CollectorKind;
use hpmopt_workloads::{by_name, Size};

use crate::{fmt, setup};

fn temp_profile(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "hpmopt-warmstart-{}-{tag}-{n}.hpmprof",
        std::process::id()
    ))
}

/// Cumulative sampled events at a fraction of the run (from the
/// per-poll event series).
fn events_at(r: &RunReport, fraction: f64) -> u64 {
    let t = (r.cycles as f64 * fraction) as u64;
    r.event_series
        .iter()
        .take_while(|(cycles, _)| *cycles <= t)
        .last()
        .map_or(0, |&(_, events)| events)
}

/// Run the cold/warm pair against one profile file and return both
/// reports (cold first).
#[must_use]
pub fn measure(size: Size, tag: &str) -> (RunReport, RunReport) {
    let w = by_name("db", size).expect("db exists");
    let path = temp_profile(tag);
    let configure = || {
        let heap = setup::heap_config(&w, 4, 1, CollectorKind::GenMs);
        let mut cfg = setup::run_config(&w, size, heap, setup::auto_interval(), true);
        cfg.profile = ProfileOptions::at(&path, "db");
        cfg
    };
    let cold = setup::run(&w, configure());
    let warm = setup::run(&w, configure());
    let _ = std::fs::remove_file(&path);
    (cold, warm)
}

/// The warm-vs-cold ablation on `db`.
#[must_use]
pub fn run(size: Size) -> String {
    let (cold, warm) = measure(size, "ablation");
    let row = |label: &str, r: &RunReport| {
        vec![
            label.to_string(),
            r.cycles_to_first_decision()
                .map_or_else(|| "never".to_string(), |c| c.to_string()),
            r.cycles.to_string(),
            r.vm.mem.l1_misses.to_string(),
            r.vm.gc.objects_coallocated.to_string(),
        ]
    };
    let mut out = String::from(
        "Ablation 4: profile-repository warm start (db, heap = 4x, auto interval).\n\n",
    );
    out.push_str(&fmt::table(
        &[
            "start",
            "first decision (cycles)",
            "total cycles",
            "L1 misses",
            "coallocated",
        ],
        &[
            row("cold (no profile)", &cold),
            row("warm (prior run)", &warm),
        ],
    ));

    out.push_str("\nsampled-miss trajectory (cumulative events at run fraction):\n\n");
    let quartiles = [0.25, 0.5, 0.75, 1.0];
    let trajectory = |label: &str, r: &RunReport| {
        let mut cells = vec![label.to_string()];
        cells.extend(quartiles.iter().map(|&q| events_at(r, q).to_string()));
        cells
    };
    out.push_str(&fmt::table(
        &["start", "25%", "50%", "75%", "100%"],
        &[trajectory("cold", &cold), trajectory("warm", &warm)],
    ));
    out.push_str(
        "\n(the warm run installs its co-allocation decisions at cycle 0, so the first\nnursery collection already promotes parent/child pairs adjacently)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_start_strictly_beats_cold_to_first_decision() {
        let (cold, warm) = measure(Size::Tiny, "test");
        assert!(!cold.warm_start, "first run finds no profile");
        assert!(warm.warm_start, "second run loads the saved profile");
        let cold_first = cold
            .cycles_to_first_decision()
            .expect("cold run eventually decides");
        let warm_first = warm
            .cycles_to_first_decision()
            .expect("warm run decides at startup");
        assert!(
            warm_first < cold_first,
            "warm start must decide strictly earlier: {warm_first} vs {cold_first}"
        );
        assert_eq!(warm_first, 0, "decisions installed before the first cycle");
    }
}
