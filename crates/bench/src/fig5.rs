//! Figure 5 — execution time relative to the baseline across heap sizes
//! (1× to 4× min heap, auto-selected sampling interval).
//!
//! Expected shape (paper): at large heaps db (and to a lesser degree
//! pseudojbb, bloat) speed up, several programs show ~1–2 % slowdown
//! (monitoring cost); at the minimum heap the free-list fragmentation
//! introduced by co-allocated cells erodes the gains for almost every
//! program.

use hpmopt_gc::CollectorKind;
use hpmopt_workloads::{all, Size, Workload};

use crate::{fmt, setup, HEAP_MULTS};

/// One Figure 5 row: normalized execution time per heap size.
#[derive(Debug, Clone)]
pub struct Row {
    /// Program name.
    pub program: String,
    /// `monitored+coalloc / baseline` cycles at each heap multiplier, in
    /// [`HEAP_MULTS`] order.
    pub normalized: Vec<f64>,
}

/// Measure the given workloads.
#[must_use]
pub fn measure(ws: &[Workload], size: Size) -> Vec<Row> {
    ws.iter()
        .map(|w| {
            let normalized = HEAP_MULTS
                .iter()
                .map(|&(num, den, _)| {
                    let base = setup::baseline_report(w, size, num, den).cycles as f64;
                    let heap = setup::heap_config(w, num, den, CollectorKind::GenMs);
                    let cfg = setup::run_config(w, size, heap, setup::auto_interval(), true);
                    setup::run(w, cfg).cycles as f64 / base
                })
                .collect();
            Row {
                program: w.name.to_string(),
                normalized,
            }
        })
        .collect()
}

/// Render the figure as a table.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.program.clone()];
            cells.extend(r.normalized.iter().map(|&x| format!("{x:.3}")));
            cells
        })
        .collect();
    let headers: Vec<String> = std::iter::once("program".to_string())
        .chain(HEAP_MULTS.iter().map(|&(_, _, l)| l.to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut out = String::from(
        "Figure 5: Execution time relative to baseline across heap sizes (auto interval, co-allocation on).\n\n",
    );
    out.push_str(&fmt::table(&header_refs, &data));
    out.push_str("\n(< 1.0 = speedup over the unmonitored baseline at the same heap size)\n");
    out
}

/// Run and render over all workloads.
#[must_use]
pub fn run(size: Size) -> String {
    render(&measure(&all(size), size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmopt_workloads::by_name;

    #[test]
    fn db_speeds_up_at_large_heaps() {
        let ws = vec![by_name("db", Size::Tiny).unwrap()];
        let rows = measure(&ws, Size::Tiny);
        let r = &rows[0];
        let large_heap = *r.normalized.last().unwrap();
        assert!(
            large_heap < 1.0,
            "db must be faster than baseline at 4x heap: {:?}",
            r.normalized
        );
        // At the minimum heap the advantage shrinks (fragmentation +
        // extra GC pressure).
        assert!(
            r.normalized[0] > large_heap - 0.02,
            "1x heap should not beat 4x: {:?}",
            r.normalized
        );
    }
}
