//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [table1|table2|fig2|fig3|fig4|fig5|fig6|fig7|fig8|ablations|warmstart|all] [tiny|small|full]
//! ```
//!
//! Defaults: `all small`. Output goes to stdout as aligned text tables;
//! `EXPERIMENTS.md` in the repository root records a reference run.

use std::time::Instant;

use hpmopt_bench::{
    ablations, fig2, fig3, fig4, fig5, fig6, fig7, fig8, table1, table2, warmstart,
};
use hpmopt_workloads::Size;

/// One runnable artifact: its CLI name and generator.
type Experiment = (&'static str, fn(Size) -> String);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map_or("all", String::as_str);
    let size = match args.get(1).map(String::as_str) {
        Some("tiny") => Size::Tiny,
        Some("full") => Size::Full,
        None | Some("small") => Size::Small,
        Some(other) => {
            eprintln!("unknown size {other:?} (expected tiny|small|full)");
            std::process::exit(2);
        }
    };

    let experiments: Vec<Experiment> = vec![
        ("table1", table1::run),
        ("table2", table2::run),
        ("fig2", fig2::run),
        ("fig3", fig3::run),
        ("fig4", fig4::run),
        ("fig5", fig5::run),
        ("fig6", fig6::run),
        ("fig7", fig7::run),
        ("fig8", fig8::run),
        ("ablations", ablations::run),
        ("warmstart", warmstart::run),
    ];

    let selected: Vec<&Experiment> = if what == "all" {
        experiments.iter().collect()
    } else {
        let found: Vec<_> = experiments.iter().filter(|(n, _)| *n == what).collect();
        if found.is_empty() {
            eprintln!(
                "unknown experiment {what:?}; expected one of: all, {}",
                experiments
                    .iter()
                    .map(|(n, _)| *n)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2);
        }
        found
    };

    println!("hpmopt experiments — size = {size}\n");
    for (name, f) in selected {
        let t0 = Instant::now();
        let text = f(size);
        println!("=== {name} ===\n");
        println!("{text}");
        println!("[{name} completed in {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
}
