//! Criterion end-to-end benches: one group per paper artifact, running a
//! reduced (Tiny) configuration of each experiment so `cargo bench`
//! exercises every table/figure pipeline and tracks the harness's own
//! performance over time. The full-size numbers come from the
//! `experiments` binary.
//!
//! Requires the `bench-criterion` feature (plus a `criterion`
//! dev-dependency, which the default offline build omits).

#[cfg(not(feature = "bench-criterion"))]
fn main() {
    eprintln!(
        "experiments benches are disabled: rebuild with --features bench-criterion \
         after adding the criterion dev-dependency"
    );
}

#[cfg(feature = "bench-criterion")]
fn main() {
    harness::benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}

#[cfg(feature = "bench-criterion")]
mod harness {
    use criterion::{criterion_group, Criterion};
    use std::hint::black_box;

    use hpmopt_bench::{fig2, fig3, fig4, fig5, fig6, fig7, fig8, setup, table2};
    use hpmopt_workloads::{by_name, Size};

    fn small_set() -> Vec<hpmopt_workloads::Workload> {
        vec![
            by_name("fop", Size::Tiny).unwrap(),
            by_name("db", Size::Tiny).unwrap(),
        ]
    }

    fn bench_table2(c: &mut Criterion) {
        let ws = small_set();
        c.bench_function("experiments/table2_fop_db", |b| {
            b.iter(|| black_box(table2::measure(&ws, Size::Tiny)));
        });
    }

    fn bench_fig2(c: &mut Criterion) {
        let ws = vec![by_name("fop", Size::Tiny).unwrap()];
        c.bench_function("experiments/fig2_fop", |b| {
            b.iter(|| black_box(fig2::measure(&ws, Size::Tiny)));
        });
    }

    fn bench_fig3(c: &mut Criterion) {
        let ws = vec![by_name("fop", Size::Tiny).unwrap()];
        c.bench_function("experiments/fig3_fop", |b| {
            b.iter(|| black_box(fig3::measure(&ws, Size::Tiny)));
        });
    }

    fn bench_fig4(c: &mut Criterion) {
        let ws = vec![by_name("db", Size::Tiny).unwrap()];
        c.bench_function("experiments/fig4_db", |b| {
            b.iter(|| black_box(fig4::measure(&ws, Size::Tiny)));
        });
    }

    fn bench_fig5(c: &mut Criterion) {
        let ws = vec![by_name("fop", Size::Tiny).unwrap()];
        c.bench_function("experiments/fig5_fop", |b| {
            b.iter(|| black_box(fig5::measure(&ws, Size::Tiny)));
        });
    }

    fn bench_fig6(c: &mut Criterion) {
        c.bench_function("experiments/fig6_db", |b| {
            b.iter(|| black_box(fig6::measure(Size::Tiny)));
        });
    }

    fn bench_fig7(c: &mut Criterion) {
        c.bench_function("experiments/fig7_db", |b| {
            b.iter(|| black_box(fig7::measure(Size::Tiny)));
        });
    }

    fn bench_fig8(c: &mut Criterion) {
        c.bench_function("experiments/fig8_db", |b| {
            b.iter(|| black_box(fig8::measure(Size::Tiny)));
        });
    }

    fn bench_single_run(c: &mut Criterion) {
        let w = by_name("db", Size::Tiny).unwrap();
        c.bench_function("experiments/db_monitored_run", |b| {
            b.iter(|| {
                let heap = setup::heap_config(&w, 4, 1, hpmopt_gc::CollectorKind::GenMs);
                let cfg = setup::run_config(&w, Size::Tiny, heap, setup::auto_interval(), true);
                black_box(setup::run(&w, cfg).cycles)
            });
        });
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(10);
        targets = bench_table2, bench_fig2, bench_fig3, bench_fig4, bench_fig5,
                  bench_fig6, bench_fig7, bench_fig8, bench_single_run
    }
}
