//! Criterion micro-benchmarks for the individual substrates: cache
//! simulation, heap allocation/collection, PC resolution, and the
//! interest analysis. These quantify the *simulator's* own performance
//! (how fast experiments run), complementing the `experiments` binary
//! that reproduces the paper's numbers.
//!
//! Requires the `bench-criterion` feature (plus a `criterion`
//! dev-dependency, which the default offline build omits).

#[cfg(not(feature = "bench-criterion"))]
fn main() {
    eprintln!(
        "components benches are disabled: rebuild with --features bench-criterion \
         after adding the criterion dev-dependency"
    );
}

#[cfg(feature = "bench-criterion")]
fn main() {
    harness::benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}

#[cfg(feature = "bench-criterion")]
mod harness {
    use criterion::{criterion_group, Criterion};
    use std::hint::black_box;

    use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
    use hpmopt_bytecode::{ElemKind, FieldType, Program};
    use hpmopt_core::interest::analyze_method;
    use hpmopt_core::mapping::SampleResolver;
    use hpmopt_gc::policy::NoCoalloc;
    use hpmopt_gc::{Heap, HeapConfig};
    use hpmopt_memsim::{AccessKind, MemConfig, MemoryHierarchy};
    use hpmopt_vm::compiler::compile;
    use hpmopt_vm::machine::Tier;
    use hpmopt_vm::{NoHooks, Vm, VmConfig};

    fn bench_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let node = pb.add_class("Node", &[("next", FieldType::Ref), ("v", FieldType::Int)]);
        let next = pb.field_id(node, "next").unwrap();
        let v = pb.field_id(node, "v").unwrap();
        let mut m = MethodBuilder::new("main", 0, 3, false);
        // Build a 256-node list, then sum it 50 times.
        m.const_null();
        m.store(1);
        m.for_loop(
            0,
            |m| {
                m.const_i(256);
            },
            |m| {
                m.new_object(node);
                m.store(2);
                m.load(2);
                m.load(1);
                m.put_field(next);
                m.load(2);
                m.load(0);
                m.put_field(v);
                m.load(2);
                m.store(1);
            },
        );
        m.for_loop(
            0,
            |m| {
                m.const_i(50);
            },
            |m| {
                let cur = m.new_local();
                m.load(1);
                m.store(cur);
                let top = m.label();
                let done = m.label();
                m.bind(top);
                m.load(cur);
                m.is_null();
                m.jump_if(done);
                m.load(cur);
                m.get_field(v);
                m.pop();
                m.load(cur);
                m.get_field(next);
                m.store(cur);
                m.jump(top);
                m.bind(done);
            },
        );
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        pb.finish().unwrap()
    }

    fn cache_hierarchy(c: &mut Criterion) {
        c.bench_function("memsim/access_mixed_1k", |b| {
            let mut mem = MemoryHierarchy::new(MemConfig::pentium4());
            let mut addr = 0x1000_0000u64;
            b.iter(|| {
                for i in 0..1024u64 {
                    addr = addr.wrapping_mul(6364136223846793005).wrapping_add(i) % (1 << 24);
                    black_box(mem.access(0x1000_0000 + (addr & !7), 8, AccessKind::Read));
                }
            });
        });
    }

    fn gc_alloc_and_collect(c: &mut Criterion) {
        let program = bench_program();
        let node = program.class_by_name("Node").unwrap();
        c.bench_function("gc/alloc_collect_cycle", |b| {
            b.iter(|| {
                let mut heap = Heap::new(&program, HeapConfig::small());
                let mut roots = Vec::new();
                for _ in 0..1000 {
                    match heap.alloc_object(node) {
                        Ok(a) => {
                            if roots.len() < 64 {
                                roots.push(a);
                            }
                        }
                        Err(_) => {
                            heap.collect_minor(&mut roots, &NoCoalloc).unwrap();
                        }
                    }
                }
                black_box(heap.stats());
            });
        });
    }

    fn interpreter_throughput(c: &mut Criterion) {
        let program = bench_program();
        c.bench_function("vm/interpret_list_sums", |b| {
            b.iter(|| {
                let mut vm = Vm::new(&program, VmConfig::test());
                black_box(vm.run(&mut NoHooks).unwrap().cycles);
            });
        });
    }

    fn sample_resolution(c: &mut Criterion) {
        let program = bench_program();
        let code = compile(&program, program.entry(), Tier::Opt, 0x4000_0000, true);
        let pcs: Vec<u64> = (0..code.machine_len() as u64)
            .map(|i| 0x4000_0000 + i * 4)
            .collect();
        let mut resolver = SampleResolver::new();
        resolver.register(code);
        c.bench_function("core/resolve_pc", |b| {
            b.iter(|| {
                for &pc in &pcs {
                    black_box(resolver.resolve(pc).ok());
                }
            });
        });
    }

    fn interest_analysis(c: &mut Criterion) {
        let program = bench_program();
        c.bench_function("core/interest_analysis", |b| {
            b.iter(|| black_box(analyze_method(&program, program.entry())));
        });
    }

    fn coalloc_speedup(c: &mut Criterion) {
        // The ablation headline at micro scale: a String/char[] pair read
        // through the parent, co-allocated vs separate size classes.
        let mut pb = ProgramBuilder::new();
        let s = pb.add_class("S", &[("value", FieldType::Ref)]);
        let _f = pb.field_id(s, "value").unwrap();
        let mut m = MethodBuilder::new("main", 0, 0, false);
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        let program = pb.finish().unwrap();
        let value_off = 16;

        c.bench_function("gc/coalloc_locality_micro", |b| {
            b.iter(|| {
                let mut heap = Heap::new(&program, HeapConfig::small());
                let mut mem = MemoryHierarchy::new(MemConfig::pentium4());
                let mut policy = hpmopt_gc::policy::StaticPolicy::new();
                policy.set(s, value_off);
                let mut roots = Vec::new();
                for _ in 0..64 {
                    let p = heap.alloc_object(s).unwrap();
                    let v = heap.alloc_array(ElemKind::I16, 16).unwrap();
                    heap.set_field(p, value_off, v.0, true);
                    roots.push(p);
                }
                heap.collect_minor(&mut roots, &policy).unwrap();
                let mut cycles = 0u64;
                for &p in &roots {
                    cycles += mem.access(p.0 + value_off, 8, AccessKind::Read).cycles;
                    let v = heap.get_field(p, value_off);
                    cycles += mem.access(v + 16, 2, AccessKind::Read).cycles;
                }
                black_box(cycles);
            });
        });
    }

    criterion_group!(
        benches,
        cache_hierarchy,
        gc_alloc_and_collect,
        interpreter_throughput,
        sample_resolution,
        interest_analysis,
        coalloc_speedup,
    );
}
