//! Property-based tests for the memory-hierarchy simulator.

//
// These tests need the external `proptest` crate, which the offline
// build cannot fetch; enable with `--features proptest-tests` after
// adding proptest as a dev-dependency.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;

use hpmopt_memsim::{AccessKind, Cache, CacheGeometry, MemConfig, MemoryHierarchy, Tlb};

proptest! {
    /// Immediately re-accessing any address hits L1 regardless of history.
    #[test]
    fn repeat_access_always_hits(addrs in proptest::collection::vec(0u64..1 << 30, 1..200)) {
        let mut mem = MemoryHierarchy::new(MemConfig::pentium4());
        for a in addrs {
            let aligned = a & !7;
            mem.access(aligned, 8, AccessKind::Read);
            let again = mem.access(aligned, 8, AccessKind::Read);
            prop_assert!(!again.l1_miss);
            prop_assert!(!again.dtlb_miss);
        }
    }

    /// Cache hits + misses always equals demand accesses, and an L2 miss
    /// implies an L1 miss.
    #[test]
    fn stats_are_consistent(addrs in proptest::collection::vec(0u64..1 << 26, 1..500)) {
        let mut mem = MemoryHierarchy::new(MemConfig::pentium4());
        for a in &addrs {
            let out = mem.access(a & !7, 8, AccessKind::Write);
            prop_assert!(!(out.l2_miss && !out.l1_miss), "L2 miss without L1 miss");
        }
        let s = mem.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert!(s.l2_misses <= s.l1_misses);
        prop_assert!(s.l1_misses <= s.accesses);
    }

    /// A cache never holds more lines than its capacity, for arbitrary
    /// (power-of-two) geometry.
    #[test]
    fn residency_never_exceeds_capacity(
        size_log in 8u32..16,
        line_log in 5u32..8,
        assoc_log in 0u32..4,
        addrs in proptest::collection::vec(0u64..1 << 22, 1..400),
    ) {
        let size = 1u64 << size_log;
        let line = 1u64 << line_log;
        let assoc = 1usize << assoc_log;
        prop_assume!(size >= line * assoc as u64);
        let g = CacheGeometry::new(size, line, assoc);
        let mut c = Cache::new(g);
        for a in addrs {
            c.access(a);
            prop_assert!(c.resident_lines() as u64 <= size / line);
        }
    }

    /// LRU inside a set: after touching `assoc` distinct lines of one
    /// set, the first-touched line is the one evicted by a new line.
    #[test]
    fn lru_evicts_least_recent(set_index in 0u64..16) {
        let g = CacheGeometry::new(16 * 1024, 128, 8);
        let mut c = Cache::new(g);
        let stride = 128 * 16; // same set every 16 lines
        let base = set_index * 128;
        for way in 0..8u64 {
            c.access(base + way * stride);
        }
        // Touch ways 1..8 again so way 0 is LRU.
        for way in 1..8u64 {
            c.access(base + way * stride);
        }
        c.access(base + 8 * stride); // evicts way 0
        prop_assert!(!c.contains(base));
        for way in 1..=8u64 {
            prop_assert!(c.contains(base + way * stride));
        }
    }

    /// The TLB is deterministic: the same trace gives the same hit count.
    #[test]
    fn tlb_deterministic(addrs in proptest::collection::vec(0u64..1 << 30, 1..300)) {
        let run = |addrs: &[u64]| {
            let mut t = Tlb::new(64, 4096);
            for &a in addrs {
                t.access(a);
            }
            (t.hits(), t.misses())
        };
        prop_assert_eq!(run(&addrs), run(&addrs));
    }

    /// Latency is bounded by the sum of worst-case penalties.
    #[test]
    fn latency_is_bounded(addrs in proptest::collection::vec(0u64..1 << 30, 1..200)) {
        let cfg = MemConfig::pentium4();
        let worst = cfg.latency.l1_hit + cfg.latency.l2_hit + cfg.latency.memory + cfg.latency.tlb_miss;
        let mut mem = MemoryHierarchy::new(cfg);
        for a in addrs {
            let out = mem.access(a & !7, 8, AccessKind::Read);
            prop_assert!(out.cycles >= 2);
            prop_assert!(out.cycles <= worst);
        }
    }
}
