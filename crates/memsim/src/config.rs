//! Hierarchy geometry and latency configuration.

use crate::cache::CacheGeometry;

/// Latency, in CPU cycles, of each level of the hierarchy.
///
/// The defaults approximate the paper's 3 GHz Pentium 4 (L1 ~2 cycles,
/// L2 ~18 cycles, main memory ~200 cycles, a hardware page walk ~30
/// cycles). Only the *relative* magnitudes matter for reproducing the
/// evaluation's shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Cycles for an L1 hit.
    pub l1_hit: u64,
    /// Additional cycles for an L2 hit (on top of `l1_hit`).
    pub l2_hit: u64,
    /// Additional cycles for a main-memory access.
    pub memory: u64,
    /// Additional cycles for a DTLB miss (page-walk cost).
    pub tlb_miss: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            l1_hit: 2,
            l2_hit: 18,
            memory: 200,
            tlb_miss: 30,
        }
    }
}

/// Complete configuration of a [`crate::MemoryHierarchy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 data-cache geometry.
    pub l1: CacheGeometry,
    /// Unified L2 geometry.
    pub l2: CacheGeometry,
    /// Number of DTLB entries (fully associative).
    pub tlb_entries: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
    /// Latencies per level.
    pub latency: LatencyModel,
    /// Whether the hardware stream prefetcher is enabled.
    pub prefetch: bool,
    /// How many successive lines the prefetcher pulls once a stream is
    /// detected.
    pub prefetch_depth: u64,
}

impl MemConfig {
    /// The evaluation platform of the paper: 16 KB L1D, 1 MB L2, 128-byte
    /// lines, 64-entry DTLB, 4 KB pages, stream prefetching enabled.
    #[must_use]
    pub fn pentium4() -> Self {
        MemConfig {
            l1: CacheGeometry::new(16 * 1024, 128, 8),
            l2: CacheGeometry::new(1024 * 1024, 128, 8),
            tlb_entries: 64,
            page_bytes: 4096,
            latency: LatencyModel::default(),
            prefetch: true,
            prefetch_depth: 2,
        }
    }

    /// A miniature hierarchy for fast unit tests (256-byte L1, 1 KB L2,
    /// 4 TLB entries).
    #[must_use]
    pub fn tiny() -> Self {
        MemConfig {
            l1: CacheGeometry::new(256, 64, 2),
            l2: CacheGeometry::new(1024, 64, 2),
            tlb_entries: 4,
            page_bytes: 4096,
            latency: LatencyModel::default(),
            prefetch: false,
            prefetch_depth: 0,
        }
    }

    /// Disable the prefetcher (ablation configuration).
    #[must_use]
    pub fn without_prefetch(mut self) -> Self {
        self.prefetch = false;
        self
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::pentium4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pentium4_geometry_matches_paper() {
        let c = MemConfig::pentium4();
        assert_eq!(c.l1.size_bytes(), 16 * 1024);
        assert_eq!(c.l1.line_bytes(), 128);
        assert_eq!(c.l2.size_bytes(), 1024 * 1024);
        assert_eq!(c.page_bytes, 4096);
        assert!(c.prefetch);
    }

    #[test]
    fn latency_ordering_is_sane() {
        let l = LatencyModel::default();
        assert!(l.l1_hit < l.l2_hit);
        assert!(l.l2_hit < l.memory);
    }

    #[test]
    fn without_prefetch_clears_flag() {
        assert!(!MemConfig::pentium4().without_prefetch().prefetch);
    }
}
