//! The composed L1 / L2 / DTLB / prefetcher hierarchy.

use crate::cache::Cache;
use crate::config::MemConfig;
use crate::prefetch::StreamPrefetcher;
use crate::tlb::Tlb;
use crate::EventKind;

/// Whether an access reads or writes memory. Both allocate on miss
/// (write-allocate policy); the distinction is kept for statistics and
/// future write-buffer modelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// One queued access in a block batch (see
/// [`MemoryHierarchy::access_batch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAccess {
    /// Byte address.
    pub addr: u64,
    /// Access width in bytes.
    pub size: u64,
    /// Read or write.
    pub kind: AccessKind,
}

/// The result of one memory access: its latency and the events it raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessOutcome {
    /// Total latency in cycles.
    pub cycles: u64,
    /// The access missed L1.
    pub l1_miss: bool,
    /// The access missed L2 (implies `l1_miss`).
    pub l2_miss: bool,
    /// The access missed the DTLB.
    pub dtlb_miss: bool,
}

impl AccessOutcome {
    /// Whether this outcome raised the given event.
    #[must_use]
    pub fn raised(&self, event: EventKind) -> bool {
        match event {
            EventKind::L1DMiss => self.l1_miss,
            EventKind::L2Miss => self.l2_miss,
            EventKind::DtlbMiss => self.dtlb_miss,
        }
    }
}

/// Aggregate counters over the life of the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand accesses observed.
    pub accesses: u64,
    /// Demand reads.
    pub reads: u64,
    /// Demand writes.
    pub writes: u64,
    /// L1 demand hits.
    pub l1_hits: u64,
    /// L1 demand misses.
    pub l1_misses: u64,
    /// L1 lines evicted by replacement.
    pub l1_evictions: u64,
    /// L2 demand hits.
    pub l2_hits: u64,
    /// L2 demand misses.
    pub l2_misses: u64,
    /// L2 lines evicted by replacement (demand and prefetch fills).
    pub l2_evictions: u64,
    /// DTLB hits.
    pub dtlb_hits: u64,
    /// DTLB misses.
    pub dtlb_misses: u64,
    /// DTLB translations evicted by replacement.
    pub dtlb_evictions: u64,
    /// Prefetches issued into L2.
    pub prefetches: u64,
    /// Total cycles spent in memory accesses.
    pub cycles: u64,
}

impl MemStats {
    /// L1 miss rate over all demand accesses (0 when idle).
    #[must_use]
    pub fn l1_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.accesses as f64
        }
    }

    /// Count for one event kind.
    #[must_use]
    pub fn event_count(&self, event: EventKind) -> u64 {
        match event {
            EventKind::L1DMiss => self.l1_misses,
            EventKind::L2Miss => self.l2_misses,
            EventKind::DtlbMiss => self.dtlb_misses,
        }
    }
}

/// The full simulated memory hierarchy.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: MemConfig,
    l1: Cache,
    l2: Cache,
    tlb: Tlb,
    prefetcher: StreamPrefetcher,
    stats: MemStats,
    stat_base: ComponentBase,
}

/// Component counter readings at the last [`MemoryHierarchy::reset_stats`],
/// subtracted in [`MemoryHierarchy::stats`] so resets behave uniformly
/// across tallied and component-derived fields.
#[derive(Debug, Clone, Copy, Default)]
struct ComponentBase {
    l1_hits: u64,
    l1_evictions: u64,
    l2_hits: u64,
    l2_evictions: u64,
    dtlb_hits: u64,
    dtlb_evictions: u64,
}

impl MemoryHierarchy {
    /// Create a cold hierarchy.
    #[must_use]
    pub fn new(config: MemConfig) -> Self {
        MemoryHierarchy {
            l1: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            tlb: Tlb::new(config.tlb_entries, config.page_bytes),
            prefetcher: StreamPrefetcher::new(config.l2.line_bytes(), config.prefetch_depth),
            config,
            stats: MemStats::default(),
            stat_base: ComponentBase::default(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Play one demand access of `size` bytes at `addr` through the
    /// hierarchy and return its latency and events.
    ///
    /// Accesses are assumed not to straddle a cache line; the VM only
    /// issues naturally aligned accesses of at most 8 bytes, which cannot
    /// (lines are ≥ 64 bytes).
    pub fn access(&mut self, addr: u64, size: u64, kind: AccessKind) -> AccessOutcome {
        self.access_one(addr, size, kind, false)
    }

    /// Play a block's accesses through the hierarchy in one call,
    /// appending one [`AccessOutcome`] per access to `out` in order.
    ///
    /// Cache, TLB, and prefetcher state transitions — and every hit/miss
    /// statistic — are byte-identical to issuing the same accesses through
    /// [`MemoryHierarchy::access`] one at a time. The latency model is the
    /// only difference: an access that hits both the DTLB and L1 charges
    /// zero cycles, because within a block the out-of-order core overlaps
    /// an L1 hit with the block's other instructions (whose dispatch
    /// cycles the caller charges separately, including the memory
    /// instruction itself). Any miss stalls the pipeline and pays the
    /// same serial latency stack `access` charges.
    pub fn access_batch(&mut self, batch: &[BatchAccess], out: &mut Vec<AccessOutcome>) {
        out.reserve(batch.len());
        for b in batch {
            out.push(self.access_one(b.addr, b.size, b.kind, true));
        }
    }

    #[inline]
    fn access_one(
        &mut self,
        addr: u64,
        size: u64,
        kind: AccessKind,
        pipelined: bool,
    ) -> AccessOutcome {
        debug_assert!(size <= self.config.l1.line_bytes());
        let lat = self.config.latency;
        let mut out = AccessOutcome {
            cycles: lat.l1_hit,
            ..AccessOutcome::default()
        };

        if !self.tlb.access(addr) {
            out.dtlb_miss = true;
            out.cycles += lat.tlb_miss;
            self.stats.dtlb_misses += 1;
        }

        if !self.l1.access(addr) {
            out.l1_miss = true;
            out.cycles += lat.l2_hit;
            self.stats.l1_misses += 1;
            if !self.l2.access(addr) {
                out.l2_miss = true;
                out.cycles += lat.memory;
                self.stats.l2_misses += 1;
                if self.config.prefetch {
                    for line in self.prefetcher.observe_miss(addr) {
                        self.l2.fill_prefetch(line);
                        self.stats.prefetches += 1;
                    }
                }
            }
        } else if pipelined && !out.dtlb_miss {
            // Batched L1+TLB hit: fully overlapped, no stall.
            out.cycles = 0;
        }

        self.stats.accesses += 1;
        match kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        self.stats.cycles += out.cycles;
        out
    }

    /// Invalidate caches, TLB, and prefetch streams — the pollution model
    /// for a garbage collection, which walks the whole live heap.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.tlb.flush();
        self.prefetcher.flush();
    }

    /// Aggregate statistics. Hit and eviction totals are read off the
    /// component caches here rather than tallied per access, keeping
    /// the access fast path unchanged.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        let mut s = self.stats;
        let base = &self.stat_base;
        s.l1_hits = self.l1.hits() - base.l1_hits;
        s.l1_evictions = self.l1.evictions() - base.l1_evictions;
        s.l2_hits = self.l2.hits() - base.l2_hits;
        s.l2_evictions = self.l2.evictions() - base.l2_evictions;
        s.dtlb_hits = self.tlb.hits() - base.dtlb_hits;
        s.dtlb_evictions = self.tlb.evictions() - base.dtlb_evictions;
        s
    }

    /// Reset statistics (keeps cache contents). Component hit/eviction
    /// counters keep running internally; the snapshot taken here acts
    /// as the new zero for [`MemoryHierarchy::stats`].
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
        self.stat_base = ComponentBase {
            l1_hits: self.l1.hits(),
            l1_evictions: self.l1.evictions(),
            l2_hits: self.l2.hits(),
            l2_evictions: self.l2.evictions(),
            dtlb_hits: self.tlb.hits(),
            dtlb_evictions: self.tlb.evictions(),
        };
    }

    /// The L1 cache (for inspection in tests and reports).
    #[must_use]
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// The L2 cache (for inspection in tests and reports).
    #[must_use]
    pub fn l2(&self) -> &Cache {
        &self.l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p4() -> MemoryHierarchy {
        MemoryHierarchy::new(MemConfig::pentium4())
    }

    #[test]
    fn cold_access_misses_everything() {
        let mut m = p4();
        let out = m.access(0x10_0000, 8, AccessKind::Read);
        assert!(out.l1_miss && out.l2_miss && out.dtlb_miss);
        assert_eq!(
            out.cycles,
            2 + 18 + 200 + 30,
            "l1 + l2 + memory + page walk"
        );
    }

    #[test]
    fn second_access_hits_l1() {
        let mut m = p4();
        m.access(0x10_0000, 8, AccessKind::Read);
        let out = m.access(0x10_0040, 8, AccessKind::Read);
        assert!(!out.l1_miss && !out.dtlb_miss);
        assert_eq!(out.cycles, 2);
    }

    #[test]
    fn l1_eviction_still_hits_l2() {
        let mut m = p4();
        let target = 0u64;
        m.access(target, 8, AccessKind::Read);
        // Touch 9 more lines mapping to the same L1 set (L1: 16 sets,
        // line 128 → same set every 16*128 = 2048 bytes). L2 has 1024
        // sets so these do not conflict there.
        for i in 1..=8u64 {
            m.access(target + i * 2048, 8, AccessKind::Read);
        }
        let out = m.access(target, 8, AccessKind::Read);
        assert!(out.l1_miss, "evicted from 8-way L1 set");
        assert!(!out.l2_miss, "still resident in L2");
    }

    #[test]
    fn same_line_objects_share_misses() {
        // The co-allocation premise: two objects in one 128-byte line cost
        // one miss; in different lines they cost two.
        let mut m = p4();
        m.access(0x0, 8, AccessKind::Read);
        let second = m.access(0x40, 8, AccessKind::Read);
        assert!(!second.l1_miss, "co-located child is implicitly prefetched");

        let far = m.access(0x1000, 8, AccessKind::Read);
        assert!(far.l1_miss, "separate line pays its own miss");
    }

    #[test]
    fn sequential_walk_triggers_prefetch() {
        let mut m = p4();
        for i in 0..64u64 {
            m.access(0x10_0000 + i * 128, 8, AccessKind::Read);
        }
        let s = m.stats();
        assert!(s.prefetches > 0, "stream detected");
        // With depth-2 prefetch, later lines hit L2 rather than memory.
        assert!(s.l2_misses < 64, "prefetcher absorbed some misses: {s:?}");
    }

    #[test]
    fn flush_restores_cold_state() {
        let mut m = p4();
        m.access(0x0, 8, AccessKind::Read);
        m.flush();
        let out = m.access(0x0, 8, AccessKind::Read);
        assert!(out.l1_miss && out.l2_miss && out.dtlb_miss);
    }

    #[test]
    fn stats_accumulate() {
        let mut m = p4();
        m.access(0x0, 8, AccessKind::Read);
        m.access(0x0, 8, AccessKind::Write);
        let s = m.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.l1_misses, 1);
        assert!(s.cycles > 0);
    }

    #[test]
    fn outcome_raised_matches_flags() {
        let out = AccessOutcome {
            cycles: 1,
            l1_miss: true,
            l2_miss: false,
            dtlb_miss: true,
        };
        assert!(out.raised(EventKind::L1DMiss));
        assert!(!out.raised(EventKind::L2Miss));
        assert!(out.raised(EventKind::DtlbMiss));
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut m = p4();
        m.access(0x0, 8, AccessKind::Read);
        m.reset_stats();
        assert_eq!(m.stats().accesses, 0);
        let out = m.access(0x0, 8, AccessKind::Read);
        assert!(!out.l1_miss, "cache contents survived the stat reset");
    }

    #[test]
    fn stats_surface_hits_and_evictions() {
        let mut m = p4();
        m.access(0x0, 8, AccessKind::Read);
        m.access(0x0, 8, AccessKind::Read);
        let s = m.stats();
        assert_eq!(s.l1_hits, 1);
        assert_eq!(s.dtlb_hits, 1);
        assert_eq!(s.l1_hits + s.l1_misses, s.accesses);
        // Thrash one L1 set (16 sets × 128-byte lines → 2 KiB stride)
        // past its 8 ways to force replacement.
        for i in 0..16u64 {
            m.access(i * 2048, 8, AccessKind::Read);
        }
        assert!(m.stats().l1_evictions > 0, "L1 set overflow must evict");
    }

    #[test]
    fn batch_state_and_stats_match_scalar_accesses() {
        // A mixed stream (misses, hits, conflict evictions, a prefetch
        // stream) must leave batch and scalar hierarchies in identical
        // states with identical hit/miss statistics; only latency differs.
        let stream: Vec<BatchAccess> = (0..48u64)
            .map(|i| BatchAccess {
                addr: (i % 7) * 2048 + i * 128,
                size: 8,
                kind: if i % 3 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            })
            .collect();

        let mut scalar = p4();
        let scalar_outs: Vec<AccessOutcome> = stream
            .iter()
            .map(|b| scalar.access(b.addr, b.size, b.kind))
            .collect();

        let mut batched = p4();
        let mut batch_outs = Vec::new();
        for chunk in stream.chunks(5) {
            batched.access_batch(chunk, &mut batch_outs);
        }

        for (s, b) in scalar_outs.iter().zip(&batch_outs) {
            assert_eq!(
                (s.l1_miss, s.l2_miss, s.dtlb_miss),
                (b.l1_miss, b.l2_miss, b.dtlb_miss),
                "event flags must not depend on batching"
            );
            if s.l1_miss || s.dtlb_miss {
                assert_eq!(s.cycles, b.cycles, "misses pay the full stack");
            } else {
                assert_eq!(b.cycles, 0, "batched L1 hits are overlapped");
            }
        }

        let ss = scalar.stats();
        let bs = batched.stats();
        assert_eq!(
            (ss.accesses, ss.reads, ss.writes),
            (bs.accesses, bs.reads, bs.writes)
        );
        assert_eq!(
            (ss.l1_hits, ss.l1_misses, ss.l1_evictions),
            (bs.l1_hits, bs.l1_misses, bs.l1_evictions)
        );
        assert_eq!((ss.l2_hits, ss.l2_misses), (bs.l2_hits, bs.l2_misses));
        assert_eq!(
            (ss.dtlb_hits, ss.dtlb_misses, ss.prefetches),
            (bs.dtlb_hits, bs.dtlb_misses, bs.prefetches)
        );
        // Follow-up accesses observe identical cache contents.
        for i in 0..48u64 {
            let addr = (i % 7) * 2048 + i * 128;
            assert_eq!(scalar.l1().contains(addr), batched.l1().contains(addr));
            assert_eq!(scalar.l2().contains(addr), batched.l2().contains(addr));
        }
    }

    #[test]
    fn batched_hit_is_free_and_miss_is_not() {
        let mut m = p4();
        let probe = [BatchAccess {
            addr: 0x2000,
            size: 8,
            kind: AccessKind::Read,
        }];
        let mut outs = Vec::new();
        m.access_batch(&probe, &mut outs);
        assert!(outs[0].l1_miss && outs[0].dtlb_miss);
        assert_eq!(outs[0].cycles, 2 + 18 + 200 + 30, "cold miss pays in full");
        m.access_batch(&probe, &mut outs);
        assert_eq!(outs[1].cycles, 0, "warm batched hit is overlapped");
        // The scalar path still charges the serial L1 hit latency.
        assert_eq!(m.access(0x2000, 8, AccessKind::Read).cycles, 2);
    }

    #[test]
    fn reset_stats_zeroes_component_counters_too() {
        let mut m = p4();
        for i in 0..16u64 {
            m.access(i * 2048, 8, AccessKind::Read);
        }
        m.access(0x0, 8, AccessKind::Read);
        m.reset_stats();
        let s = m.stats();
        assert_eq!(
            (s.l1_hits, s.l1_evictions, s.l2_hits, s.dtlb_hits),
            (0, 0, 0, 0)
        );
    }
}
