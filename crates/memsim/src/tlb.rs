//! Fully associative data TLB with LRU replacement.

/// A fully associative translation lookaside buffer.
///
/// Tracks which virtual pages have cached translations; a miss costs a
/// page-walk penalty (see [`crate::LatencyModel::tlb_miss`]).
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: usize,
    page_shift: u32,
    /// Resident page numbers, most recently used first.
    pages: Vec<u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Tlb {
    /// Create an empty TLB with `entries` slots for pages of `page_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two or `entries` is zero.
    #[must_use]
    pub fn new(entries: usize, page_bytes: u64) -> Self {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(entries > 0, "TLB must have at least one entry");
        Tlb {
            entries,
            page_shift: page_bytes.trailing_zeros(),
            pages: Vec::with_capacity(entries),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Translate the page containing `addr`; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let page = addr >> self.page_shift;
        if let Some(pos) = self.pages.iter().position(|&p| p == page) {
            let p = self.pages.remove(pos);
            self.pages.insert(0, p);
            self.hits += 1;
            true
        } else {
            if self.pages.len() == self.entries {
                self.pages.pop();
                self.evictions += 1;
            }
            self.pages.insert(0, page);
            self.misses += 1;
            false
        }
    }

    /// Drop all translations (context-switch / GC pollution model).
    pub fn flush(&mut self) {
        self.pages.clear();
    }

    /// Hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Translations evicted by LRU replacement (`flush` does not count).
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(2, 4096);
        assert!(!t.access(0x0000));
        assert!(t.access(0x0fff));
        assert!(!t.access(0x1000), "next page misses");
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2, 4096);
        t.access(0x0000);
        t.access(0x1000);
        t.access(0x0000); // page 0 MRU
        t.access(0x2000); // evicts page 1
        assert!(t.access(0x0000));
        assert!(!t.access(0x1000));
    }

    #[test]
    fn flush_forgets_everything() {
        let mut t = Tlb::new(4, 4096);
        t.access(0x0000);
        t.flush();
        assert!(!t.access(0x0000));
    }

    #[test]
    fn stats_count() {
        let mut t = Tlb::new(4, 4096);
        t.access(0);
        t.access(0);
        t.access(4096);
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
    }
}
