//! Hardware stream prefetcher.
//!
//! The Pentium 4 "includes hardware-based prefetching of data streams"
//! (Section 6.1). This model detects ascending sequential line streams in
//! the L2 miss stream and, once a stream is confirmed, pulls the next
//! `depth` lines into L2. It tracks a small number of concurrent streams,
//! as real prefetchers do.

/// A detected (or candidate) stream of sequential line addresses.
#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Next line address the stream expects to see.
    next_line: u64,
    /// Number of sequential hits observed; a stream is confirmed at 2.
    confidence: u8,
    /// Age counter for replacement.
    last_use: u64,
}

/// Detects sequential miss streams and proposes prefetch addresses.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    streams: Vec<Stream>,
    max_streams: usize,
    line_bytes: u64,
    depth: u64,
    tick: u64,
    issued: u64,
}

impl StreamPrefetcher {
    /// Create a prefetcher for `line_bytes` lines pulling `depth` lines
    /// ahead, tracking up to 8 concurrent streams.
    #[must_use]
    pub fn new(line_bytes: u64, depth: u64) -> Self {
        StreamPrefetcher {
            streams: Vec::new(),
            max_streams: 8,
            line_bytes,
            depth,
            tick: 0,
            issued: 0,
        }
    }

    /// Observe a demand L2 miss at `addr`; returns the line addresses to
    /// prefetch (empty while no stream is confirmed).
    pub fn observe_miss(&mut self, addr: u64) -> Vec<u64> {
        self.tick += 1;
        let line = addr & !(self.line_bytes - 1);
        if let Some(s) = self.streams.iter_mut().find(|s| s.next_line == line) {
            s.confidence = s.confidence.saturating_add(1);
            s.next_line = line + self.line_bytes;
            s.last_use = self.tick;
            if s.confidence >= 2 {
                let base = line + self.line_bytes;
                let out: Vec<u64> = (0..self.depth)
                    .map(|i| base + i * self.line_bytes)
                    .collect();
                self.issued += out.len() as u64;
                return out;
            }
            return Vec::new();
        }
        // New candidate stream starting after this line.
        let candidate = Stream {
            next_line: line + self.line_bytes,
            confidence: 1,
            last_use: self.tick,
        };
        if self.streams.len() < self.max_streams {
            self.streams.push(candidate);
        } else if let Some(oldest) = self.streams.iter_mut().min_by_key(|s| s.last_use) {
            *oldest = candidate;
        }
        Vec::new()
    }

    /// Total prefetches proposed so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Forget all streams (GC / phase-change pollution model).
    pub fn flush(&mut self) {
        self.streams.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_is_detected_after_two_misses() {
        let mut p = StreamPrefetcher::new(128, 2);
        assert!(
            p.observe_miss(0x0000).is_empty(),
            "first miss: candidate only"
        );
        let pf = p.observe_miss(0x0080);
        assert_eq!(pf, vec![0x0100, 0x0180], "second sequential miss confirms");
    }

    #[test]
    fn random_misses_never_prefetch() {
        let mut p = StreamPrefetcher::new(128, 2);
        for addr in [0x0000u64, 0x5000, 0x2000, 0x9000, 0x4000] {
            assert!(p.observe_miss(addr).is_empty());
        }
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn multiple_concurrent_streams() {
        let mut p = StreamPrefetcher::new(128, 1);
        p.observe_miss(0x0000);
        p.observe_miss(0x10000);
        assert!(!p.observe_miss(0x0080).is_empty());
        assert!(!p.observe_miss(0x10080).is_empty());
    }

    #[test]
    fn flush_forgets_streams() {
        let mut p = StreamPrefetcher::new(128, 1);
        p.observe_miss(0x0000);
        p.flush();
        assert!(
            p.observe_miss(0x0080).is_empty(),
            "stream state was dropped"
        );
    }
}
