//! Deterministic memory-hierarchy simulator for the hpmopt runtime.
//!
//! Models the machine of the paper's evaluation (Section 6.1): a 3 GHz
//! Pentium 4 with a 16 KB L1 data cache, a 1 MB unified L2, 128-byte cache
//! lines, a data TLB, and a hardware stream prefetcher. The simulator is
//! the stand-in for the real memory system: every heap access the VM
//! executes is played through [`MemoryHierarchy::access`], which returns
//! the latency in cycles and the set of performance *events* (L1 miss,
//! L2 miss, DTLB miss) the access raised. Those events are what the
//! PEBS-style sampling unit in `hpmopt-hpm` samples.
//!
//! Everything is deterministic: same access stream, same outcomes.
//!
//! # Example
//!
//! ```
//! use hpmopt_memsim::{AccessKind, MemoryHierarchy, MemConfig};
//!
//! let mut mem = MemoryHierarchy::new(MemConfig::pentium4());
//! let cold = mem.access(0x1_0000, 8, AccessKind::Read);
//! assert!(cold.l1_miss && cold.l2_miss);
//! let warm = mem.access(0x1_0008, 8, AccessKind::Read);
//! assert!(!warm.l1_miss, "same 128-byte line is now resident");
//! assert!(warm.cycles < cold.cycles);
//! ```

pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod prefetch;
pub mod tlb;

pub use cache::{Cache, CacheGeometry};
pub use config::{LatencyModel, MemConfig};
pub use hierarchy::{AccessKind, AccessOutcome, BatchAccess, MemStats, MemoryHierarchy};
pub use prefetch::StreamPrefetcher;
pub use tlb::Tlb;

/// A hardware performance event a memory access can raise.
///
/// The P4's PEBS unit can be programmed for exactly one of these at a time
/// (Section 3.1 of the paper), a restriction `hpmopt-hpm` preserves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EventKind {
    /// L1 data-cache miss (the event driving the co-allocation optimization).
    #[default]
    L1DMiss,
    /// Unified L2 miss.
    L2Miss,
    /// Data-TLB miss.
    DtlbMiss,
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventKind::L1DMiss => f.write_str("L1D_MISS"),
            EventKind::L2Miss => f.write_str("L2_MISS"),
            EventKind::DtlbMiss => f.write_str("DTLB_MISS"),
        }
    }
}

impl EventKind {
    /// All selectable events.
    #[must_use]
    pub const fn all() -> [EventKind; 3] {
        [EventKind::L1DMiss, EventKind::L2Miss, EventKind::DtlbMiss]
    }
}
