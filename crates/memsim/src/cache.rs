//! Set-associative cache with true-LRU replacement.

/// Geometry of one cache level.
///
/// All three parameters must be powers of two and consistent
/// (`size = sets * line * associativity`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    size_bytes: u64,
    line_bytes: u64,
    associativity: usize,
}

impl CacheGeometry {
    /// Create a geometry.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or not a power of two, or if the
    /// configuration yields zero sets.
    #[must_use]
    pub fn new(size_bytes: u64, line_bytes: u64, associativity: usize) -> Self {
        assert!(
            size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            associativity.is_power_of_two(),
            "associativity must be a power of two"
        );
        let sets = size_bytes / (line_bytes * associativity as u64);
        assert!(sets >= 1, "cache must have at least one set");
        CacheGeometry {
            size_bytes,
            line_bytes,
            associativity,
        }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn size_bytes(self) -> u64 {
        self.size_bytes
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line_bytes(self) -> u64 {
        self.line_bytes
    }

    /// Ways per set.
    #[must_use]
    pub fn associativity(self) -> usize {
        self.associativity
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(self) -> u64 {
        self.size_bytes / (self.line_bytes * self.associativity as u64)
    }

    /// The line-granular address of `addr` (low bits cleared).
    #[must_use]
    pub fn line_of(self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }

    fn set_index(self, addr: u64) -> usize {
        ((addr / self.line_bytes) & (self.sets() - 1)) as usize
    }
}

/// One set-associative cache level with LRU replacement.
///
/// Tags are full line addresses; the simulator does not store data (the
/// heap holds the data; the cache only answers hit/miss).
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    /// Per set: resident line addresses, most recently used first.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Cache {
    /// Create an empty (cold) cache.
    #[must_use]
    pub fn new(geometry: CacheGeometry) -> Self {
        Cache {
            sets: vec![Vec::with_capacity(geometry.associativity()); geometry.sets() as usize],
            geometry,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Access the line containing `addr`; returns `true` on hit. On a miss
    /// the line is filled (write-allocate) and the LRU line of the set is
    /// evicted.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = self.geometry.line_of(addr);
        let set = &mut self.sets[self.geometry.set_index(addr)];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let l = set.remove(pos);
            set.insert(0, l);
            self.hits += 1;
            true
        } else {
            if set.len() == self.geometry.associativity() {
                set.pop();
                self.evictions += 1;
            }
            set.insert(0, line);
            self.misses += 1;
            false
        }
    }

    /// Fill the line containing `addr` without counting a demand access
    /// (used by the prefetcher). The filled line is inserted in LRU
    /// position so a useless prefetch is evicted first.
    pub fn fill_prefetch(&mut self, addr: u64) {
        let line = self.geometry.line_of(addr);
        let assoc = self.geometry.associativity();
        let set = &mut self.sets[self.geometry.set_index(addr)];
        if set.contains(&line) {
            return;
        }
        if set.len() == assoc {
            set.pop();
            self.evictions += 1;
        }
        set.push(line);
    }

    /// Whether the line containing `addr` is resident (no LRU update).
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let line = self.geometry.line_of(addr);
        self.sets[self.geometry.set_index(addr)].contains(&line)
    }

    /// Invalidate every line (used to model the cache pollution of a full
    /// garbage collection).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Demand hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lines evicted by capacity/conflict replacement (demand fills and
    /// prefetch fills alike; `flush` does not count).
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of currently resident lines.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets, 2 ways, 64-byte lines.
        Cache::new(CacheGeometry::new(256, 64, 2))
    }

    #[test]
    fn miss_then_hit_same_line() {
        let mut c = tiny();
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x13f), "same 64-byte line");
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Set 0 lines: multiples of 128 (2 sets * 64B lines).
        c.access(0x000);
        c.access(0x080);
        c.access(0x000); // 0x000 now MRU
        c.access(0x100); // evicts LRU = 0x080
        assert!(c.contains(0x000));
        assert!(!c.contains(0x080));
        assert!(c.contains(0x100));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0x000); // set 0
        c.access(0x040); // set 1
        c.access(0x080); // set 0
        c.access(0x0c0); // set 1
        assert_eq!(c.resident_lines(), 4);
        assert!(c.contains(0x000) && c.contains(0x040));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        c.access(0x000);
        c.access(0x040);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.contains(0x000));
    }

    #[test]
    fn prefetch_fill_is_lru_positioned() {
        let mut c = tiny();
        c.access(0x000); // MRU of set 0
        c.fill_prefetch(0x080); // LRU of set 0
        c.access(0x100); // evicts the prefetched line, not the demand line
        assert!(c.contains(0x000));
        assert!(!c.contains(0x080));
    }

    #[test]
    fn prefetch_fill_does_not_count_stats() {
        let mut c = tiny();
        c.fill_prefetch(0x000);
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(c.access(0x000), "prefetched line hits");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = CacheGeometry::new(300, 64, 2);
    }

    #[test]
    fn line_of_masks_low_bits() {
        let g = CacheGeometry::new(256, 64, 2);
        assert_eq!(g.line_of(0x7f), 0x40);
        assert_eq!(g.line_of(0x40), 0x40);
    }
}
