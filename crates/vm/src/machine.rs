//! Compiled-code artifacts and machine-code maps.
//!
//! The definitions moved to [`hpmopt_jit::code`] when the tiered JIT
//! became its own subsystem — the VM, the sample-attribution pipeline,
//! and the code cache all need one shared notion of an artifact. This
//! module re-exports them so `hpmopt_vm::machine::{CompiledCode, McMap,
//! Tier}` paths keep working.

pub use hpmopt_jit::code::{CompiledCode, McMap, Tier, GCMAP_ENTRY_BYTES, MCMAP_ENTRY_BYTES};
