//! Sorted table of compiled-code address ranges.
//!
//! "For this lookup we keep a sorted table of all methods with their start
//! and end address. Whenever a method is compiled the first time or
//! recompiled ... we update its entry accordingly." (Section 4.2). With
//! the default unbounded code cache old artifacts stay registered —
//! compiled code lives in the immortal space and is never collected —
//! but only the newest artifact per method is executed. A bounded code
//! cache instead [`MethodTable::remove`]s a range when it frees or
//! evicts the artifact, so the address space can be reused by later
//! compilations.

use hpmopt_bytecode::MethodId;

use crate::machine::Tier;

/// One code range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeRange {
    /// First code address.
    pub start: u64,
    /// One past the last code address.
    pub end: u64,
    /// The method occupying the range.
    pub method: MethodId,
    /// Tier of the artifact.
    pub tier: Tier,
}

/// Sorted, non-overlapping code ranges with binary-search PC lookup.
#[derive(Debug, Clone, Default)]
pub struct MethodTable {
    ranges: Vec<CodeRange>,
}

impl MethodTable {
    /// Create an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a freshly compiled artifact's range.
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps an existing one (the code-space
    /// allocator hands out disjoint ranges).
    pub fn insert(&mut self, range: CodeRange) {
        let pos = self.ranges.partition_point(|r| r.start < range.start);
        if let Some(prev) = pos.checked_sub(1).and_then(|i| self.ranges.get(i)) {
            assert!(prev.end <= range.start, "overlapping code ranges");
        }
        if let Some(next) = self.ranges.get(pos) {
            assert!(range.end <= next.start, "overlapping code ranges");
        }
        self.ranges.insert(pos, range);
    }

    /// Unregister the range starting at `start` (its artifact was freed
    /// or evicted by the bounded code cache), returning it if present.
    pub fn remove(&mut self, start: u64) -> Option<CodeRange> {
        let pos = self.ranges.partition_point(|r| r.start < start);
        if self.ranges.get(pos).is_some_and(|r| r.start == start) {
            Some(self.ranges.remove(pos))
        } else {
            None
        }
    }

    /// The range containing `pc`, if any.
    #[must_use]
    pub fn lookup(&self, pc: u64) -> Option<CodeRange> {
        let pos = self.ranges.partition_point(|r| r.end <= pc);
        self.ranges.get(pos).filter(|r| r.start <= pc).copied()
    }

    /// Number of registered ranges (recompilation adds a second range for
    /// the same method — stale artifacts are retained).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether no code has been compiled yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// All ranges in address order.
    #[must_use]
    pub fn ranges(&self) -> &[CodeRange] {
        &self.ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(start: u64, end: u64, m: u32) -> CodeRange {
        CodeRange {
            start,
            end,
            method: MethodId(m),
            tier: Tier::Baseline,
        }
    }

    #[test]
    fn lookup_finds_containing_range() {
        let mut t = MethodTable::new();
        t.insert(range(100, 200, 0));
        t.insert(range(300, 350, 1));
        assert_eq!(t.lookup(100).unwrap().method, MethodId(0));
        assert_eq!(t.lookup(199).unwrap().method, MethodId(0));
        assert_eq!(t.lookup(200), None, "end is exclusive");
        assert_eq!(t.lookup(320).unwrap().method, MethodId(1));
        assert_eq!(t.lookup(50), None);
        assert_eq!(t.lookup(250), None);
        assert_eq!(t.lookup(400), None);
    }

    #[test]
    fn insert_keeps_sorted_regardless_of_order() {
        let mut t = MethodTable::new();
        t.insert(range(300, 350, 1));
        t.insert(range(100, 200, 0));
        t.insert(range(500, 600, 2));
        let starts: Vec<u64> = t.ranges().iter().map(|r| r.start).collect();
        assert_eq!(starts, vec![100, 300, 500]);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_rejected() {
        let mut t = MethodTable::new();
        t.insert(range(100, 200, 0));
        t.insert(range(150, 250, 1));
    }

    #[test]
    fn remove_unregisters_exactly_the_named_range() {
        let mut t = MethodTable::new();
        t.insert(range(100, 200, 0));
        t.insert(range(300, 350, 1));
        assert_eq!(t.remove(150), None, "only a start address matches");
        let gone = t.remove(100).expect("registered range");
        assert_eq!(gone.method, MethodId(0));
        assert_eq!(t.lookup(150), None, "freed range no longer resolves");
        assert_eq!(t.lookup(320).unwrap().method, MethodId(1));
        // The freed address span can be re-registered without tripping
        // the overlap assertion — this is how eviction reuses addresses.
        t.insert(range(100, 180, 2));
        assert_eq!(t.lookup(150).unwrap().method, MethodId(2));
    }

    #[test]
    fn recompiled_method_appears_twice() {
        let mut t = MethodTable::new();
        t.insert(range(100, 200, 0));
        t.insert(CodeRange {
            start: 200,
            end: 260,
            method: MethodId(0),
            tier: Tier::Opt,
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup(100).unwrap().tier, Tier::Baseline);
        assert_eq!(t.lookup(210).unwrap().tier, Tier::Opt);
    }
}
