//! VM configuration.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hpmopt_gc::HeapConfig;
use hpmopt_memsim::MemConfig;

use hpmopt_jit::{CompilationPlan, JitConfig};

/// Shared cancellation flag for a running VM. Clone-cheap (an `Arc`
/// internally); any holder can request cancellation and the VM notices
/// at the next poll boundary, failing the run with
/// [`crate::VmError::Cancelled`]. The service layer hands one to each
/// job so an operator (or a tenant cap) can stop a runaway execution
/// without touching any other tenant's VM.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation; idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Complete configuration of a [`crate::Vm`].
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Heap sizing and collector choice.
    pub heap: HeapConfig,
    /// Memory-hierarchy geometry and latencies.
    pub mem: MemConfig,
    /// Tiered-JIT settings: tier-1 (opt) timer sampling, tier-2 (region)
    /// back-edge promotion, and the code-cache capacity.
    pub jit: JitConfig,
    /// Pseudo-adaptive compilation plan; when set, the listed methods are
    /// opt-compiled at first invocation and timer recompilation is
    /// disabled (the paper's reproducibility device).
    pub plan: Option<CompilationPlan>,
    /// Apply the paper's compiler extension: opt-tier machine-code maps
    /// cover every instruction (not just GC points).
    pub full_mcmaps: bool,
    /// Abort after this many bytecodes (guard for tests); `None` = run to
    /// completion.
    pub step_limit: Option<u64>,
    /// Abort once the simulated clock reaches this many cycles, failing
    /// the run with [`crate::VmError::CycleBudget`]. This is the
    /// per-job resource cap of the service layer: a tenant's job that
    /// exhausts its budget is killed deterministically (the budget is in
    /// simulated cycles, so the kill point is identical across reruns
    /// and worker counts). `None` = unlimited.
    pub cycle_budget: Option<u64>,
    /// Cooperative cancellation flag, checked at poll boundaries (every
    /// few thousand bytecodes). `None` = not cancellable.
    pub cancel: Option<CancelToken>,
    /// Maximum call depth.
    pub max_call_depth: usize,
    /// Cycles charged per method call for frame setup (added to the
    /// callee's machine instructions).
    pub call_overhead_cycles: u64,
    /// Frame-setup cycles for a call whose inline cache hit: the callee's
    /// entry point, arity, and frame size were resolved when the site was
    /// linked, so only the register save/restore remains. Charged by the
    /// fast engine instead of [`VmConfig::call_overhead_cycles`] on a
    /// cache hit.
    pub linked_call_overhead_cycles: u64,
    /// Machine instructions retired per cycle for non-memory work. The
    /// P4 "can issue several instructions in parallel" (Section 6.1);
    /// memory latency is charged on top, so a higher width makes programs
    /// more memory-bound, as on the real machine.
    pub issue_width: u64,
    /// Cycles charged per bytecode when the baseline compiler installs a
    /// method. Zero (the default) models compilation as free, which is
    /// the seed behaviour; the report harness sets both costs so the
    /// overhead accountant can carve out a recompilation bucket.
    pub baseline_compile_cycles_per_bc: u64,
    /// Cycles charged per bytecode for an optimizing (tier-up)
    /// compilation. Zero by default; see
    /// [`VmConfig::baseline_compile_cycles_per_bc`].
    pub opt_compile_cycles_per_bc: u64,
    /// Enable monomorphic inline caches at `GetField`/`PutField`/`Call`
    /// sites: a site whose receiver class (or callee artifact) matches
    /// the cached key retires the fast-path machine-instruction count
    /// (see [`crate::compiler::ic_hit_count`]). Purely a cost-model
    /// lever — program semantics and state digests are identical with
    /// caches on or off, which the stress oracles assert.
    pub inline_caches: bool,
    /// Run [`hpmopt_gc::Heap::verify`] over the live object graph after
    /// every collection, failing the run with
    /// [`crate::VmError::HeapCorrupt`] at the collection that caused the
    /// damage. Off by default (it walks the whole live heap); the stress
    /// engine and the tier-1 pipeline tests enable it.
    pub verify_heap_every_gc: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            heap: HeapConfig::standard(),
            mem: MemConfig::pentium4(),
            jit: JitConfig::default(),
            plan: None,
            full_mcmaps: true,
            step_limit: None,
            cycle_budget: None,
            cancel: None,
            max_call_depth: 2048,
            call_overhead_cycles: 10,
            linked_call_overhead_cycles: 4,
            issue_width: 3,
            baseline_compile_cycles_per_bc: 0,
            opt_compile_cycles_per_bc: 0,
            inline_caches: true,
            verify_heap_every_gc: false,
        }
    }
}

impl VmConfig {
    /// A small configuration for unit tests: tiny heap, tier-1 sampling
    /// enabled with a short timer so tier transitions are observable
    /// quickly.
    #[must_use]
    pub fn test() -> Self {
        VmConfig {
            heap: HeapConfig::small(),
            mem: MemConfig::pentium4(),
            jit: JitConfig {
                sample_period_cycles: 50_000,
                tier1_threshold: 2,
                ..JitConfig::default()
            },
            plan: None,
            full_mcmaps: true,
            step_limit: Some(50_000_000),
            cycle_budget: None,
            cancel: None,
            max_call_depth: 512,
            call_overhead_cycles: 10,
            linked_call_overhead_cycles: 4,
            issue_width: 3,
            baseline_compile_cycles_per_bc: 0,
            opt_compile_cycles_per_bc: 0,
            inline_caches: true,
            verify_heap_every_gc: false,
        }
    }

    /// Replace the heap configuration.
    #[must_use]
    pub fn with_heap(mut self, heap: HeapConfig) -> Self {
        self.heap = heap;
        self
    }

    /// Install a pseudo-adaptive compilation plan.
    #[must_use]
    pub fn with_plan(mut self, plan: CompilationPlan) -> Self {
        self.plan = Some(plan);
        self
    }
}
