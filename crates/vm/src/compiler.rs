//! The baseline and optimizing "compilers".
//!
//! The simulation does not generate executable x86; what the rest of the
//! system needs from a compiler is exactly what these functions produce:
//!
//! 1. a concrete code-address range per method (so samples carry PCs),
//! 2. a per-bytecode machine-instruction count (the cycle cost model —
//!    opt code executes fewer machine instructions per bytecode),
//! 3. machine-code maps and GC maps with realistic relative sizes
//!    (Table 2 measures their space overhead).
//!
//! The per-opcode instruction counts are loosely calibrated against what
//! Jikes RVM's tiers emit for JVM bytecode on IA-32: baseline code keeps
//! the operand stack in memory (several instructions per bytecode), while
//! opt code holds temporaries in registers.

use hpmopt_bytecode::{Instr, MethodId, Program};

use crate::machine::{CompiledCode, McMap, Tier};

/// The per-opcode cost table: machine instructions emitted per bytecode
/// as `(baseline, opt, region)`. This is the **single source of truth**
/// for the instruction-count cost model — [`compile`] lays out every
/// artifact from it and `predecode` takes its costs from the laid-out
/// artifact, so a decoded cost can never drift from this table (the
/// `artifact_counts_match_the_cost_table` test pins the chain).
///
/// Region code is the tier-2 compiler's output for a method's hot block
/// sequence: scheduling over a larger scope shaves an instruction off
/// the heavier memory-access bytecodes relative to opt code.
fn tier_counts(i: Instr) -> (u32, u32, u32) {
    match i {
        Instr::Const(_) | Instr::ConstNull => (2, 1, 1),
        Instr::Load(_) | Instr::Store(_) => (2, 1, 1),
        Instr::Dup | Instr::Pop | Instr::Swap => (2, 1, 1),
        Instr::Add
        | Instr::Sub
        | Instr::And
        | Instr::Or
        | Instr::Xor
        | Instr::Shl
        | Instr::Shr
        | Instr::UShr
        | Instr::Neg => (3, 1, 1),
        Instr::Mul => (3, 2, 2),
        Instr::Div | Instr::Rem => (5, 3, 3),
        Instr::Eq | Instr::Ne | Instr::Lt | Instr::Le | Instr::Gt | Instr::Ge => (3, 1, 1),
        Instr::Jump(_) => (1, 1, 1),
        Instr::JumpIf(_) | Instr::JumpIfNot(_) => (3, 2, 1),
        Instr::New(_) => (8, 5, 4),
        Instr::NewArray(_) => (9, 6, 5),
        Instr::GetField(_) => (4, 2, 1),
        Instr::PutField(_) => (5, 3, 2),
        Instr::GetStatic(_) | Instr::PutStatic(_) => (3, 2, 2),
        Instr::ArrayGet(_) => (5, 3, 2),
        Instr::ArraySet(_) => (6, 4, 3),
        Instr::ArrayLen => (3, 2, 1),
        Instr::IsNull | Instr::RefEq => (3, 1, 1),
        Instr::Call(_) => (6, 4, 4),
        Instr::Return | Instr::ReturnVal => (3, 2, 2),
    }
}

/// Machine instructions the given tier emits for one bytecode.
#[must_use]
pub fn mach_instr_count(i: Instr, tier: Tier) -> u32 {
    let (baseline, opt, region) = tier_counts(i);
    match tier {
        Tier::Baseline => baseline,
        Tier::Opt => opt,
        Tier::Region => region,
    }
}

/// Machine-code bytes the given tier emits for a whole method body —
/// what the code cache must reserve before [`compile`] runs. Summing
/// [`mach_instr_count`] guarantees the reservation matches the artifact.
#[must_use]
pub fn compiled_code_bytes(program: &Program, method: MethodId, tier: Tier) -> u64 {
    let mach: u64 = program
        .method(method)
        .body()
        .iter()
        .map(|&i| u64::from(mach_instr_count(i, tier)))
        .sum();
    mach * crate::MACH_INSTR_BYTES
}

/// Machine instructions retired at a monomorphic inline-cache *hit* for
/// the cacheable sites (`GetField`/`PutField`/`Call`), or `None` when
/// the instruction has no inline cache. A hit skips the class/
/// method-table lookup the full sequence in [`mach_instr_count`]
/// performs; a miss (including the first execution at a site) retires
/// the full sequence and re-keys the cache. The *laid-out* code is
/// unchanged — the fast path jumps over the slow-path tail — which is
/// why code addresses, MC maps, and GC maps are identical with caches
/// on or off; only the dynamic retired-instruction count changes.
#[must_use]
pub fn ic_hit_count(i: Instr, tier: Tier) -> Option<u32> {
    let (baseline, opt, region) = match i {
        Instr::GetField(_) => (2, 1, 1),
        Instr::PutField(_) => (3, 2, 2),
        Instr::Call(_) => (3, 2, 2),
        _ => return None,
    };
    Some(match tier {
        Tier::Baseline => baseline,
        Tier::Opt => opt,
        Tier::Region => region,
    })
}

/// Compile `method` at `tier`, placing the code at `code_start`.
///
/// `full_maps` controls opt-tier mapping: `true` applies the paper's
/// extension (a bytecode-index entry for *every* machine instruction);
/// `false` keeps the stock GC-point-only map. Baseline code always gets
/// full maps, as in Jikes (Section 4.2).
#[must_use]
pub fn compile(
    program: &Program,
    method: MethodId,
    tier: Tier,
    code_start: u64,
    full_maps: bool,
) -> CompiledCode {
    let body = program.method(method).body();
    let mut counts = Vec::with_capacity(body.len());
    let mut full: Vec<u32> = Vec::new();
    let mut gc_entries: Vec<(u32, u32)> = Vec::new();
    let mut gc_points: Vec<u32> = Vec::new();
    let mut mach = 0u32;

    for (bc, &i) in body.iter().enumerate() {
        let n = mach_instr_count(i, tier);
        counts.push(n);
        for _ in 0..n {
            full.push(bc as u32);
        }
        if i.is_gc_point() {
            // The GC point is the last machine instruction of the bytecode
            // (the allocation / call itself).
            let at = mach + n - 1;
            gc_points.push(at);
            gc_entries.push((at, bc as u32));
        }
        mach += n;
    }

    let mc_map = if tier == Tier::Baseline || full_maps {
        McMap::Full(full)
    } else {
        McMap::GcPointsOnly(gc_entries)
    };
    CompiledCode::new(method, tier, code_start, &counts, mc_map, gc_points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
    use hpmopt_bytecode::FieldType;

    fn program() -> (Program, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", &[("f", FieldType::Ref)]);
        let f = pb.field_id(c, "f").unwrap();
        let mut m = MethodBuilder::new("main", 0, 1, false);
        m.new_object(c); // GC point
        m.store(0);
        m.load(0);
        m.get_field(f); // heap access
        m.pop();
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        (pb.finish().unwrap(), id)
    }

    #[test]
    fn opt_code_is_denser_than_baseline() {
        let (p, id) = program();
        let base = compile(&p, id, Tier::Baseline, 0x4000_0000, true);
        let opt = compile(&p, id, Tier::Opt, 0x5000_0000, true);
        assert!(opt.machine_len() < base.machine_len());
        assert_eq!(base.tier, Tier::Baseline);
        assert_eq!(opt.tier, Tier::Opt);
    }

    #[test]
    fn baseline_always_has_full_maps() {
        let (p, id) = program();
        let base = compile(&p, id, Tier::Baseline, 0x4000_0000, false);
        assert!(matches!(base.mc_map, McMap::Full(_)));
    }

    #[test]
    fn opt_without_extension_maps_only_gc_points() {
        let (p, id) = program();
        let opt = compile(&p, id, Tier::Opt, 0x4000_0000, false);
        let McMap::GcPointsOnly(entries) = &opt.mc_map else {
            panic!("expected GC-point map");
        };
        assert_eq!(entries.len(), 1, "exactly the New instruction");
        // The heap access at bytecode 3 is unmapped → sample unattributable.
        let get_field_pc = opt.mem_pc(3);
        assert_eq!(opt.bytecode_at(get_field_pc), None);
    }

    #[test]
    fn opt_with_extension_maps_every_instruction() {
        let (p, id) = program();
        let opt = compile(&p, id, Tier::Opt, 0x4000_0000, true);
        let get_field_pc = opt.mem_pc(3);
        assert_eq!(opt.bytecode_at(get_field_pc), Some(3));
    }

    #[test]
    fn mc_maps_are_several_times_gc_maps() {
        // Table 2's headline: full MC maps are ~4-5× the GC maps.
        let (p, id) = program();
        let base = compile(&p, id, Tier::Baseline, 0x4000_0000, true);
        assert!(base.mc_map.size_bytes() > 2 * base.gc_map_bytes());
    }

    #[test]
    fn every_bytecode_lowered_to_at_least_one_instruction() {
        let (p, id) = program();
        let c = compile(&p, id, Tier::Opt, 0, true);
        for bc in 0..p.method(id).len() {
            assert!(c.mach_count(bc) >= 1);
        }
    }

    #[test]
    fn artifact_counts_match_the_cost_table() {
        // The single-source-of-truth chain: whatever the artifact says a
        // bytecode costs must be exactly `mach_instr_count` — predecode
        // reads the artifact, so it can never drift from the table.
        let (p, id) = program();
        for tier in [Tier::Baseline, Tier::Opt, Tier::Region] {
            let c = compile(&p, id, tier, 0x4000_0000, true);
            for (bc, &i) in p.method(id).body().iter().enumerate() {
                assert_eq!(
                    c.mach_count(bc),
                    mach_instr_count(i, tier),
                    "count drift at bc {bc} tier {tier}"
                );
            }
            assert_eq!(
                c.machine_code_bytes(),
                compiled_code_bytes(&p, id, tier),
                "reservation size must match the artifact at {tier}"
            );
        }
    }

    #[test]
    fn higher_tiers_never_emit_more_instructions() {
        let (p, id) = program();
        for &i in p.method(id).body() {
            let b = mach_instr_count(i, Tier::Baseline);
            let o = mach_instr_count(i, Tier::Opt);
            let r = mach_instr_count(i, Tier::Region);
            assert!(r <= o && o <= b, "tier monotonicity broken for {i:?}");
            if let Some(hit) = ic_hit_count(i, Tier::Region) {
                assert!(hit <= r, "IC hit cannot beat the full region count");
            }
        }
    }
}
