//! Runtime values and execution errors.

use hpmopt_gc::Address;

/// A tagged runtime value: the interpreter distinguishes integers from
/// references so the collector can enumerate exact roots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// A 64-bit integer.
    Int(i64),
    /// An object reference (possibly null).
    Ref(Address),
}

impl Value {
    /// The null reference.
    #[must_use]
    pub const fn null() -> Value {
        Value::Ref(Address(0))
    }

    /// The integer payload.
    ///
    /// # Errors
    ///
    /// [`VmError::TypeMismatch`] if the value is a reference.
    pub fn as_int(self) -> Result<i64, VmError> {
        match self {
            Value::Int(v) => Ok(v),
            Value::Ref(_) => Err(VmError::TypeMismatch),
        }
    }

    /// The reference payload.
    ///
    /// # Errors
    ///
    /// [`VmError::TypeMismatch`] if the value is an integer.
    pub fn as_ref_addr(self) -> Result<Address, VmError> {
        match self {
            Value::Ref(a) => Ok(a),
            Value::Int(_) => Err(VmError::TypeMismatch),
        }
    }

    /// Whether this is a reference value.
    #[must_use]
    pub fn is_ref(self) -> bool {
        matches!(self, Value::Ref(_))
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Int(0)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Ref(a) if a.is_null() => f.write_str("null"),
            Value::Ref(a) => write!(f, "{a}"),
        }
    }
}

/// Runtime failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// Dereferenced the null reference.
    NullPointer,
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Array index outside `0..len`.
    IndexOutOfBounds,
    /// An integer was used as a reference or vice versa.
    TypeMismatch,
    /// Live data exceeds the configured heap size.
    OutOfMemory,
    /// Call depth exceeded the configured limit.
    StackOverflow,
    /// The configured step limit was reached (runaway-guard for tests).
    StepLimit,
    /// The simulated clock reached the configured per-job cycle budget
    /// ([`crate::VmConfig::cycle_budget`]); the service layer maps this
    /// to a `JobKilled` outcome.
    CycleBudget,
    /// Cancellation was requested through the run's
    /// [`crate::CancelToken`].
    Cancelled,
    /// Post-collection heap verification found a corrupt object graph
    /// (only raised when [`crate::VmConfig::verify_heap_every_gc`] is
    /// set). Call [`crate::Vm::verify_heap`] for the detailed diagnosis.
    HeapCorrupt,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            VmError::NullPointer => "null pointer dereference",
            VmError::DivisionByZero => "division by zero",
            VmError::IndexOutOfBounds => "array index out of bounds",
            VmError::TypeMismatch => "value type mismatch",
            VmError::OutOfMemory => "out of memory",
            VmError::StackOverflow => "call stack overflow",
            VmError::StepLimit => "execution step limit reached",
            VmError::CycleBudget => "simulated cycle budget exhausted",
            VmError::Cancelled => "execution cancelled",
            VmError::HeapCorrupt => "post-collection heap verification failed",
        };
        f.write_str(s)
    }
}

impl std::error::Error for VmError {}

impl From<hpmopt_gc::GcError> for VmError {
    fn from(e: hpmopt_gc::GcError) -> Self {
        match e {
            hpmopt_gc::GcError::OutOfMemory => VmError::OutOfMemory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_enforce_tags() {
        assert_eq!(Value::Int(3).as_int(), Ok(3));
        assert_eq!(Value::Int(3).as_ref_addr(), Err(VmError::TypeMismatch));
        assert_eq!(Value::Ref(Address(8)).as_ref_addr(), Ok(Address(8)));
        assert_eq!(Value::Ref(Address(8)).as_int(), Err(VmError::TypeMismatch));
    }

    #[test]
    fn null_displays() {
        assert_eq!(Value::null().to_string(), "null");
        assert_eq!(Value::Int(-4).to_string(), "-4");
    }

    #[test]
    fn default_is_int_zero() {
        assert_eq!(Value::default(), Value::Int(0));
    }
}
