//! Adaptive optimization system.
//!
//! Reproduces the Jikes RVM AOS behaviour the paper relies on
//! (Section 3.2): the VM samples the currently executing method on a
//! timer; methods sampled often enough are recompiled with the optimizing
//! tier. For reproducible experiments a *pseudo-adaptive*
//! [`CompilationPlan`] pins the exact set of opt-compiled methods, as the
//! paper's evaluation does ("Each program runs with a pre-generated
//! compilation plan", Section 6.1).

use std::collections::HashMap;

use hpmopt_bytecode::MethodId;

/// AOS configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AosConfig {
    /// Whether timer-based recompilation is active.
    pub enabled: bool,
    /// Cycles between call-stack samples (1 ms at 3 GHz by default,
    /// matching Jikes' timer tick).
    pub sample_period_cycles: u64,
    /// Samples of one method that trigger opt recompilation.
    pub opt_threshold: u32,
}

impl Default for AosConfig {
    fn default() -> Self {
        AosConfig {
            enabled: true,
            sample_period_cycles: 3_000_000,
            opt_threshold: 3,
        }
    }
}

/// A pseudo-adaptive compilation plan: the set of methods to opt-compile
/// eagerly, bypassing timer-driven recompilation entirely.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompilationPlan {
    methods: Vec<MethodId>,
}

impl CompilationPlan {
    /// Create a plan from the methods to opt-compile.
    #[must_use]
    pub fn new(mut methods: Vec<MethodId>) -> Self {
        methods.sort_unstable();
        methods.dedup();
        CompilationPlan { methods }
    }

    /// The planned methods, sorted.
    #[must_use]
    pub fn methods(&self) -> &[MethodId] {
        &self.methods
    }

    /// Whether `m` is in the plan.
    #[must_use]
    pub fn contains(&self, m: MethodId) -> bool {
        self.methods.binary_search(&m).is_ok()
    }

    /// Number of planned methods.
    #[must_use]
    pub fn len(&self) -> usize {
        self.methods.len()
    }

    /// Whether the plan is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }
}

/// Timer-sampling AOS state.
#[derive(Debug, Clone)]
pub struct Aos {
    config: AosConfig,
    samples: HashMap<MethodId, u32>,
    next_sample_at: u64,
    opt_compiled: Vec<MethodId>,
}

impl Aos {
    /// Create an AOS with the given configuration.
    #[must_use]
    pub fn new(config: AosConfig) -> Self {
        Aos {
            next_sample_at: config.sample_period_cycles,
            config,
            samples: HashMap::new(),
            opt_compiled: Vec::new(),
        }
    }

    /// Whether the timer fires at `cycles` (the interpreter calls this on
    /// its slow path; cheap check first).
    #[must_use]
    pub fn should_sample(&self, cycles: u64) -> bool {
        self.config.enabled && cycles >= self.next_sample_at
    }

    /// Record a timer sample of the executing method; returns
    /// `Some(method)` when the method just crossed the recompilation
    /// threshold.
    pub fn sample(&mut self, method: MethodId, cycles: u64) -> Option<MethodId> {
        self.next_sample_at =
            cycles - (cycles % self.config.sample_period_cycles) + self.config.sample_period_cycles;
        if self.opt_compiled.contains(&method) {
            return None;
        }
        let n = self.samples.entry(method).or_insert(0);
        *n += 1;
        if *n >= self.config.opt_threshold {
            self.opt_compiled.push(method);
            Some(method)
        } else {
            None
        }
    }

    /// Methods recompiled so far, in recompilation order. Running this
    /// once and feeding the result to [`CompilationPlan::new`] produces
    /// the paper's pseudo-adaptive setup.
    #[must_use]
    pub fn opt_compiled(&self) -> &[MethodId] {
        &self.opt_compiled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_triggers_recompilation_once() {
        let mut aos = Aos::new(AosConfig {
            enabled: true,
            sample_period_cycles: 100,
            opt_threshold: 2,
        });
        let m = MethodId(5);
        assert!(aos.should_sample(100));
        assert_eq!(aos.sample(m, 100), None);
        assert!(!aos.should_sample(150), "next tick at 200");
        assert_eq!(aos.sample(m, 200), Some(m));
        assert_eq!(aos.sample(m, 300), None, "already opt-compiled");
        assert_eq!(aos.opt_compiled(), &[m]);
    }

    #[test]
    fn disabled_aos_never_samples() {
        let aos = Aos::new(AosConfig {
            enabled: false,
            ..AosConfig::default()
        });
        assert!(!aos.should_sample(u64::MAX));
    }

    #[test]
    fn plan_membership() {
        let plan = CompilationPlan::new(vec![MethodId(3), MethodId(1), MethodId(3)]);
        assert_eq!(plan.len(), 2, "deduplicated");
        assert!(plan.contains(MethodId(1)));
        assert!(plan.contains(MethodId(3)));
        assert!(!plan.contains(MethodId(2)));
        assert!(!plan.is_empty());
    }

    #[test]
    fn different_methods_tracked_independently() {
        let mut aos = Aos::new(AosConfig {
            enabled: true,
            sample_period_cycles: 10,
            opt_threshold: 2,
        });
        assert_eq!(aos.sample(MethodId(0), 10), None);
        assert_eq!(aos.sample(MethodId(1), 20), None);
        assert_eq!(aos.sample(MethodId(0), 30), Some(MethodId(0)));
        assert_eq!(aos.sample(MethodId(1), 40), Some(MethodId(1)));
    }
}
