//! The execution engine.
//!
//! Executes bytecode while accounting cycles as the *compiled* code
//! would: each bytecode costs its tier's machine-instruction count, heap
//! accesses additionally pay real (simulated) memory latency, and every
//! heap access is reported to the [`RuntimeHooks`] with the machine PC of
//! its memory instruction — the raw feed a PEBS-style sampling unit sees.

use hpmopt_bytecode::{ElemKind, Instr, MethodId, Program};
use hpmopt_gc::{Address, GcNeeded, GcStats, Heap, TypeTag};
use hpmopt_memsim::{AccessKind, AccessOutcome, BatchAccess, MemStats, MemoryHierarchy};

use hpmopt_jit::{CodeCache, FreedRange, TierManager};

use crate::compiler::{compile, compiled_code_bytes};
use crate::config::{CancelToken, VmConfig};
use crate::hooks::{AccessContext, CodeRetired, RuntimeHooks};
use crate::machine::{CompiledCode, Tier};
use crate::methodtable::{CodeRange, MethodTable};
use crate::predecode::{decode, DecodedMethod, IcSlot, Op, IC_ARRAY_KEY};
use crate::value::{Value, VmError};
use crate::{CODE_BASE, STATICS_BASE};

/// Per-method code-size report (Table 2 rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodCodeSizes {
    /// The method.
    pub method: MethodId,
    /// Current tier.
    pub tier: Tier,
    /// Machine-code bytes.
    pub machine_code_bytes: u64,
    /// GC-map bytes.
    pub gc_map_bytes: u64,
    /// Machine-code-map bytes.
    pub mc_map_bytes: u64,
}

/// Results of one program execution.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Total simulated cycles (application + GC + monitoring overhead).
    pub cycles: u64,
    /// Bytecode instructions executed.
    pub bytecodes_executed: u64,
    /// Cycles charged by the hooks (monitoring overhead).
    pub monitor_cycles: u64,
    /// Cycles charged for collections.
    pub gc_cycles: u64,
    /// Cycles charged for baseline and optimizing compilations (zero
    /// unless the [`crate::VmConfig`] compile costs are set).
    pub compile_cycles: u64,
    /// Memory-hierarchy statistics.
    pub mem: MemStats,
    /// Collector statistics.
    pub gc: GcStats,
    /// Per-method code and map sizes.
    pub code_sizes: Vec<MethodCodeSizes>,
    /// Methods opt-compiled during the run (input for a pseudo-adaptive
    /// compilation plan); includes region-tier methods.
    pub opt_compiled: Vec<MethodId>,
    /// Artifacts evicted by the bounded code cache for capacity (zero
    /// with the default unbounded cache).
    pub code_evictions: u64,
    /// Region-tier deoptimizations back to baseline.
    pub deopts: u64,
}

impl RunSummary {
    /// Total machine-code bytes across methods.
    #[must_use]
    pub fn total_machine_code_bytes(&self) -> u64 {
        self.code_sizes.iter().map(|c| c.machine_code_bytes).sum()
    }

    /// Total GC-map bytes across methods.
    #[must_use]
    pub fn total_gc_map_bytes(&self) -> u64 {
        self.code_sizes.iter().map(|c| c.gc_map_bytes).sum()
    }

    /// Total machine-code-map bytes across methods.
    #[must_use]
    pub fn total_mc_map_bytes(&self) -> u64 {
        self.code_sizes.iter().map(|c| c.mc_map_bytes).sum()
    }
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    method: MethodId,
    pc: usize,
    locals_base: usize,
    stack_base: usize,
}

/// Attribution metadata for one queued heap access, carried alongside
/// the [`BatchAccess`] it describes until the batch is flushed.
#[derive(Debug, Clone, Copy)]
struct PendingMeta {
    mem_pc: u64,
    method: MethodId,
    bc: u32,
    /// Block machine instructions retired before this access issued,
    /// used to reconstruct the access's serial cycle stamp at flush
    /// time.
    mach_before: u64,
}

/// The virtual machine.
///
/// See the [crate-level documentation](crate) for an example.
pub struct Vm<'p> {
    program: &'p Program,
    config: VmConfig,
    heap: Heap,
    mem: MemoryHierarchy,
    compiled: Vec<Option<CompiledCode>>,
    decoded: Vec<Option<DecodedMethod>>,
    generations: Vec<u32>,
    method_table: MethodTable,
    tiers: TierManager,
    cache: CodeCache,
    cycles: u64,
    monitor_cycles: u64,
    compile_cycles: u64,
    gc_cycles_seen: u64,
    bytecodes: u64,
    deopts: u64,
    statics: Vec<Value>,
    locals: Vec<Value>,
    stack: Vec<Value>,
    frames: Vec<Frame>,
    batch_reqs: Vec<BatchAccess>,
    batch_meta: Vec<PendingMeta>,
    batch_outcomes: Vec<AccessOutcome>,
    /// Machine instructions retired by the current block, converted to
    /// cycles (divided by [`Vm::batch_width`]) when the batch flushes.
    batch_mach: u64,
    /// Retirement width of the block's tier (set at frame entry; a batch
    /// never spans a control transfer, so it is single-tier).
    batch_width: u64,
    roots_scratch: Vec<Address>,
}

/// How often (in bytecodes) the hooks' poll callback runs.
const POLL_EVERY_BYTECODES: u64 = 4096;

/// Maximum queued heap accesses before a batch is force-flushed.
const BATCH_CAP: usize = 32;

impl<'p> Vm<'p> {
    /// Create a VM for `program`.
    #[must_use]
    pub fn new(program: &'p Program, config: VmConfig) -> Self {
        let statics = program
            .statics()
            .iter()
            .map(|s| {
                if s.ty().is_ref() {
                    Value::null()
                } else {
                    Value::Int(0)
                }
            })
            .collect();
        Vm {
            heap: Heap::new(program, config.heap.clone()),
            mem: MemoryHierarchy::new(config.mem.clone()),
            compiled: vec![None; program.methods().len()],
            decoded: vec![None; program.methods().len()],
            generations: vec![0; program.methods().len()],
            method_table: MethodTable::new(),
            tiers: TierManager::new(config.jit.clone()),
            cache: CodeCache::new(CODE_BASE, config.jit.code_cache_capacity_bytes),
            cycles: 0,
            monitor_cycles: 0,
            compile_cycles: 0,
            gc_cycles_seen: 0,
            bytecodes: 0,
            deopts: 0,
            statics,
            locals: Vec::new(),
            stack: Vec::new(),
            frames: Vec::new(),
            batch_reqs: Vec::with_capacity(BATCH_CAP),
            batch_meta: Vec::with_capacity(BATCH_CAP),
            batch_outcomes: Vec::with_capacity(BATCH_CAP),
            batch_mach: 0,
            batch_width: 1,
            roots_scratch: Vec::with_capacity(64),
            program,
            config,
        }
    }

    /// The program being executed.
    #[must_use]
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The method table (sampled-PC resolution).
    #[must_use]
    pub fn method_table(&self) -> &MethodTable {
        &self.method_table
    }

    /// The compiled artifact of `m`, if compiled.
    #[must_use]
    pub fn compiled(&self, m: MethodId) -> Option<&CompiledCode> {
        self.compiled[m.0 as usize].as_ref()
    }

    /// Current simulated cycle count.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The value of static variable `index` (program results live in
    /// statics; embedders read them after a run).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the program's statics.
    #[must_use]
    pub fn static_value(&self, index: usize) -> Value {
        self.statics[index]
    }

    /// The current call stack as `(method, bytecode pc)` frames, outermost
    /// first. Useful for diagnosing hangs and step-limit aborts.
    #[must_use]
    pub fn backtrace(&self) -> Vec<(MethodId, usize)> {
        self.frames.iter().map(|f| (f.method, f.pc)).collect()
    }

    /// Walk the heap from the current roots checking object-graph sanity
    /// (valid headers, in-bounds references); returns the live object
    /// count. A debugging aid for embedders.
    ///
    /// # Errors
    ///
    /// Returns a description of the first corruption found.
    pub fn verify_heap(&self) -> Result<u64, String> {
        self.heap.verify(&self.gather_roots())
    }

    /// Canonical, placement-independent digest of the program-visible
    /// state: static values plus the contents and shape of every object
    /// reachable from them (see [`crate::digest`]). Meaningful after
    /// [`Vm::run`] returns, when the statics are the only roots; the
    /// stress engine's differential oracles compare this across runtime
    /// configurations.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        crate::digest::state_digest(self.program, &self.heap, &self.statics)
    }

    /// Run the program to completion.
    ///
    /// The default engine executes pre-decoded bodies with inline caches
    /// and block-batched memory simulation; building with the
    /// `slow-path` feature forces the legacy per-step engine instead
    /// (same semantics and digests, unbatched cost accounting) for
    /// differential debugging.
    ///
    /// # Errors
    ///
    /// Returns the first [`VmError`] raised (null dereference, division by
    /// zero, index error, out of memory, step limit, ...).
    pub fn run<H: RuntimeHooks>(&mut self, hooks: &mut H) -> Result<RunSummary, VmError> {
        hooks.on_startup(self.program, self.cycles);
        let entry = self.program.entry();
        self.ensure_compiled(entry, hooks);
        self.push_frame(entry, 0, self.config.call_overhead_cycles)?;
        if cfg!(feature = "slow-path") {
            self.run_slow(hooks)?;
        } else {
            self.run_fast(hooks)?;
        }
        // Final drain so buffered samples are processed before reporting.
        let overhead = hooks.on_exit(self.program, self.cycles);
        self.cycles += overhead;
        self.monitor_cycles += overhead;
        Ok(self.summary())
    }

    /// The legacy per-step engine: re-decode and re-cost every bytecode
    /// from the artifact on each step, play every heap access through
    /// the hierarchy immediately.
    fn run_slow<H: RuntimeHooks>(&mut self, hooks: &mut H) -> Result<(), VmError> {
        let mut next_poll = POLL_EVERY_BYTECODES;
        while !self.frames.is_empty() {
            self.step(hooks)?;
            self.bytecodes += 1;
            if let Some(limit) = self.config.step_limit {
                if self.bytecodes > limit {
                    return Err(VmError::StepLimit);
                }
            }
            if let Some(budget) = self.config.cycle_budget {
                if self.cycles > budget {
                    return Err(VmError::CycleBudget);
                }
            }
            if self.tiers.should_sample(self.cycles) {
                let current = self.frames.last().map(|f| f.method);
                if let Some(m) = current {
                    // A timer tick that lands in a method is also the
                    // cache's recency signal: sampled code is hot code.
                    self.cache.touch(m, self.cycles);
                    if let Some(hot) = self.tiers.sample(m, self.cycles) {
                        self.recompile(hot, hooks);
                    }
                }
            }
            if self.bytecodes >= next_poll {
                next_poll = self.bytecodes + POLL_EVERY_BYTECODES;
                let overhead = hooks.on_poll(self.program, self.cycles);
                self.cycles += overhead;
                self.monitor_cycles += overhead;
                if self
                    .config
                    .cancel
                    .as_ref()
                    .is_some_and(CancelToken::is_cancelled)
                {
                    return Err(VmError::Cancelled);
                }
            }
        }
        Ok(())
    }

    /// The fast engine: dispatch pre-decoded ops and batch each basic
    /// block's heap accesses through one hierarchy call.
    fn run_fast<H: RuntimeHooks>(&mut self, hooks: &mut H) -> Result<(), VmError> {
        let mut next_poll = POLL_EVERY_BYTECODES;
        let r = self.exec_fast(hooks, &mut next_poll);
        // Any exit — normal or error — drains the batch so the hooks see
        // every access that architecturally completed before the stop
        // point (an erroring op's dispatch cost is never charged, same
        // as the per-step engine).
        self.flush_batch(hooks);
        r
    }

    /// The fast dispatch loop. One iteration of the outer loop pins one
    /// frame's decoded body; the inner loop runs ops of that frame until
    /// control transfers (call/return) or the body is recompiled.
    #[allow(clippy::too_many_lines)]
    fn exec_fast<H: RuntimeHooks>(
        &mut self,
        hooks: &mut H,
        next_poll: &mut u64,
    ) -> Result<(), VmError> {
        'frames: while let Some(&frame) = self.frames.last() {
            let mi = frame.method.0 as usize;
            let method = frame.method;
            let locals_base = frame.locals_base;
            let mut pc = frame.pc;
            let width = self.decoded[mi].as_ref().expect("decoded method").width;
            self.batch_width = width;
            // Taken backward branches in opt-tier code feed the tier-2
            // promotion counters; baseline code is not yet worth a
            // region, and region code already is one.
            let tier2_watch = self.config.jit.tier2_enabled
                && self.decoded[mi].as_ref().expect("decoded method").tier == Tier::Opt;
            loop {
                // Mirror the frame pc eagerly so error paths and GC root
                // scans observe the same frame state as the per-step
                // engine.
                self.frames.last_mut().expect("running frame").pc = pc;
                let dop = self.decoded[mi].as_ref().expect("decoded method").ops[pc];
                let mut cost = u64::from(dop.cost);
                let mut next_pc = pc + 1;
                let bc = pc as u32;

                macro_rules! binop_int {
                    ($f:expr) => {{
                        let b = self.pop()?.as_int()?;
                        let a = self.pop()?.as_int()?;
                        #[allow(clippy::redundant_closure_call)]
                        self.stack.push(Value::Int($f(a, b)));
                    }};
                }

                // Count a taken backward branch; when it crosses the
                // tier-2 threshold, compile a region over the method's
                // hottest blocks and re-enter at the branch target.
                macro_rules! back_edge {
                    () => {
                        if tier2_watch && next_pc <= pc {
                            let d = self.decoded[mi].as_ref().expect("decoded method");
                            let (tgt, src) = (d.block_of[next_pc], d.block_of[pc]);
                            if self.tiers.record_back_edge(method, tgt, src) {
                                self.batch_mach += cost;
                                self.flush_batch(hooks);
                                self.install(method, Tier::Region, hooks);
                                self.frames.last_mut().expect("running frame").pc = next_pc;
                                self.epilogue(hooks, next_poll)?;
                                continue 'frames;
                            }
                        }
                    };
                }

                match dop.op {
                    Op::Const(v) => self.stack.push(Value::Int(v)),
                    Op::ConstNull => self.stack.push(Value::null()),
                    Op::Load(n) => {
                        let v = self.locals[locals_base + n as usize];
                        self.stack.push(v);
                    }
                    Op::Store(n) => {
                        let v = self.pop()?;
                        self.locals[locals_base + n as usize] = v;
                    }
                    Op::Dup => {
                        let v = *self.stack.last().ok_or(VmError::TypeMismatch)?;
                        self.stack.push(v);
                    }
                    Op::Pop => {
                        self.pop()?;
                    }
                    Op::Swap => {
                        let len = self.stack.len();
                        self.stack.swap(len - 1, len - 2);
                    }

                    Op::Add => binop_int!(|a: i64, b: i64| a.wrapping_add(b)),
                    Op::Sub => binop_int!(|a: i64, b: i64| a.wrapping_sub(b)),
                    Op::Mul => binop_int!(|a: i64, b: i64| a.wrapping_mul(b)),
                    Op::Div => {
                        let b = self.pop()?.as_int()?;
                        let a = self.pop()?.as_int()?;
                        if b == 0 {
                            return Err(VmError::DivisionByZero);
                        }
                        self.stack.push(Value::Int(a.wrapping_div(b)));
                    }
                    Op::Rem => {
                        let b = self.pop()?.as_int()?;
                        let a = self.pop()?.as_int()?;
                        if b == 0 {
                            return Err(VmError::DivisionByZero);
                        }
                        self.stack.push(Value::Int(a.wrapping_rem(b)));
                    }
                    Op::And => binop_int!(|a: i64, b: i64| a & b),
                    Op::Or => binop_int!(|a: i64, b: i64| a | b),
                    Op::Xor => binop_int!(|a: i64, b: i64| a ^ b),
                    Op::Shl => binop_int!(|a: i64, b: i64| a.wrapping_shl(b as u32 & 63)),
                    Op::Shr => binop_int!(|a: i64, b: i64| a.wrapping_shr(b as u32 & 63)),
                    Op::UShr => {
                        binop_int!(|a: i64, b: i64| ((a as u64) >> (b as u32 & 63)) as i64)
                    }
                    Op::Neg => {
                        let a = self.pop()?.as_int()?;
                        self.stack.push(Value::Int(a.wrapping_neg()));
                    }

                    Op::Eq => binop_int!(|a, b| i64::from(a == b)),
                    Op::Ne => binop_int!(|a, b| i64::from(a != b)),
                    Op::Lt => binop_int!(|a, b| i64::from(a < b)),
                    Op::Le => binop_int!(|a, b| i64::from(a <= b)),
                    Op::Gt => binop_int!(|a, b| i64::from(a > b)),
                    Op::Ge => binop_int!(|a, b| i64::from(a >= b)),

                    Op::Jump(t) => {
                        next_pc = t as usize;
                        back_edge!();
                    }
                    Op::JumpIf(t) => {
                        if self.pop()?.as_int()? != 0 {
                            next_pc = t as usize;
                            back_edge!();
                        }
                    }
                    Op::JumpIfNot(t) => {
                        if self.pop()?.as_int()? == 0 {
                            next_pc = t as usize;
                            back_edge!();
                        }
                    }

                    Op::New(class) => {
                        // Allocation can trigger a collection, which
                        // flushes the memory hierarchy: drain the batch
                        // first so queued accesses replay against pre-GC
                        // cache state and pre-GC object addresses.
                        self.flush_batch(hooks);
                        let obj = self.alloc_object_gc(class, hooks)?;
                        // Initializing the header touches the first line.
                        self.queue_access(hooks, obj, 8, AccessKind::Write, dop.mem_pc, method, bc);
                        self.stack.push(Value::Ref(obj));
                    }
                    Op::NewArray(kind) => {
                        let len = self.pop()?.as_int()?;
                        if len < 0 {
                            return Err(VmError::IndexOutOfBounds);
                        }
                        self.flush_batch(hooks);
                        let obj = self.alloc_array_gc(kind, len as u64, hooks)?;
                        self.queue_access(hooks, obj, 8, AccessKind::Write, dop.mem_pc, method, bc);
                        self.stack.push(Value::Ref(obj));
                    }
                    Op::GetField { offset, is_ref, ic } => {
                        let obj = self.pop()?.as_ref_addr()?;
                        if obj.is_null() {
                            return Err(VmError::NullPointer);
                        }
                        cost += self.field_ic_cost(mi, ic, dop.miss_extra, obj);
                        let addr = self.heap.field_addr(obj, offset);
                        self.queue_access(hooks, addr, 8, AccessKind::Read, dop.mem_pc, method, bc);
                        let raw = self.heap.get_field(obj, offset);
                        self.stack.push(if is_ref {
                            Value::Ref(Address(raw))
                        } else {
                            Value::Int(raw as i64)
                        });
                    }
                    Op::PutField { offset, is_ref, ic } => {
                        let v = self.pop()?;
                        let obj = self.pop()?.as_ref_addr()?;
                        if obj.is_null() {
                            return Err(VmError::NullPointer);
                        }
                        cost += self.field_ic_cost(mi, ic, dop.miss_extra, obj);
                        let addr = self.heap.field_addr(obj, offset);
                        self.queue_access(
                            hooks,
                            addr,
                            8,
                            AccessKind::Write,
                            dop.mem_pc,
                            method,
                            bc,
                        );
                        let (raw, v_is_ref) = match v {
                            Value::Ref(a) => (a.0, true),
                            Value::Int(i) => (i as u64, false),
                        };
                        if v_is_ref != is_ref {
                            return Err(VmError::TypeMismatch);
                        }
                        self.heap.set_field(obj, offset, raw, v_is_ref);
                    }
                    Op::GetStatic { index, addr } => {
                        self.queue_access(
                            hooks,
                            Address(addr),
                            8,
                            AccessKind::Read,
                            dop.mem_pc,
                            method,
                            bc,
                        );
                        self.stack.push(self.statics[index as usize]);
                    }
                    Op::PutStatic { index, addr } => {
                        let v = self.pop()?;
                        self.queue_access(
                            hooks,
                            Address(addr),
                            8,
                            AccessKind::Write,
                            dop.mem_pc,
                            method,
                            bc,
                        );
                        self.statics[index as usize] = v;
                    }
                    Op::ArrayGet(kind) => {
                        let idx = self.pop()?.as_int()?;
                        let arr = self.pop()?.as_ref_addr()?;
                        if arr.is_null() {
                            return Err(VmError::NullPointer);
                        }
                        let len = self.heap.array_len(arr);
                        if idx < 0 || idx as u64 >= len {
                            return Err(VmError::IndexOutOfBounds);
                        }
                        let addr = self.heap.elem_addr(arr, kind, idx as u64);
                        self.queue_access(
                            hooks,
                            addr,
                            kind.width(),
                            AccessKind::Read,
                            dop.mem_pc,
                            method,
                            bc,
                        );
                        let raw = self.heap.array_get(arr, kind, idx as u64);
                        self.stack.push(if kind.is_ref() {
                            Value::Ref(Address(raw))
                        } else {
                            Value::Int(raw as i64)
                        });
                    }
                    Op::ArraySet(kind) => {
                        let v = self.pop()?;
                        let idx = self.pop()?.as_int()?;
                        let arr = self.pop()?.as_ref_addr()?;
                        if arr.is_null() {
                            return Err(VmError::NullPointer);
                        }
                        let len = self.heap.array_len(arr);
                        if idx < 0 || idx as u64 >= len {
                            return Err(VmError::IndexOutOfBounds);
                        }
                        let raw = match (kind.is_ref(), v) {
                            (true, Value::Ref(a)) => a.0,
                            (false, Value::Int(i)) => i as u64,
                            _ => return Err(VmError::TypeMismatch),
                        };
                        let addr = self.heap.elem_addr(arr, kind, idx as u64);
                        self.queue_access(
                            hooks,
                            addr,
                            kind.width(),
                            AccessKind::Write,
                            dop.mem_pc,
                            method,
                            bc,
                        );
                        self.heap.array_set(arr, kind, idx as u64, raw);
                    }
                    Op::ArrayLen => {
                        let arr = self.pop()?.as_ref_addr()?;
                        if arr.is_null() {
                            return Err(VmError::NullPointer);
                        }
                        // The length lives in the header line.
                        self.queue_access(hooks, arr, 8, AccessKind::Read, dop.mem_pc, method, bc);
                        self.stack.push(Value::Int(self.heap.array_len(arr) as i64));
                    }
                    Op::IsNull => {
                        let a = self.pop()?.as_ref_addr()?;
                        self.stack.push(Value::Int(i64::from(a.is_null())));
                    }
                    Op::RefEq => {
                        let b = self.pop()?.as_ref_addr()?;
                        let a = self.pop()?.as_ref_addr()?;
                        self.stack.push(Value::Int(i64::from(a == b)));
                    }

                    Op::Call { callee, argc, ic } => {
                        // A call ends the block: drain the batch so the
                        // callee (and a possible first-call compile) see
                        // a settled clock.
                        self.flush_batch(hooks);
                        self.ensure_compiled(callee, hooks);
                        let mut frame_overhead = self.config.call_overhead_cycles;
                        if self.config.inline_caches {
                            let current = self.generations[callee.0 as usize];
                            let slot = &mut self.decoded[mi].as_mut().expect("decoded method").ics
                                [ic as usize];
                            if let IcSlot::Call { generation } = slot {
                                if *generation == current {
                                    frame_overhead = self.config.linked_call_overhead_cycles;
                                } else {
                                    *generation = current;
                                    cost += u64::from(dop.miss_extra);
                                }
                            }
                        } else {
                            cost += u64::from(dop.miss_extra);
                        }
                        self.cycles += cost.div_ceil(width);
                        // Advance the caller's pc *before* pushing the
                        // new frame.
                        self.frames.last_mut().expect("caller frame").pc = next_pc;
                        self.push_frame(callee, argc as usize, frame_overhead)?;
                        self.epilogue(hooks, next_poll)?;
                        continue 'frames;
                    }
                    Op::Return => {
                        self.batch_mach += cost;
                        self.flush_batch(hooks);
                        self.pop_frame(None);
                        self.epilogue(hooks, next_poll)?;
                        continue 'frames;
                    }
                    Op::ReturnVal => {
                        let v = self.pop()?;
                        self.batch_mach += cost;
                        self.flush_batch(hooks);
                        self.pop_frame(Some(v));
                        self.epilogue(hooks, next_poll)?;
                        continue 'frames;
                    }

                    Op::Deopt => {
                        // Execution left the compiled region. Nothing was
                        // retired for this bytecode (it re-executes in
                        // baseline code), so no cost and no step count:
                        // drop the region artifact, reinstall baseline,
                        // and re-enter the frame at the same pc.
                        self.flush_batch(hooks);
                        self.deopts += 1;
                        self.tiers.deopt(method);
                        self.install(method, Tier::Baseline, hooks);
                        hooks.on_deopt(method, Tier::Region, self.cycles);
                        continue 'frames;
                    }
                }

                self.batch_mach += cost;
                pc = next_pc;
                self.frames.last_mut().expect("running frame").pc = pc;
                if self.epilogue(hooks, next_poll)? {
                    // The running method was recompiled: refetch its
                    // decoded body (same bytecode indices, new costs).
                    continue 'frames;
                }
            }
        }
        Ok(())
    }

    /// Per-bytecode bookkeeping shared by every fast-path op: step
    /// accounting, the tier-1 sampling timer, and the poll timer. Returns
    /// `true` when a recompilation replaced a decoded body and the caller
    /// must refetch.
    #[inline]
    fn epilogue<H: RuntimeHooks>(
        &mut self,
        hooks: &mut H,
        next_poll: &mut u64,
    ) -> Result<bool, VmError> {
        self.bytecodes += 1;
        if let Some(limit) = self.config.step_limit {
            if self.bytecodes > limit {
                return Err(VmError::StepLimit);
            }
        }
        let mut refetch = false;
        let clock = self.cycles + self.batch_mach.div_ceil(self.batch_width);
        if let Some(budget) = self.config.cycle_budget {
            if clock > budget {
                return Err(VmError::CycleBudget);
            }
        }
        if self.tiers.should_sample(clock) {
            if let Some(m) = self.frames.last().map(|f| f.method) {
                // A timer tick that lands in a method is also the cache's
                // recency signal: sampled code is hot code.
                self.cache.touch(m, clock);
                if let Some(hot) = self.tiers.sample(m, clock) {
                    // Recompilation swaps the running artifact: settle
                    // the batch so the install lands on an ordered clock.
                    self.flush_batch(hooks);
                    self.recompile(hot, hooks);
                    refetch = true;
                }
            }
        }
        if self.bytecodes >= *next_poll {
            *next_poll = self.bytecodes + POLL_EVERY_BYTECODES;
            self.flush_batch(hooks);
            let overhead = hooks.on_poll(self.program, self.cycles);
            self.cycles += overhead;
            self.monitor_cycles += overhead;
            if self
                .config
                .cancel
                .as_ref()
                .is_some_and(CancelToken::is_cancelled)
            {
                return Err(VmError::Cancelled);
            }
        }
        Ok(refetch)
    }

    /// Inline-cache lookup for a field site: returns the extra cycles to
    /// charge (zero on a key hit) and re-keys the slot on a miss.
    #[inline]
    fn field_ic_cost(&mut self, mi: usize, ic: u32, miss_extra: u32, obj: Address) -> u64 {
        if !self.config.inline_caches {
            return u64::from(miss_extra);
        }
        let key = match self.heap.type_of(obj) {
            TypeTag::Class(c) => c.0,
            TypeTag::Array(_) => IC_ARRAY_KEY,
        };
        let slot = &mut self.decoded[mi].as_mut().expect("decoded method").ics[ic as usize];
        match slot {
            IcSlot::Field { class } if *class == key => 0,
            other => {
                *other = IcSlot::Field { class: key };
                u64::from(miss_extra)
            }
        }
    }

    /// Queue a heap access for the current block's batch.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn queue_access<H: RuntimeHooks>(
        &mut self,
        hooks: &mut H,
        addr: Address,
        size: u64,
        kind: AccessKind,
        mem_pc: u64,
        method: MethodId,
        bc: u32,
    ) {
        if self.batch_reqs.len() >= BATCH_CAP {
            self.flush_batch(hooks);
        }
        self.batch_reqs.push(BatchAccess {
            addr: addr.0,
            size,
            kind,
        });
        self.batch_meta.push(PendingMeta {
            mem_pc,
            method,
            bc,
            mach_before: self.batch_mach,
        });
    }

    /// Drain the pending batch: replay it through the hierarchy in one
    /// call, report every access to the hooks with a reconstructed
    /// serial cycle stamp (block start + compute before the access +
    /// latency and overhead of earlier batch entries + its own latency,
    /// exactly the stamp the per-step engine would have produced), and
    /// settle the block's compute cycles into the clock.
    fn flush_batch<H: RuntimeHooks>(&mut self, hooks: &mut H) {
        let width = self.batch_width;
        let block_cycles = self.batch_mach.div_ceil(width);
        if self.batch_reqs.is_empty() {
            self.cycles += block_cycles;
            self.batch_mach = 0;
            return;
        }
        self.batch_outcomes.clear();
        self.mem
            .access_batch(&self.batch_reqs, &mut self.batch_outcomes);
        let base = self.cycles;
        let mut extra = 0u64;
        for i in 0..self.batch_reqs.len() {
            let meta = self.batch_meta[i];
            let outcome = self.batch_outcomes[i];
            let ctx = AccessContext {
                pc: meta.mem_pc,
                addr: Address(self.batch_reqs[i].addr),
                outcome,
                cycles: base + meta.mach_before.div_ceil(width) + extra + outcome.cycles,
                method: meta.method,
                bytecode_index: meta.bc,
            };
            let overhead = hooks.on_access(&ctx);
            self.monitor_cycles += overhead;
            extra += outcome.cycles + overhead;
        }
        self.cycles += block_cycles + extra;
        self.batch_mach = 0;
        self.batch_reqs.clear();
        self.batch_meta.clear();
    }

    /// Build the summary for the current state (used by `run`, callable
    /// after an error for partial results).
    #[must_use]
    pub fn summary(&self) -> RunSummary {
        let code_sizes = self
            .compiled
            .iter()
            .flatten()
            .map(|c| MethodCodeSizes {
                method: c.method,
                tier: c.tier,
                machine_code_bytes: c.machine_code_bytes(),
                gc_map_bytes: c.gc_map_bytes(),
                mc_map_bytes: c.mc_map.size_bytes(),
            })
            .collect();
        RunSummary {
            cycles: self.cycles,
            bytecodes_executed: self.bytecodes,
            monitor_cycles: self.monitor_cycles,
            gc_cycles: self.heap.stats().gc_cycles,
            compile_cycles: self.compile_cycles,
            mem: self.mem.stats(),
            gc: self.heap.stats(),
            code_sizes,
            opt_compiled: self
                .compiled
                .iter()
                .flatten()
                .filter(|c| c.tier != Tier::Baseline)
                .map(|c| c.method)
                .collect(),
            code_evictions: self.cache.evictions(),
            deopts: self.deopts,
        }
    }

    // ----- compilation ---------------------------------------------------

    fn ensure_compiled<H: RuntimeHooks>(&mut self, m: MethodId, hooks: &mut H) {
        if self.compiled[m.0 as usize].is_some() {
            return;
        }
        // A method the tier manager already promoted re-enters at its
        // promoted tier rather than repeating the ladder — this is how an
        // evicted hot method warms back up. With the default unbounded
        // cache nothing is ever evicted, so each method reaches here once,
        // before any promotion, and the plan is the only opt source.
        let planned = self.config.plan.as_ref().is_some_and(|p| p.contains(m));
        let tier = if self.tiers.region_compiled().contains(&m) {
            Tier::Region
        } else if planned || self.tiers.opt_compiled().contains(&m) {
            Tier::Opt
        } else {
            Tier::Baseline
        };
        self.install(m, tier, hooks);
    }

    fn recompile<H: RuntimeHooks>(&mut self, m: MethodId, hooks: &mut H) {
        self.install(m, Tier::Opt, hooks);
    }

    fn install<H: RuntimeHooks>(&mut self, m: MethodId, tier: Tier, hooks: &mut H) {
        let per_bc = match tier {
            Tier::Baseline => self.config.baseline_compile_cycles_per_bc,
            Tier::Opt | Tier::Region => self.config.opt_compile_cycles_per_bc,
        };
        let cost = per_bc * self.program.method(m).len() as u64;
        self.cycles += cost;
        self.compile_cycles += cost;
        // Retire the method's previous artifact first (bounded cache
        // only): its range becomes reusable, and any late sample carrying
        // a PC from it must resolve stale — never to the replacement.
        if let Some(old_start) = self.compiled[m.0 as usize].as_ref().map(|c| c.code_start) {
            if let Some(freed) = self.cache.free(m, old_start) {
                self.retire(freed, hooks);
            }
        }
        let bytes = compiled_code_bytes(self.program, m, tier);
        // Methods on the call stack (plus the one being installed) are
        // pinned: evicting a frame's running code would strand its
        // return pc.
        let mut pinned: Vec<MethodId> = self.frames.iter().map(|f| f.method).collect();
        pinned.push(m);
        let (start, evicted) = self.cache.alloc(m, tier, bytes, self.cycles, &pinned);
        for fr in evicted {
            let ei = fr.method.0 as usize;
            self.compiled[ei] = None;
            self.decoded[ei] = None;
            self.retire(fr, hooks);
        }
        let mut code = compile(self.program, m, tier, start, self.config.full_mcmaps);
        code.install_epoch = self.cache.epoch();
        self.method_table.insert(CodeRange {
            start: code.code_start,
            end: code.code_end(),
            method: m,
            tier,
        });
        hooks.on_compile(self.program, &code);
        // Re-decode against the new artifact: inline-cache slots start
        // cold, and bumping the generation invalidates every call site
        // linked to the previous artifact.
        let region = (tier == Tier::Region).then(|| self.tiers.hot_region(m));
        self.decoded[m.0 as usize] =
            Some(decode(self.program, &code, &self.config, region.as_deref()));
        self.generations[m.0 as usize] = self.generations[m.0 as usize].wrapping_add(1);
        self.compiled[m.0 as usize] = Some(code);
    }

    /// Unregister a freed code range and tell the hooks to retire it from
    /// sample attribution.
    fn retire<H: RuntimeHooks>(&mut self, fr: FreedRange, hooks: &mut H) {
        self.method_table.remove(fr.start);
        hooks.on_code_retired(
            &CodeRetired {
                method: fr.method,
                tier: fr.tier,
                code_start: fr.start,
                code_end: fr.end,
                epoch: fr.epoch,
                evicted: fr.evicted,
                cache_bytes: self.cache.live_bytes(),
            },
            self.cycles,
        );
    }

    // ----- frames ----------------------------------------------------------

    fn push_frame(&mut self, m: MethodId, argc: usize, overhead: u64) -> Result<(), VmError> {
        if self.frames.len() >= self.config.max_call_depth {
            return Err(VmError::StackOverflow);
        }
        let locals_base = self.locals.len();
        let total_locals = self.program.method(m).locals() as usize;
        self.locals
            .resize(locals_base + total_locals, Value::Int(0));
        // Arguments were pushed left-to-right; pop them into locals.
        for i in (0..argc).rev() {
            self.locals[locals_base + i] = self.stack.pop().expect("verified arg count");
        }
        self.frames.push(Frame {
            method: m,
            pc: 0,
            locals_base,
            stack_base: self.stack.len(),
        });
        self.cycles += overhead;
        Ok(())
    }

    fn pop_frame(&mut self, ret: Option<Value>) {
        let f = self.frames.pop().expect("frame to pop");
        self.locals.truncate(f.locals_base);
        self.stack.truncate(f.stack_base);
        if let Some(v) = ret {
            self.stack.push(v);
        }
    }

    // ----- garbage collection ---------------------------------------------

    fn gather_roots(&self) -> Vec<Address> {
        let mut roots = Vec::with_capacity(16);
        self.collect_roots(&mut roots);
        roots
    }

    fn collect_roots(&self, roots: &mut Vec<Address>) {
        for v in self.statics.iter().chain(&self.locals).chain(&self.stack) {
            if let Value::Ref(a) = v {
                roots.push(*a);
            }
        }
    }

    fn scatter_roots(&mut self, roots: &[Address]) {
        let mut it = roots.iter();
        for v in self
            .statics
            .iter_mut()
            .chain(self.locals.iter_mut())
            .chain(self.stack.iter_mut())
        {
            if let Value::Ref(a) = v {
                *a = *it.next().expect("root count unchanged");
            }
        }
    }

    fn do_gc<H: RuntimeHooks>(&mut self, major: bool, hooks: &mut H) -> Result<(), VmError> {
        // Reuse one root buffer across collections so the GC entry path
        // allocates nothing after warm-up.
        let mut roots = std::mem::take(&mut self.roots_scratch);
        roots.clear();
        self.collect_roots(&mut roots);
        let collected = {
            let policy = hooks.coalloc_policy();
            if major {
                self.heap.collect_major(&mut roots, policy)
            } else {
                self.heap.collect_minor(&mut roots, policy)
            }
        };
        if let Err(e) = collected {
            self.roots_scratch = roots;
            return Err(e.into());
        }
        self.scatter_roots(&roots);
        if self.config.verify_heap_every_gc && self.heap.verify(&roots).is_err() {
            self.roots_scratch = roots;
            return Err(VmError::HeapCorrupt);
        }
        self.roots_scratch = roots;
        // A collection walks the whole live heap: model its cache and TLB
        // pollution by flushing the hierarchy.
        self.mem.flush();
        let stats = self.heap.stats();
        let delta = stats.gc_cycles - self.gc_cycles_seen;
        self.gc_cycles_seen = stats.gc_cycles;
        self.cycles += delta;
        hooks.on_gc(&stats, self.cycles);
        Ok(())
    }

    fn alloc_object_gc<H: RuntimeHooks>(
        &mut self,
        class: hpmopt_bytecode::ClassId,
        hooks: &mut H,
    ) -> Result<Address, VmError> {
        for _ in 0..3 {
            match self.heap.alloc_object(class) {
                Ok(a) => return Ok(a),
                Err(GcNeeded::Minor) => {
                    let major = !self.heap.minor_is_safe();
                    self.do_gc(major, hooks)?;
                }
                Err(GcNeeded::Major) => self.do_gc(true, hooks)?,
            }
        }
        Err(VmError::OutOfMemory)
    }

    fn alloc_array_gc<H: RuntimeHooks>(
        &mut self,
        kind: ElemKind,
        len: u64,
        hooks: &mut H,
    ) -> Result<Address, VmError> {
        for _ in 0..3 {
            match self.heap.alloc_array(kind, len) {
                Ok(a) => return Ok(a),
                Err(GcNeeded::Minor) => {
                    let major = !self.heap.minor_is_safe();
                    self.do_gc(major, hooks)?;
                }
                Err(GcNeeded::Major) => self.do_gc(true, hooks)?,
            }
        }
        Err(VmError::OutOfMemory)
    }

    // ----- data access helper ----------------------------------------------

    /// Play a data access through the memory hierarchy and report it to
    /// the hooks; returns the latency-plus-overhead cycles.
    #[allow(clippy::too_many_arguments)]
    fn data_access<H: RuntimeHooks>(
        &mut self,
        addr: Address,
        size: u64,
        kind: AccessKind,
        mem_pc: u64,
        method: MethodId,
        bc: u32,
        hooks: &mut H,
    ) -> u64 {
        let outcome = self.mem.access(addr.0, size, kind);
        let ctx = AccessContext {
            pc: mem_pc,
            addr,
            outcome,
            cycles: self.cycles + outcome.cycles,
            method,
            bytecode_index: bc,
        };
        let overhead = hooks.on_access(&ctx);
        self.monitor_cycles += overhead;
        outcome.cycles + overhead
    }

    // ----- the interpreter step ---------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn step<H: RuntimeHooks>(&mut self, hooks: &mut H) -> Result<(), VmError> {
        let frame = *self.frames.last().expect("running frame");
        let method = frame.method;
        let pc = frame.pc;
        let instr = self.program.method(method).body()[pc];
        let (mach_count, mem_pc, tier) = {
            let code = self.compiled[method.0 as usize]
                .as_ref()
                .expect("executing method is compiled");
            (u64::from(code.mach_count(pc)), code.mem_pc(pc), code.tier)
        };
        // Optimized code is register-allocated and retires `issue_width`
        // machine instructions per cycle (the P4 is superscalar); baseline
        // code's operand-stack traffic serializes to ~1 IPC. The memory
        // instruction (last of the bytecode) adds its hierarchy latency
        // below on top.
        // The per-step engine never installs region code (tier-2
        // promotion is driven by the fast engine's back-edge counters),
        // but a region artifact installed before a `slow-path` fallback
        // costs like opt code here.
        let mut cycles = match tier {
            Tier::Baseline => mach_count,
            Tier::Opt | Tier::Region => mach_count.div_ceil(self.config.issue_width),
        };
        let mut next_pc = pc + 1;
        let bc = pc as u32;

        macro_rules! binop_int {
            ($f:expr) => {{
                let b = self.pop()?.as_int()?;
                let a = self.pop()?.as_int()?;
                #[allow(clippy::redundant_closure_call)]
                self.stack.push(Value::Int($f(a, b)));
            }};
        }

        match instr {
            Instr::Const(v) => self.stack.push(Value::Int(v)),
            Instr::ConstNull => self.stack.push(Value::null()),
            Instr::Load(n) => {
                let v = self.locals[frame.locals_base + n as usize];
                self.stack.push(v);
            }
            Instr::Store(n) => {
                let v = self.pop()?;
                self.locals[frame.locals_base + n as usize] = v;
            }
            Instr::Dup => {
                let v = *self.stack.last().ok_or(VmError::TypeMismatch)?;
                self.stack.push(v);
            }
            Instr::Pop => {
                self.pop()?;
            }
            Instr::Swap => {
                let len = self.stack.len();
                self.stack.swap(len - 1, len - 2);
            }

            Instr::Add => binop_int!(|a: i64, b: i64| a.wrapping_add(b)),
            Instr::Sub => binop_int!(|a: i64, b: i64| a.wrapping_sub(b)),
            Instr::Mul => binop_int!(|a: i64, b: i64| a.wrapping_mul(b)),
            Instr::Div => {
                let b = self.pop()?.as_int()?;
                let a = self.pop()?.as_int()?;
                if b == 0 {
                    return Err(VmError::DivisionByZero);
                }
                self.stack.push(Value::Int(a.wrapping_div(b)));
            }
            Instr::Rem => {
                let b = self.pop()?.as_int()?;
                let a = self.pop()?.as_int()?;
                if b == 0 {
                    return Err(VmError::DivisionByZero);
                }
                self.stack.push(Value::Int(a.wrapping_rem(b)));
            }
            Instr::And => binop_int!(|a: i64, b: i64| a & b),
            Instr::Or => binop_int!(|a: i64, b: i64| a | b),
            Instr::Xor => binop_int!(|a: i64, b: i64| a ^ b),
            Instr::Shl => binop_int!(|a: i64, b: i64| a.wrapping_shl(b as u32 & 63)),
            Instr::Shr => binop_int!(|a: i64, b: i64| a.wrapping_shr(b as u32 & 63)),
            Instr::UShr => {
                binop_int!(|a: i64, b: i64| ((a as u64) >> (b as u32 & 63)) as i64)
            }
            Instr::Neg => {
                let a = self.pop()?.as_int()?;
                self.stack.push(Value::Int(a.wrapping_neg()));
            }

            Instr::Eq => binop_int!(|a, b| i64::from(a == b)),
            Instr::Ne => binop_int!(|a, b| i64::from(a != b)),
            Instr::Lt => binop_int!(|a, b| i64::from(a < b)),
            Instr::Le => binop_int!(|a, b| i64::from(a <= b)),
            Instr::Gt => binop_int!(|a, b| i64::from(a > b)),
            Instr::Ge => binop_int!(|a, b| i64::from(a >= b)),

            Instr::Jump(t) => next_pc = t as usize,
            Instr::JumpIf(t) => {
                if self.pop()?.as_int()? != 0 {
                    next_pc = t as usize;
                }
            }
            Instr::JumpIfNot(t) => {
                if self.pop()?.as_int()? == 0 {
                    next_pc = t as usize;
                }
            }

            Instr::New(class) => {
                let obj = self.alloc_object_gc(class, hooks)?;
                // Initializing the header touches the object's first line.
                cycles += self.data_access(obj, 8, AccessKind::Write, mem_pc, method, bc, hooks);
                self.stack.push(Value::Ref(obj));
            }
            Instr::NewArray(kind) => {
                let len = self.pop()?.as_int()?;
                if len < 0 {
                    return Err(VmError::IndexOutOfBounds);
                }
                let obj = self.alloc_array_gc(kind, len as u64, hooks)?;
                cycles += self.data_access(obj, 8, AccessKind::Write, mem_pc, method, bc, hooks);
                self.stack.push(Value::Ref(obj));
            }
            Instr::GetField(f) => {
                let obj = self.pop()?.as_ref_addr()?;
                if obj.is_null() {
                    return Err(VmError::NullPointer);
                }
                let info = self.program.field(f);
                let addr = self.heap.field_addr(obj, info.offset);
                cycles += self.data_access(addr, 8, AccessKind::Read, mem_pc, method, bc, hooks);
                let raw = self.heap.get_field(obj, info.offset);
                self.stack.push(if info.ty.is_ref() {
                    Value::Ref(Address(raw))
                } else {
                    Value::Int(raw as i64)
                });
            }
            Instr::PutField(f) => {
                let v = self.pop()?;
                let obj = self.pop()?.as_ref_addr()?;
                if obj.is_null() {
                    return Err(VmError::NullPointer);
                }
                let info = self.program.field(f);
                let addr = self.heap.field_addr(obj, info.offset);
                cycles += self.data_access(addr, 8, AccessKind::Write, mem_pc, method, bc, hooks);
                let (raw, is_ref) = match v {
                    Value::Ref(a) => (a.0, true),
                    Value::Int(i) => (i as u64, false),
                };
                if is_ref != info.ty.is_ref() {
                    return Err(VmError::TypeMismatch);
                }
                self.heap.set_field(obj, info.offset, raw, is_ref);
            }
            Instr::GetStatic(s) => {
                let addr = Address(STATICS_BASE + 8 * u64::from(s.0));
                cycles += self.data_access(addr, 8, AccessKind::Read, mem_pc, method, bc, hooks);
                self.stack.push(self.statics[s.0 as usize]);
            }
            Instr::PutStatic(s) => {
                let v = self.pop()?;
                let addr = Address(STATICS_BASE + 8 * u64::from(s.0));
                cycles += self.data_access(addr, 8, AccessKind::Write, mem_pc, method, bc, hooks);
                self.statics[s.0 as usize] = v;
            }
            Instr::ArrayGet(kind) => {
                let idx = self.pop()?.as_int()?;
                let arr = self.pop()?.as_ref_addr()?;
                if arr.is_null() {
                    return Err(VmError::NullPointer);
                }
                let len = self.heap.array_len(arr);
                if idx < 0 || idx as u64 >= len {
                    return Err(VmError::IndexOutOfBounds);
                }
                let addr = self.heap.elem_addr(arr, kind, idx as u64);
                cycles += self.data_access(
                    addr,
                    kind.width(),
                    AccessKind::Read,
                    mem_pc,
                    method,
                    bc,
                    hooks,
                );
                let raw = self.heap.array_get(arr, kind, idx as u64);
                self.stack.push(if kind.is_ref() {
                    Value::Ref(Address(raw))
                } else {
                    Value::Int(raw as i64)
                });
            }
            Instr::ArraySet(kind) => {
                let v = self.pop()?;
                let idx = self.pop()?.as_int()?;
                let arr = self.pop()?.as_ref_addr()?;
                if arr.is_null() {
                    return Err(VmError::NullPointer);
                }
                let len = self.heap.array_len(arr);
                if idx < 0 || idx as u64 >= len {
                    return Err(VmError::IndexOutOfBounds);
                }
                let raw = match (kind.is_ref(), v) {
                    (true, Value::Ref(a)) => a.0,
                    (false, Value::Int(i)) => i as u64,
                    _ => return Err(VmError::TypeMismatch),
                };
                let addr = self.heap.elem_addr(arr, kind, idx as u64);
                cycles += self.data_access(
                    addr,
                    kind.width(),
                    AccessKind::Write,
                    mem_pc,
                    method,
                    bc,
                    hooks,
                );
                self.heap.array_set(arr, kind, idx as u64, raw);
            }
            Instr::ArrayLen => {
                let arr = self.pop()?.as_ref_addr()?;
                if arr.is_null() {
                    return Err(VmError::NullPointer);
                }
                // The length lives in the header line.
                cycles += self.data_access(arr, 8, AccessKind::Read, mem_pc, method, bc, hooks);
                self.stack.push(Value::Int(self.heap.array_len(arr) as i64));
            }
            Instr::IsNull => {
                let a = self.pop()?.as_ref_addr()?;
                self.stack.push(Value::Int(i64::from(a.is_null())));
            }
            Instr::RefEq => {
                let b = self.pop()?.as_ref_addr()?;
                let a = self.pop()?.as_ref_addr()?;
                self.stack.push(Value::Int(i64::from(a == b)));
            }

            Instr::Call(callee) => {
                self.ensure_compiled(callee, hooks);
                let argc = self.program.method(callee).params() as usize;
                // Advance the caller's pc *before* pushing the new frame.
                self.frames.last_mut().expect("caller frame").pc = next_pc;
                self.cycles += cycles;
                self.push_frame(callee, argc, self.config.call_overhead_cycles)?;
                return Ok(());
            }
            Instr::Return => {
                self.cycles += cycles;
                self.pop_frame(None);
                return Ok(());
            }
            Instr::ReturnVal => {
                let v = self.pop()?;
                self.cycles += cycles;
                self.pop_frame(Some(v));
                return Ok(());
            }
        }

        self.cycles += cycles;
        self.frames.last_mut().expect("current frame").pc = next_pc;
        Ok(())
    }

    #[inline]
    fn pop(&mut self) -> Result<Value, VmError> {
        self.stack.pop().ok_or(VmError::TypeMismatch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHooks;
    use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
    use hpmopt_bytecode::FieldType;

    fn run_program(program: &Program) -> RunSummary {
        let mut vm = Vm::new(program, VmConfig::test());
        vm.run(&mut NoHooks).expect("program runs")
    }

    fn run_expect_err(program: &Program) -> VmError {
        let mut vm = Vm::new(program, VmConfig::test());
        vm.run(&mut NoHooks).expect_err("program must fail")
    }

    /// Program that stores `expr_result` into static 0 and returns.
    fn expr_program(build: impl FnOnce(&mut MethodBuilder)) -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.add_static("result", FieldType::Int);
        let mut m = MethodBuilder::new("main", 0, 4, false);
        build(&mut m);
        m.put_static(g);
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        pb.finish().unwrap()
    }

    fn eval(build: impl FnOnce(&mut MethodBuilder)) -> i64 {
        let p = expr_program(build);
        let mut vm = Vm::new(&p, VmConfig::test());
        vm.run(&mut NoHooks).unwrap();
        vm.statics[0].as_int().unwrap()
    }

    #[test]
    fn compile_cycles_charged_when_costs_set() {
        let p = expr_program(|m| {
            m.const_i(1);
        });
        let free = {
            let mut vm = Vm::new(&p, VmConfig::test());
            vm.run(&mut NoHooks).unwrap()
        };
        assert_eq!(free.compile_cycles, 0, "compilation is free by default");

        let mut cfg = VmConfig::test();
        cfg.baseline_compile_cycles_per_bc = 25;
        let mut vm = Vm::new(&p, cfg);
        let charged = vm.run(&mut NoHooks).unwrap();
        let expected = 25 * p.method(p.entry()).len() as u64;
        assert_eq!(charged.compile_cycles, expected);
        assert_eq!(charged.cycles, free.cycles + expected);
    }

    #[test]
    fn arithmetic_works() {
        assert_eq!(
            eval(|m| {
                m.const_i(6);
                m.const_i(7);
                m.mul();
            }),
            42
        );
        assert_eq!(
            eval(|m| {
                m.const_i(7);
                m.const_i(2);
                m.rem();
            }),
            1
        );
        assert_eq!(
            eval(|m| {
                m.const_i(-8);
                m.const_i(1);
                m.ushr();
            }),
            ((-8i64) as u64 >> 1) as i64
        );
    }

    #[test]
    fn comparison_and_branching() {
        // result = sum of 0..10
        assert_eq!(
            eval(|m| {
                m.const_i(0);
                m.store(0);
                m.for_loop(
                    1,
                    |m| {
                        m.const_i(10);
                    },
                    |m| {
                        m.load(0);
                        m.load(1);
                        m.add();
                        m.store(0);
                    },
                );
                m.load(0);
            }),
            45
        );
    }

    #[test]
    fn division_by_zero_traps() {
        let p = expr_program(|m| {
            m.const_i(1);
            m.const_i(0);
            m.div();
        });
        assert_eq!(run_expect_err(&p), VmError::DivisionByZero);
    }

    #[test]
    fn field_round_trip_through_heap() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("Box", &[("v", FieldType::Int)]);
        let f = pb.field_id(c, "v").unwrap();
        let g = pb.add_static("result", FieldType::Int);
        let mut m = MethodBuilder::new("main", 0, 1, false);
        m.new_object(c);
        m.store(0);
        m.load(0);
        m.const_i(31);
        m.put_field(f);
        m.load(0);
        m.get_field(f);
        m.put_static(g);
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        let mut vm = Vm::new(&p, VmConfig::test());
        vm.run(&mut NoHooks).unwrap();
        assert_eq!(vm.statics[0], Value::Int(31));
    }

    #[test]
    fn null_dereference_traps() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("Box", &[("v", FieldType::Int)]);
        let f = pb.field_id(c, "v").unwrap();
        let mut m = MethodBuilder::new("main", 0, 0, false);
        m.const_null();
        m.get_field(f);
        m.pop();
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        assert_eq!(run_expect_err(&p), VmError::NullPointer);
    }

    #[test]
    fn array_bounds_checked() {
        let mut pb = ProgramBuilder::new();
        let mut m = MethodBuilder::new("main", 0, 1, false);
        m.const_i(4);
        m.new_array(ElemKind::I32);
        m.store(0);
        m.load(0);
        m.const_i(4);
        m.array_get(ElemKind::I32);
        m.pop();
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        assert_eq!(run_expect_err(&p), VmError::IndexOutOfBounds);
    }

    #[test]
    fn array_elements_round_trip() {
        assert_eq!(
            eval(|m| {
                m.const_i(8);
                m.new_array(ElemKind::I16);
                m.store(0);
                m.load(0);
                m.const_i(3);
                m.const_i(77);
                m.array_set(ElemKind::I16);
                m.load(0);
                m.const_i(3);
                m.array_get(ElemKind::I16);
            }),
            77
        );
    }

    #[test]
    fn calls_pass_arguments_and_return_values() {
        let mut pb = ProgramBuilder::new();
        let g = pb.add_static("result", FieldType::Int);
        let mut add3 = MethodBuilder::new("add3", 3, 0, true);
        add3.load(0);
        add3.load(1);
        add3.add();
        add3.load(2);
        add3.add();
        add3.ret_val();
        let add3 = pb.add_method(add3);
        let mut m = MethodBuilder::new("main", 0, 0, false);
        m.const_i(1);
        m.const_i(2);
        m.const_i(3);
        m.call(add3);
        m.put_static(g);
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        let mut vm = Vm::new(&p, VmConfig::test());
        vm.run(&mut NoHooks).unwrap();
        assert_eq!(vm.statics[0], Value::Int(6));
    }

    #[test]
    fn recursion_works() {
        let mut pb = ProgramBuilder::new();
        let g = pb.add_static("result", FieldType::Int);
        let fib = pb.declare_method("fib", 1, true);
        let mut m = MethodBuilder::new("fib", 1, 0, true);
        let base = m.label();
        m.load(0);
        m.const_i(2);
        m.lt();
        m.jump_if(base);
        m.load(0);
        m.const_i(1);
        m.sub();
        m.call(fib);
        m.load(0);
        m.const_i(2);
        m.sub();
        m.call(fib);
        m.add();
        m.ret_val();
        m.bind(base);
        m.load(0);
        m.ret_val();
        pb.define_method(fib, m);
        let mut main = MethodBuilder::new("main", 0, 0, false);
        main.const_i(12);
        main.call(fib);
        main.put_static(g);
        main.ret();
        let id = pb.add_method(main);
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        let mut vm = Vm::new(&p, VmConfig::test());
        vm.run(&mut NoHooks).unwrap();
        assert_eq!(vm.statics[0], Value::Int(144));
    }

    #[test]
    fn gc_triggered_by_allocation_preserves_live_data() {
        // Allocate a linked list bigger than the nursery, keeping the head
        // in a static; verify the list afterwards.
        let mut pb = ProgramBuilder::new();
        let node = pb.add_class("Node", &[("next", FieldType::Ref), ("v", FieldType::Int)]);
        let next = pb.field_id(node, "next").unwrap();
        let val = pb.field_id(node, "v").unwrap();
        let head = pb.add_static("head", FieldType::Ref);
        let g = pb.add_static("result", FieldType::Int);

        let mut m = MethodBuilder::new("main", 0, 3, false);
        // Build 5000 nodes (~200 KB > 64 KB nursery), each prepended.
        m.const_null();
        m.put_static(head);
        m.for_loop(
            0,
            |m| {
                m.const_i(5000);
            },
            |m| {
                m.new_object(node); // fresh node
                m.store(1);
                m.load(1);
                m.get_static(head);
                m.put_field(next);
                m.load(1);
                m.load(0);
                m.put_field(val);
                m.load(1);
                m.put_static(head);
            },
        );
        // Sum the list.
        m.const_i(0);
        m.store(2);
        m.get_static(head);
        m.store(1);
        let loop_top = m.label();
        let done = m.label();
        m.bind(loop_top);
        m.load(1);
        m.is_null();
        m.jump_if(done);
        m.load(2);
        m.load(1);
        m.get_field(val);
        m.add();
        m.store(2);
        m.load(1);
        m.get_field(next);
        m.store(1);
        m.jump(loop_top);
        m.bind(done);
        m.load(2);
        m.put_static(g);
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().unwrap();

        let mut vm = Vm::new(&p, VmConfig::test());
        let summary = vm.run(&mut NoHooks).unwrap();
        assert_eq!(vm.statics[1], Value::Int((0..5000).sum::<i64>()));
        assert!(summary.gc.minor_collections > 0, "nursery overflowed");
        // Everything allocated before the last collection was live (the
        // list is fully reachable), so most nodes were promoted; the tail
        // allocated after the final collection stays in the nursery.
        assert!(summary.gc.objects_promoted >= 1000);
    }

    #[test]
    fn aos_recompiles_hot_method() {
        // A long-running loop gets its method opt-compiled by the timer.
        let p = expr_program(|m| {
            m.const_i(0);
            m.store(0);
            m.for_loop(
                1,
                |m| {
                    m.const_i(200_000);
                },
                |m| {
                    m.load(0);
                    m.const_i(1);
                    m.add();
                    m.store(0);
                },
            );
            m.load(0);
        });
        let summary = run_program(&p);
        assert!(
            !summary.opt_compiled.is_empty(),
            "main should become hot and be recompiled"
        );
        // Two artifacts for main: baseline + opt.
        assert_eq!(summary.code_sizes.len(), 1, "summary reports current tier");
        assert_eq!(summary.code_sizes[0].tier, Tier::Opt);
    }

    #[test]
    fn pseudo_adaptive_plan_pins_opt_methods() {
        let p = expr_program(|m| {
            m.const_i(1);
        });
        let entry = p.entry();
        let mut cfg = VmConfig::test();
        cfg.plan = Some(crate::CompilationPlan::new(vec![entry]));
        cfg.jit.tier1_enabled = false;
        let mut vm = Vm::new(&p, cfg);
        let summary = vm.run(&mut NoHooks).unwrap();
        assert_eq!(summary.opt_compiled, vec![entry]);
    }

    #[test]
    fn opt_code_runs_faster_than_baseline() {
        let body = |m: &mut MethodBuilder| {
            m.const_i(0);
            m.store(0);
            m.for_loop(
                1,
                |m| {
                    m.const_i(50_000);
                },
                |m| {
                    m.load(0);
                    m.const_i(3);
                    m.add();
                    m.store(0);
                },
            );
            m.load(0);
        };
        let p = expr_program(body);
        let entry = p.entry();

        let mut base_cfg = VmConfig::test();
        base_cfg.jit.tier1_enabled = false;
        let base = Vm::new(&p, base_cfg).run(&mut NoHooks).unwrap();

        let mut opt_cfg = VmConfig::test();
        opt_cfg.jit.tier1_enabled = false;
        opt_cfg.plan = Some(crate::CompilationPlan::new(vec![entry]));
        let opt = Vm::new(&p, opt_cfg).run(&mut NoHooks).unwrap();

        assert!(
            opt.cycles < base.cycles,
            "opt {} vs baseline {}",
            opt.cycles,
            base.cycles
        );
        assert_eq!(opt.bytecodes_executed, base.bytecodes_executed);
    }

    /// A hot loop summing `0..n` into static 0 via local 0.
    fn hot_loop_program(n: i64) -> Program {
        expr_program(move |m| {
            m.const_i(0);
            m.store(0);
            m.for_loop(
                1,
                move |m| {
                    m.const_i(n);
                },
                |m| {
                    m.load(0);
                    m.load(1);
                    m.add();
                    m.store(0);
                },
            );
            m.load(0);
        })
    }

    // Tier-2 back-edge promotion and region execution live in the fast
    // pre-decoded engine; the legacy `slow-path` engine never promotes,
    // so the two region tests below only run on the default engine.
    #[test]
    #[cfg(not(feature = "slow-path"))]
    fn tier2_promotes_hot_loop_and_beats_opt_code() {
        let p = hot_loop_program(5_000);
        let entry = p.entry();
        let run_with = |tier2: bool| {
            let mut cfg = VmConfig::test();
            cfg.jit.tier1_enabled = false;
            cfg.jit.tier2_enabled = tier2;
            cfg.jit.tier2_threshold = 100;
            cfg.plan = Some(crate::CompilationPlan::new(vec![entry]));
            let mut vm = Vm::new(&p, cfg);
            let s = vm.run(&mut NoHooks).unwrap();
            let v = vm.statics[0].as_int().unwrap();
            (s, v, vm.state_digest())
        };
        let (opt, v_opt, d_opt) = run_with(false);
        let (reg, v_reg, d_reg) = run_with(true);
        assert_eq!(v_reg, (0..5_000).sum::<i64>());
        assert_eq!(v_reg, v_opt);
        assert_eq!(d_reg, d_opt, "tiering is a cost-model lever");
        assert_eq!(reg.bytecodes_executed, opt.bytecodes_executed);
        assert_eq!(opt.deopts, 0, "tier 2 off never deoptimizes");
        // The region covers the loop but not the exit path, so leaving
        // the loop deoptimizes exactly once — after ~4900 iterations ran
        // as region code, which must beat pure opt code overall.
        assert_eq!(reg.deopts, 1);
        assert!(
            reg.cycles < opt.cycles,
            "region {} vs opt {}",
            reg.cycles,
            opt.cycles
        );
        // Post-deopt the method is back at baseline.
        assert_eq!(reg.code_sizes[0].tier, Tier::Baseline);
        assert!(reg.opt_compiled.is_empty());
    }

    #[test]
    #[cfg(not(feature = "slow-path"))]
    fn tiny_region_cap_deopts_immediately_and_preserves_semantics() {
        let p = hot_loop_program(2_000);
        let entry = p.entry();
        let mut cfg = VmConfig::test();
        cfg.jit.tier1_enabled = false;
        cfg.jit.tier2_enabled = true;
        cfg.jit.tier2_threshold = 50;
        cfg.jit.max_region_blocks = 1;
        cfg.plan = Some(crate::CompilationPlan::new(vec![entry]));
        let mut vm = Vm::new(&p, cfg);
        let s = vm.run(&mut NoHooks).unwrap();
        // A one-block region cannot hold the loop: the first out-of-
        // region bytecode deopts, the method is banned from tier 2, and
        // the program still computes the right answer.
        assert_eq!(s.deopts, 1);
        assert_eq!(vm.statics[0].as_int().unwrap(), (0..2_000).sum::<i64>());
    }

    /// Three helper methods invoked round-robin from a loop, so a small
    /// code cache must evict helpers while they are off-stack.
    fn round_robin_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.add_static("acc", FieldType::Int);
        let mut helpers = Vec::new();
        for (name, k) in [("f", 1), ("g", 3), ("h", 7)] {
            let mut h = MethodBuilder::new(name, 1, 0, true);
            h.load(0);
            h.const_i(k);
            h.add();
            h.ret_val();
            helpers.push(pb.add_method(h));
        }
        let mut m = MethodBuilder::new("main", 0, 2, false);
        m.const_i(0);
        m.store(1);
        m.for_loop(
            0,
            |m| {
                m.const_i(60);
            },
            |m| {
                for &h in &helpers {
                    m.load(1);
                    m.call(h);
                    m.store(1);
                }
            },
        );
        m.load(1);
        m.put_static(g);
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        pb.finish().unwrap()
    }

    #[test]
    fn bounded_cache_evicts_and_matches_unbounded_results() {
        let p = round_robin_program();
        let run_with = |capacity: Option<u64>| {
            let mut cfg = VmConfig::test();
            cfg.jit.tier1_enabled = false;
            cfg.jit.code_cache_capacity_bytes = capacity;
            let mut vm = Vm::new(&p, cfg);
            let s = vm.run(&mut NoHooks).unwrap();
            let v = vm.statics[0].as_int().unwrap();
            (vm.state_digest(), v, s.code_evictions, s.bytecodes_executed)
        };
        let (d_unbounded, v_unbounded, evictions_unbounded, bc_unbounded) = run_with(None);
        assert_eq!(evictions_unbounded, 0, "unbounded cache never evicts");
        assert_eq!(v_unbounded, 60 * (1 + 3 + 7));
        // Room for main plus roughly one helper: every other helper call
        // re-installs over an evicted neighbour's range.
        let (d_bounded, v_bounded, evictions_bounded, bc_bounded) = run_with(Some(256));
        assert!(
            evictions_bounded > 0,
            "capacity pressure must evict at least once"
        );
        assert_eq!(d_bounded, d_unbounded, "eviction never changes semantics");
        assert_eq!(v_bounded, v_unbounded);
        assert_eq!(bc_bounded, bc_unbounded);
    }

    #[test]
    fn step_limit_guards_infinite_loops() {
        let mut pb = ProgramBuilder::new();
        let mut m = MethodBuilder::new("main", 0, 0, false);
        let top = m.label();
        m.bind(top);
        m.jump(top);
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        let mut cfg = VmConfig::test();
        cfg.step_limit = Some(10_000);
        let mut vm = Vm::new(&p, cfg);
        assert_eq!(vm.run(&mut NoHooks).unwrap_err(), VmError::StepLimit);
    }

    #[test]
    fn cycle_budget_kills_runaway_deterministically() {
        let mut pb = ProgramBuilder::new();
        let mut m = MethodBuilder::new("main", 0, 0, false);
        let top = m.label();
        m.bind(top);
        m.jump(top);
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        let run = || {
            let mut cfg = VmConfig::test();
            cfg.step_limit = None;
            cfg.cycle_budget = Some(100_000);
            let mut vm = Vm::new(&p, cfg);
            let err = vm.run(&mut NoHooks).unwrap_err();
            (err, vm.cycles)
        };
        let (err, cycles) = run();
        assert_eq!(err, VmError::CycleBudget);
        let (err2, cycles2) = run();
        assert_eq!(err2, VmError::CycleBudget);
        assert_eq!(cycles, cycles2, "the kill point is on the simulated clock");
    }

    #[test]
    fn cancel_token_stops_the_run_at_a_poll_boundary() {
        let mut pb = ProgramBuilder::new();
        let mut m = MethodBuilder::new("main", 0, 0, false);
        let top = m.label();
        m.bind(top);
        m.jump(top);
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        let token = CancelToken::new();
        // Pre-cancelled: the first poll boundary notices and aborts the
        // otherwise infinite loop without needing a second thread.
        token.cancel();
        assert!(token.is_cancelled());
        let mut cfg = VmConfig::test();
        cfg.step_limit = None;
        cfg.cancel = Some(token);
        let mut vm = Vm::new(&p, cfg);
        assert_eq!(vm.run(&mut NoHooks).unwrap_err(), VmError::Cancelled);
    }

    #[test]
    fn run_summary_accounts_memory_and_code() {
        let p = expr_program(|m| {
            m.const_i(16);
            m.new_array(ElemKind::I64);
            m.array_len();
        });
        let s = run_program(&p);
        assert!(s.mem.accesses > 0);
        assert!(s.total_machine_code_bytes() > 0);
        assert!(s.total_mc_map_bytes() > s.total_gc_map_bytes());
        assert_eq!(s.gc.objects_allocated, 1);
    }

    /// A program whose `bump` helper has `GetField`/`PutField` sites
    /// that see two different receiver classes on alternating calls.
    /// The classes declare a field named `v` at *different* offsets, so
    /// a correctness bug in inline-cache keying or invalidation (e.g.
    /// serving the cached class's offset to the other class) would
    /// change the computed values, not just the cycle count.
    fn polymorphic_field_site_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A", &[("v", FieldType::Int), ("w", FieldType::Int)]);
        let b = pb.add_class(
            "B",
            &[
                ("pad0", FieldType::Int),
                ("pad1", FieldType::Int),
                ("v", FieldType::Int),
            ],
        );
        let fa = pb.field_id(a, "v").unwrap();
        let g = pb.add_static("acc", FieldType::Int);

        // bump(o) -> int: o.{site} += 1 through one static field id;
        // the receiver's class alternates between calls.
        let mut bump = MethodBuilder::new("bump", 1, 0, true);
        bump.load(0);
        bump.load(0);
        bump.get_field(fa);
        bump.const_i(1);
        bump.add();
        bump.put_field(fa);
        bump.load(0);
        bump.get_field(fa);
        bump.ret_val();
        let bump_id = pb.add_method(bump);

        let mut m = MethodBuilder::new("main", 0, 3, false);
        m.new_object(a);
        m.store(0);
        m.new_object(b);
        m.store(1);
        m.for_loop(
            2,
            |m| {
                m.const_i(100);
            },
            |m| {
                m.load(0);
                m.call(bump_id);
                m.pop();
                m.load(1);
                m.call(bump_id);
                m.pop();
            },
        );
        m.load(0);
        m.call(bump_id);
        m.load(1);
        m.call(bump_id);
        m.add();
        m.put_static(g);
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        pb.finish().unwrap()
    }

    #[test]
    fn polymorphic_inline_cache_site_is_semantics_free() {
        let p = polymorphic_field_site_program();
        let run_with = |ic: bool| {
            let mut cfg = VmConfig::test();
            cfg.inline_caches = ic;
            let mut vm = Vm::new(&p, cfg);
            let s = vm.run(&mut NoHooks).unwrap();
            let acc = vm.statics[0].as_int().unwrap();
            (vm.state_digest(), acc, s.cycles, s.bytecodes_executed)
        };
        let (digest_on, acc_on, cycles_on, bc_on) = run_with(true);
        let (digest_off, acc_off, cycles_off, bc_off) = run_with(false);

        // 101 increments against each receiver; the A.v field id resolves
        // to B's first padding slot on B receivers, which is fine — the
        // offsets are static, only the IC key varies.
        assert_eq!(acc_on, 202);
        assert_eq!(acc_on, acc_off);
        assert_eq!(
            digest_on, digest_off,
            "inline caches are a cost-model lever; state must be identical"
        );
        assert_eq!(bc_on, bc_off);
        // The alternating field sites re-key every call (no hit to win),
        // but the monomorphic call sites still link, so the cached run
        // can never be slower.
        assert!(
            cycles_on <= cycles_off,
            "IC on {cycles_on} vs off {cycles_off}"
        );
    }

    #[test]
    fn slow_and_fast_engines_agree_on_state() {
        let programs = [
            polymorphic_field_site_program(),
            expr_program(|m| {
                // Allocation churn so both engines cross GC and batching
                // boundaries, not just arithmetic.
                m.for_loop(
                    1,
                    |m| {
                        m.const_i(500);
                    },
                    |m| {
                        m.const_i(64);
                        m.new_array(ElemKind::I64);
                        m.pop();
                    },
                );
                m.load(1);
            }),
        ];
        for (i, p) in programs.iter().enumerate() {
            let run_engine = |slow: bool| {
                let mut vm = Vm::new(p, VmConfig::test());
                vm.ensure_compiled(p.entry(), &mut NoHooks);
                vm.push_frame(p.entry(), 0, vm.config.call_overhead_cycles)
                    .unwrap();
                if slow {
                    vm.run_slow(&mut NoHooks).unwrap();
                } else {
                    vm.run_fast(&mut NoHooks).unwrap();
                }
                (vm.state_digest(), vm.bytecodes, vm.cycles)
            };
            let (slow_digest, slow_bc, slow_cycles) = run_engine(true);
            let (fast_digest, fast_bc, fast_cycles) = run_engine(false);
            assert_eq!(
                slow_digest, fast_digest,
                "program {i}: engines must agree on program state"
            );
            assert_eq!(slow_bc, fast_bc, "program {i}: bytecode counts agree");
            assert!(
                fast_cycles <= slow_cycles,
                "program {i}: the flattened engine never charges more \
                 ({fast_cycles} vs {slow_cycles})"
            );
        }
    }
}
