//! Canonical digest of program-visible state.
//!
//! The differential oracles in `hpmopt-stress` compare two executions of
//! the same program under different runtime configurations (interpreted
//! vs. opt-compiled, GenMS vs. GenCopy, monitoring on vs. off). What must
//! agree is the *program-visible* outcome: the values of the statics and
//! the contents of every object reachable from them. What must NOT leak
//! into the comparison is object *placement* — co-allocation and the
//! collector choice move objects around by design.
//!
//! [`state_digest`] therefore hashes the object graph in discovery order:
//! references are replaced by the visit index of their target (null is a
//! sentinel), so two heaps with identical shape and contents but
//! different addresses produce identical digests.

use hpmopt_bytecode::{ElemKind, Program};
use hpmopt_gc::{Address, Heap, TypeTag};

use crate::value::Value;

/// FNV-1a, 64-bit. Hand-rolled so the digest is stable across Rust
/// versions (unlike `DefaultHasher`) and needs no external crates.
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Visit-order index of `addr`, assigning the next index (and queueing
/// the object for scanning) on first encounter. Index 0 is reserved for
/// null; references outside the heap hash as `u64::MAX` rather than
/// panicking, so a corrupt graph yields a (differing) digest instead of
/// aborting the oracle that is about to report it.
fn ref_index(
    addr: Address,
    heap: &Heap,
    order: &mut std::collections::HashMap<u64, u64>,
    queue: &mut std::collections::VecDeque<Address>,
) -> u64 {
    if addr.is_null() {
        return 0;
    }
    if !heap.in_heap(addr) {
        return u64::MAX;
    }
    let next = order.len() as u64 + 1;
    *order.entry(addr.0).or_insert_with(|| {
        queue.push_back(addr);
        next
    })
}

/// Digest the statics and every object reachable from them.
///
/// Intended for use after a run, when locals and operand stack are empty
/// and the statics are the only roots; see [`crate::Vm::state_digest`].
#[must_use]
pub fn state_digest(program: &Program, heap: &Heap, statics: &[Value]) -> u64 {
    let mut h = Fnv1a::new();
    let mut order = std::collections::HashMap::new();
    let mut queue = std::collections::VecDeque::new();

    h.write_u64(statics.len() as u64);
    for v in statics {
        match *v {
            Value::Int(i) => {
                h.write_u64(1);
                h.write_u64(i as u64);
            }
            Value::Ref(a) => {
                h.write_u64(2);
                h.write_u64(ref_index(a, heap, &mut order, &mut queue));
            }
        }
    }

    while let Some(obj) = queue.pop_front() {
        match heap.type_of(obj) {
            TypeTag::Class(c) => {
                h.write_u64(3);
                h.write_u64(u64::from(c.0));
                if (c.0 as usize) < program.classes().len() {
                    for f in program.fields_of(c) {
                        let info = program.field(f);
                        let raw = heap.get_field(obj, info.offset);
                        if info.ty.is_ref() {
                            h.write_u64(ref_index(Address(raw), heap, &mut order, &mut queue));
                        } else {
                            h.write_u64(raw);
                        }
                    }
                }
            }
            TypeTag::Array(kind) => {
                let len = heap.array_len(obj);
                h.write_u64(4);
                h.write_u64(kind as u64);
                h.write_u64(len);
                for i in 0..len {
                    let raw = heap.array_get(obj, kind, i);
                    if matches!(kind, ElemKind::Ref) {
                        h.write_u64(ref_index(Address(raw), heap, &mut order, &mut queue));
                    } else {
                        h.write_u64(raw);
                    }
                }
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
    use hpmopt_bytecode::FieldType;
    use hpmopt_gc::HeapConfig;

    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.add_class("Node", &[("next", FieldType::Ref), ("v", FieldType::Int)]);
        pb.add_static("head", FieldType::Ref);
        pb.add_static("sum", FieldType::Int);
        let mut m = MethodBuilder::new("main", 0, 0, false);
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        pb.finish().unwrap()
    }

    /// Two nodes at *different addresses* but with identical contents
    /// must digest identically; changing a field value must not.
    #[test]
    fn digest_is_placement_independent_and_content_sensitive() {
        let p = program();
        let node = p.class_by_name("Node").unwrap();
        let v_off = p.field(p.field_by_name(node, "v").unwrap()).offset;

        let build = |skip: bool, v: u64| {
            let mut heap = Heap::new(&p, HeapConfig::small());
            if skip {
                // Shift the second heap's allocation cursor so the
                // interesting object lands at a different address.
                heap.alloc_object(node).unwrap();
            }
            let obj = heap.alloc_object(node).unwrap();
            heap.set_field(obj, v_off, v, false);
            let statics = vec![Value::Ref(obj), Value::Int(7)];
            (state_digest(&p, &heap, &statics), heap)
        };

        let (a, _) = build(false, 42);
        let (b, _) = build(true, 42);
        let (c, _) = build(false, 43);
        assert_eq!(a, b, "address differences are invisible");
        assert_ne!(a, c, "content differences are visible");
    }

    #[test]
    fn digest_distinguishes_graph_shape() {
        let p = program();
        let node = p.class_by_name("Node").unwrap();
        let next_off = p.field(p.field_by_name(node, "next").unwrap()).offset;

        let mut heap = Heap::new(&p, HeapConfig::small());
        let a = heap.alloc_object(node).unwrap();
        let b = heap.alloc_object(node).unwrap();
        heap.set_field(a, next_off, b.0, true);
        let linked = state_digest(&p, &heap, &[Value::Ref(a), Value::Int(0)]);
        heap.set_field(a, next_off, a.0, true); // now a self-cycle
        let cyclic = state_digest(&p, &heap, &[Value::Ref(a), Value::Int(0)]);
        assert_ne!(linked, cyclic);
    }
}
