//! The runtime-hooks interface between the VM and the monitoring /
//! optimization infrastructure.
//!
//! The paper's system is a *collaboration* of VM, hardware-monitoring
//! module, and GC. This trait is the seam: `hpmopt-core` implements it to
//! (a) feed every heap access's events to the PEBS unit, (b) run the
//! collector-thread polling on the simulated clock, (c) supply the GC's
//! co-allocation policy, and (d) analyze newly compiled methods. The VM
//! itself stays ignorant of what the hooks do — mirroring the paper's
//! goal of "small or no changes to the core VM code".

use hpmopt_bytecode::{MethodId, Program};
use hpmopt_gc::policy::{CoallocPolicy, NoCoalloc};
use hpmopt_gc::{Address, GcStats};
use hpmopt_memsim::AccessOutcome;

use crate::machine::{CompiledCode, Tier};

/// Context of one heap data access, as the sampling hardware would see it.
#[derive(Debug, Clone, Copy)]
pub struct AccessContext {
    /// Machine PC of the memory instruction.
    pub pc: u64,
    /// Data address accessed.
    pub addr: Address,
    /// Cache/TLB events the access raised.
    pub outcome: AccessOutcome,
    /// Simulated cycle time after the access.
    pub cycles: u64,
    /// Method executing the access.
    pub method: MethodId,
    /// Bytecode index of the access.
    pub bytecode_index: u32,
}

/// A compiled artifact's address range was returned to the code cache
/// (the method was recompiled, deoptimized, or evicted for capacity).
/// The monitoring module must retire the range from sample attribution:
/// any in-flight sample stamped with an earlier code epoch may carry a
/// PC from inside it.
#[derive(Debug, Clone, Copy)]
pub struct CodeRetired {
    /// Method whose code occupied the range.
    pub method: MethodId,
    /// Tier of the retired artifact.
    pub tier: Tier,
    /// First retired code address.
    pub code_start: u64,
    /// One past the last retired code address.
    pub code_end: u64,
    /// Code epoch after the free; samples captured before it must not be
    /// attributed to whatever occupies the range next.
    pub epoch: u64,
    /// True when the range was evicted for capacity (vs freed because the
    /// method was recompiled or deoptimized).
    pub evicted: bool,
    /// Live code-cache bytes after the free.
    pub cache_bytes: u64,
}

/// Callbacks the VM invokes while executing.
///
/// All methods have no-op defaults; implementations override what they
/// need. Methods returning cycles report *monitoring overhead* that the
/// VM adds to the global clock — this is how sampling cost shows up in
/// execution time (Figure 2).
pub trait RuntimeHooks {
    /// The VM is about to execute its first bytecode. The monitoring
    /// module seeds warm-start state here (prior-run profile data), so
    /// optimization decisions can be in place before the first sample
    /// arrives.
    fn on_startup(&mut self, program: &Program, cycles: u64) {
        let _ = (program, cycles);
    }

    /// A heap data access completed. Returns overhead cycles (e.g. the
    /// PEBS microcode cost when the access was sampled).
    fn on_access(&mut self, ctx: &AccessContext) -> u64 {
        let _ = ctx;
        0
    }

    /// Called periodically (every few thousand instructions) with the
    /// current clock; the collector-thread model polls here. Returns
    /// overhead cycles (sample-buffer draining, map lookups, batch
    /// processing).
    fn on_poll(&mut self, program: &Program, cycles: u64) -> u64 {
        let _ = (program, cycles);
        0
    }

    /// A method was (re)compiled. The monitoring module registers the
    /// artifact's code range and, for opt-tier code, runs the
    /// instructions-of-interest analysis.
    fn on_compile(&mut self, program: &Program, code: &CompiledCode) {
        let _ = (program, code);
    }

    /// A compiled artifact's range was freed or evicted. The monitoring
    /// module bumps its notion of the code epoch and retires the range
    /// from sample attribution (late samples become *stale*, never
    /// misattributed). Never called with the default unbounded cache.
    fn on_code_retired(&mut self, ev: &CodeRetired, cycles: u64) {
        let _ = (ev, cycles);
    }

    /// A region-compiled method left its region and deoptimized back to
    /// baseline (the baseline reinstall arrives via
    /// [`RuntimeHooks::on_compile`] immediately after).
    fn on_deopt(&mut self, method: MethodId, from_tier: Tier, cycles: u64) {
        let _ = (method, from_tier, cycles);
    }

    /// A collection finished (with cumulative stats).
    fn on_gc(&mut self, stats: &GcStats, cycles: u64) {
        let _ = (stats, cycles);
    }

    /// The program finished: drain any buffered samples so the final
    /// report sees everything. Returns overhead cycles like `on_poll`.
    fn on_exit(&mut self, program: &Program, cycles: u64) -> u64 {
        let _ = (program, cycles);
        0
    }

    /// The co-allocation policy the collector consults when promoting.
    fn coalloc_policy(&self) -> &dyn CoallocPolicy {
        &NoCoalloc
    }
}

/// Hooks that do nothing: the unmonitored baseline configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl RuntimeHooks for NoHooks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_hooks_charges_zero_overhead() {
        let mut h = NoHooks;
        let ctx = AccessContext {
            pc: 0x4000_0000,
            addr: Address(0x1000_0000),
            outcome: AccessOutcome::default(),
            cycles: 10,
            method: MethodId(0),
            bytecode_index: 0,
        };
        assert_eq!(h.on_access(&ctx), 0);
        assert!(h
            .coalloc_policy()
            .coalloc_child(hpmopt_bytecode::ClassId(0))
            .is_none());
    }
}
