//! Bytecode execution engine with compilation tiers, machine-code maps,
//! and an adaptive optimization system.
//!
//! This crate stands in for the Jikes RVM of the paper (Section 3.2):
//!
//! - Every method is "compiled" on first invocation by a **baseline**
//!   compiler; the tier manager ([`hpmopt_jit::TierManager`]) samples the
//!   running method on a timer and **recompiles** hot methods with the
//!   **optimizing** tier, and (when enabled) promotes methods with hot
//!   back edges to **region** compilation with deoptimization back to
//!   baseline. A *pseudo-adaptive* compilation plan can pin the set of
//!   opt-compiled methods for reproducible experiments, exactly as the
//!   paper's evaluation does (Section 6.1).
//! - Compilation artifacts occupy concrete addresses handed out by the
//!   [`hpmopt_jit::CodeCache`] (an unbounded immortal space by default; a
//!   capacity-bounded, evicting, address-reusing cache when configured),
//!   registered in a sorted [`methodtable::MethodTable`] so a sampled
//!   program counter can be resolved back to a method.
//! - Each artifact carries **machine-code maps** ([`machine::McMap`])
//!   translating machine addresses to bytecode indices. Baseline code
//!   always has full maps; opt code has GC-point-only maps unless the
//!   paper's extension (map *every* instruction, Section 4.2) is enabled —
//!   its space cost is what Table 2 measures.
//! - The interpreter executes bytecode while *accounting cycles as the
//!   compiled code would*: per-opcode machine-instruction counts by tier,
//!   plus real memory latency from `hpmopt-memsim` for every heap access.
//!   Heap accesses are reported to [`hooks::RuntimeHooks`] with their
//!   machine PC — the feed for the PEBS sampling unit.
//!
//! # Example
//!
//! ```
//! use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
//! use hpmopt_vm::{NoHooks, Vm, VmConfig};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut m = MethodBuilder::new("main", 0, 1, false);
//! m.const_i(2);
//! m.const_i(3);
//! m.add();
//! m.store(0);
//! m.ret();
//! let id = pb.add_method(m);
//! pb.set_entry(id);
//! let program = pb.finish()?;
//!
//! let mut vm = Vm::new(&program, VmConfig::default());
//! let summary = vm.run(&mut NoHooks).unwrap();
//! assert!(summary.cycles > 0);
//! assert_eq!(summary.bytecodes_executed, 5);
//! # Ok::<(), hpmopt_bytecode::VerifyError>(())
//! ```

pub mod compiler;
pub mod config;
pub mod digest;
pub mod hooks;
pub mod interp;
pub mod machine;
pub mod methodtable;
mod predecode;
pub mod value;

pub use compiler::compile;
pub use config::{CancelToken, VmConfig};
pub use hooks::{AccessContext, CodeRetired, NoHooks, RuntimeHooks};
pub use hpmopt_jit::{CompilationPlan, JitConfig, TierManager};
pub use interp::{RunSummary, Vm};
pub use machine::{CompiledCode, McMap, Tier};
pub use methodtable::MethodTable;
pub use value::{Value, VmError};

/// Base virtual address of the immortal code space. Distinct from the
/// heap and static regions so a sampled PC is unambiguous.
pub const CODE_BASE: u64 = 0x4000_0000;

/// Base virtual address of the static-variable table (the JTOC).
pub const STATICS_BASE: u64 = 0x3000_0000;

pub use hpmopt_jit::MACH_INSTR_BYTES;
