//! Pre-decoded instruction form for the fast interpreter loop.
//!
//! [`decode`] lowers a method body against one compiled artifact into a
//! dense `Vec<DecodedOp>`: operands resolved (field offsets, static
//! addresses, callee arities), branch targets kept as plain indices, and
//! the tier's dispatch cost pre-divided by the issue width — so the hot
//! loop in [`crate::interp`] is a single indexed dispatch with no
//! per-step table lookups, field-info resolution, or tier branching.
//!
//! The decoded form also carries the method's inline-cache slots, one
//! per `GetField`/`PutField`/`Call` site. A slot caches the key the
//! site last dispatched on (receiver class id, or callee install
//! generation); a hit retires the fast-path instruction count from
//! [`crate::compiler::ic_hit_count`], a mismatch re-keys the slot and
//! retires the full sequence. Slots are rebuilt (cold) whenever the
//! method is recompiled, and call slots are invalidated by construction
//! when a callee is recompiled because the callee's generation bumps.
//!
//! Everything here is a *cost-model* artifact: decoding never changes
//! program semantics, and the laid-out machine code (sizes, addresses,
//! maps) is exactly what [`crate::compiler::compile`] produced.

use hpmopt_bytecode::{ClassId, ElemKind, Instr, MethodId, Program};

use crate::compiler::ic_hit_count;
use crate::config::VmConfig;
use crate::machine::{CompiledCode, Tier};
use crate::STATICS_BASE;

/// Sentinel for an inline-cache slot that has never been keyed.
pub(crate) const IC_EMPTY: u32 = u32::MAX;

/// Inline-cache key for receivers that are arrays rather than class
/// instances (field access on an array can never match a class key, so
/// such sites simply stay in the slow path).
pub(crate) const IC_ARRAY_KEY: u32 = u32::MAX - 1;

/// A bytecode with operands resolved at decode time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    Const(i64),
    ConstNull,
    Load(u32),
    Store(u32),
    Dup,
    Pop,
    Swap,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    UShr,
    Neg,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Jump(u32),
    JumpIf(u32),
    JumpIfNot(u32),
    New(ClassId),
    NewArray(ElemKind),
    GetField {
        offset: u64,
        is_ref: bool,
        ic: u32,
    },
    PutField {
        offset: u64,
        is_ref: bool,
        ic: u32,
    },
    GetStatic {
        index: u32,
        addr: u64,
    },
    PutStatic {
        index: u32,
        addr: u64,
    },
    ArrayGet(ElemKind),
    ArraySet(ElemKind),
    ArrayLen,
    IsNull,
    RefEq,
    Call {
        callee: MethodId,
        argc: u32,
        ic: u32,
    },
    Return,
    ReturnVal,
    /// Region-tier code only: this bytecode's block is outside the
    /// compiled region. Executing it abandons the region artifact —
    /// the engine reinstalls baseline code and re-enters the frame at
    /// the same bytecode. Never emitted for baseline or opt code.
    Deopt,
}

/// One pre-decoded bytecode: the resolved [`Op`] plus everything the
/// hot loop needs per step, in one cache-friendly record.
///
/// Costs are *machine-instruction counts*, not cycles: the engine sums
/// them across a basic block and divides by the tier's retirement width
/// once per block, so adjacent one-instruction bytecodes share issue
/// slots instead of each paying a full rounded-up cycle.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DecodedOp {
    /// The operation with operands resolved.
    pub op: Op,
    /// Machine instructions retired when the op completes. For
    /// inline-cached sites this is the *hit* count; everything else
    /// retires the full sequence from the artifact.
    pub cost: u32,
    /// Additional machine instructions on an inline-cache miss (zero
    /// elsewhere).
    pub miss_extra: u32,
    /// Machine PC of the op's memory instruction, for sample attribution.
    pub mem_pc: u64,
}

/// Monomorphic inline-cache slot state.
#[derive(Debug, Clone, Copy)]
pub(crate) enum IcSlot {
    /// Field site keyed by the receiver's class id ([`IC_ARRAY_KEY`] for
    /// array receivers, [`IC_EMPTY`] when cold).
    Field { class: u32 },
    /// Call site keyed by the callee's install generation (bumped every
    /// time any artifact for the callee is installed; [`IC_EMPTY`] when
    /// unlinked).
    Call { generation: u32 },
}

/// A method body decoded against one compiled artifact. Replaced — with
/// all cache slots cold — whenever the method is (re)compiled.
#[derive(Debug, Clone)]
pub(crate) struct DecodedMethod {
    /// One entry per bytecode, same indices as the method body.
    pub ops: Vec<DecodedOp>,
    /// Inline-cache slots referenced by `Op::{GetField,PutField,Call}`.
    pub ics: Vec<IcSlot>,
    /// Machine instructions retired per cycle for this body's tier (the
    /// divisor applied to a block's summed instruction counts).
    pub width: u64,
    /// Tier of the artifact this body was decoded against.
    pub tier: Tier,
    /// Basic-block id of each bytecode (leaders: entry, branch targets,
    /// fall-throughs after control transfers). The tier manager counts
    /// back-edge executions per block, and region compilation keeps the
    /// hottest blocks.
    pub block_of: Vec<u32>,
}

/// Basic-block id per bytecode: a new block starts at the entry, at every
/// branch target, and after every control transfer.
pub(crate) fn block_map(body: &[Instr]) -> Vec<u32> {
    let mut leader = vec![false; body.len()];
    if !leader.is_empty() {
        leader[0] = true;
    }
    for (i, &instr) in body.iter().enumerate() {
        match instr {
            Instr::Jump(t) | Instr::JumpIf(t) | Instr::JumpIfNot(t) => {
                leader[t as usize] = true;
                if i + 1 < body.len() {
                    leader[i + 1] = true;
                }
            }
            Instr::Return | Instr::ReturnVal if i + 1 < body.len() => {
                leader[i + 1] = true;
            }
            _ => {}
        }
    }
    let mut block = 0u32;
    leader
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            if l && i > 0 {
                block += 1;
            }
            block
        })
        .collect()
}

/// Retired IPC for baseline-tier code under the flattened engine.
///
/// The per-step engine re-decodes every bytecode from the artifact, so
/// baseline code's operand-stack traffic serializes behind the decode
/// dependency chain (~1 IPC, the cost the slow path still charges).
/// Pre-decoding removes that chain: the stack loads/stores of adjacent
/// machine instructions dual-issue, while opt code — already register
/// allocated — retires at the full issue width.
const BASELINE_ISSUE_WIDTH: u64 = 2;

/// Decode `code`'s method body into the dense executable form.
///
/// `region` is the sorted block-id set a region-tier artifact covers
/// (`None` for baseline/opt code): bytecodes in blocks outside the
/// region decode to [`Op::Deopt`] at zero cost — region code never
/// retires instructions for paths it did not compile.
#[allow(clippy::too_many_lines)]
pub(crate) fn decode(
    program: &Program,
    code: &CompiledCode,
    config: &VmConfig,
    region: Option<&[u32]>,
) -> DecodedMethod {
    let body = program.method(code.method).body();
    let mut ops = Vec::with_capacity(body.len());
    let mut ics = Vec::new();
    let width = match code.tier {
        Tier::Baseline => BASELINE_ISSUE_WIDTH,
        Tier::Opt | Tier::Region => config.issue_width,
    };
    let block_of = block_map(body);
    for (bc, &i) in body.iter().enumerate() {
        if let Some(region) = region {
            if code.tier == Tier::Region && region.binary_search(&block_of[bc]).is_err() {
                ops.push(DecodedOp {
                    op: Op::Deopt,
                    cost: 0,
                    miss_extra: 0,
                    mem_pc: code.mem_pc(bc),
                });
                continue;
            }
        }
        let full_cost = code.mach_count(bc);
        let mut cost = full_cost;
        let mut ic = IC_EMPTY;
        if let Some(hit) = ic_hit_count(i, code.tier) {
            cost = hit;
            ic = ics.len() as u32;
            ics.push(match i {
                Instr::Call(_) => IcSlot::Call {
                    generation: IC_EMPTY,
                },
                _ => IcSlot::Field { class: IC_EMPTY },
            });
        }
        let op = match i {
            Instr::Const(v) => Op::Const(v),
            Instr::ConstNull => Op::ConstNull,
            Instr::Load(n) => Op::Load(u32::from(n)),
            Instr::Store(n) => Op::Store(u32::from(n)),
            Instr::Dup => Op::Dup,
            Instr::Pop => Op::Pop,
            Instr::Swap => Op::Swap,
            Instr::Add => Op::Add,
            Instr::Sub => Op::Sub,
            Instr::Mul => Op::Mul,
            Instr::Div => Op::Div,
            Instr::Rem => Op::Rem,
            Instr::And => Op::And,
            Instr::Or => Op::Or,
            Instr::Xor => Op::Xor,
            Instr::Shl => Op::Shl,
            Instr::Shr => Op::Shr,
            Instr::UShr => Op::UShr,
            Instr::Neg => Op::Neg,
            Instr::Eq => Op::Eq,
            Instr::Ne => Op::Ne,
            Instr::Lt => Op::Lt,
            Instr::Le => Op::Le,
            Instr::Gt => Op::Gt,
            Instr::Ge => Op::Ge,
            Instr::Jump(t) => Op::Jump(t),
            Instr::JumpIf(t) => Op::JumpIf(t),
            Instr::JumpIfNot(t) => Op::JumpIfNot(t),
            Instr::New(c) => Op::New(c),
            Instr::NewArray(k) => Op::NewArray(k),
            Instr::GetField(f) => {
                let info = program.field(f);
                Op::GetField {
                    offset: info.offset,
                    is_ref: info.ty.is_ref(),
                    ic,
                }
            }
            Instr::PutField(f) => {
                let info = program.field(f);
                Op::PutField {
                    offset: info.offset,
                    is_ref: info.ty.is_ref(),
                    ic,
                }
            }
            Instr::GetStatic(s) => Op::GetStatic {
                index: s.0,
                addr: STATICS_BASE + 8 * u64::from(s.0),
            },
            Instr::PutStatic(s) => Op::PutStatic {
                index: s.0,
                addr: STATICS_BASE + 8 * u64::from(s.0),
            },
            Instr::ArrayGet(k) => Op::ArrayGet(k),
            Instr::ArraySet(k) => Op::ArraySet(k),
            Instr::ArrayLen => Op::ArrayLen,
            Instr::IsNull => Op::IsNull,
            Instr::RefEq => Op::RefEq,
            Instr::Call(callee) => Op::Call {
                callee,
                argc: u32::from(program.method(callee).params()),
                ic,
            },
            Instr::Return => Op::Return,
            Instr::ReturnVal => Op::ReturnVal,
        };
        ops.push(DecodedOp {
            op,
            cost,
            miss_extra: full_cost.saturating_sub(cost),
            mem_pc: code.mem_pc(bc),
        });
    }
    DecodedMethod {
        ops,
        ics,
        width,
        tier: code.tier,
        block_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
    use hpmopt_bytecode::FieldType;

    fn sample_program() -> (Program, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", &[("f", FieldType::Int)]);
        let f = pb.field_id(c, "f").unwrap();
        let mut m = MethodBuilder::new("main", 0, 1, false);
        m.new_object(c);
        m.store(0);
        m.load(0);
        m.const_i(5);
        m.put_field(f);
        m.load(0);
        m.get_field(f);
        m.pop();
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        (pb.finish().unwrap(), id)
    }

    #[test]
    fn decoded_ops_align_with_body_and_artifact() {
        let (p, id) = sample_program();
        let cfg = VmConfig::test();
        for tier in [Tier::Baseline, Tier::Opt] {
            let code = compile(&p, id, tier, 0x4000_0000, true);
            let d = decode(&p, &code, &cfg, None);
            assert_eq!(d.ops.len(), p.method(id).len());
            assert!(d.width >= 2, "flattened dispatch at least dual-issues");
            for (bc, op) in d.ops.iter().enumerate() {
                assert_eq!(op.mem_pc, code.mem_pc(bc), "mem_pc drift at {bc}");
                assert_eq!(
                    op.cost + op.miss_extra,
                    code.mach_count(bc),
                    "hit+miss_extra must equal the artifact's count at {bc}"
                );
            }
        }
    }

    fn looped_program() -> (Program, MethodId) {
        let mut pb = ProgramBuilder::new();
        let mut m = MethodBuilder::new("main", 0, 1, false);
        m.const_i(3); // bc 0   block 0
        m.store(0); // bc 1
        let top = m.label();
        m.bind(top); // bc 2   block 1 (branch target)
        m.load(0);
        m.const_i(1);
        m.sub();
        m.store(0);
        m.load(0);
        m.jump_if(top); // bc 7   back edge
        m.ret(); // bc 8   block 2 (fall-through leader)
        let id = pb.add_method(m);
        pb.set_entry(id);
        (pb.finish().unwrap(), id)
    }

    #[test]
    fn block_map_splits_at_targets_and_after_transfers() {
        let (p, id) = looped_program();
        let blocks = block_map(p.method(id).body());
        assert_eq!(blocks, vec![0, 0, 1, 1, 1, 1, 1, 1, 2]);
    }

    #[test]
    fn region_decode_lowers_out_of_region_blocks_to_deopt() {
        let (p, id) = looped_program();
        let cfg = VmConfig::test();
        let code = compile(&p, id, Tier::Region, 0x4000_0000, true);
        // Region covers entry + loop body, not the exit block.
        let d = decode(&p, &code, &cfg, Some(&[0, 1]));
        assert_eq!(d.tier, Tier::Region);
        assert_eq!(d.width, cfg.issue_width);
        for (bc, op) in d.ops.iter().enumerate() {
            if d.block_of[bc] == 2 {
                assert!(matches!(op.op, Op::Deopt), "exit block must deopt");
                assert_eq!(op.cost, 0, "deopt retires nothing");
                assert_eq!(op.miss_extra, 0);
            } else {
                assert!(!matches!(op.op, Op::Deopt), "in-region bc {bc} kept");
                assert_eq!(op.cost + op.miss_extra, code.mach_count(bc));
            }
        }
        // A full-coverage region decodes with no deopts at all.
        let full = decode(&p, &code, &cfg, Some(&[0, 1, 2]));
        assert!(full.ops.iter().all(|o| !matches!(o.op, Op::Deopt)));
    }

    #[test]
    fn ic_slots_cover_exactly_the_cacheable_sites() {
        let (p, id) = sample_program();
        let code = compile(&p, id, Tier::Baseline, 0x4000_0000, true);
        let d = decode(&p, &code, &VmConfig::test(), None);
        // put_field + get_field: two field slots, no call slots.
        assert_eq!(d.ics.len(), 2);
        assert!(d
            .ics
            .iter()
            .all(|s| matches!(s, IcSlot::Field { class: IC_EMPTY })));
        let cached: Vec<u32> = d
            .ops
            .iter()
            .filter_map(|o| match o.op {
                Op::GetField { ic, .. } | Op::PutField { ic, .. } | Op::Call { ic, .. } => Some(ic),
                _ => None,
            })
            .collect();
        assert_eq!(cached, vec![0, 1]);
        // Cacheable sites are cheaper on a hit than the full sequence.
        for o in d.ops.iter().filter(|o| {
            matches!(
                o.op,
                Op::GetField { .. } | Op::PutField { .. } | Op::Call { .. }
            )
        }) {
            assert!(o.miss_extra > 0, "baseline IC hit must beat the full cost");
        }
    }
}
