//! Differential testing: random expression programs are executed by the
//! VM and by a direct Rust evaluator; results must agree exactly.

//
// These tests need the external `proptest` crate, which the offline
// build cannot fetch; enable with `--features proptest-tests` after
// adding proptest as a dev-dependency.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::{FieldType, Program};
use hpmopt_vm::{NoHooks, Value, Vm, VmConfig};

/// A random arithmetic expression tree.
#[derive(Debug, Clone)]
enum Expr {
    Const(i64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Shl(Box<Expr>, Box<Expr>),
    Lt(Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = any::<i64>().prop_map(Expr::Const);
    leaf.prop_recursive(6, 64, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Shl(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Lt(a.into(), b.into())),
            inner.prop_map(|a| Expr::Neg(a.into())),
        ]
    })
}

/// The reference semantics.
fn eval(e: &Expr) -> i64 {
    match e {
        Expr::Const(v) => *v,
        Expr::Add(a, b) => eval(a).wrapping_add(eval(b)),
        Expr::Sub(a, b) => eval(a).wrapping_sub(eval(b)),
        Expr::Mul(a, b) => eval(a).wrapping_mul(eval(b)),
        Expr::Xor(a, b) => eval(a) ^ eval(b),
        Expr::Shl(a, b) => eval(a).wrapping_shl(eval(b) as u32 & 63),
        Expr::Lt(a, b) => i64::from(eval(a) < eval(b)),
        Expr::Neg(a) => eval(a).wrapping_neg(),
    }
}

/// Compile the expression to stack code (operands left-to-right).
fn emit(m: &mut MethodBuilder, e: &Expr) {
    match e {
        Expr::Const(v) => {
            m.const_i(*v);
        }
        Expr::Add(a, b) => {
            emit(m, a);
            emit(m, b);
            m.add();
        }
        Expr::Sub(a, b) => {
            emit(m, a);
            emit(m, b);
            m.sub();
        }
        Expr::Mul(a, b) => {
            emit(m, a);
            emit(m, b);
            m.mul();
        }
        Expr::Xor(a, b) => {
            emit(m, a);
            emit(m, b);
            m.xor();
        }
        Expr::Shl(a, b) => {
            emit(m, a);
            emit(m, b);
            m.shl();
        }
        Expr::Lt(a, b) => {
            emit(m, a);
            emit(m, b);
            m.lt();
        }
        Expr::Neg(a) => {
            emit(m, a);
            m.neg();
        }
    }
}

fn program_for(e: &Expr) -> Program {
    let mut pb = ProgramBuilder::new();
    let g = pb.add_static("result", FieldType::Int);
    let mut m = MethodBuilder::new("main", 0, 0, false);
    emit(&mut m, e);
    m.put_static(g);
    m.ret();
    let id = pb.add_method(m);
    pb.set_entry(id);
    pb.finish().expect("expression programs verify")
}

fn run_vm(p: &Program) -> i64 {
    let mut vm = Vm::new(p, VmConfig::test());
    vm.run(&mut NoHooks).expect("expression programs run");
    match vm.static_value(0) {
        Value::Int(v) => v,
        Value::Ref(_) => panic!("expression result must be an integer"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The interpreter agrees with direct evaluation on every expression.
    #[test]
    fn vm_matches_reference_semantics(e in expr_strategy()) {
        let p = program_for(&e);
        prop_assert_eq!(run_vm(&p), eval(&e));
    }

    /// Cycle accounting is deterministic and positive.
    #[test]
    fn execution_is_deterministic(e in expr_strategy()) {
        let p = program_for(&e);
        let run = || {
            let mut vm = Vm::new(&p, VmConfig::test());
            vm.run(&mut NoHooks).unwrap().cycles
        };
        let a = run();
        prop_assert!(a > 0);
        prop_assert_eq!(a, run());
    }
}
