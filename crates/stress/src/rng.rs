//! Deterministic pseudo-random numbers for scenario generation.
//!
//! SplitMix64: tiny, dependency-free, and with good enough statistical
//! behaviour to diversify program shapes. Every scenario derives all of
//! its randomness from a single `u64` seed, so a scenario is fully
//! identified by `(seed, knobs)` and replays bit-identically.

/// SplitMix64 generator state.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seed a generator. Distinct seeds (including 0) give distinct,
    /// well-mixed streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` ≥ 1).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound >= 1);
        // Multiply-shift reduction; the modulo bias is irrelevant here.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    /// A derived generator for an independent sub-stream (e.g. one per
    /// generated method), so inserting a draw in one place does not
    /// reshuffle every later decision.
    pub fn fork(&mut self, label: u64) -> Rng {
        Rng(self.next_u64() ^ label.wrapping_mul(0x2545_f491_4f6c_dd1d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(Rng::new(1), |r, _| Some(r.next_u64()))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(Rng::new(1), |r, _| Some(r.next_u64()))
            .collect();
        let c: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(Rng::new(2), |r, _| Some(r.next_u64()))
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
        }
    }
}
