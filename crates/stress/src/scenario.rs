//! Scenario description and the replayable `key = value` case format.
//!
//! A [`Scenario`] is everything the engine needs to reproduce one check:
//! the seed, the shape knobs, whether the skip-zeroing fault is injected,
//! and the expected outcome. Case files are deliberately trivial text so
//! a failing seed can be committed to `tests/corpus/` and inspected in a
//! diff.

use std::fmt::Write as _;

use crate::genprog::ShapeKnobs;

/// Expected outcome recorded in a case file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// All oracles must hold.
    Pass,
    /// At least one oracle must flag the scenario (fault-injection cases).
    Fail,
}

impl Expect {
    /// Case-file spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Expect::Pass => "pass",
            Expect::Fail => "fail",
        }
    }
}

/// One fully-specified, replayable stress scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Seed for both knob derivation (when knobs are not overridden) and
    /// program-content randomness.
    pub seed: u64,
    /// Program shape.
    pub knobs: ShapeKnobs,
    /// Inject the allocation-zeroing fault ([`hpmopt_gc::HeapConfig::fault_skip_zeroing`]).
    pub fault_skip_zeroing: bool,
    /// Expected outcome when replayed.
    pub expect: Expect,
}

impl Scenario {
    /// The scenario a bare seed denotes: derived knobs, no fault, must
    /// pass.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Scenario {
            seed,
            knobs: ShapeKnobs::from_seed(seed),
            fault_skip_zeroing: false,
            expect: Expect::Pass,
        }
    }

    /// Serialize to the case-file format.
    #[must_use]
    pub fn to_case_string(&self) -> String {
        let k = &self.knobs;
        let mut s = String::new();
        let _ = writeln!(s, "# hpmopt-stress case file");
        let _ = writeln!(s, "seed = {}", self.seed);
        let _ = writeln!(s, "classes = {}", k.classes);
        let _ = writeln!(s, "int_fields = {}", k.int_fields);
        let _ = writeln!(s, "chase_depth = {}", k.chase_depth);
        let _ = writeln!(s, "list_len = {}", k.list_len);
        let _ = writeln!(s, "array_mask = {}", k.array_mask);
        let _ = writeln!(s, "large_array_pct = {}", k.large_array_pct);
        let _ = writeln!(s, "call_depth = {}", k.call_depth);
        let _ = writeln!(s, "rounds = {}", k.rounds);
        let _ = writeln!(s, "churn_units = {}", k.churn_units);
        let _ = writeln!(s, "fault_skip_zeroing = {}", self.fault_skip_zeroing);
        let _ = writeln!(s, "expect = {}", self.expect.as_str());
        s
    }

    /// Parse the case-file format.
    ///
    /// Unknown keys are rejected (a typo must not silently change the
    /// scenario); missing keys fall back to the seed-derived defaults, so
    /// shrunk cases stay minimal.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn from_case_str(text: &str) -> Result<Self, String> {
        let mut seed: Option<u64> = None;
        let mut overrides: Vec<(String, u64)> = Vec::new();
        let mut fault = false;
        let mut expect = Expect::Pass;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let key = key.trim();
            let value = value.trim();
            let parse_u64 = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| format!("line {}: `{key}` wants an integer", lineno + 1))
            };
            match key {
                "seed" => seed = Some(parse_u64(value)?),
                "fault_skip_zeroing" => {
                    fault = match value {
                        "true" => true,
                        "false" => false,
                        _ => {
                            return Err(format!(
                                "line {}: `fault_skip_zeroing` wants true/false",
                                lineno + 1
                            ))
                        }
                    };
                }
                "expect" => {
                    expect = match value {
                        "pass" => Expect::Pass,
                        "fail" => Expect::Fail,
                        _ => return Err(format!("line {}: `expect` wants pass/fail", lineno + 1)),
                    };
                }
                "classes" | "int_fields" | "chase_depth" | "list_len" | "array_mask"
                | "large_array_pct" | "call_depth" | "rounds" | "churn_units" => {
                    overrides.push((key.to_string(), parse_u64(value)?));
                }
                other => return Err(format!("line {}: unknown key `{other}`", lineno + 1)),
            }
        }
        let seed = seed.ok_or("case file missing `seed`")?;
        let mut knobs = ShapeKnobs::from_seed(seed);
        for (key, v) in overrides {
            match key.as_str() {
                "classes" => knobs.classes = v,
                "int_fields" => knobs.int_fields = v,
                "chase_depth" => knobs.chase_depth = v,
                "list_len" => knobs.list_len = v,
                "array_mask" => knobs.array_mask = v,
                "large_array_pct" => knobs.large_array_pct = v,
                "call_depth" => knobs.call_depth = v,
                "rounds" => knobs.rounds = v,
                "churn_units" => knobs.churn_units = v,
                _ => unreachable!("filtered above"),
            }
        }
        Ok(Scenario {
            seed,
            knobs: knobs.clamped(),
            fault_skip_zeroing: fault,
            expect,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_round_trips() {
        let mut s = Scenario::from_seed(1234);
        s.knobs.rounds = 3;
        s.fault_skip_zeroing = true;
        s.expect = Expect::Fail;
        let text = s.to_case_string();
        let back = Scenario::from_case_str(&text).expect("parses");
        assert_eq!(s, back);
    }

    #[test]
    fn missing_knobs_default_from_seed() {
        let s = Scenario::from_case_str("seed = 77\n").expect("parses");
        assert_eq!(s, Scenario::from_seed(77));
    }

    #[test]
    fn unknown_keys_and_garbage_rejected() {
        assert!(Scenario::from_case_str("seed = 1\nbogus = 2\n").is_err());
        assert!(Scenario::from_case_str("no equals sign\n").is_err());
        assert!(
            Scenario::from_case_str("classes = 2\n").is_err(),
            "seed is mandatory"
        );
        assert!(Scenario::from_case_str("seed = 1\nexpect = maybe\n").is_err());
    }
}
