//! Greedy scenario shrinking.
//!
//! Given a failing scenario, repeatedly halve each shape knob toward its
//! minimum, keeping a change only when the shrunk scenario still fails
//! the oracles, until no single halving reproduces the failure (a
//! fixpoint). The walk is a fixed knob order with deterministic oracles,
//! so the same failure always shrinks to the same minimal reproducer.

use crate::genprog::ShapeKnobs;
use crate::oracles::run_scenario;
use crate::scenario::Scenario;

/// Hard cap on oracle evaluations during a shrink (each evaluation runs
/// the five arms, so this bounds shrink time at roughly a minute).
const MAX_ATTEMPTS: usize = 200;

/// Shrinkable knobs in shrink order (cheapest structural reductions
/// first), as `(name, floor)`.
const KNOBS: [(&str, u64); 9] = [
    ("rounds", 1),
    ("call_depth", 1),
    ("classes", 1),
    ("int_fields", 0),
    ("chase_depth", 1),
    ("churn_units", 0),
    ("large_array_pct", 0),
    ("array_mask", 1),
    ("list_len", 1),
];

fn get(k: &ShapeKnobs, i: usize) -> u64 {
    match i {
        0 => k.rounds,
        1 => k.call_depth,
        2 => k.classes,
        3 => k.int_fields,
        4 => k.chase_depth,
        5 => k.churn_units,
        6 => k.large_array_pct,
        7 => k.array_mask,
        _ => k.list_len,
    }
}

fn set(k: &mut ShapeKnobs, i: usize, v: u64) {
    match i {
        0 => k.rounds = v,
        1 => k.call_depth = v,
        2 => k.classes = v,
        3 => k.int_fields = v,
        4 => k.chase_depth = v,
        5 => k.churn_units = v,
        6 => k.large_array_pct = v,
        7 => k.array_mask = v,
        _ => k.list_len = v,
    }
}

/// Result of a shrink.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The smallest still-failing scenario found.
    pub scenario: Scenario,
    /// Oracle evaluations spent.
    pub attempts: usize,
    /// Failure lines of the minimal reproducer.
    pub failures: Vec<String>,
}

/// Shrink `scenario` to a minimal still-failing reproducer.
///
/// Returns `None` when the input does not fail in the first place (there
/// is nothing to shrink).
#[must_use]
pub fn shrink(scenario: &Scenario) -> Option<ShrinkResult> {
    let first = run_scenario(scenario);
    if first.pass {
        return None;
    }
    let mut best = *scenario;
    let mut best_failures = first.failures;
    let mut attempts = 1;

    let mut progressed = true;
    while progressed && attempts < MAX_ATTEMPTS {
        progressed = false;
        for (i, &(_name, floor)) in KNOBS.iter().enumerate() {
            while attempts < MAX_ATTEMPTS {
                let current = get(&best.knobs, i);
                if current <= floor {
                    break;
                }
                // Halve toward the floor (never skipping it).
                let mut candidate = best;
                set(&mut candidate.knobs, i, (current / 2).max(floor));
                candidate.knobs = candidate.knobs.clamped();
                attempts += 1;
                let out = run_scenario(&candidate);
                if out.pass {
                    break; // this knob is load-bearing at its current value
                }
                best = candidate;
                best_failures = out.failures;
                progressed = true;
            }
        }
    }

    Some(ShrinkResult {
        scenario: best,
        attempts,
        failures: best_failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Total knob mass, a crude size measure for "did it get smaller".
    fn mass(k: &ShapeKnobs) -> u64 {
        (0..KNOBS.len()).map(|i| get(k, i)).sum()
    }

    #[test]
    fn passing_scenarios_do_not_shrink() {
        assert!(shrink(&Scenario::from_seed(0)).is_none());
    }

    #[test]
    fn injected_fault_shrinks_and_still_fails() {
        // Find a seed whose faulted scenario fails, then shrink it.
        let failing = (0..8).map(Scenario::from_seed).find_map(|mut s| {
            s.fault_skip_zeroing = true;
            (!run_scenario(&s).pass).then_some(s)
        });
        let failing = failing.expect("some faulted seed fails");
        let result = shrink(&failing).expect("failing scenario shrinks");
        assert!(!result.failures.is_empty());
        assert!(
            mass(&result.scenario.knobs) <= mass(&failing.knobs),
            "shrinking must not grow the scenario"
        );
        // The reproducer must still fail when replayed from scratch.
        assert!(!run_scenario(&result.scenario).pass);
        // And shrinking is deterministic.
        let again = shrink(&failing).expect("still fails");
        assert_eq!(result.scenario, again.scenario);
    }
}
