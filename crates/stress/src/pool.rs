//! Reusable work-stealing worker pool over an indexed task range.
//!
//! Extracted from the shard runner so the same primitive — and the same
//! determinism argument — serves both the stress engine and the serve
//! daemon's batch lanes. Tasks are identified by their index in
//! `0..total`; workers claim indices through one shared atomic counter
//! (work stealing by contention, no per-worker queues to balance), and
//! each result lands in the slot named by its index. The output
//! therefore depends only on the task function and the range — never on
//! worker count, scheduling, or timing — which is what lets CI diff a
//! 1-worker run against an N-worker run byte for byte.
//!
//! An optional deadline truncates the run: workers finish the task they
//! claimed but stop claiming once the deadline passes, so incomplete
//! slots only ever form a suffix *of claims*; callers that need a
//! contiguous prefix take it with [`contiguous_prefix`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Run `task` for every index in `0..total` across `workers` threads
/// (clamped to ≥ 1), returning results in index order. Slots whose task
/// never ran (deadline truncation) are `None`.
pub fn run_indexed<T, F>(
    total: u64,
    workers: usize,
    deadline: Option<Instant>,
    task: F,
) -> Vec<Option<T>>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let slots: Vec<Mutex<Option<T>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let next = AtomicU64::new(0);
    let workers = workers.max(1);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        break;
                    }
                }
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= total {
                    break;
                }
                let result = task(idx);
                *slots[idx as usize].lock().expect("slot lock") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot lock"))
        .collect()
}

/// The longest contiguous completed prefix of a [`run_indexed`] result:
/// a worker never abandons a claimed index, so holes only exist past the
/// point where a deadline stopped claim traffic.
#[must_use]
pub fn contiguous_prefix<T>(slots: Vec<Option<T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot {
            Some(v) => out.push(v),
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn results_are_identical_for_one_and_many_workers() {
        let task = |i: u64| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ i;
        let solo: Vec<u64> = contiguous_prefix(run_indexed(64, 1, None, task));
        let many: Vec<u64> = contiguous_prefix(run_indexed(64, 8, None, task));
        assert_eq!(solo.len(), 64);
        assert_eq!(solo, many, "output is worker-count independent");
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let done = run_indexed(3, 0, None, |i| i);
        assert_eq!(done, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn expired_deadline_truncates_to_a_prefix() {
        let deadline = Some(Instant::now() - Duration::from_secs(1));
        let done = contiguous_prefix(run_indexed(8, 4, deadline, |i| i));
        assert!(done.len() < 8, "expired deadline stops claims");
    }
}
