//! Differential and invariant oracles.
//!
//! A scenario is run through seven arms, every arm with post-collection
//! heap verification enabled ([`VmConfig::verify_heap_every_gc`]):
//!
//! | arm | tier                  | collector | monitoring                    |
//! |-----|-----------------------|-----------|-------------------------------|
//! | A   | interpreter           | GenMS     | off                           |
//! | B   | all-opt plan          | GenMS     | off                           |
//! | C   | interpreter           | GenCopy   | off                           |
//! | D   | all-opt plan          | GenMS     | PEBS Fixed(512), co-alloc on  |
//! | E   | all-opt plan          | GenMS     | [`HpmConfig::disabled`]       |
//! | F   | all-opt, IC off       | GenMS     | off                           |
//! | G   | tiered, 4 KiB cache   | GenMS     | PEBS Fixed(512), co-alloc on  |
//!
//! Arm G runs the full tiered pipeline — timer-driven tier-1 promotion,
//! back-edge-driven tier-2 region compilation with deoptimization, and a
//! code cache small enough that LRU eviction and address-range reuse
//! happen constantly — under monitoring, so late samples hit freed
//! ranges and must go stale rather than misattribute.
//!
//! Invariants checked:
//!
//! 1. **Differential**: all seven arms finish cleanly and produce the
//!    same placement-independent state digest — compiled code agrees
//!    with the interpreter, GenMS agrees with GenCopy, monitoring (which
//!    may move objects via co-allocation) perturbs nothing
//!    program-visible, inline caches ([`VmConfig::inline_caches`])
//!    change only the cost model, and tier churn (recompilation,
//!    deoptimization, eviction) never changes program state.
//! 2. **Heap integrity**: `Heap::verify` holds after every collection in
//!    every arm (surfaced as [`VmError::HeapCorrupt`]).
//! 3. **Attribution**: with full machine-code maps, no sample in a
//!    monitored arm is foreign or unmapped — every sampled PC resolves
//!    or (in arm G, where code is freed under the sampler) is counted
//!    stale and dropped.
//!
//! Arm G's eviction count is surfaced as
//! [`ScenarioOutcome::tiered_evictions`] rather than gated per scenario
//! — a tiny program legitimately never outgrows the cache — and the
//! pinned clean-seed suite asserts the standard seeds do evict, so the
//! reuse path cannot silently stop being exercised.
//!
//! Any panic inside an arm (for example [`TypeTag`] decoding tripping
//! over a corrupted header) is caught and reported as a failure rather
//! than tearing the shard runner down.

use std::panic::{self, AssertUnwindSafe};

use hpmopt_core::{HpmRuntime, RunConfig};
use hpmopt_gc::{CollectorKind, HeapConfig};
use hpmopt_hpm::{HpmConfig, SamplingInterval};
use hpmopt_vm::{CompilationPlan, NoHooks, Vm, VmConfig};

use crate::genprog::{generate, GeneratedProgram};
use crate::scenario::{Expect, Scenario};

/// Outcome of running one scenario through every oracle.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// True when every oracle held.
    pub pass: bool,
    /// One line per violated oracle (empty on pass).
    pub failures: Vec<String>,
    /// Digest of arm A (0 when arm A itself failed) — stable fingerprint
    /// for the deterministic summary.
    pub digest: u64,
    /// Simulated cycles of arm A (0 when arm A failed) — the scenario's
    /// deterministic baseline cost, the perf counterpart of `digest`.
    pub cycles: u64,
    /// Simulated cycles of the monitored arm D (0 when it failed);
    /// `hpmopt-bench` consumes this as the pinned-shard perf arm.
    pub monitored_cycles: u64,
    /// Capacity evictions arm G's bounded code cache performed (0 when
    /// the arm failed or the scenario's code never outgrew the cache).
    pub tiered_evictions: u64,
}

impl ScenarioOutcome {
    /// Whether the outcome matches the scenario's `expect` line.
    #[must_use]
    pub fn matches_expectation(&self) -> bool {
        match self.scenario.expect {
            Expect::Pass => self.pass,
            Expect::Fail => !self.pass,
        }
    }
}

/// Heap sizing used by all stress arms: small enough that every scenario
/// exercises minor and major collections, large enough that the bounded
/// live set (see `genprog`) never legitimately overflows.
fn stress_heap(collector: CollectorKind, fault_skip_zeroing: bool) -> HeapConfig {
    HeapConfig {
        heap_bytes: 512 * 1024,
        nursery_bytes: 32 * 1024,
        los_bytes: 4 * 1024 * 1024,
        collector,
        fault_skip_zeroing,
        ..HeapConfig::small()
    }
}

fn stress_vm(collector: CollectorKind, plan: Option<CompilationPlan>, fault: bool) -> VmConfig {
    let mut vm = VmConfig::test();
    vm.heap = stress_heap(collector, fault);
    vm.jit.tier1_enabled = false;
    vm.plan = plan;
    vm.full_mcmaps = true;
    vm.verify_heap_every_gc = true;
    vm.step_limit = Some(200_000_000);
    vm
}

/// Run `body`, converting a panic into an `Err` line.
fn guarded<T>(arm: &str, body: impl FnOnce() -> Result<T, String>) -> Result<T, String> {
    match panic::catch_unwind(AssertUnwindSafe(body)) {
        Ok(r) => r.map_err(|e| format!("arm {arm}: {e}")),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("arm {arm}: panic: {msg}"))
        }
    }
}

fn vm_arm(arm: &str, gp: &GeneratedProgram, config: VmConfig) -> Result<(u64, u64), String> {
    guarded(arm, || {
        let mut vm = Vm::new(&gp.program, config);
        let summary = vm.run(&mut NoHooks).map_err(|e| format!("VmError: {e}"))?;
        Ok((vm.state_digest(), summary.cycles))
    })
}

/// The tiered-churn arm's VM configuration: aggressive tier-1 sampling,
/// low-threshold tier-2 region compilation, and a code cache far smaller
/// than any generated program's code footprint so eviction and range
/// reuse are continuous.
fn tiered_vm(fault: bool) -> VmConfig {
    let mut vm = stress_vm(CollectorKind::GenMs, None, fault);
    vm.jit.tier1_enabled = true;
    vm.jit.sample_period_cycles = 50_000;
    vm.jit.tier1_threshold = 2;
    vm.jit.tier2_enabled = true;
    vm.jit.tier2_threshold = 64;
    vm.jit.code_cache_capacity_bytes = Some(4 * 1024);
    vm
}

fn runtime_arm(
    arm: &str,
    gp: &GeneratedProgram,
    vm: VmConfig,
    hpm: HpmConfig,
) -> Result<(u64, hpmopt_core::RunReport), String> {
    let config = RunConfig {
        vm,
        hpm,
        coalloc: true,
        ..RunConfig::default()
    };
    guarded(arm, || {
        let report = HpmRuntime::new(config)
            .run(&gp.program)
            .map_err(|e| format!("VmError: {e}"))?;
        Ok((report.result_digest, report))
    })
}

/// Monitored-arm HPM configuration: an aggressive fixed interval and a
/// small buffer so even short scenarios deliver plenty of samples and
/// buffer-overflow interrupts.
#[must_use]
pub fn monitored_hpm() -> HpmConfig {
    HpmConfig {
        interval: SamplingInterval::Fixed(512),
        buffer_capacity: 64,
        ..HpmConfig::default()
    }
}

/// Run every oracle over `scenario`.
#[must_use]
pub fn run_scenario(scenario: &Scenario) -> ScenarioOutcome {
    let gp = generate(scenario.seed, scenario.knobs);
    let fault = scenario.fault_skip_zeroing;
    let mut failures = Vec::new();

    let a = vm_arm(
        "A/interp-genms",
        &gp,
        stress_vm(CollectorKind::GenMs, None, fault),
    );
    let b = vm_arm(
        "B/opt-genms",
        &gp,
        stress_vm(
            CollectorKind::GenMs,
            Some(CompilationPlan::new(gp.all_methods.clone())),
            fault,
        ),
    );
    let c = vm_arm(
        "C/interp-gencopy",
        &gp,
        stress_vm(CollectorKind::GenCopy, None, fault),
    );
    let all_opt = || {
        stress_vm(
            CollectorKind::GenMs,
            Some(CompilationPlan::new(gp.all_methods.clone())),
            fault,
        )
    };
    let d = runtime_arm("D/monitored", &gp, all_opt(), monitored_hpm());
    let e = runtime_arm("E/monitor-off", &gp, all_opt(), HpmConfig::disabled());
    let f = vm_arm("F/opt-ic-off", &gp, {
        let mut vm = stress_vm(
            CollectorKind::GenMs,
            Some(CompilationPlan::new(gp.all_methods.clone())),
            fault,
        );
        vm.inline_caches = false;
        vm
    });
    let g = runtime_arm("G/tiered-evicting", &gp, tiered_vm(fault), monitored_hpm());

    let mut digests: Vec<(&str, u64)> = Vec::new();
    match &a {
        Ok((d, _)) => digests.push(("A", *d)),
        Err(msg) => failures.push(msg.clone()),
    }
    match &b {
        Ok((d, _)) => digests.push(("B", *d)),
        Err(msg) => failures.push(msg.clone()),
    }
    match &c {
        Ok((d, _)) => digests.push(("C", *d)),
        Err(msg) => failures.push(msg.clone()),
    }
    match &d {
        Ok((digest, report)) => {
            digests.push(("D", *digest));
            if report.attribution.foreign != 0 || report.attribution.unmapped != 0 {
                failures.push(format!(
                    "attribution: {} foreign / {} unmapped samples with full maps",
                    report.attribution.foreign, report.attribution.unmapped
                ));
            }
        }
        Err(msg) => failures.push(msg.clone()),
    }
    match &e {
        Ok((digest, _)) => digests.push(("E", *digest)),
        Err(msg) => failures.push(msg.clone()),
    }
    match &f {
        Ok((digest, _)) => digests.push(("F", *digest)),
        Err(msg) => failures.push(msg.clone()),
    }
    match &g {
        Ok((digest, report)) => {
            digests.push(("G", *digest));
            // Stale samples are expected (code is freed under the
            // sampler); foreign or unmapped ones are not.
            if report.attribution.foreign != 0 || report.attribution.unmapped != 0 {
                failures.push(format!(
                    "attribution (tiered): {} foreign / {} unmapped samples with full maps",
                    report.attribution.foreign, report.attribution.unmapped
                ));
            }
        }
        Err(msg) => failures.push(msg.clone()),
    }

    if let Some((first_arm, first)) = digests.first().copied() {
        for &(arm, digest) in &digests[1..] {
            if digest != first {
                failures.push(format!(
                    "differential: arm {arm} digest {digest:#018x} != arm {first_arm} {first:#018x}"
                ));
            }
        }
    }

    ScenarioOutcome {
        scenario: *scenario,
        pass: failures.is_empty(),
        failures,
        digest: a.as_ref().map_or(0, |&(d, _)| d),
        cycles: a.as_ref().map_or(0, |&(_, c)| c),
        monitored_cycles: d.as_ref().map_or(0, |(_, r)| r.cycles),
        tiered_evictions: g.as_ref().map_or(0, |(_, r)| r.vm.code_evictions),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn clean_scenarios_pass_all_oracles() {
        for seed in [0u64, 1, 2, 3] {
            let out = run_scenario(&Scenario::from_seed(seed));
            assert!(out.pass, "seed {seed} failed: {:?}", out.failures);
            assert_ne!(out.digest, 0, "seed {seed} produced the trivial digest");
            assert!(
                out.tiered_evictions > 0,
                "seed {seed}: arm G's 4 KiB cache never evicted — the reuse \
                 path stopped being exercised"
            );
        }
    }

    #[test]
    fn outcomes_are_deterministic() {
        let s = Scenario::from_seed(9);
        let x = run_scenario(&s);
        let y = run_scenario(&s);
        assert_eq!(x.digest, y.digest);
        assert_eq!(x.pass, y.pass);
        assert_eq!(x.failures, y.failures);
    }

    #[test]
    fn injected_zeroing_fault_is_detected() {
        // The fault leaves stale bytes in published-but-uninitialized
        // fields; the heap verifier (or the tracer) must notice in at
        // least one seed of a small batch — a single seed may by chance
        // never collect inside the vulnerable window.
        let caught = (0..8).any(|seed| {
            let mut s = Scenario::from_seed(seed);
            s.fault_skip_zeroing = true;
            !run_scenario(&s).pass
        });
        assert!(
            caught,
            "skip-zeroing fault escaped all oracles over 8 seeds"
        );
    }
}
