//! Parallel shard runner with a deterministic merge.
//!
//! Seeds are distributed to `std::thread` workers through the shared
//! work-stealing pool primitive ([`crate::pool`]); each worker writes
//! its outcome into the slot indexed by the seed's position, and the
//! merge reads slots back in seed order. The report therefore depends
//! only on the seed range — never on worker count, scheduling, or
//! timing — which is what lets CI diff the summary of a 1-worker run
//! against an N-worker run byte for byte.
//!
//! A time budget truncates the run to the longest contiguous prefix of
//! completed seeds (workers finish the seed they claimed, they just stop
//! claiming). A truncated summary says so explicitly; only the seeds it
//! names were checked.

use std::time::{Duration, Instant};

use crate::oracles::{run_scenario, ScenarioOutcome};
use crate::pool;
use crate::scenario::Scenario;

/// Shard-runner parameters.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// First seed (inclusive).
    pub start_seed: u64,
    /// Number of seeds to run.
    pub seeds: u64,
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Optional wall-clock budget; see module docs for truncation rules.
    pub time_budget: Option<Duration>,
    /// Inject the skip-zeroing fault into every scenario.
    pub fault_skip_zeroing: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            start_seed: 0,
            seeds: 100,
            workers: 1,
            time_budget: None,
            fault_skip_zeroing: false,
        }
    }
}

/// Merged result of a shard run.
#[derive(Debug)]
pub struct ShardReport {
    /// Outcomes for the contiguous completed seed prefix, in seed order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Seeds requested.
    pub requested: u64,
    /// First seed.
    pub start_seed: u64,
    /// True when the time budget cut the run short.
    pub truncated: bool,
}

impl ShardReport {
    /// Outcomes that violated at least one oracle.
    pub fn failures(&self) -> impl Iterator<Item = &ScenarioOutcome> {
        self.outcomes.iter().filter(|o| !o.pass)
    }

    /// Deterministic, timing-free summary: identical for identical seed
    /// ranges regardless of worker count.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let end = self.start_seed + self.outcomes.len() as u64;
        let failed: Vec<&ScenarioOutcome> = self.failures().collect();
        s.push_str(&format!(
            "seeds {}..{} : {} run, {} passed, {} failed\n",
            self.start_seed,
            end,
            self.outcomes.len(),
            self.outcomes.len() - failed.len(),
            failed.len()
        ));
        if self.truncated {
            s.push_str(&format!(
                "truncated by time budget after {} of {} seeds\n",
                self.outcomes.len(),
                self.requested
            ));
        }
        // A fingerprint over every (seed, digest, cycles) tuple: two runs
        // that print the same line really did compute the same results —
        // and the same simulated costs.
        let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
        for o in &self.outcomes {
            for word in [o.scenario.seed, o.digest, o.cycles, o.monitored_cycles] {
                for byte in word.to_le_bytes() {
                    fp ^= u64::from(byte);
                    fp = fp.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
        }
        s.push_str(&format!("digest-of-digests {fp:#018x}\n"));
        // Per-seed simulated-cycle costs and state digests: the shard
        // doubles as a pinned perf arm (`hpmopt-bench` lifts these values
        // from the outcomes), and printing the digest per seed lets a
        // cost-model change be diffed against an old summary — cycles may
        // move, digests must not.
        for o in &self.outcomes {
            s.push_str(&format!(
                "seed {} cycles {} monitored {} digest {:#018x}\n",
                o.scenario.seed, o.cycles, o.monitored_cycles, o.digest
            ));
        }
        for o in &failed {
            s.push_str(&format!("FAIL seed {}\n", o.scenario.seed));
            for line in &o.failures {
                s.push_str(&format!("  - {line}\n"));
            }
        }
        s
    }
}

/// Run `config.seeds` scenarios across `config.workers` threads.
#[must_use]
pub fn run_shards(config: &RunnerConfig) -> ShardReport {
    let total = config.seeds;
    let deadline = config.time_budget.map(|b| Instant::now() + b);
    let outcomes =
        pool::contiguous_prefix(pool::run_indexed(total, config.workers, deadline, |idx| {
            let mut scenario = Scenario::from_seed(config.start_seed + idx);
            scenario.fault_skip_zeroing = config.fault_skip_zeroing;
            run_scenario(&scenario)
        }));
    let truncated = (outcomes.len() as u64) < total;
    ShardReport {
        outcomes,
        requested: total,
        start_seed: config.start_seed,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_is_identical_for_one_and_many_workers() {
        let base = RunnerConfig {
            start_seed: 0,
            seeds: 6,
            workers: 1,
            time_budget: None,
            fault_skip_zeroing: false,
        };
        let solo = run_shards(&base);
        let parallel = run_shards(&RunnerConfig { workers: 4, ..base });
        assert_eq!(solo.summary(), parallel.summary());
        assert!(!solo.truncated);
        assert_eq!(solo.outcomes.len(), 6);
        for o in &solo.outcomes {
            assert_ne!(o.cycles, 0, "seed {} has no baseline cost", o.scenario.seed);
            assert_ne!(
                o.monitored_cycles, 0,
                "seed {} has no monitored cost",
                o.scenario.seed
            );
            assert!(solo
                .summary()
                .contains(&format!("seed {} cycles {}", o.scenario.seed, o.cycles)));
        }
    }

    #[test]
    fn zero_budget_truncates_cleanly() {
        let report = run_shards(&RunnerConfig {
            seeds: 4,
            time_budget: Some(Duration::from_secs(0)),
            ..RunnerConfig::default()
        });
        assert!(report.truncated);
        assert!(report.summary().contains("truncated by time budget"));
    }
}
