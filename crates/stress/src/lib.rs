//! Deterministic stress and differential-testing engine.
//!
//! This crate closes the loop the paper's evaluation methodology relies
//! on but cannot automate by hand: that the monitored, optimizing,
//! co-allocating runtime is *observationally identical* to the plain
//! interpreter. It generates random-but-reproducible guest programs
//! ([`genprog`]), runs each through five differential arms with
//! invariant oracles ([`oracles`]), fans seeds out across worker threads
//! with a merge whose report is independent of the worker count
//! ([`shard`]), and shrinks any failure to a minimal, committable
//! reproducer ([`shrink`], [`scenario`]).
//!
//! The `hpmopt-stress` binary exposes the engine as `run`, `replay`, and
//! `shrink` subcommands; `tests/corpus/` at the workspace root holds the
//! regression case files it has produced.

pub mod genprog;
pub mod oracles;
pub mod pool;
pub mod rng;
pub mod scenario;
pub mod shard;
pub mod shrink;

pub use genprog::{generate, GeneratedProgram, ShapeKnobs};
pub use oracles::{run_scenario, ScenarioOutcome};
pub use scenario::{Expect, Scenario};
pub use shard::{run_shards, RunnerConfig, ShardReport};
pub use shrink::{shrink, ShrinkResult};
