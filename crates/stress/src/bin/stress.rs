//! `hpmopt-stress` — drive the stress engine from the command line.
//!
//! ```text
//! hpmopt-stress run [--seeds N] [--start S] [--workers W]
//!                   [--time-budget SECS] [--fault-skip-zeroing]
//!                   [--case-dir DIR]
//! hpmopt-stress replay FILE...
//! hpmopt-stress shrink FILE [-o OUT]
//! ```
//!
//! `run` exits 1 when any seed fails an oracle (and, with `--case-dir`,
//! writes each failure as a shrunk case file). `replay` exits 1 when any
//! case's outcome differs from its `expect` line. `shrink` minimizes a
//! failing case and prints (or writes) the reproducer.

use std::process::ExitCode;
use std::time::Duration;

use hpmopt_stress::{run_scenario, run_shards, shrink, RunnerConfig, Scenario};

fn usage() -> ExitCode {
    eprintln!(
        "usage: hpmopt-stress run [--seeds N] [--start S] [--workers W] \
         [--time-budget SECS] [--fault-skip-zeroing] [--case-dir DIR]\n\
         hpmopt-stress replay FILE...\n\
         hpmopt-stress shrink FILE [-o OUT]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("shrink") => cmd_shrink(&args[1..]),
        _ => usage(),
    }
}

/// Parse `--flag VALUE` pairs; returns `None` on malformed input.
fn take_value<'a>(args: &'a [String], i: &mut usize) -> Option<&'a str> {
    *i += 1;
    args.get(*i).map(String::as_str)
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut config = RunnerConfig {
        workers: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        ..RunnerConfig::default()
    };
    let mut case_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(n) => config.seeds = n,
                None => return usage(),
            },
            "--start" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(n) => config.start_seed = n,
                None => return usage(),
            },
            "--workers" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(n) => config.workers = n,
                None => return usage(),
            },
            "--time-budget" => match take_value(args, &mut i).and_then(|v| v.parse().ok()) {
                Some(secs) => config.time_budget = Some(Duration::from_secs(secs)),
                None => return usage(),
            },
            "--fault-skip-zeroing" => config.fault_skip_zeroing = true,
            "--case-dir" => match take_value(args, &mut i) {
                Some(dir) => case_dir = Some(dir.to_string()),
                None => return usage(),
            },
            _ => return usage(),
        }
        i += 1;
    }

    let report = run_shards(&config);
    print!("{}", report.summary());

    let mut wrote_err = false;
    if let Some(dir) = case_dir {
        for outcome in report.failures() {
            let shrunk = shrink(&outcome.scenario).map_or(outcome.scenario, |r| r.scenario);
            let mut case = shrunk;
            case.expect = hpmopt_stress::Expect::Fail;
            let path = format!("{dir}/seed-{}.case", outcome.scenario.seed);
            if let Err(e) = std::fs::write(&path, case.to_case_string()) {
                eprintln!("error: cannot write {path}: {e}");
                wrote_err = true;
            } else {
                println!("wrote {path}");
            }
        }
    }

    if report.failures().next().is_some() || wrote_err {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn load_case(path: &str) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Scenario::from_case_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_replay(args: &[String]) -> ExitCode {
    if args.is_empty() {
        return usage();
    }
    let mut bad = false;
    for path in args {
        match load_case(path) {
            Ok(scenario) => {
                let outcome = run_scenario(&scenario);
                let verdict = if outcome.pass { "pass" } else { "fail" };
                if outcome.matches_expectation() {
                    println!("{path}: {verdict} (as expected)");
                } else {
                    bad = true;
                    println!("{path}: {verdict}, expected {}", scenario.expect.as_str());
                    for line in &outcome.failures {
                        println!("  - {line}");
                    }
                }
            }
            Err(e) => {
                bad = true;
                eprintln!("error: {e}");
            }
        }
    }
    if bad {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_shrink(args: &[String]) -> ExitCode {
    let mut input: Option<&str> = None;
    let mut output: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" => match take_value(args, &mut i) {
                Some(path) => output = Some(path),
                None => return usage(),
            },
            path if input.is_none() => input = Some(path),
            _ => return usage(),
        }
        i += 1;
    }
    let Some(input) = input else { return usage() };
    let scenario = match load_case(input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match shrink(&scenario) {
        None => {
            println!("{input}: passes all oracles; nothing to shrink");
            ExitCode::SUCCESS
        }
        Some(result) => {
            let mut minimal = result.scenario;
            minimal.expect = hpmopt_stress::Expect::Fail;
            println!(
                "shrunk after {} oracle evaluations; failures of the minimal case:",
                result.attempts
            );
            for line in &result.failures {
                println!("  - {line}");
            }
            let text = minimal.to_case_string();
            match output {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, text) {
                        eprintln!("error: cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("wrote {path}");
                }
                None => print!("{text}"),
            }
            ExitCode::SUCCESS
        }
    }
}
