//! Seeded random-program generation.
//!
//! Builds verified [`Program`]s on top of [`hpmopt_bytecode::builder`],
//! shaped by [`ShapeKnobs`]: class/field fan-out, allocation-site mix,
//! pointer-chasing depth, array/LOS pressure, and call-graph depth. The
//! same `(seed, knobs)` pair always yields the same program, and the
//! program carries its own guest PRNG ([`MethodBuilder::rng_next`]) so
//! its behaviour is platform-independent too.
//!
//! # Generated shape
//!
//! * `classes` node classes `Node0..`, each with `next`/`child` reference
//!   fields plus `int_fields` integer fields.
//! * Statics `head` (list root), `table` (a `Ref` array keeping a rotating
//!   subset of churn arrays live), `checksum` (accumulated result), and
//!   `rng` (guest PRNG state).
//! * Per class: `build_c` (allocates a `list_len`-node list; each node is
//!   published to `head` *before* its `child` array exists — the
//!   parent-then-child allocation window in which a collection can move a
//!   half-initialized object) and `chase_c` (pointer-chases up to
//!   `chase_depth` nodes, folding fields into `checksum`).
//! * `churn` allocates `churn_units` arrays per round across the size
//!   classes selected by `array_mask`, sending `large_array_pct`% to the
//!   large-object space; a rotating `table` slot keeps some live so minor
//!   collections promote.
//! * A `work_0 → … → work_{call_depth-1}` call chain whose leaf dispatches
//!   on `round % classes`, giving the optimizer a call graph to compile.

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::{ElemKind, FieldType, MethodId, Program, StaticId};

use crate::rng::Rng;

/// Number of live slots in the static churn table (bounds the live set).
const TABLE_SLOTS: i64 = 8;
/// Element count of a churn array that must land in the large-object
/// space (1024 × 8 B ≫ the 4 KB LOS threshold).
const LARGE_ARRAY_ELEMS: i64 = 1024;

/// Tunable shape parameters for one generated program.
///
/// All fields are plain integers so scenarios serialize to `key = value`
/// case files and shrink by halving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeKnobs {
    /// Node classes to generate (allocation-site and type fan-out), ≥ 1.
    pub classes: u64,
    /// Extra integer fields per class (object size fan-out).
    pub int_fields: u64,
    /// Maximum pointer-chase walk length per round.
    pub chase_depth: u64,
    /// Nodes allocated per build round (nursery pressure), ≥ 1.
    pub list_len: u64,
    /// Bitmask over 8 churn-array size buckets (bucket `b` allocates
    /// `4 << b` elements when bit `b` is set), ≥ 1.
    pub array_mask: u64,
    /// Percent of churn allocations redirected to the large-object space.
    pub large_array_pct: u64,
    /// Length of the `work_*` call chain, ≥ 1.
    pub call_depth: u64,
    /// Top-level build/chase/churn rounds, ≥ 1.
    pub rounds: u64,
    /// Churn allocations per round.
    pub churn_units: u64,
}

impl ShapeKnobs {
    /// Derive knobs from a seed; every combination stays inside bounds
    /// that keep a scenario under roughly a second of simulated work.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut r = Rng::new(seed).fork(0x6b6e_6f62); // "knob"
        ShapeKnobs {
            classes: r.range(1, 4),
            int_fields: r.range(0, 3),
            chase_depth: r.range(4, 64),
            list_len: r.range(8, 64),
            array_mask: r.range(1, 255),
            large_array_pct: r.range(0, 20),
            call_depth: r.range(1, 5),
            rounds: r.range(2, 8),
            churn_units: r.range(8, 64),
        }
    }

    /// Clamp every knob back into its legal range (used after shrinking
    /// and after parsing case files).
    #[must_use]
    pub fn clamped(mut self) -> Self {
        self.classes = self.classes.clamp(1, 8);
        self.int_fields = self.int_fields.min(8);
        self.chase_depth = self.chase_depth.clamp(1, 256);
        self.list_len = self.list_len.clamp(1, 256);
        self.array_mask = self.array_mask.clamp(1, 255);
        self.large_array_pct = self.large_array_pct.min(100);
        self.call_depth = self.call_depth.clamp(1, 16);
        self.rounds = self.rounds.clamp(1, 32);
        self.churn_units = self.churn_units.min(256);
        self
    }
}

/// Ids the generator hands back alongside the program so oracles can
/// inspect final state.
#[derive(Debug, Clone)]
pub struct GeneratedProgram {
    /// The verified program.
    pub program: Program,
    /// The `checksum` static (program-visible result).
    pub checksum: StaticId,
    /// Every method id, for all-methods compilation plans.
    pub all_methods: Vec<MethodId>,
}

/// Generate a verified program for `(seed, knobs)`.
///
/// # Panics
///
/// Panics only on internal generator bugs (the emitted program failing
/// bytecode verification), never on knob values: knobs are clamped first.
#[must_use]
pub fn generate(seed: u64, knobs: ShapeKnobs) -> GeneratedProgram {
    let k = knobs.clamped();
    let mut pb = ProgramBuilder::new();

    // --- classes -----------------------------------------------------
    let mut field_names: Vec<(&str, FieldType)> =
        vec![("next", FieldType::Ref), ("child", FieldType::Ref)];
    let int_names = ["f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7"];
    for name in int_names.iter().take(k.int_fields as usize) {
        field_names.push((name, FieldType::Int));
    }
    let classes: Vec<_> = (0..k.classes)
        .map(|c| pb.add_class(&format!("Node{c}"), &field_names))
        .collect();
    let next_fields: Vec<_> = classes
        .iter()
        .map(|&c| pb.field_id(c, "next").expect("next field"))
        .collect();
    let child_fields: Vec<_> = classes
        .iter()
        .map(|&c| pb.field_id(c, "child").expect("child field"))
        .collect();
    let int_fields: Vec<Vec<_>> = classes
        .iter()
        .map(|&c| {
            int_names
                .iter()
                .take(k.int_fields as usize)
                .map(|n| pb.field_id(c, n).expect("int field"))
                .collect()
        })
        .collect();

    // --- statics -----------------------------------------------------
    let head = pb.add_static("head", FieldType::Ref);
    let table = pb.add_static("table", FieldType::Ref);
    let checksum = pb.add_static("checksum", FieldType::Int);
    let rng_state = pb.add_static("rng", FieldType::Int);

    // --- per-class builders and chasers ------------------------------
    let mut builds = Vec::new();
    let mut chases = Vec::new();
    for c in 0..k.classes as usize {
        builds.push(
            pb.add_method(build_method(c, &k, classes[c], head, rng_state, {
                (next_fields[c], child_fields[c], &int_fields[c])
            })),
        );
        chases.push(pb.add_method(chase_method(
            c,
            &k,
            head,
            checksum,
            (next_fields[c], child_fields[c], &int_fields[c]),
        )));
    }

    let churn = pb.add_method(churn_method(&k, table, rng_state, checksum));

    // --- work chain: work_0 → … → leaf dispatch ----------------------
    // Declared back-to-front so each level can call the next.
    let leaf = {
        let mut m = MethodBuilder::new("work_leaf", 1, 0, false);
        let sel = 0u16;
        let end = m.label();
        for c in 0..k.classes as usize {
            let skip = m.label();
            m.load(sel);
            m.const_i(c as i64);
            m.eq();
            m.jump_if_not(skip);
            m.call(builds[c]);
            m.call(chases[c]);
            m.jump(end);
            m.bind(skip);
        }
        m.bind(end);
        m.call(churn);
        m.ret();
        pb.add_method(m)
    };
    let mut callee = leaf;
    for level in (0..k.call_depth).rev() {
        let mut m = MethodBuilder::new(format!("work_{level}"), 1, 0, false);
        // A little arithmetic per frame so opt compilation has something
        // to chew on beyond the call itself.
        m.get_static(checksum);
        m.load(0);
        m.const_i(level as i64 + 1);
        m.mul();
        m.add();
        m.put_static(checksum);
        m.load(0);
        m.call(callee);
        m.ret();
        callee = pb.add_method(m);
    }

    // --- main --------------------------------------------------------
    let mut m = MethodBuilder::new("main", 0, 1, false);
    let round = 0u16;
    // Seed the guest PRNG from the scenario seed (never zero: xorshift's
    // fixed point).
    m.const_i((seed | 1) as i64 & i64::MAX);
    m.put_static(rng_state);
    m.const_i(TABLE_SLOTS);
    m.new_array(ElemKind::Ref);
    m.put_static(table);
    m.for_loop(
        round,
        |m| {
            m.const_i(k.rounds as i64);
        },
        |m| {
            // Fresh list each round bounds the live set; the previous
            // round's list becomes garbage for the next collection.
            m.const_null();
            m.put_static(head);
            m.load(round);
            m.const_i(k.classes as i64);
            m.rem();
            m.call(callee);
        },
    );
    m.ret();
    let main = pb.add_method(m);
    pb.set_entry(main);

    let mut gp = GeneratedProgram {
        program: pb.finish().expect("generated program verifies"),
        checksum,
        all_methods: Vec::new(),
    };
    gp.all_methods = (0..gp.program.methods().len() as u32)
        .map(MethodId)
        .collect();
    gp
}

/// `build_c`: allocate a `list_len`-node list of `class`, publishing each
/// node to `head` before allocating its `child` array — the window in
/// which a collection sees a reachable, not-yet-initialized object.
fn build_method(
    c: usize,
    k: &ShapeKnobs,
    class: hpmopt_bytecode::ClassId,
    head: StaticId,
    rng_state: StaticId,
    (next_f, child_f, ints): (
        hpmopt_bytecode::FieldId,
        hpmopt_bytecode::FieldId,
        &[hpmopt_bytecode::FieldId],
    ),
) -> MethodBuilder {
    let mut m = MethodBuilder::new(format!("build_{c}"), 0, 5, false);
    let i = 0u16;
    let node = 1u16;
    let arr = 2u16;
    let rng = 3u16;
    let prev = 4u16;
    m.get_static(rng_state);
    m.store(rng);
    m.for_loop(
        i,
        |m| {
            m.const_i(k.list_len as i64);
        },
        |m| {
            // Capture the list so far; the new node will point at it.
            m.get_static(head);
            m.store(prev);
            m.new_object(class);
            m.store(node);
            // Publish before the fields are written: the child array
            // allocation below can trigger a collection while this node
            // is reachable. With allocation zeroing (Java semantics) its
            // fields read as null; with the injected skip-zeroing fault
            // they hold stale bytes — exactly the historical bug.
            m.load(node);
            m.put_static(head);
            // child array: 2–17 elements, size varies with the counter.
            m.load(i);
            m.const_i(15);
            m.and();
            m.const_i(2);
            m.add();
            m.new_array(ElemKind::I64);
            m.store(arr);
            m.load(arr);
            m.const_i(0);
            m.rng_next(rng);
            m.array_set(ElemKind::I64);
            // Wire the node: child, then next → the captured list.
            m.load(node);
            m.load(arr);
            m.put_field(child_f);
            m.load(node);
            m.load(prev);
            m.put_field(next_f);
            for (j, &f) in ints.iter().enumerate() {
                m.load(node);
                m.load(i);
                m.const_i(j as i64 + 1);
                m.mul();
                m.put_field(f);
            }
        },
    );
    m.load(rng);
    m.put_static(rng_state);
    m.ret();
    m
}

/// `chase_c`: walk up to `chase_depth` nodes from `head`, folding integer
/// fields and the first child element into `checksum`.
fn chase_method(
    c: usize,
    k: &ShapeKnobs,
    head: StaticId,
    checksum: StaticId,
    (next_f, child_f, ints): (
        hpmopt_bytecode::FieldId,
        hpmopt_bytecode::FieldId,
        &[hpmopt_bytecode::FieldId],
    ),
) -> MethodBuilder {
    let mut m = MethodBuilder::new(format!("chase_{c}"), 0, 3, false);
    let step = 0u16;
    let cur = 1u16;
    let sum = 2u16;
    m.get_static(head);
    m.store(cur);
    m.const_i(0);
    m.store(sum);
    let exit = m.label();
    m.for_loop(
        step,
        |m| {
            m.const_i(k.chase_depth as i64);
        },
        |m| {
            let alive = m.label();
            m.load(cur);
            m.is_null();
            m.jump_if_not(alive);
            m.jump(exit);
            m.bind(alive);
            for &f in ints {
                m.load(sum);
                m.load(cur);
                m.get_field(f);
                m.add();
                m.store(sum);
            }
            // child[0] (guarded: child may be null mid-window only for
            // the freshly built head, which build fully wires before
            // returning — but stay defensive for shrunk shapes).
            let no_child = m.label();
            m.load(cur);
            m.get_field(child_f);
            m.is_null();
            m.jump_if(no_child);
            m.load(sum);
            m.load(cur);
            m.get_field(child_f);
            m.const_i(0);
            m.array_get(ElemKind::I64);
            m.add();
            m.store(sum);
            m.bind(no_child);
            m.load(cur);
            m.get_field(next_f);
            m.store(cur);
        },
    );
    m.bind(exit);
    m.get_static(checksum);
    m.load(sum);
    m.xor();
    m.const_i(c as i64 + 1);
    m.add();
    m.put_static(checksum);
    m.ret();
    m
}

/// `churn`: allocate `churn_units` arrays across the masked size buckets,
/// keeping a rotating `table` slot live and dropping the rest.
fn churn_method(
    k: &ShapeKnobs,
    table: StaticId,
    rng_state: StaticId,
    checksum: StaticId,
) -> MethodBuilder {
    let mut m = MethodBuilder::new("churn", 0, 4, false);
    let u = 0u16;
    let rng = 1u16;
    let len = 2u16;
    let arr = 3u16;
    m.get_static(rng_state);
    m.store(rng);
    m.for_loop(
        u,
        |m| {
            m.const_i(k.churn_units as i64);
        },
        |m| {
            // bucket = r % 8; len = 4 << bucket when the mask selects the
            // bucket, else 4. (32 B … 4 KB of i64s: spans the free-list
            // size classes up to the LOS threshold.)
            let small = m.label();
            let sized = m.label();
            m.rng_next(rng);
            m.const_i(7);
            m.and();
            m.store(len); // len temporarily holds the bucket
            m.const_i(k.array_mask as i64);
            m.load(len);
            m.ushr();
            m.const_i(1);
            m.and();
            m.jump_if_not(small);
            m.const_i(4);
            m.load(len);
            m.shl();
            m.store(len);
            m.jump(sized);
            m.bind(small);
            m.const_i(4);
            m.store(len);
            m.bind(sized);
            // Large-object pressure: redirect a slice of allocations to
            // the LOS.
            if k.large_array_pct > 0 {
                let not_large = m.label();
                m.rng_next(rng);
                m.const_i(100);
                m.rem();
                m.const_i(k.large_array_pct as i64);
                m.lt();
                m.jump_if_not(not_large);
                m.const_i(LARGE_ARRAY_ELEMS);
                m.store(len);
                m.bind(not_large);
            }
            m.load(len);
            m.new_array(ElemKind::I64);
            m.store(arr);
            m.load(arr);
            m.const_i(0);
            m.load(u);
            m.array_set(ElemKind::I64);
            // Keep a rotating subset live: table[u % TABLE_SLOTS] = arr.
            m.get_static(table);
            m.load(u);
            m.const_i(TABLE_SLOTS);
            m.rem();
            m.load(arr);
            m.array_set(ElemKind::Ref);
            // Fold the array length into the checksum so churn is
            // observable in the digest even after arrays die.
            m.get_static(checksum);
            m.load(len);
            m.add();
            m.put_static(checksum);
        },
    );
    m.load(rng);
    m.put_static(rng_state);
    m.ret();
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let k = ShapeKnobs::from_seed(11);
        let a = generate(11, k);
        let b = generate(11, k);
        // Compare the ordered program parts (`Program`'s Debug includes a
        // name→id HashMap whose print order is unstable).
        assert_eq!(
            format!(
                "{:?}{:?}{:?}",
                a.program.classes(),
                a.program.methods(),
                a.program.statics()
            ),
            format!(
                "{:?}{:?}{:?}",
                b.program.classes(),
                b.program.methods(),
                b.program.statics()
            ),
            "same (seed, knobs) must yield the same program"
        );
    }

    #[test]
    fn knobs_vary_with_seed() {
        let distinct: std::collections::HashSet<_> = (0..32)
            .map(|s| format!("{:?}", ShapeKnobs::from_seed(s)))
            .collect();
        assert!(distinct.len() > 16, "knob derivation should spread seeds");
    }

    #[test]
    fn generated_programs_verify_across_seeds() {
        for seed in 0..24 {
            let gp = generate(seed, ShapeKnobs::from_seed(seed));
            assert!(!gp.all_methods.is_empty());
            assert!(gp.program.methods().len() >= 4);
        }
    }
}
