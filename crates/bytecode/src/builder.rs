//! Fluent construction of [`Program`]s.
//!
//! [`ProgramBuilder`] accumulates classes, statics, and methods;
//! [`MethodBuilder`] provides typed emitters plus label-based control flow
//! so workloads never hand-compute branch offsets.
//!
//! # Example
//!
//! ```
//! use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut m = MethodBuilder::new("count", 0, 1, true);
//! m.const_i(0);
//! m.store(0);
//! let top = m.label();
//! m.bind(top);
//! m.load(0);
//! m.const_i(1);
//! m.add();
//! m.store(0);
//! m.load(0);
//! m.const_i(10);
//! m.lt();
//! m.jump_if(top);
//! m.load(0);
//! m.ret_val();
//! let id = pb.add_method(m);
//!
//! let mut main = MethodBuilder::new("main", 0, 0, false);
//! main.call(id);
//! main.pop();
//! main.ret();
//! let main_id = pb.add_method(main);
//! pb.set_entry(main_id);
//! let program = pb.finish()?;
//! assert_eq!(program.method(id).name(), "count");
//! # Ok::<(), hpmopt_bytecode::VerifyError>(())
//! ```

use std::collections::HashMap;

use crate::class::{ClassDef, FieldDef, FieldType, StaticDef};
use crate::instr::{ElemKind, Instr};
use crate::method::MethodDef;
use crate::program::{ClassId, FieldId, FieldInfo, MethodId, Program, StaticId};
use crate::verify::{self, VerifyError};

/// A forward-referencable position in a method body.
///
/// Created by [`MethodBuilder::label`], placed with [`MethodBuilder::bind`],
/// and referenced by the jump emitters. Labels may be used before they are
/// bound; [`ProgramBuilder::add_method`] resolves them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Incrementally builds one method body.
#[derive(Debug, Clone)]
pub struct MethodBuilder {
    name: String,
    class: Option<ClassId>,
    params: u16,
    locals: u16,
    returns_value: bool,
    code: Vec<Instr>,
    /// Resolved label positions (`u32::MAX` = unbound).
    label_positions: Vec<u32>,
    /// Instruction indices whose branch target is a label id to patch.
    patches: Vec<usize>,
}

impl MethodBuilder {
    /// Start a method with `params` parameters (locals `0..params`),
    /// `extra_locals` additional local slots, and whether it returns a
    /// value.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        params: u16,
        extra_locals: u16,
        returns_value: bool,
    ) -> Self {
        MethodBuilder {
            name: name.into(),
            class: None,
            params,
            locals: params + extra_locals,
            returns_value,
            code: Vec::new(),
            label_positions: Vec::new(),
            patches: Vec::new(),
        }
    }

    /// Associate the method with a class (for qualified diagnostics only;
    /// dispatch is static).
    pub fn set_class(&mut self, class: ClassId) -> &mut Self {
        self.class = Some(class);
        self
    }

    /// Reserve one more local slot and return its index.
    pub fn new_local(&mut self) -> u16 {
        let idx = self.locals;
        self.locals += 1;
        idx
    }

    /// Current instruction count (the index the next emitted instruction
    /// will occupy).
    #[must_use]
    pub fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Create a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.label_positions.push(u32::MAX);
        Label(self.label_positions.len() - 1)
    }

    /// Bind `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert_eq!(
            self.label_positions[label.0],
            u32::MAX,
            "label bound twice in {}",
            self.name
        );
        self.label_positions[label.0] = self.here();
    }

    /// Emit a raw instruction.
    pub fn emit(&mut self, i: Instr) -> &mut Self {
        self.code.push(i);
        self
    }

    fn emit_branch(&mut self, make: impl FnOnce(u32) -> Instr, label: Label) {
        self.patches.push(self.code.len());
        // Store the label id in the target slot; resolved in `finish_body`.
        self.code.push(make(label.0 as u32));
    }

    /// Push a constant integer.
    pub fn const_i(&mut self, v: i64) -> &mut Self {
        self.emit(Instr::Const(v))
    }

    /// Push the null reference.
    pub fn const_null(&mut self) -> &mut Self {
        self.emit(Instr::ConstNull)
    }

    /// Push local `n`.
    pub fn load(&mut self, n: u16) -> &mut Self {
        self.emit(Instr::Load(n))
    }

    /// Pop into local `n`.
    pub fn store(&mut self, n: u16) -> &mut Self {
        self.emit(Instr::Store(n))
    }

    /// Duplicate top of stack.
    pub fn dup(&mut self) -> &mut Self {
        self.emit(Instr::Dup)
    }

    /// Discard top of stack.
    pub fn pop(&mut self) -> &mut Self {
        self.emit(Instr::Pop)
    }

    /// Swap the two topmost values.
    pub fn swap(&mut self) -> &mut Self {
        self.emit(Instr::Swap)
    }

    /// Wrapping addition.
    pub fn add(&mut self) -> &mut Self {
        self.emit(Instr::Add)
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self) -> &mut Self {
        self.emit(Instr::Sub)
    }

    /// Wrapping multiplication.
    pub fn mul(&mut self) -> &mut Self {
        self.emit(Instr::Mul)
    }

    /// Division (traps on zero divisor).
    pub fn div(&mut self) -> &mut Self {
        self.emit(Instr::Div)
    }

    /// Remainder (traps on zero divisor).
    pub fn rem(&mut self) -> &mut Self {
        self.emit(Instr::Rem)
    }

    /// Bitwise and.
    pub fn and(&mut self) -> &mut Self {
        self.emit(Instr::And)
    }

    /// Bitwise or.
    pub fn or(&mut self) -> &mut Self {
        self.emit(Instr::Or)
    }

    /// Bitwise xor.
    pub fn xor(&mut self) -> &mut Self {
        self.emit(Instr::Xor)
    }

    /// Shift left.
    pub fn shl(&mut self) -> &mut Self {
        self.emit(Instr::Shl)
    }

    /// Arithmetic shift right.
    pub fn shr(&mut self) -> &mut Self {
        self.emit(Instr::Shr)
    }

    /// Logical shift right.
    pub fn ushr(&mut self) -> &mut Self {
        self.emit(Instr::UShr)
    }

    /// Arithmetic negation.
    pub fn neg(&mut self) -> &mut Self {
        self.emit(Instr::Neg)
    }

    /// Integer equality test.
    pub fn eq(&mut self) -> &mut Self {
        self.emit(Instr::Eq)
    }

    /// Integer inequality test.
    pub fn ne(&mut self) -> &mut Self {
        self.emit(Instr::Ne)
    }

    /// Less-than test.
    pub fn lt(&mut self) -> &mut Self {
        self.emit(Instr::Lt)
    }

    /// Less-or-equal test.
    pub fn le(&mut self) -> &mut Self {
        self.emit(Instr::Le)
    }

    /// Greater-than test.
    pub fn gt(&mut self) -> &mut Self {
        self.emit(Instr::Gt)
    }

    /// Greater-or-equal test.
    pub fn ge(&mut self) -> &mut Self {
        self.emit(Instr::Ge)
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        self.emit_branch(Instr::Jump, label);
        self
    }

    /// Pop a condition; jump if non-zero.
    pub fn jump_if(&mut self, label: Label) -> &mut Self {
        self.emit_branch(Instr::JumpIf, label);
        self
    }

    /// Pop a condition; jump if zero.
    pub fn jump_if_not(&mut self, label: Label) -> &mut Self {
        self.emit_branch(Instr::JumpIfNot, label);
        self
    }

    /// Allocate an instance of `class`.
    pub fn new_object(&mut self, class: ClassId) -> &mut Self {
        self.emit(Instr::New(class))
    }

    /// Pop a length; allocate an array.
    pub fn new_array(&mut self, kind: ElemKind) -> &mut Self {
        self.emit(Instr::NewArray(kind))
    }

    /// Pop an object; push field value.
    pub fn get_field(&mut self, f: FieldId) -> &mut Self {
        self.emit(Instr::GetField(f))
    }

    /// Pop value and object; store field.
    pub fn put_field(&mut self, f: FieldId) -> &mut Self {
        self.emit(Instr::PutField(f))
    }

    /// Push a static variable.
    pub fn get_static(&mut self, s: StaticId) -> &mut Self {
        self.emit(Instr::GetStatic(s))
    }

    /// Pop into a static variable.
    pub fn put_static(&mut self, s: StaticId) -> &mut Self {
        self.emit(Instr::PutStatic(s))
    }

    /// Pop index and array; push element.
    pub fn array_get(&mut self, kind: ElemKind) -> &mut Self {
        self.emit(Instr::ArrayGet(kind))
    }

    /// Pop value, index, array; store element.
    pub fn array_set(&mut self, kind: ElemKind) -> &mut Self {
        self.emit(Instr::ArraySet(kind))
    }

    /// Pop an array; push its length.
    pub fn array_len(&mut self) -> &mut Self {
        self.emit(Instr::ArrayLen)
    }

    /// Pop a reference; push null test result.
    pub fn is_null(&mut self) -> &mut Self {
        self.emit(Instr::IsNull)
    }

    /// Pop two references; push identity test result.
    pub fn ref_eq(&mut self) -> &mut Self {
        self.emit(Instr::RefEq)
    }

    /// Call a method (arguments already pushed, last on top).
    pub fn call(&mut self, m: MethodId) -> &mut Self {
        self.emit(Instr::Call(m))
    }

    /// Return void.
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Instr::Return)
    }

    /// Return the top-of-stack value.
    pub fn ret_val(&mut self) -> &mut Self {
        self.emit(Instr::ReturnVal)
    }

    /// Emit a counted loop: `for local := 0; local < limit_expr; local += 1`.
    ///
    /// `limit` must leave exactly one integer on the stack; `body` is
    /// emitted with the counter available in `counter` and must be
    /// stack-neutral. A fresh local caches the limit.
    pub fn for_loop(
        &mut self,
        counter: u16,
        limit: impl FnOnce(&mut MethodBuilder),
        body: impl FnOnce(&mut MethodBuilder),
    ) -> &mut Self {
        let limit_local = self.new_local();
        limit(self);
        self.store(limit_local);
        self.const_i(0);
        self.store(counter);
        let head = self.label();
        let exit = self.label();
        self.bind(head);
        self.load(counter);
        self.load(limit_local);
        self.ge();
        self.jump_if(exit);
        body(self);
        self.load(counter);
        self.const_i(1);
        self.add();
        self.store(counter);
        self.jump(head);
        self.bind(exit);
        self
    }

    /// Emit an xorshift64* pseudo-random step.
    ///
    /// Reads the generator state from local `state`, advances it, writes it
    /// back, and leaves the next 63-bit non-negative pseudo-random value on
    /// the stack. Workloads use this for reproducible, platform-independent
    /// "random" access patterns (the guest program carries its own PRNG, as
    /// the SPEC workloads do).
    pub fn rng_next(&mut self, state: u16) -> &mut Self {
        // x ^= x << 13; x ^= x >> 7; x ^= x << 17
        self.load(state);
        self.dup();
        self.const_i(13);
        self.shl();
        self.xor();
        self.dup();
        self.const_i(7);
        self.ushr();
        self.xor();
        self.dup();
        self.const_i(17);
        self.shl();
        self.xor();
        self.dup();
        self.store(state);
        // mask to non-negative
        self.const_i(i64::MAX);
        self.and();
        self
    }

    fn finish_body(mut self) -> MethodDef {
        for &at in &self.patches {
            let resolve = |label_id: u32| {
                let pos = self.label_positions[label_id as usize];
                assert_ne!(pos, u32::MAX, "unbound label in method {}", self.name);
                pos
            };
            self.code[at] = match self.code[at] {
                Instr::Jump(l) => Instr::Jump(resolve(l)),
                Instr::JumpIf(l) => Instr::JumpIf(resolve(l)),
                Instr::JumpIfNot(l) => Instr::JumpIfNot(resolve(l)),
                other => unreachable!("patch site holds non-branch {other:?}"),
            };
        }
        MethodDef::new(
            self.name,
            self.class,
            self.params,
            self.locals,
            self.returns_value,
            self.code,
        )
    }
}

/// Accumulates a whole program.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    classes: Vec<ClassDef>,
    methods: Vec<MethodDef>,
    statics: Vec<StaticDef>,
    fields: Vec<FieldInfo>,
    entry: Option<MethodId>,
    method_names: HashMap<String, MethodId>,
}

impl ProgramBuilder {
    /// Create an empty program builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Define a class with the given `(name, type)` fields; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a class with the same name already exists.
    pub fn add_class(&mut self, name: &str, fields: &[(&str, FieldType)]) -> ClassId {
        assert!(
            self.classes.iter().all(|c| c.name() != name),
            "duplicate class {name}"
        );
        let class_id = ClassId(self.classes.len() as u32);
        let defs: Vec<FieldDef> = fields
            .iter()
            .enumerate()
            .map(|(i, (n, t))| FieldDef::new(*n, *t, i))
            .collect();
        for (i, def) in defs.iter().enumerate() {
            self.fields.push(FieldInfo {
                class: class_id,
                index: i,
                offset: def.offset(),
                ty: def.ty(),
            });
        }
        self.classes.push(ClassDef::new(name, defs));
        class_id
    }

    /// Define a static (global) variable; returns its id.
    pub fn add_static(&mut self, name: &str, ty: FieldType) -> StaticId {
        let id = StaticId(self.statics.len() as u32);
        self.statics.push(StaticDef::new(name, ty));
        id
    }

    /// Reserve a method id before its body exists, enabling (mutual)
    /// recursion. The body must later be supplied with
    /// [`ProgramBuilder::define_method`].
    ///
    /// # Panics
    ///
    /// Panics if a method with the same name already exists (declared or
    /// complete).
    pub fn declare_method(&mut self, name: &str, params: u16, returns_value: bool) -> MethodId {
        assert!(
            !self.method_names.contains_key(name),
            "duplicate method {name}"
        );
        let id = MethodId(self.methods.len() as u32);
        // Placeholder body, replaced by `define_method`.
        self.methods.push(MethodDef::new(
            name,
            None,
            params,
            params,
            returns_value,
            Vec::new(),
        ));
        self.method_names.insert(name.to_string(), id);
        id
    }

    /// Supply the body for a method previously created with
    /// [`ProgramBuilder::declare_method`].
    ///
    /// # Panics
    ///
    /// Panics if the builder's name/signature disagree with the declaration.
    pub fn define_method(&mut self, id: MethodId, mb: MethodBuilder) {
        let declared = &self.methods[id.0 as usize];
        assert_eq!(declared.name(), mb.name, "declaration/definition mismatch");
        assert_eq!(declared.params(), mb.params, "parameter count mismatch");
        assert_eq!(
            declared.returns_value(),
            mb.returns_value,
            "return kind mismatch"
        );
        self.methods[id.0 as usize] = mb.finish_body();
    }

    /// Add a complete method; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a method with the same name already exists or a label is
    /// unbound.
    pub fn add_method(&mut self, mb: MethodBuilder) -> MethodId {
        assert!(
            !self.method_names.contains_key(&mb.name),
            "duplicate method {}",
            mb.name
        );
        let id = MethodId(self.methods.len() as u32);
        self.method_names.insert(mb.name.clone(), id);
        self.methods.push(mb.finish_body());
        id
    }

    /// Select the entry method.
    pub fn set_entry(&mut self, m: MethodId) {
        self.entry = Some(m);
    }

    pub(crate) fn class_id_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name() == name)
            .map(|i| ClassId(i as u32))
    }

    pub(crate) fn methods_ref(&self) -> &[MethodDef] {
        &self.methods
    }

    pub(crate) fn replace_method(&mut self, id: MethodId, def: MethodDef) {
        self.methods[id.0 as usize] = def;
    }

    /// Resolve a field id by class and name.
    #[must_use]
    pub fn field_id(&self, class: ClassId, name: &str) -> Option<FieldId> {
        let index = self.classes[class.0 as usize].field_index(name)?;
        self.fields
            .iter()
            .position(|f| f.class == class && f.index == index)
            .map(|i| FieldId(i as u32))
    }

    /// Finish and verify the program.
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] when no entry was set, an id is out of
    /// range, stack discipline is violated, or control can fall off the end
    /// of a method.
    pub fn finish(self) -> Result<Program, VerifyError> {
        let entry = self.entry.ok_or(VerifyError::NoEntry)?;
        let program = Program {
            classes: self.classes,
            methods: self.methods,
            statics: self.statics,
            fields: self.fields,
            entry,
            method_names: self.method_names,
        };
        verify::verify_program(&program)?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_loop_counts() {
        let mut pb = ProgramBuilder::new();
        let mut m = MethodBuilder::new("main", 0, 2, false);
        let counter = 0;
        let acc = 1;
        m.const_i(0);
        m.store(acc);
        m.for_loop(
            counter,
            |m| {
                m.const_i(5);
            },
            |m| {
                m.load(acc);
                m.const_i(1);
                m.add();
                m.store(acc);
            },
        );
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().expect("loop verifies");
        assert!(p.method(id).len() > 10);
    }

    #[test]
    fn forward_labels_resolve() {
        let mut pb = ProgramBuilder::new();
        let mut m = MethodBuilder::new("main", 0, 0, false);
        let end = m.label();
        m.const_i(1);
        m.jump_if(end);
        m.const_i(0);
        m.pop();
        m.bind(end);
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().expect("verifies");
        assert_eq!(p.method(id).body()[1], Instr::JumpIf(4));
    }

    #[test]
    #[should_panic(expected = "duplicate method")]
    fn duplicate_declared_method_names_rejected() {
        let mut pb = ProgramBuilder::new();
        pb.declare_method("m", 0, false);
        pb.declare_method("m", 0, false);
    }

    #[test]
    #[should_panic(expected = "duplicate method")]
    fn duplicate_method_names_rejected() {
        let mut pb = ProgramBuilder::new();
        let mut a = MethodBuilder::new("m", 0, 0, false);
        a.ret();
        pb.add_method(a);
        let mut b = MethodBuilder::new("m", 0, 0, false);
        b.ret();
        pb.add_method(b);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut pb = ProgramBuilder::new();
        let mut m = MethodBuilder::new("m", 0, 0, false);
        let l = m.label();
        m.jump(l);
        pb.add_method(m);
    }

    #[test]
    fn declare_then_define_supports_recursion() {
        let mut pb = ProgramBuilder::new();
        let fib = pb.declare_method("fib", 1, true);
        let mut m = MethodBuilder::new("fib", 1, 0, true);
        let base = m.label();
        m.load(0);
        m.const_i(2);
        m.lt();
        m.jump_if(base);
        m.load(0);
        m.const_i(1);
        m.sub();
        m.call(fib);
        m.load(0);
        m.const_i(2);
        m.sub();
        m.call(fib);
        m.add();
        m.ret_val();
        m.bind(base);
        m.load(0);
        m.ret_val();
        pb.define_method(fib, m);

        let mut main = MethodBuilder::new("main", 0, 0, false);
        main.const_i(10);
        main.call(fib);
        main.pop();
        main.ret();
        let id = pb.add_method(main);
        pb.set_entry(id);
        pb.finish().expect("recursive program verifies");
    }

    #[test]
    fn rng_next_is_stack_positive_by_one() {
        let mut pb = ProgramBuilder::new();
        let mut m = MethodBuilder::new("main", 0, 1, false);
        m.const_i(0x9E37_79B9);
        m.store(0);
        m.rng_next(0);
        m.pop();
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        pb.finish().expect("rng snippet verifies");
    }
}
