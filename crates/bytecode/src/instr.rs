//! The bytecode instruction set.
//!
//! hpmopt bytecode is a small stack machine in the spirit of JVM bytecode:
//! instructions pop operands from and push results to an operand stack, and
//! access a method-local variable array. Heap accesses are explicit
//! ([`Instr::GetField`], [`Instr::ArrayGet`], ...) which is what lets the
//! monitoring infrastructure attribute sampled cache misses to individual
//! source-level operations (Section 4.2 of the paper).

use crate::program::{ClassId, FieldId, MethodId, StaticId};

/// Element kind of an array, determining element width and whether the
/// garbage collector must scan the elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ElemKind {
    /// 1-byte integers (`byte[]`).
    I8,
    /// 2-byte integers (`char[]`/`short[]`).
    I16,
    /// 4-byte integers (`int[]`).
    I32,
    /// 8-byte integers (`long[]`).
    I64,
    /// Object references (`Object[]`); scanned by the collector.
    Ref,
}

impl ElemKind {
    /// Width of one element in bytes.
    #[must_use]
    pub const fn width(self) -> u64 {
        match self {
            ElemKind::I8 => 1,
            ElemKind::I16 => 2,
            ElemKind::I32 => 4,
            ElemKind::I64 | ElemKind::Ref => 8,
        }
    }

    /// Whether elements are references the collector must trace.
    #[must_use]
    pub const fn is_ref(self) -> bool {
        matches!(self, ElemKind::Ref)
    }

    /// All element kinds, for exhaustive tests.
    #[must_use]
    pub const fn all() -> [ElemKind; 5] {
        [
            ElemKind::I8,
            ElemKind::I16,
            ElemKind::I32,
            ElemKind::I64,
            ElemKind::Ref,
        ]
    }
}

impl std::fmt::Display for ElemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ElemKind::I8 => "i8",
            ElemKind::I16 => "i16",
            ElemKind::I32 => "i32",
            ElemKind::I64 => "i64",
            ElemKind::Ref => "ref",
        };
        f.write_str(s)
    }
}

/// A single bytecode instruction.
///
/// Branch targets ([`Instr::Jump`], [`Instr::JumpIf`], [`Instr::JumpIfNot`])
/// are absolute instruction indices within the containing method body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Push a constant integer.
    Const(i64),
    /// Push the null reference.
    ConstNull,
    /// Push local variable `n`.
    Load(u16),
    /// Pop into local variable `n`.
    Store(u16),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the two top-of-stack values.
    Swap,

    /// Pop `b`, pop `a`, push `a + b` (wrapping).
    Add,
    /// Pop `b`, pop `a`, push `a - b` (wrapping).
    Sub,
    /// Pop `b`, pop `a`, push `a * b` (wrapping).
    Mul,
    /// Pop `b`, pop `a`, push `a / b`; traps on division by zero.
    Div,
    /// Pop `b`, pop `a`, push `a % b`; traps on division by zero.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left by `b & 63`.
    Shl,
    /// Arithmetic shift right by `b & 63`.
    Shr,
    /// Logical shift right by `b & 63`.
    UShr,
    /// Pop `a`, push `-a` (wrapping).
    Neg,

    /// Pop two integers, push 1 if equal else 0.
    Eq,
    /// Pop two integers, push 1 if unequal else 0.
    Ne,
    /// Pop `b`, pop `a`, push `a < b`.
    Lt,
    /// Pop `b`, pop `a`, push `a <= b`.
    Le,
    /// Pop `b`, pop `a`, push `a > b`.
    Gt,
    /// Pop `b`, pop `a`, push `a >= b`.
    Ge,

    /// Unconditional branch to instruction index.
    Jump(u32),
    /// Pop condition; branch if non-zero.
    JumpIf(u32),
    /// Pop condition; branch if zero.
    JumpIfNot(u32),

    /// Allocate an instance of the class; push its reference.
    New(ClassId),
    /// Pop a length; allocate an array of the element kind; push its reference.
    NewArray(ElemKind),
    /// Pop an object reference; push the value of the field.
    GetField(FieldId),
    /// Pop a value, pop an object reference; store the value into the field.
    PutField(FieldId),
    /// Push the value of a static (global) variable.
    GetStatic(StaticId),
    /// Pop a value into a static (global) variable.
    PutStatic(StaticId),
    /// Pop index, pop array reference; push the element.
    ArrayGet(ElemKind),
    /// Pop value, pop index, pop array reference; store the element.
    ArraySet(ElemKind),
    /// Pop an array reference; push its length.
    ArrayLen,
    /// Pop a reference; push 1 if null else 0.
    IsNull,
    /// Pop two references; push 1 if identical else 0.
    RefEq,

    /// Call a method, popping its arguments (last argument on top).
    Call(MethodId),
    /// Return from a `void` method.
    Return,
    /// Pop the return value and return it to the caller.
    ReturnVal,
}

impl Instr {
    /// Whether this instruction reads or writes the heap through an object
    /// reference taken from the operand stack.
    ///
    /// These are the candidate *instructions of interest* for the
    /// cache-miss-to-field attribution analysis (Section 5.2): a miss
    /// incurred here can be blamed on the reference that produced the base
    /// object.
    #[must_use]
    pub const fn is_heap_access(self) -> bool {
        matches!(
            self,
            Instr::GetField(_)
                | Instr::PutField(_)
                | Instr::ArrayGet(_)
                | Instr::ArraySet(_)
                | Instr::ArrayLen
        )
    }

    /// Whether this instruction can allocate (and therefore trigger a
    /// garbage collection). These are the GC points the baseline compiler
    /// records maps for, together with calls.
    #[must_use]
    pub const fn is_allocation(self) -> bool {
        matches!(self, Instr::New(_) | Instr::NewArray(_))
    }

    /// Whether this instruction is a GC point (allocation or call).
    #[must_use]
    pub const fn is_gc_point(self) -> bool {
        self.is_allocation() || matches!(self, Instr::Call(_))
    }

    /// The branch target if this is a branch instruction.
    #[must_use]
    pub const fn branch_target(self) -> Option<u32> {
        match self {
            Instr::Jump(t) | Instr::JumpIf(t) | Instr::JumpIfNot(t) => Some(t),
            _ => None,
        }
    }

    /// Whether control never falls through to the next instruction.
    #[must_use]
    pub const fn is_terminator(self) -> bool {
        matches!(self, Instr::Jump(_) | Instr::Return | Instr::ReturnVal)
    }

    /// Short mnemonic used by the disassembler.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Instr::Const(_) => "const",
            Instr::ConstNull => "const_null",
            Instr::Load(_) => "load",
            Instr::Store(_) => "store",
            Instr::Dup => "dup",
            Instr::Pop => "pop",
            Instr::Swap => "swap",
            Instr::Add => "add",
            Instr::Sub => "sub",
            Instr::Mul => "mul",
            Instr::Div => "div",
            Instr::Rem => "rem",
            Instr::And => "and",
            Instr::Or => "or",
            Instr::Xor => "xor",
            Instr::Shl => "shl",
            Instr::Shr => "shr",
            Instr::UShr => "ushr",
            Instr::Neg => "neg",
            Instr::Eq => "eq",
            Instr::Ne => "ne",
            Instr::Lt => "lt",
            Instr::Le => "le",
            Instr::Gt => "gt",
            Instr::Ge => "ge",
            Instr::Jump(_) => "jump",
            Instr::JumpIf(_) => "jump_if",
            Instr::JumpIfNot(_) => "jump_if_not",
            Instr::New(_) => "new",
            Instr::NewArray(_) => "new_array",
            Instr::GetField(_) => "get_field",
            Instr::PutField(_) => "put_field",
            Instr::GetStatic(_) => "get_static",
            Instr::PutStatic(_) => "put_static",
            Instr::ArrayGet(_) => "array_get",
            Instr::ArraySet(_) => "array_set",
            Instr::ArrayLen => "array_len",
            Instr::IsNull => "is_null",
            Instr::RefEq => "ref_eq",
            Instr::Call(_) => "call",
            Instr::Return => "return",
            Instr::ReturnVal => "return_val",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_widths_are_powers_of_two() {
        for k in ElemKind::all() {
            assert!(k.width().is_power_of_two(), "{k} width {}", k.width());
        }
    }

    #[test]
    fn only_ref_elem_kind_is_traced() {
        for k in ElemKind::all() {
            assert_eq!(k.is_ref(), k == ElemKind::Ref);
        }
    }

    #[test]
    fn heap_access_classification() {
        assert!(Instr::GetField(FieldId(0)).is_heap_access());
        assert!(Instr::ArraySet(ElemKind::I8).is_heap_access());
        assert!(!Instr::GetStatic(StaticId(0)).is_heap_access());
        assert!(!Instr::Add.is_heap_access());
    }

    #[test]
    fn gc_points_cover_allocations_and_calls() {
        assert!(Instr::New(ClassId(0)).is_gc_point());
        assert!(Instr::NewArray(ElemKind::Ref).is_gc_point());
        assert!(Instr::Call(MethodId(3)).is_gc_point());
        assert!(!Instr::GetField(FieldId(1)).is_gc_point());
    }

    #[test]
    fn branch_targets() {
        assert_eq!(Instr::Jump(7).branch_target(), Some(7));
        assert_eq!(Instr::JumpIf(9).branch_target(), Some(9));
        assert_eq!(Instr::Add.branch_target(), None);
    }

    #[test]
    fn terminators_do_not_fall_through() {
        assert!(Instr::Jump(0).is_terminator());
        assert!(Instr::Return.is_terminator());
        assert!(!Instr::JumpIf(0).is_terminator());
    }
}
