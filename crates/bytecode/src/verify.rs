//! Bytecode verification.
//!
//! A lightweight analogue of the JVM verifier: every method is checked by
//! abstract interpretation over operand-stack depths. Verification
//! guarantees the interpreter and the compilers can process any
//! [`Program`] without bounds errors, and gives the use-def analysis in
//! `hpmopt-core` a well-formedness baseline (consistent stack depth at
//! every join point).

use crate::instr::Instr;
use crate::program::{MethodId, Program};

/// Why a program failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// No entry method was set.
    NoEntry,
    /// The entry method must take no parameters and return nothing.
    BadEntrySignature,
    /// A method body is empty.
    EmptyBody { method: String },
    /// An instruction references an out-of-range class/field/method/static.
    BadId {
        method: String,
        at: usize,
        what: &'static str,
    },
    /// A local-variable index is out of range.
    LocalOutOfRange {
        method: String,
        at: usize,
        local: u16,
    },
    /// A branch target is outside the method body.
    BadBranchTarget {
        method: String,
        at: usize,
        target: u32,
    },
    /// The operand stack would underflow.
    StackUnderflow { method: String, at: usize },
    /// Two control-flow paths reach the same instruction with different
    /// stack depths.
    InconsistentStackDepth {
        method: String,
        at: usize,
        a: usize,
        b: usize,
    },
    /// Control can fall off the end of the method body.
    FallsOffEnd { method: String },
    /// A void method executes `ReturnVal`, or vice versa.
    WrongReturnKind { method: String, at: usize },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::NoEntry => write!(f, "no entry method set"),
            VerifyError::BadEntrySignature => {
                write!(f, "entry method must take no parameters and return void")
            }
            VerifyError::EmptyBody { method } => write!(f, "method {method} has an empty body"),
            VerifyError::BadId { method, at, what } => {
                write!(f, "method {method} instruction {at}: invalid {what} id")
            }
            VerifyError::LocalOutOfRange { method, at, local } => {
                write!(
                    f,
                    "method {method} instruction {at}: local {local} out of range"
                )
            }
            VerifyError::BadBranchTarget { method, at, target } => {
                write!(
                    f,
                    "method {method} instruction {at}: branch target {target} out of range"
                )
            }
            VerifyError::StackUnderflow { method, at } => {
                write!(
                    f,
                    "method {method} instruction {at}: operand stack underflow"
                )
            }
            VerifyError::InconsistentStackDepth { method, at, a, b } => write!(
                f,
                "method {method} instruction {at}: inconsistent stack depth ({a} vs {b})"
            ),
            VerifyError::FallsOffEnd { method } => {
                write!(f, "control can fall off the end of method {method}")
            }
            VerifyError::WrongReturnKind { method, at } => {
                write!(f, "method {method} instruction {at}: return kind mismatch")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Net stack effect and required depth of one instruction.
///
/// Returns `(pops, pushes)`.
pub(crate) fn stack_effect(program: &Program, i: Instr) -> (usize, usize) {
    match i {
        Instr::Const(_) | Instr::ConstNull | Instr::Load(_) => (0, 1),
        Instr::GetStatic(_) => (0, 1),
        Instr::Store(_) | Instr::Pop | Instr::PutStatic(_) => (1, 0),
        Instr::Dup => (1, 2),
        Instr::Swap => (2, 2),
        Instr::Add
        | Instr::Sub
        | Instr::Mul
        | Instr::Div
        | Instr::Rem
        | Instr::And
        | Instr::Or
        | Instr::Xor
        | Instr::Shl
        | Instr::Shr
        | Instr::UShr
        | Instr::Eq
        | Instr::Ne
        | Instr::Lt
        | Instr::Le
        | Instr::Gt
        | Instr::Ge
        | Instr::RefEq => (2, 1),
        Instr::Neg | Instr::IsNull | Instr::ArrayLen | Instr::GetField(_) => (1, 1),
        Instr::Jump(_) => (0, 0),
        Instr::JumpIf(_) | Instr::JumpIfNot(_) => (1, 0),
        Instr::New(_) => (0, 1),
        Instr::NewArray(_) => (1, 1),
        Instr::PutField(_) => (2, 0),
        Instr::ArrayGet(_) => (2, 1),
        Instr::ArraySet(_) => (3, 0),
        Instr::Call(m) => {
            let callee = program.method(m);
            (
                callee.params() as usize,
                usize::from(callee.returns_value()),
            )
        }
        Instr::Return => (0, 0),
        Instr::ReturnVal => (1, 0),
    }
}

fn check_ids(program: &Program, method: MethodId) -> Result<(), VerifyError> {
    let m = program.method(method);
    let name = program.method_name(method);
    for (at, &i) in m.body().iter().enumerate() {
        let bad = |what| VerifyError::BadId {
            method: name.clone(),
            at,
            what,
        };
        match i {
            Instr::New(c) if c.0 as usize >= program.classes().len() => return Err(bad("class")),
            Instr::GetField(f) | Instr::PutField(f) if f.0 as usize >= program.field_count() => {
                return Err(bad("field"))
            }
            Instr::GetStatic(s) | Instr::PutStatic(s)
                if s.0 as usize >= program.statics().len() =>
            {
                return Err(bad("static"))
            }
            Instr::Call(c) if c.0 as usize >= program.methods().len() => return Err(bad("method")),
            Instr::Load(l) | Instr::Store(l) if l >= m.locals() => {
                return Err(VerifyError::LocalOutOfRange {
                    method: name.clone(),
                    at,
                    local: l,
                })
            }
            _ => {}
        }
    }
    Ok(())
}

fn check_flow(program: &Program, method: MethodId) -> Result<(), VerifyError> {
    let m = program.method(method);
    let name = program.method_name(method);
    let len = m.len();
    if len == 0 {
        return Err(VerifyError::EmptyBody { method: name });
    }

    // Abstract interpretation over stack depth; usize::MAX = unvisited.
    let mut depth_at: Vec<usize> = vec![usize::MAX; len];
    let mut worklist = vec![(0usize, 0usize)];
    while let Some((pc, depth)) = worklist.pop() {
        if pc >= len {
            return Err(VerifyError::FallsOffEnd { method: name });
        }
        match depth_at[pc] {
            usize::MAX => depth_at[pc] = depth,
            d if d == depth => continue,
            d => {
                return Err(VerifyError::InconsistentStackDepth {
                    method: name,
                    at: pc,
                    a: d,
                    b: depth,
                })
            }
        }
        let i = m.body()[pc];
        if let Some(t) = i.branch_target() {
            if t as usize >= len {
                return Err(VerifyError::BadBranchTarget {
                    method: name,
                    at: pc,
                    target: t,
                });
            }
        }
        let (pops, pushes) = stack_effect(program, i);
        if depth < pops {
            return Err(VerifyError::StackUnderflow {
                method: name,
                at: pc,
            });
        }
        let next = depth - pops + pushes;
        match i {
            Instr::Return => {
                if m.returns_value() {
                    return Err(VerifyError::WrongReturnKind {
                        method: name,
                        at: pc,
                    });
                }
            }
            Instr::ReturnVal => {
                if !m.returns_value() {
                    return Err(VerifyError::WrongReturnKind {
                        method: name,
                        at: pc,
                    });
                }
            }
            Instr::Jump(t) => worklist.push((t as usize, next)),
            Instr::JumpIf(t) | Instr::JumpIfNot(t) => {
                worklist.push((t as usize, next));
                worklist.push((pc + 1, next));
            }
            _ => worklist.push((pc + 1, next)),
        }
    }
    Ok(())
}

/// Verify every method of a program plus its entry signature.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify_program(program: &Program) -> Result<(), VerifyError> {
    let entry = program.method(program.entry());
    if entry.params() != 0 || entry.returns_value() {
        return Err(VerifyError::BadEntrySignature);
    }
    for i in 0..program.methods().len() {
        let id = MethodId(i as u32);
        check_ids(program, id)?;
        check_flow(program, id)?;
    }
    Ok(())
}

/// Maximum operand-stack depth of a verified method, used for frame sizing
/// and code-size estimation by the compilers.
///
/// # Panics
///
/// May panic on unverified methods.
#[must_use]
pub fn max_stack_depth(program: &Program, method: MethodId) -> usize {
    let m = program.method(method);
    let len = m.len();
    let mut depth_at: Vec<usize> = vec![usize::MAX; len];
    let mut worklist = vec![(0usize, 0usize)];
    let mut max = 0usize;
    while let Some((pc, depth)) = worklist.pop() {
        if pc >= len || depth_at[pc] != usize::MAX {
            continue;
        }
        depth_at[pc] = depth;
        let i = m.body()[pc];
        let (pops, pushes) = stack_effect(program, i);
        let next = depth - pops + pushes;
        max = max.max(next);
        match i {
            Instr::Return | Instr::ReturnVal => {}
            Instr::Jump(t) => worklist.push((t as usize, next)),
            Instr::JumpIf(t) | Instr::JumpIfNot(t) => {
                worklist.push((t as usize, next));
                worklist.push((pc + 1, next));
            }
            _ => worklist.push((pc + 1, next)),
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{MethodBuilder, ProgramBuilder};

    fn single(mb: MethodBuilder) -> Result<Program, VerifyError> {
        let mut pb = ProgramBuilder::new();
        let id = pb.add_method(mb);
        pb.set_entry(id);
        pb.finish()
    }

    #[test]
    fn underflow_detected() {
        let mut m = MethodBuilder::new("main", 0, 0, false);
        m.add();
        m.ret();
        assert!(matches!(
            single(m),
            Err(VerifyError::StackUnderflow { at: 0, .. })
        ));
    }

    #[test]
    fn fall_off_end_detected() {
        let mut m = MethodBuilder::new("main", 0, 0, false);
        m.const_i(1);
        m.pop();
        assert!(matches!(single(m), Err(VerifyError::FallsOffEnd { .. })));
    }

    #[test]
    fn inconsistent_join_depth_detected() {
        let mut m = MethodBuilder::new("main", 0, 0, false);
        // Path A reaches the join with 1 value, path B with 0.
        let join = m.label();
        let b = m.label();
        m.const_i(0);
        m.jump_if(b);
        m.const_i(42); // depth 1
        m.jump(join);
        m.bind(b); // depth 0
        m.bind(join);
        m.ret();
        assert!(matches!(
            single(m),
            Err(VerifyError::InconsistentStackDepth { .. })
        ));
    }

    #[test]
    fn wrong_return_kind_detected() {
        let mut m = MethodBuilder::new("main", 0, 0, false);
        m.const_i(1);
        m.ret_val();
        assert!(matches!(
            single(m),
            Err(VerifyError::WrongReturnKind { .. })
        ));
    }

    #[test]
    fn entry_signature_enforced() {
        let mut pb = ProgramBuilder::new();
        let mut m = MethodBuilder::new("main", 1, 0, false);
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        assert_eq!(pb.finish().unwrap_err(), VerifyError::BadEntrySignature);
    }

    #[test]
    fn bad_local_detected() {
        let mut m = MethodBuilder::new("main", 0, 1, false);
        m.load(5);
        m.pop();
        m.ret();
        assert!(matches!(
            single(m),
            Err(VerifyError::LocalOutOfRange { local: 5, .. })
        ));
    }

    #[test]
    fn max_stack_depth_of_straightline() {
        let mut pb = ProgramBuilder::new();
        let mut m = MethodBuilder::new("main", 0, 0, false);
        m.const_i(1);
        m.const_i(2);
        m.const_i(3);
        m.add();
        m.add();
        m.pop();
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        assert_eq!(max_stack_depth(&p, id), 3);
    }

    #[test]
    fn missing_entry_detected() {
        let pb = ProgramBuilder::new();
        assert_eq!(pb.finish().unwrap_err(), VerifyError::NoEntry);
    }
}
