//! A textual assembler for hpmopt bytecode.
//!
//! Lets programs be written as plain text instead of builder calls —
//! handy for tests, REPL-style experimentation, and for keeping guest
//! programs in files. The syntax mirrors the disassembler's output with
//! label support:
//!
//! ```text
//! class Node { ref next; int v; }
//! static head: ref;
//!
//! method sum(1) returns locals=1 {
//!     const 0
//!     store 1
//! loop:
//!     load 0
//!     is_null
//!     jump_if done
//!     load 1
//!     load 0
//!     get_field Node.v
//!     add
//!     store 1
//!     load 0
//!     get_field Node.next
//!     store 0
//!     jump loop
//! done:
//!     load 1
//!     return_val
//! }
//!
//! method main(0) locals=0 {
//!     const_null
//!     call sum
//!     pop
//!     return
//! }
//! ```
//!
//! The method named `main` becomes the entry point. Comments run from
//! `#` or `//` to end of line.

use std::collections::HashMap;

use crate::builder::ProgramBuilder;
use crate::class::FieldType;
use crate::instr::{ElemKind, Instr};
use crate::method::MethodDef;
use crate::program::{MethodId, Program};
use crate::verify::VerifyError;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number (0 for whole-program errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

impl From<VerifyError> for AsmError {
    fn from(e: VerifyError) -> Self {
        AsmError {
            line: 0,
            message: format!("verification failed: {e}"),
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn elem_kind(s: &str, line: usize) -> Result<ElemKind, AsmError> {
    match s {
        "i8" => Ok(ElemKind::I8),
        "i16" => Ok(ElemKind::I16),
        "i32" => Ok(ElemKind::I32),
        "i64" => Ok(ElemKind::I64),
        "ref" => Ok(ElemKind::Ref),
        other => Err(err(line, format!("unknown element kind {other:?}"))),
    }
}

struct PendingMethod {
    name: String,
    params: u16,
    locals: u16,
    returns: bool,
    /// (line, mnemonic, operand) triples.
    body: Vec<(usize, String, Option<String>)>,
    /// label name → instruction index.
    labels: HashMap<String, u32>,
    start_line: usize,
}

/// Assemble a program from source text.
///
/// # Errors
///
/// Returns an [`AsmError`] describing the first syntax, resolution, or
/// verification problem.
#[allow(clippy::too_many_lines)]
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut pb = ProgramBuilder::new();
    let mut statics: HashMap<String, crate::program::StaticId> = HashMap::new();
    let mut methods: Vec<PendingMethod> = Vec::new();
    let mut current: Option<PendingMethod> = None;

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw
            .split('#')
            .next()
            .unwrap_or("")
            .split("//")
            .next()
            .unwrap_or("")
            .trim();
        if line.is_empty() {
            continue;
        }

        if let Some(m) = &mut current {
            if line == "}" {
                methods.push(current.take().expect("inside a method"));
                continue;
            }
            if let Some(label) = line.strip_suffix(':') {
                let at = m.body.len() as u32;
                if m.labels.insert(label.to_string(), at).is_some() {
                    return Err(err(line_no, format!("duplicate label {label:?}")));
                }
                continue;
            }
            let mut parts = line.splitn(2, char::is_whitespace);
            let mnemonic = parts.next().expect("non-empty line").to_string();
            let operand = parts.next().map(|s| s.trim().to_string());
            m.body.push((line_no, mnemonic, operand));
            continue;
        }

        if let Some(rest) = line.strip_prefix("class ") {
            let (name, fields_src) = rest
                .split_once('{')
                .ok_or_else(|| err(line_no, "expected `{` after class name"))?;
            let name = name.trim();
            let fields_src = fields_src
                .strip_suffix('}')
                .ok_or_else(|| err(line_no, "class body must close with `}` on the same line"))?;
            let mut fields = Vec::new();
            for decl in fields_src.split(';') {
                let decl = decl.trim();
                if decl.is_empty() {
                    continue;
                }
                let (ty, fname) = decl
                    .split_once(' ')
                    .ok_or_else(|| err(line_no, format!("bad field declaration {decl:?}")))?;
                let ty = match ty.trim() {
                    "ref" => FieldType::Ref,
                    "int" => FieldType::Int,
                    other => return Err(err(line_no, format!("unknown field type {other:?}"))),
                };
                fields.push((fname.trim().to_string(), ty));
            }
            let refs: Vec<(&str, FieldType)> =
                fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            pb.add_class(name, &refs);
            continue;
        }

        if let Some(rest) = line.strip_prefix("static ") {
            let rest = rest.trim_end_matches(';');
            let (name, ty) = rest
                .split_once(':')
                .ok_or_else(|| err(line_no, "expected `static name: type;`"))?;
            let ty = match ty.trim() {
                "ref" => FieldType::Ref,
                "int" => FieldType::Int,
                other => return Err(err(line_no, format!("unknown static type {other:?}"))),
            };
            let id = pb.add_static(name.trim(), ty);
            statics.insert(name.trim().to_string(), id);
            continue;
        }

        if let Some(rest) = line.strip_prefix("method ") {
            let header = rest
                .strip_suffix('{')
                .ok_or_else(|| err(line_no, "method header must end with `{`"))?
                .trim();
            let (name, after) = header
                .split_once('(')
                .ok_or_else(|| err(line_no, "expected `(` in method header"))?;
            let (params_src, tail) = after
                .split_once(')')
                .ok_or_else(|| err(line_no, "expected `)` in method header"))?;
            let params: u16 = params_src
                .trim()
                .parse()
                .map_err(|_| err(line_no, "parameter count must be a number"))?;
            let mut returns = false;
            let mut locals = 0u16;
            for tok in tail.split_whitespace() {
                if tok == "returns" {
                    returns = true;
                } else if let Some(n) = tok.strip_prefix("locals=") {
                    locals = n
                        .parse()
                        .map_err(|_| err(line_no, "locals= must be a number"))?;
                } else {
                    return Err(err(line_no, format!("unexpected token {tok:?}")));
                }
            }
            current = Some(PendingMethod {
                name: name.trim().to_string(),
                params,
                locals,
                returns,
                body: Vec::new(),
                labels: HashMap::new(),
                start_line: line_no,
            });
            continue;
        }

        return Err(err(line_no, format!("unexpected top-level line {line:?}")));
    }

    if let Some(m) = current {
        return Err(err(m.start_line, "unterminated method body"));
    }

    // Pass 1: declare every method so calls can resolve forward.
    let mut method_ids: HashMap<String, MethodId> = HashMap::new();
    for m in &methods {
        let id = pb.declare_method(&m.name, m.params, m.returns);
        method_ids.insert(m.name.clone(), id);
    }

    // Pass 2: encode bodies.
    for m in &methods {
        let instrs = encode_body(&pb, &statics, &method_ids, m)?;
        pb.define_method_raw(method_ids[&m.name], m.locals, instrs);
    }

    let main = *method_ids
        .get("main")
        .ok_or_else(|| err(0, "no `main` method"))?;
    pb.set_entry(main);
    Ok(pb.finish()?)
}

fn encode_body(
    pb: &ProgramBuilder,
    statics: &HashMap<String, crate::program::StaticId>,
    method_ids: &HashMap<String, MethodId>,
    m: &PendingMethod,
) -> Result<Vec<Instr>, AsmError> {
    let mut out = Vec::with_capacity(m.body.len());
    for (line, mnemonic, operand) in &m.body {
        let line = *line;
        let need = |what: &str| -> Result<&str, AsmError> {
            operand
                .as_deref()
                .ok_or_else(|| err(line, format!("{mnemonic} needs {what}")))
        };
        let int = |what: &str| -> Result<i64, AsmError> {
            need(what)?
                .parse::<i64>()
                .map_err(|_| err(line, format!("{mnemonic} needs a numeric {what}")))
        };
        let label = |what: &str| -> Result<u32, AsmError> {
            let name = need(what)?;
            m.labels
                .get(name)
                .copied()
                .ok_or_else(|| err(line, format!("unknown label {name:?}")))
        };
        let field = |what: &str| -> Result<crate::program::FieldId, AsmError> {
            let spec = need(what)?;
            let (class, fname) = spec
                .split_once('.')
                .ok_or_else(|| err(line, format!("{mnemonic} needs Class.field")))?;
            let class_id = pb
                .class_id(class)
                .ok_or_else(|| err(line, format!("unknown class {class:?}")))?;
            pb.field_id(class_id, fname)
                .ok_or_else(|| err(line, format!("unknown field {spec:?}")))
        };

        let i = match mnemonic.as_str() {
            "const" => Instr::Const(int("a constant")?),
            "const_null" => Instr::ConstNull,
            "load" => Instr::Load(int("a local index")? as u16),
            "store" => Instr::Store(int("a local index")? as u16),
            "dup" => Instr::Dup,
            "pop" => Instr::Pop,
            "swap" => Instr::Swap,
            "add" => Instr::Add,
            "sub" => Instr::Sub,
            "mul" => Instr::Mul,
            "div" => Instr::Div,
            "rem" => Instr::Rem,
            "and" => Instr::And,
            "or" => Instr::Or,
            "xor" => Instr::Xor,
            "shl" => Instr::Shl,
            "shr" => Instr::Shr,
            "ushr" => Instr::UShr,
            "neg" => Instr::Neg,
            "eq" => Instr::Eq,
            "ne" => Instr::Ne,
            "lt" => Instr::Lt,
            "le" => Instr::Le,
            "gt" => Instr::Gt,
            "ge" => Instr::Ge,
            "jump" => Instr::Jump(label("a label")?),
            "jump_if" => Instr::JumpIf(label("a label")?),
            "jump_if_not" => Instr::JumpIfNot(label("a label")?),
            "new" => {
                let name = need("a class name")?;
                Instr::New(
                    pb.class_id(name)
                        .ok_or_else(|| err(line, format!("unknown class {name:?}")))?,
                )
            }
            "new_array" => Instr::NewArray(elem_kind(need("an element kind")?, line)?),
            "get_field" => Instr::GetField(field("a field")?),
            "put_field" => Instr::PutField(field("a field")?),
            "get_static" => {
                let name = need("a static name")?;
                Instr::GetStatic(
                    *statics
                        .get(name)
                        .ok_or_else(|| err(line, format!("unknown static {name:?}")))?,
                )
            }
            "put_static" => {
                let name = need("a static name")?;
                Instr::PutStatic(
                    *statics
                        .get(name)
                        .ok_or_else(|| err(line, format!("unknown static {name:?}")))?,
                )
            }
            "array_get" => Instr::ArrayGet(elem_kind(need("an element kind")?, line)?),
            "array_set" => Instr::ArraySet(elem_kind(need("an element kind")?, line)?),
            "array_len" => Instr::ArrayLen,
            "is_null" => Instr::IsNull,
            "ref_eq" => Instr::RefEq,
            "call" => {
                let name = need("a method name")?;
                Instr::Call(
                    *method_ids
                        .get(name)
                        .ok_or_else(|| err(line, format!("unknown method {name:?}")))?,
                )
            }
            "return" => Instr::Return,
            "return_val" => Instr::ReturnVal,
            other => return Err(err(line, format!("unknown mnemonic {other:?}"))),
        };
        out.push(i);
    }
    Ok(out)
}

/// Total locals of an assembled method is `params + locals=` — the raw
/// definition path used by the assembler.
impl ProgramBuilder {
    /// Look up a class id by name (assembler support).
    #[must_use]
    pub fn class_id(&self, name: &str) -> Option<crate::program::ClassId> {
        self.class_id_by_name(name)
    }

    pub(crate) fn define_method_raw(&mut self, id: MethodId, extra_locals: u16, body: Vec<Instr>) {
        let (name, params, returns) = {
            let d = &self.methods_ref()[id.0 as usize];
            (d.name().to_string(), d.params(), d.returns_value())
        };
        self.replace_method(
            id,
            MethodDef::new(name, None, params, params + extra_locals, returns, body),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm;

    const LIST_SUM: &str = r"
        class Node { ref next; int v; }
        static total: int;

        method sum(1) returns locals=1 {
            const 0
            store 1
        loop:
            load 0
            is_null
            jump_if done
            load 1
            load 0
            get_field Node.v
            add
            store 1
            load 0
            get_field Node.next
            store 0
            jump loop
        done:
            load 1
            return_val
        }

        method main(0) locals=2 {
            # build two nodes: 40 -> 2
            new Node
            store 0
            load 0
            const 40
            put_field Node.v
            new Node
            store 1
            load 1
            const 2
            put_field Node.v
            load 0
            load 1
            put_field Node.next
            load 0
            call sum
            put_static total
            return
        }
    ";

    #[test]
    fn assembles_and_verifies() {
        let p = assemble(LIST_SUM).expect("assembles");
        assert_eq!(p.classes().len(), 1);
        assert_eq!(p.methods().len(), 2);
        assert_eq!(p.method_by_name("main"), Some(p.entry()));
        let text = disasm::program(&p);
        assert!(text.contains("get_field Node::v"), "{text}");
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let p = assemble(LIST_SUM).unwrap();
        let sum = p.method_by_name("sum").unwrap();
        let body = p.method(sum).body();
        assert!(matches!(body[4], Instr::JumpIf(t) if t as usize == body.len() - 2));
        assert!(matches!(body[body.len() - 3], Instr::Jump(2)));
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = assemble("method main(0) locals=0 {\n  bogus_op\n  return\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus_op"));
    }

    #[test]
    fn unknown_label_rejected() {
        let e = assemble("method main(0) locals=0 {\n  jump nowhere\n  return\n}").unwrap_err();
        assert!(e.message.contains("nowhere"), "{e}");
    }

    #[test]
    fn unknown_field_rejected() {
        let src = "class A { int x; }\nmethod main(0) locals=0 {\n  const_null\n  get_field A.y\n  pop\n  return\n}";
        let e = assemble(src).unwrap_err();
        assert!(e.message.contains("A.y"), "{e}");
    }

    #[test]
    fn missing_main_rejected() {
        let e = assemble("method helper(0) locals=0 {\n  return\n}").unwrap_err();
        assert!(e.message.contains("main"), "{e}");
    }

    #[test]
    fn verification_errors_surface() {
        // pops from an empty stack
        let e = assemble("method main(0) locals=0 {\n  pop\n  return\n}").unwrap_err();
        assert!(e.message.contains("verification failed"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("# leading comment\n\nmethod main(0) locals=0 { // trailing\n  return\n}")
            .unwrap();
        assert_eq!(p.method(p.entry()).len(), 1);
    }
}
