//! Human-readable disassembly of methods and programs.
//!
//! Used in diagnostics, examples, and the experiment reports; the output is
//! also a convenient golden-test surface.

use std::fmt::Write as _;

use crate::instr::Instr;
use crate::program::{MethodId, Program};

/// Disassemble one method to a string, one instruction per line.
///
/// # Example
///
/// ```
/// use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
/// use hpmopt_bytecode::disasm;
///
/// let mut pb = ProgramBuilder::new();
/// let mut m = MethodBuilder::new("main", 0, 0, false);
/// m.const_i(1);
/// m.pop();
/// m.ret();
/// let id = pb.add_method(m);
/// pb.set_entry(id);
/// let p = pb.finish()?;
/// let text = disasm::method(&p, id);
/// assert!(text.contains("const 1"));
/// # Ok::<(), hpmopt_bytecode::VerifyError>(())
/// ```
#[must_use]
pub fn method(program: &Program, id: MethodId) -> String {
    let m = program.method(id);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "method {} (params={}, locals={}, returns={})",
        program.method_name(id),
        m.params(),
        m.locals(),
        m.returns_value()
    );
    for (pc, &i) in m.body().iter().enumerate() {
        let _ = writeln!(out, "  {pc:4}: {}", instr(program, i));
    }
    out
}

/// Render one instruction with resolved names.
#[must_use]
pub fn instr(program: &Program, i: Instr) -> String {
    match i {
        Instr::Const(v) => format!("const {v}"),
        Instr::Load(n) => format!("load {n}"),
        Instr::Store(n) => format!("store {n}"),
        Instr::Jump(t) => format!("jump -> {t}"),
        Instr::JumpIf(t) => format!("jump_if -> {t}"),
        Instr::JumpIfNot(t) => format!("jump_if_not -> {t}"),
        Instr::New(c) => format!("new {}", program.class(c).name()),
        Instr::NewArray(k) => format!("new_array {k}"),
        Instr::GetField(f) => format!("get_field {}", program.field_name(f)),
        Instr::PutField(f) => format!("put_field {}", program.field_name(f)),
        Instr::GetStatic(s) => format!("get_static {}", program.statics()[s.0 as usize].name()),
        Instr::PutStatic(s) => format!("put_static {}", program.statics()[s.0 as usize].name()),
        Instr::ArrayGet(k) => format!("array_get {k}"),
        Instr::ArraySet(k) => format!("array_set {k}"),
        Instr::Call(m) => format!("call {}", program.method_name(m)),
        other => other.mnemonic().to_string(),
    }
}

/// Disassemble the whole program.
#[must_use]
pub fn program(program: &Program) -> String {
    let mut out = String::new();
    for (i, c) in program.classes().iter().enumerate() {
        let _ = writeln!(
            out,
            "class {} (#{i}, {} bytes)",
            c.name(),
            c.instance_size()
        );
        for f in c.fields() {
            let _ = writeln!(out, "  field {}: {} @ {}", f.name(), f.ty(), f.offset());
        }
    }
    for s in program.statics() {
        let _ = writeln!(out, "static {}: {}", s.name(), s.ty());
    }
    for i in 0..program.methods().len() {
        out.push_str(&method(program, MethodId(i as u32)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{MethodBuilder, ProgramBuilder};
    use crate::FieldType;

    #[test]
    fn disassembles_field_names() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("Str", &[("value", FieldType::Ref)]);
        let f = pb.field_id(c, "value").unwrap();
        let mut m = MethodBuilder::new("main", 0, 0, false);
        m.new_object(c);
        m.get_field(f);
        m.pop();
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        let text = program(&p);
        assert!(text.contains("get_field Str::value"), "{text}");
        assert!(text.contains("class Str"), "{text}");
    }
}
