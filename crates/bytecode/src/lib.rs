//! Class model, typed bytecode instruction set, and program builder for the
//! hpmopt managed runtime.
//!
//! This crate is the program-representation substrate of the hpmopt
//! workspace, a reproduction of *Schneider, Payer, Gross: "Online
//! Optimizations Driven by Hardware Performance Monitoring" (PLDI 2007)*.
//! It plays the role that Java class files play for the Jikes RVM: it
//! defines what a program *is*, independent of how it is executed.
//!
//! A [`Program`] is a set of [`ClassDef`]s (with reference and scalar
//! fields), [`MethodDef`]s containing stack-machine [`Instr`]uctions,
//! static (global) variables, and an entry method. Programs are built with
//! the [`builder::ProgramBuilder`] API and checked by [`verify`], which
//! performs abstract-interpretation-based stack verification (the same
//! discipline the JVM's bytecode verifier enforces).
//!
//! # Example
//!
//! ```
//! use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
//! use hpmopt_bytecode::FieldType;
//!
//! let mut pb = ProgramBuilder::new();
//! let point = pb.add_class("Point", &[("x", FieldType::Int), ("y", FieldType::Int)]);
//! let x = pb.field_id(point, "x").unwrap();
//!
//! let mut main = MethodBuilder::new("main", 0, 1, false);
//! main.new_object(point);
//! main.store(0);
//! main.load(0);
//! main.const_i(7);
//! main.put_field(x);
//! main.ret();
//! let main_id = pb.add_method(main);
//! pb.set_entry(main_id);
//!
//! let program = pb.finish()?;
//! assert_eq!(program.classes().len(), 1);
//! # Ok::<(), hpmopt_bytecode::VerifyError>(())
//! ```

pub mod asm;
pub mod builder;
pub mod class;
pub mod disasm;
pub mod instr;
pub mod method;
pub mod program;
pub mod verify;

pub use class::{ClassDef, FieldDef, FieldType, StaticDef};
pub use instr::{ElemKind, Instr};
pub use method::MethodDef;
pub use program::{ClassId, FieldId, MethodId, Program, StaticId};
pub use verify::VerifyError;

/// Size in bytes of the object header every heap object carries.
///
/// The header stores the type tag, GC state bits, the object size, and (for
/// arrays) the element count. Sixteen bytes matches a two-word header plus a
/// word-aligned length slot, the layout the paper's VM (Jikes RVM) uses.
pub const OBJECT_HEADER_BYTES: u64 = 16;

/// Size in bytes of every non-array field slot.
///
/// Fields are word-sized, as in a 64-bit JVM without compressed references.
pub const FIELD_SLOT_BYTES: u64 = 8;
