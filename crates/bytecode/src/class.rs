//! Class, field, and static-variable definitions with object layout.

use crate::{FIELD_SLOT_BYTES, OBJECT_HEADER_BYTES};

/// The type of an instance field or static variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FieldType {
    /// A 64-bit integer slot.
    #[default]
    Int,
    /// An object reference slot (traced by the garbage collector).
    Ref,
}

impl FieldType {
    /// Whether the collector must trace this slot.
    #[must_use]
    pub const fn is_ref(self) -> bool {
        matches!(self, FieldType::Ref)
    }
}

impl std::fmt::Display for FieldType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldType::Int => f.write_str("int"),
            FieldType::Ref => f.write_str("ref"),
        }
    }
}

/// An instance field of a class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    name: String,
    ty: FieldType,
    /// Byte offset from the object start (header included).
    offset: u64,
}

impl FieldDef {
    pub(crate) fn new(name: impl Into<String>, ty: FieldType, index: usize) -> Self {
        FieldDef {
            name: name.into(),
            ty,
            offset: OBJECT_HEADER_BYTES + FIELD_SLOT_BYTES * index as u64,
        }
    }

    /// Field name, unique within its class.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared type of the field.
    #[must_use]
    pub fn ty(&self) -> FieldType {
        self.ty
    }

    /// Byte offset of the field from the start of the object (the header
    /// occupies the first [`OBJECT_HEADER_BYTES`] bytes).
    #[must_use]
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

/// A class definition: a name plus an ordered list of fields.
///
/// Layout is fixed at definition time: the object header is followed by one
/// word-sized slot per field, in declaration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDef {
    name: String,
    fields: Vec<FieldDef>,
}

impl ClassDef {
    pub(crate) fn new(name: impl Into<String>, fields: Vec<FieldDef>) -> Self {
        ClassDef {
            name: name.into(),
            fields,
        }
    }

    /// Class name, unique within the program.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fields in declaration order.
    #[must_use]
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Total size in bytes of an instance, including the header.
    #[must_use]
    pub fn instance_size(&self) -> u64 {
        OBJECT_HEADER_BYTES + FIELD_SLOT_BYTES * self.fields.len() as u64
    }

    /// Indices of the fields the collector must trace.
    pub fn ref_field_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.ty().is_ref())
            .map(|(i, _)| i)
    }

    /// Look up a field index by name.
    #[must_use]
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name() == name)
    }
}

/// A static (global) variable definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticDef {
    name: String,
    ty: FieldType,
}

impl StaticDef {
    pub(crate) fn new(name: impl Into<String>, ty: FieldType) -> Self {
        StaticDef {
            name: name.into(),
            ty,
        }
    }

    /// Static variable name, unique within the program.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared type.
    #[must_use]
    pub fn ty(&self) -> FieldType {
        self.ty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_class() -> ClassDef {
        ClassDef::new(
            "String",
            vec![
                FieldDef::new("value", FieldType::Ref, 0),
                FieldDef::new("hash", FieldType::Int, 1),
                FieldDef::new("next", FieldType::Ref, 2),
            ],
        )
    }

    #[test]
    fn field_offsets_follow_header() {
        let c = sample_class();
        assert_eq!(c.fields()[0].offset(), OBJECT_HEADER_BYTES);
        assert_eq!(c.fields()[1].offset(), OBJECT_HEADER_BYTES + 8);
        assert_eq!(c.fields()[2].offset(), OBJECT_HEADER_BYTES + 16);
    }

    #[test]
    fn instance_size_counts_all_fields() {
        let c = sample_class();
        assert_eq!(c.instance_size(), OBJECT_HEADER_BYTES + 3 * 8);
    }

    #[test]
    fn ref_fields_are_identified() {
        let c = sample_class();
        let refs: Vec<usize> = c.ref_field_indices().collect();
        assert_eq!(refs, vec![0, 2]);
    }

    #[test]
    fn field_lookup_by_name() {
        let c = sample_class();
        assert_eq!(c.field_index("hash"), Some(1));
        assert_eq!(c.field_index("missing"), None);
    }

    #[test]
    fn empty_class_is_header_only() {
        let c = ClassDef::new("Empty", vec![]);
        assert_eq!(c.instance_size(), OBJECT_HEADER_BYTES);
        assert_eq!(c.ref_field_indices().count(), 0);
    }
}
