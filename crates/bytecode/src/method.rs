//! Method definitions.

use crate::instr::Instr;
use crate::program::ClassId;

/// A method: a named body of bytecode with a fixed-size local-variable
/// array.
///
/// Arguments are passed in locals `0..params`. Methods are statically
/// dispatched (the workloads in this repository do not need virtual
/// dispatch, and the paper's analysis treats virtual calls the same as
/// field accesses: as heap touches on the receiver).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodDef {
    name: String,
    class: Option<ClassId>,
    params: u16,
    locals: u16,
    returns_value: bool,
    body: Vec<Instr>,
}

impl MethodDef {
    pub(crate) fn new(
        name: impl Into<String>,
        class: Option<ClassId>,
        params: u16,
        locals: u16,
        returns_value: bool,
        body: Vec<Instr>,
    ) -> Self {
        MethodDef {
            name: name.into(),
            class,
            params,
            locals,
            returns_value,
            body,
        }
    }

    /// Method name (qualified by class in diagnostics when `class` is set).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The class this method belongs to, if any.
    #[must_use]
    pub fn class(&self) -> Option<ClassId> {
        self.class
    }

    /// Number of parameters (stored in locals `0..params`).
    #[must_use]
    pub fn params(&self) -> u16 {
        self.params
    }

    /// Total number of local-variable slots, parameters included.
    #[must_use]
    pub fn locals(&self) -> u16 {
        self.locals
    }

    /// Whether the method returns a value.
    #[must_use]
    pub fn returns_value(&self) -> bool {
        self.returns_value
    }

    /// The bytecode body.
    #[must_use]
    pub fn body(&self) -> &[Instr] {
        &self.body
    }

    /// Number of bytecode instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Whether the body is empty (never true for verified programs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_round_trip() {
        let m = MethodDef::new(
            "run",
            None,
            2,
            5,
            true,
            vec![Instr::Const(1), Instr::ReturnVal],
        );
        assert_eq!(m.name(), "run");
        assert_eq!(m.params(), 2);
        assert_eq!(m.locals(), 5);
        assert!(m.returns_value());
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert_eq!(m.class(), None);
    }
}
