//! Whole-program container and identifier types.

use std::collections::HashMap;

use crate::class::{ClassDef, FieldType, StaticDef};
use crate::method::MethodDef;

/// Identifies a class within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// Identifies a field within a [`Program`] (globally, not per class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub u32);

/// Identifies a method within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId(pub u32);

/// Identifies a static (global) variable within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StaticId(pub u32);

impl std::fmt::Display for ClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

impl std::fmt::Display for FieldId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "field#{}", self.0)
    }
}

impl std::fmt::Display for MethodId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "method#{}", self.0)
    }
}

impl std::fmt::Display for StaticId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "static#{}", self.0)
    }
}

/// Resolved information about one field, indexed by [`FieldId`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldInfo {
    /// Owning class.
    pub class: ClassId,
    /// Index of the field within its class (declaration order).
    pub index: usize,
    /// Byte offset from the object start.
    pub offset: u64,
    /// Declared type.
    pub ty: FieldType,
}

/// A complete, verified program: classes, methods, statics, and an entry
/// method.
///
/// `Program` is immutable once built; construct one through
/// [`crate::builder::ProgramBuilder`]. All identifier types
/// ([`ClassId`], [`FieldId`], [`MethodId`], [`StaticId`]) index into this
/// container and are only meaningful for the program that issued them.
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) classes: Vec<ClassDef>,
    pub(crate) methods: Vec<MethodDef>,
    pub(crate) statics: Vec<StaticDef>,
    pub(crate) fields: Vec<FieldInfo>,
    pub(crate) entry: MethodId,
    pub(crate) method_names: HashMap<String, MethodId>,
}

impl Program {
    /// All classes, indexed by [`ClassId`].
    #[must_use]
    pub fn classes(&self) -> &[ClassDef] {
        &self.classes
    }

    /// All methods, indexed by [`MethodId`].
    #[must_use]
    pub fn methods(&self) -> &[MethodDef] {
        &self.methods
    }

    /// All statics, indexed by [`StaticId`].
    #[must_use]
    pub fn statics(&self) -> &[StaticDef] {
        &self.statics
    }

    /// The entry method executed first.
    #[must_use]
    pub fn entry(&self) -> MethodId {
        self.entry
    }

    /// Look up a class definition.
    ///
    /// # Panics
    ///
    /// Panics if `id` was issued by a different program.
    #[must_use]
    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.0 as usize]
    }

    /// Look up a method definition.
    ///
    /// # Panics
    ///
    /// Panics if `id` was issued by a different program.
    #[must_use]
    pub fn method(&self, id: MethodId) -> &MethodDef {
        &self.methods[id.0 as usize]
    }

    /// Resolved layout information for a field.
    ///
    /// # Panics
    ///
    /// Panics if `id` was issued by a different program.
    #[must_use]
    pub fn field(&self, id: FieldId) -> &FieldInfo {
        &self.fields[id.0 as usize]
    }

    /// Number of fields across all classes.
    #[must_use]
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Human-readable `Class::field` name for diagnostics and reports.
    #[must_use]
    pub fn field_name(&self, id: FieldId) -> String {
        let info = self.field(id);
        let class = self.class(info.class);
        format!("{}::{}", class.name(), class.fields()[info.index].name())
    }

    /// Human-readable method name (`Class::method` or plain name).
    #[must_use]
    pub fn method_name(&self, id: MethodId) -> String {
        let m = self.method(id);
        match m.class() {
            Some(c) => format!("{}::{}", self.class(c).name(), m.name()),
            None => m.name().to_string(),
        }
    }

    /// Find a method by its builder-visible name.
    #[must_use]
    pub fn method_by_name(&self, name: &str) -> Option<MethodId> {
        self.method_names.get(name).copied()
    }

    /// Find a class by name.
    #[must_use]
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name() == name)
            .map(|i| ClassId(i as u32))
    }

    /// Find a field by class and field name.
    #[must_use]
    pub fn field_by_name(&self, class: ClassId, name: &str) -> Option<FieldId> {
        let index = self.class(class).field_index(name)?;
        self.fields
            .iter()
            .position(|f| f.class == class && f.index == index)
            .map(|i| FieldId(i as u32))
    }

    /// Field ids belonging to `class`, in declaration order.
    pub fn fields_of(&self, class: ClassId) -> impl Iterator<Item = FieldId> + '_ {
        self.fields
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.class == class)
            .map(|(i, _)| FieldId(i as u32))
    }

    /// Total bytecode instruction count across all methods (a rough program
    /// size metric used by the space-overhead experiments).
    #[must_use]
    pub fn total_instructions(&self) -> usize {
        self.methods.iter().map(MethodDef::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::{MethodBuilder, ProgramBuilder};
    use crate::FieldType;

    fn small_program() -> crate::Program {
        let mut pb = ProgramBuilder::new();
        let node = pb.add_class("Node", &[("next", FieldType::Ref), ("val", FieldType::Int)]);
        let _g = pb.add_static("root", FieldType::Ref);
        let mut m = MethodBuilder::new("main", 0, 1, false);
        m.new_object(node);
        m.store(0);
        m.ret();
        let main = pb.add_method(m);
        pb.set_entry(main);
        pb.finish().expect("verifies")
    }

    #[test]
    fn lookups_by_name() {
        let p = small_program();
        let node = p.class_by_name("Node").unwrap();
        assert_eq!(p.class(node).name(), "Node");
        let next = p.field_by_name(node, "next").unwrap();
        assert_eq!(p.field_name(next), "Node::next");
        assert!(p.method_by_name("main").is_some());
        assert!(p.class_by_name("Missing").is_none());
        assert!(p.field_by_name(node, "missing").is_none());
    }

    #[test]
    fn fields_of_enumerates_declaration_order() {
        let p = small_program();
        let node = p.class_by_name("Node").unwrap();
        let ids: Vec<_> = p.fields_of(node).collect();
        assert_eq!(ids.len(), 2);
        assert_eq!(p.field(ids[0]).index, 0);
        assert_eq!(p.field(ids[1]).index, 1);
        assert!(p.field(ids[0]).ty.is_ref());
    }

    #[test]
    fn total_instructions_sums_methods() {
        let p = small_program();
        assert_eq!(p.total_instructions(), 3);
    }
}
