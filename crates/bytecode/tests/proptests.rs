//! Property-based tests for the bytecode substrate.

//
// These tests need the external `proptest` crate, which the offline
// build cannot fetch; enable with `--features proptest-tests` after
// adding proptest as a dev-dependency.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::verify::max_stack_depth;
use hpmopt_bytecode::{FieldType, Instr};

/// Generate a random but *well-formed* straight-line body: a sequence of
/// stack-neutral snippets.
fn snippet() -> impl Strategy<Value = Vec<Instr>> {
    prop_oneof![
        // push-pop
        any::<i64>().prop_map(|v| vec![Instr::Const(v), Instr::Pop]),
        // arithmetic on two constants
        (any::<i64>(), any::<i64>()).prop_map(|(a, b)| vec![
            Instr::Const(a),
            Instr::Const(b),
            Instr::Add,
            Instr::Pop
        ]),
        // local round trip
        any::<i64>().prop_map(|v| vec![
            Instr::Const(v),
            Instr::Store(0),
            Instr::Load(0),
            Instr::Pop
        ]),
        // dup/swap gymnastics
        Just(vec![
            Instr::Const(1),
            Instr::Dup,
            Instr::Swap,
            Instr::Pop,
            Instr::Pop
        ]),
        // comparison
        (any::<i64>(), any::<i64>()).prop_map(|(a, b)| vec![
            Instr::Const(a),
            Instr::Const(b),
            Instr::Lt,
            Instr::Pop
        ]),
    ]
}

proptest! {
    /// Any concatenation of stack-neutral snippets plus a return
    /// verifies, and the verifier's max-stack matches a direct
    /// simulation.
    #[test]
    fn neutral_snippets_verify(snips in proptest::collection::vec(snippet(), 0..40)) {
        let mut pb = ProgramBuilder::new();
        let mut m = MethodBuilder::new("main", 0, 1, false);
        let mut depth = 0i64;
        let mut max_depth = 0i64;
        for s in snips.iter().flatten() {
            m.emit(*s);
            depth += match s {
                Instr::Const(_) | Instr::Load(_) | Instr::Dup => 1,
                Instr::Pop | Instr::Store(_) | Instr::Add | Instr::Lt => -1,
                Instr::Swap => 0,
                _ => unreachable!(),
            };
            // `Add`/`Lt` pop 2 push 1; adjust: they were counted as -1
            // which is exactly the net effect.
            max_depth = max_depth.max(depth);
        }
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().expect("neutral snippets verify");
        prop_assert_eq!(max_stack_depth(&p, id) as i64, max_depth);
    }

    /// Truncating a verified body (removing the trailing return) always
    /// fails verification — control must not fall off the end.
    #[test]
    fn truncated_bodies_fail(n in 1usize..20) {
        let mut pb = ProgramBuilder::new();
        let mut m = MethodBuilder::new("main", 0, 0, false);
        for i in 0..n {
            m.const_i(i as i64);
            m.pop();
        }
        // no return
        let id = pb.add_method(m);
        pb.set_entry(id);
        prop_assert!(pb.finish().is_err());
    }

    /// Random branch targets beyond the body are rejected.
    #[test]
    fn wild_branch_targets_rejected(target in 10u32..1000) {
        let mut pb = ProgramBuilder::new();
        let mut m = MethodBuilder::new("main", 0, 0, false);
        m.emit(Instr::Jump(target));
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        prop_assert!(pb.finish().is_err());
    }

    /// Class layout: field offsets are disjoint, 8-byte-spaced slots
    /// after the header, for any field list.
    #[test]
    fn layout_is_dense_and_disjoint(refs in proptest::collection::vec(any::<bool>(), 0..32)) {
        let mut pb = ProgramBuilder::new();
        let names: Vec<String> = (0..refs.len()).map(|i| format!("f{i}")).collect();
        let fields: Vec<(&str, FieldType)> = names
            .iter()
            .zip(&refs)
            .map(|(n, &r)| (n.as_str(), if r { FieldType::Ref } else { FieldType::Int }))
            .collect();
        let c = pb.add_class("C", &fields);
        let mut m = MethodBuilder::new("main", 0, 0, false);
        m.ret();
        let id = pb.add_method(m);
        pb.set_entry(id);
        let p = pb.finish().unwrap();
        let class = p.class(c);
        prop_assert_eq!(class.instance_size(), 16 + 8 * refs.len() as u64);
        for (i, f) in class.fields().iter().enumerate() {
            prop_assert_eq!(f.offset(), 16 + 8 * i as u64);
        }
        let ref_count = class.ref_field_indices().count();
        prop_assert_eq!(ref_count, refs.iter().filter(|&&r| r).count());
    }
}
