//! Negative verification cases built with raw instruction emission.
//!
//! The builder's typed emitters make most malformed programs hard to
//! express, so these tests drop to [`MethodBuilder::emit`] to construct
//! exactly the dangling references and broken control flow the verifier
//! exists to reject — the shapes a buggy program *generator* (or a
//! future bytecode loader) could produce.

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::{ClassId, FieldId, FieldType, Instr, MethodId, StaticId, VerifyError};

/// Wrap one raw-emitted body as the entry method and verify the program.
fn single(mb: MethodBuilder) -> Result<hpmopt_bytecode::Program, VerifyError> {
    let mut pb = ProgramBuilder::new();
    let id = pb.add_method(mb);
    pb.set_entry(id);
    pb.finish()
}

#[test]
fn dangling_class_id_rejected() {
    let mut m = MethodBuilder::new("main", 0, 0, false);
    m.emit(Instr::New(ClassId(7)));
    m.pop();
    m.ret();
    assert!(
        matches!(
            single(m),
            Err(VerifyError::BadId {
                at: 0,
                what: "class",
                ..
            })
        ),
        "New of an undeclared class must not verify"
    );
}

#[test]
fn dangling_field_id_rejected() {
    let mut pb = ProgramBuilder::new();
    let point = pb.add_class("Point", &[("x", FieldType::Int)]);
    let mut m = MethodBuilder::new("main", 0, 0, false);
    m.new_object(point);
    m.emit(Instr::GetField(FieldId(9)));
    m.pop();
    m.ret();
    let id = pb.add_method(m);
    pb.set_entry(id);
    assert!(matches!(
        pb.finish(),
        Err(VerifyError::BadId {
            at: 1,
            what: "field",
            ..
        })
    ));
}

#[test]
fn dangling_put_field_rejected() {
    let mut pb = ProgramBuilder::new();
    let point = pb.add_class("Point", &[("x", FieldType::Int)]);
    let mut m = MethodBuilder::new("main", 0, 0, false);
    m.new_object(point);
    m.const_i(1);
    m.emit(Instr::PutField(FieldId(1)));
    m.ret();
    let id = pb.add_method(m);
    pb.set_entry(id);
    assert!(matches!(
        pb.finish(),
        Err(VerifyError::BadId { what: "field", .. })
    ));
}

#[test]
fn dangling_method_id_rejected() {
    let mut m = MethodBuilder::new("main", 0, 0, false);
    m.emit(Instr::Call(MethodId(3)));
    m.ret();
    assert!(matches!(
        single(m),
        Err(VerifyError::BadId {
            at: 0,
            what: "method",
            ..
        })
    ));
}

#[test]
fn dangling_static_ids_rejected() {
    let mut read = MethodBuilder::new("main", 0, 0, false);
    read.emit(Instr::GetStatic(StaticId(0)));
    read.pop();
    read.ret();
    assert!(matches!(
        single(read),
        Err(VerifyError::BadId { what: "static", .. })
    ));

    let mut write = MethodBuilder::new("main", 0, 0, false);
    write.const_i(1);
    write.emit(Instr::PutStatic(StaticId(4)));
    write.ret();
    assert!(matches!(
        single(write),
        Err(VerifyError::BadId {
            at: 1,
            what: "static",
            ..
        })
    ));
}

#[test]
fn branch_target_past_end_rejected() {
    let mut m = MethodBuilder::new("main", 0, 0, false);
    m.emit(Instr::Jump(99));
    m.ret();
    assert!(matches!(
        single(m),
        Err(VerifyError::BadBranchTarget {
            at: 0,
            target: 99,
            ..
        })
    ));
}

#[test]
fn conditional_branch_target_past_end_rejected() {
    let mut m = MethodBuilder::new("main", 0, 0, false);
    m.const_i(1);
    m.emit(Instr::JumpIfNot(50));
    m.ret();
    assert!(matches!(
        single(m),
        Err(VerifyError::BadBranchTarget {
            at: 1,
            target: 50,
            ..
        })
    ));
}

#[test]
fn declared_but_never_defined_method_rejected() {
    // `declare_method` installs an empty placeholder body; forgetting the
    // matching `define_method` must fail verification, not crash the VM.
    let mut pb = ProgramBuilder::new();
    pb.declare_method("helper", 0, false);
    let mut m = MethodBuilder::new("main", 0, 0, false);
    m.ret();
    let id = pb.add_method(m);
    pb.set_entry(id);
    assert!(matches!(pb.finish(), Err(VerifyError::EmptyBody { method }) if method == "helper"));
}

#[test]
fn infinite_loop_without_return_is_accepted_but_stackless_fall_off_is_not() {
    // A self-loop never falls off the end — legal (the VM's step limit
    // guards it). Dropping the loop makes the same body fall off.
    let mut looping = MethodBuilder::new("main", 0, 0, false);
    looping.emit(Instr::Jump(0));
    assert!(single(looping).is_ok());

    let mut falls = MethodBuilder::new("main", 0, 0, false);
    falls.const_i(1);
    falls.pop();
    assert!(matches!(
        single(falls),
        Err(VerifyError::FallsOffEnd { .. })
    ));
}

#[test]
fn underflow_via_raw_swap_rejected() {
    let mut m = MethodBuilder::new("main", 0, 0, false);
    m.const_i(1);
    m.emit(Instr::Swap);
    m.pop();
    m.pop();
    m.ret();
    assert!(matches!(
        single(m),
        Err(VerifyError::StackUnderflow { at: 1, .. })
    ));
}

#[test]
fn arity_mismatch_surfaces_as_underflow() {
    // Calling a 2-parameter method with one argument on the stack.
    let mut pb = ProgramBuilder::new();
    let mut callee = MethodBuilder::new("two_args", 2, 0, false);
    callee.ret();
    let callee_id = pb.add_method(callee);
    let mut m = MethodBuilder::new("main", 0, 0, false);
    m.const_i(1);
    m.call(callee_id);
    m.ret();
    let id = pb.add_method(m);
    pb.set_entry(id);
    assert!(matches!(
        pb.finish(),
        Err(VerifyError::StackUnderflow { .. })
    ));
}
