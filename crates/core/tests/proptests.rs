//! Property-based tests for the instructions-of-interest analysis and
//! the sample resolver.

//
// These tests need the external `proptest` crate, which the offline
// build cannot fetch; enable with `--features proptest-tests` after
// adding proptest as a dev-dependency.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::{FieldType, Program};
use hpmopt_core::interest::analyze_method;
use hpmopt_core::mapping::SampleResolver;
use hpmopt_vm::compiler::compile;
use hpmopt_vm::machine::Tier;

/// Straight-line access-path programs: a chain of `getfield` hops from a
/// fresh object, optionally stashed in locals along the way.
#[derive(Debug, Clone, Copy)]
enum Hop {
    /// `getfield y` (the ref field).
    Deref,
    /// store to a local, reload it.
    ViaLocal,
    /// `dup; pop` noise.
    Noise,
}

fn hops() -> impl Strategy<Value = Vec<Hop>> {
    proptest::collection::vec(
        prop_oneof![Just(Hop::Deref), Just(Hop::ViaLocal), Just(Hop::Noise)],
        0..12,
    )
}

/// Build `new A; (hops); getfield i; pop; ret` and return (program,
/// index of the final `getfield i`, whether its base came through a
/// ref-field load).
fn build(hopseq: &[Hop]) -> (Program, u32, bool) {
    let mut pb = ProgramBuilder::new();
    let a = pb.add_class("A", &[("y", FieldType::Ref), ("i", FieldType::Int)]);
    let y = pb.field_id(a, "y").unwrap();
    let i = pb.field_id(a, "i").unwrap();
    let mut m = MethodBuilder::new("main", 0, 2, false);
    m.new_object(a);
    let mut came_from_field = false;
    for h in hopseq {
        match h {
            Hop::Deref => {
                m.get_field(y);
                came_from_field = true;
            }
            Hop::ViaLocal => {
                m.store(1);
                m.load(1);
            }
            Hop::Noise => {
                m.dup();
                m.pop();
            }
        }
    }
    let final_get = m.here();
    m.get_field(i);
    m.pop();
    m.ret();
    let id = pb.add_method(m);
    pb.set_entry(id);
    (pb.finish().unwrap(), final_get, came_from_field)
}

proptest! {
    /// The final `getfield i` is an instruction of interest exactly when
    /// its base object flowed through at least one reference-field load —
    /// and the blamed field is then `A::y`, no matter how many local
    /// stashes or stack shuffles intervened.
    #[test]
    fn interest_tracks_access_paths(hopseq in hops()) {
        let (p, final_get, expect) = build(&hopseq);
        let map = analyze_method(&p, p.entry());
        let a = p.class_by_name("A").unwrap();
        let y = p.field_by_name(a, "y").unwrap();
        prop_assert_eq!(
            map.field_for(final_get),
            if expect { Some(y) } else { None },
            "hops: {:?}",
            hopseq
        );
    }

    /// Every machine PC of a full-map artifact resolves to a bytecode
    /// index within the method body; PCs outside resolve to errors.
    #[test]
    fn resolver_is_total_over_full_maps(hopseq in hops()) {
        let (p, _, _) = build(&hopseq);
        let code = compile(&p, p.entry(), Tier::Opt, 0x4000_0000, true);
        let start = code.code_start;
        let end = code.code_end();
        let body_len = p.method(p.entry()).len() as u32;
        let mut r = SampleResolver::new();
        r.register(code);
        for pc in (start..end).step_by(4) {
            let resolved = r.resolve(pc);
            prop_assert!(resolved.is_ok(), "pc {pc:#x} must resolve");
            prop_assert!(resolved.unwrap().bytecode_index < body_len);
        }
        prop_assert!(r.resolve(start - 4).is_err());
        prop_assert!(r.resolve(end).is_err());
    }
}
