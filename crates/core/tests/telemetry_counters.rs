//! End-to-end check that the telemetry counters a monitored run emits
//! agree with the statistics the run itself reports, plus the
//! attribution-rate edge cases.

use hpmopt_bytecode::builder::{MethodBuilder, ProgramBuilder};
use hpmopt_bytecode::{ElemKind, FieldType, Program};
use hpmopt_core::monitor::AttributionStats;
use hpmopt_core::runtime::{HpmRuntime, RunConfig};
use hpmopt_gc::{CollectorKind, HeapConfig};
use hpmopt_hpm::{HpmConfig, SamplingInterval};
use hpmopt_telemetry::{MetricId, Telemetry, DEFAULT_TRACE_CAPACITY};
use hpmopt_vm::VmConfig;

/// A pointer-chasing workload big enough to miss in the L1: parents in
/// a table, each holding an array child read on every traversal.
fn chasing_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let node = pb.add_class("Node", &[("data", FieldType::Ref)]);
    let data = pb.field_id(node, "data").unwrap();
    let table = pb.add_static("table", FieldType::Ref);
    let sum = pb.add_static("sum", FieldType::Int);
    let n = 1500i64;

    let mut m = MethodBuilder::new("main", 0, 4, false);
    m.const_i(n);
    m.new_array(ElemKind::Ref);
    m.put_static(table);
    m.for_loop(
        0,
        |m| {
            m.const_i(n);
        },
        |m| {
            m.new_object(node);
            m.store(1);
            m.load(1);
            m.const_i(4);
            m.new_array(ElemKind::I16);
            m.put_field(data);
            m.get_static(table);
            m.load(0);
            m.load(1);
            m.array_set(ElemKind::Ref);
        },
    );
    m.for_loop(
        2,
        |m| {
            m.const_i(20);
        },
        |m| {
            m.for_loop(
                0,
                |m| {
                    m.const_i(n);
                },
                |m| {
                    m.get_static(table);
                    m.load(0);
                    m.array_get(ElemKind::Ref);
                    m.store(1);
                    m.get_static(sum);
                    m.load(1);
                    m.get_field(data);
                    m.const_i(0);
                    m.array_get(ElemKind::I16);
                    m.add();
                    m.put_static(sum);
                },
            );
        },
    );
    m.ret();
    let id = pb.add_method(m);
    pb.set_entry(id);
    pb.finish().unwrap()
}

fn config(telemetry: Telemetry) -> RunConfig {
    let mut vm = VmConfig::test();
    vm.step_limit = None;
    vm.heap = HeapConfig {
        heap_bytes: 4 * 1024 * 1024,
        nursery_bytes: 64 * 1024,
        los_bytes: 8 * 1024 * 1024,
        collector: CollectorKind::GenMs,
        ..Default::default()
    };
    RunConfig {
        vm,
        hpm: HpmConfig {
            interval: SamplingInterval::Fixed(512),
            buffer_capacity: 32,
            ..HpmConfig::default()
        },
        telemetry,
        ..RunConfig::default()
    }
}

#[test]
fn counters_agree_with_the_run_report() {
    let telemetry = Telemetry::enabled(DEFAULT_TRACE_CAPACITY);
    let report = HpmRuntime::new(config(telemetry.clone()))
        .run(&chasing_program())
        .unwrap();
    let snap = telemetry.snapshot(report.cycles);

    // Attribution outcomes, sample for sample.
    let attr = &report.attribution;
    assert!(attr.total() > 0, "run must process samples");
    assert_eq!(snap.get(MetricId::CoreSamplesAttributed), attr.attributed);
    assert_eq!(
        snap.get(MetricId::CoreSamplesUninteresting),
        attr.uninteresting
    );
    assert_eq!(snap.get(MetricId::CoreSamplesUnmapped), attr.unmapped);
    assert_eq!(snap.get(MetricId::CoreSamplesForeign), attr.foreign);

    // HPM pipeline totals.
    assert_eq!(snap.get(MetricId::HpmSamplesGenerated), report.hpm.samples);
    assert_eq!(snap.get(MetricId::HpmPolls), report.hpm.polls);
    assert_eq!(snap.get(MetricId::HpmSamplesDropped), report.hpm.dropped);
    assert_eq!(
        snap.get(MetricId::HpmSamplesDrained),
        report.hpm.samples - report.hpm.dropped,
        "drained = generated - dropped once the final poll ran"
    );

    // Memory hierarchy and GC, synced at end of run.
    assert_eq!(snap.get(MetricId::MemsimL1Misses), report.vm.mem.l1_misses);
    assert_eq!(snap.get(MetricId::MemsimL1Hits), report.vm.mem.l1_hits);
    assert_eq!(snap.get(MetricId::MemsimL2Misses), report.vm.mem.l2_misses);
    assert_eq!(
        snap.get(MetricId::MemsimDtlbMisses),
        report.vm.mem.dtlb_misses
    );
    assert_eq!(
        snap.get(MetricId::GcMinorCollections),
        report.vm.gc.minor_collections
    );
    assert_eq!(
        snap.get(MetricId::GcMajorCollections),
        report.vm.gc.major_collections
    );
    assert_eq!(
        snap.get(MetricId::GcPromotedBytes),
        report.vm.gc.bytes_promoted
    );

    // The attribution rate recomputed from telemetry matches the report.
    let total = snap.get(MetricId::CoreSamplesAttributed)
        + snap.get(MetricId::CoreSamplesUninteresting)
        + snap.get(MetricId::CoreSamplesUnmapped)
        + snap.get(MetricId::CoreSamplesForeign);
    let rate = snap.get(MetricId::CoreSamplesAttributed) as f64 / total as f64;
    assert!((rate - attr.attribution_rate()).abs() < 1e-12);
}

#[test]
fn disabled_telemetry_stays_all_zero() {
    let telemetry = Telemetry::disabled();
    let report = HpmRuntime::new(config(telemetry.clone()))
        .run(&chasing_program())
        .unwrap();
    assert!(report.attribution.total() > 0);
    let snap = telemetry.snapshot(report.cycles);
    for &id in MetricId::ALL {
        assert_eq!(snap.get(id), 0, "{} leaked through", id.name());
    }
    assert!(snap.events.is_empty());
}

#[test]
fn attribution_rate_edge_cases() {
    // No samples at all: rate is 0, not NaN.
    let idle = AttributionStats::default();
    assert_eq!(idle.total(), 0);
    assert_eq!(idle.attribution_rate(), 0.0);

    // Every sample attributed: rate is exactly 1.
    let perfect = AttributionStats {
        attributed: 42,
        ..AttributionStats::default()
    };
    assert_eq!(perfect.attribution_rate(), 1.0);

    // Nothing attributed, everything rejected: rate is exactly 0.
    let hopeless = AttributionStats {
        uninteresting: 10,
        unmapped: 5,
        foreign: 2,
        ..AttributionStats::default()
    };
    assert_eq!(hopeless.total(), 17);
    assert_eq!(hopeless.attribution_rate(), 0.0);

    // Mixed: the rate is the exact ratio.
    let mixed = AttributionStats {
        attributed: 3,
        uninteresting: 1,
        ..AttributionStats::default()
    };
    assert!((mixed.attribution_rate() - 0.75).abs() < f64::EPSILON);
}
