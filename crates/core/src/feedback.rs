//! Optimization-effect assessment and automatic revert.
//!
//! "For long-running applications the VM also needs to detect when an
//! optimization has a negative effect on overall performance ...
//! Monitoring the cache miss rate for individual classes allows the
//! system to discover that this transformation does not improve
//! performance, and after several measurement periods it triggers a
//! switch back to the original configuration." (Section 6.4, Figure 8)
//!
//! The assessor compares each tracked class's per-period miss rate
//! (sampled misses per megacycle) against the baseline captured when the
//! decision was made; a sustained regression triggers a revert.

use std::collections::BTreeMap;

use hpmopt_bytecode::ClassId;

/// Assessor configuration ("a simple heuristic is used to determine when
/// to switch" — these are its knobs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackConfig {
    /// A period's rate counts as a regression when it exceeds
    /// `baseline × tolerance`.
    pub tolerance: f64,
    /// Consecutive regressing periods that trigger the revert.
    pub revert_after_periods: usize,
    /// Ignore periods with fewer sampled misses than this (noise floor).
    pub min_period_misses: u64,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            tolerance: 1.5,
            revert_after_periods: 3,
            min_period_misses: 4,
        }
    }
}

/// Verdict for one observation period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Rate at or below the baseline band.
    Ok,
    /// Rate above the band, but not long enough to act.
    Regressing,
    /// Sustained regression: revert the decision now.
    Revert,
}

#[derive(Debug, Clone)]
struct Track {
    baseline_rate: f64,
    streak: usize,
}

/// Watches miss rates of classes with active optimization decisions.
#[derive(Debug, Clone)]
pub struct Assessor {
    config: FeedbackConfig,
    tracks: BTreeMap<ClassId, Track>,
}

impl Assessor {
    /// Create an assessor.
    #[must_use]
    pub fn new(config: FeedbackConfig) -> Self {
        Assessor {
            config,
            tracks: BTreeMap::new(),
        }
    }

    /// Begin watching `class`, with the pre-decision miss rate as the
    /// baseline.
    pub fn start_tracking(&mut self, class: ClassId, baseline_rate: f64) {
        self.tracks.insert(
            class,
            Track {
                baseline_rate,
                streak: 0,
            },
        );
    }

    /// Stop watching `class` (after a revert or when its decision is
    /// withdrawn).
    pub fn stop_tracking(&mut self, class: ClassId) {
        self.tracks.remove(&class);
    }

    /// Whether `class` is being watched.
    #[must_use]
    pub fn is_tracking(&self, class: ClassId) -> bool {
        self.tracks.contains_key(&class)
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> FeedbackConfig {
        self.config
    }

    /// The baseline rate captured when tracking of `class` began.
    #[must_use]
    pub fn baseline(&self, class: ClassId) -> Option<f64> {
        self.tracks.get(&class).map(|t| t.baseline_rate)
    }

    /// Current regressing-period streak for `class`.
    #[must_use]
    pub fn streak(&self, class: ClassId) -> Option<usize> {
        self.tracks.get(&class).map(|t| t.streak)
    }

    /// Report one period: the class's sampled misses and the rate
    /// (misses per megacycle). Returns the verdict; on
    /// [`Verdict::Revert`] the caller reverts the decision and the track
    /// is dropped.
    pub fn observe(&mut self, class: ClassId, period_misses: u64, rate: f64) -> Verdict {
        let Some(track) = self.tracks.get_mut(&class) else {
            return Verdict::Ok;
        };
        if period_misses < self.config.min_period_misses {
            return Verdict::Ok;
        }
        if rate > track.baseline_rate * self.config.tolerance {
            track.streak += 1;
            if track.streak >= self.config.revert_after_periods {
                self.tracks.remove(&class);
                return Verdict::Revert;
            }
            Verdict::Regressing
        } else {
            track.streak = 0;
            Verdict::Ok
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLASS: ClassId = ClassId(1);

    fn assessor() -> Assessor {
        Assessor::new(FeedbackConfig {
            tolerance: 1.5,
            revert_after_periods: 3,
            min_period_misses: 4,
        })
    }

    #[test]
    fn stable_rate_never_reverts() {
        let mut a = assessor();
        a.start_tracking(CLASS, 10.0);
        for _ in 0..100 {
            assert_eq!(a.observe(CLASS, 50, 11.0), Verdict::Ok);
        }
        assert!(a.is_tracking(CLASS));
    }

    #[test]
    fn sustained_regression_reverts_after_k_periods() {
        let mut a = assessor();
        a.start_tracking(CLASS, 10.0);
        assert_eq!(a.observe(CLASS, 50, 20.0), Verdict::Regressing);
        assert_eq!(a.observe(CLASS, 50, 20.0), Verdict::Regressing);
        assert_eq!(a.observe(CLASS, 50, 20.0), Verdict::Revert);
        assert!(!a.is_tracking(CLASS), "track dropped after revert");
    }

    #[test]
    fn recovery_resets_the_streak() {
        let mut a = assessor();
        a.start_tracking(CLASS, 10.0);
        a.observe(CLASS, 50, 20.0);
        a.observe(CLASS, 50, 20.0);
        assert_eq!(a.observe(CLASS, 50, 9.0), Verdict::Ok, "dip resets");
        assert_eq!(a.observe(CLASS, 50, 20.0), Verdict::Regressing);
        assert_ne!(
            a.observe(CLASS, 50, 20.0),
            Verdict::Revert,
            "streak restarted"
        );
    }

    #[test]
    fn noise_floor_ignores_thin_periods() {
        let mut a = assessor();
        a.start_tracking(CLASS, 10.0);
        for _ in 0..10 {
            assert_eq!(a.observe(CLASS, 2, 1000.0), Verdict::Ok);
        }
    }

    #[test]
    fn untracked_classes_are_ok() {
        let mut a = assessor();
        assert_eq!(a.observe(CLASS, 100, 1000.0), Verdict::Ok);
    }
}
